"""Study-level configuration: fleet sizes per DC and experiment knobs."""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.redundancy import READ_POLICY_NAMES, RedundancyConfig
from repro.cluster.simulator import SimulationConfig
from repro.faults.plan import FaultPlan
from repro.util.errors import ConfigError
from repro.util.units import MiB
from repro.workload.fleet import FleetConfig


def _default_dcs() -> List[FleetConfig]:
    """Three data centers with distinct skew mixes, mirroring Table 3.

    DC-1 is database/middleware heavy, DC-2 is dominated by steadier
    BigData traffic (the least-skewed DC in the paper), DC-3 is
    Docker/WebApp heavy (the most read-skewed).
    """
    return [
        FleetConfig(
            dc_id=0,
            num_users=12,
            num_vms=48,
            num_compute_nodes=12,
            num_storage_nodes=8,
            user_zipf_alpha=1.4,
        ),
        FleetConfig(
            dc_id=1,
            num_users=12,
            num_vms=48,
            num_compute_nodes=12,
            num_storage_nodes=8,
            user_zipf_alpha=0.9,
            app_weights={
                "BigData": 0.5,
                "Middleware": 0.2,
                "Database": 0.2,
                "WebApp": 0.1,
            },
        ),
        FleetConfig(
            dc_id=2,
            num_users=12,
            num_vms=48,
            num_compute_nodes=12,
            num_storage_nodes=8,
            user_zipf_alpha=1.8,
            app_weights={
                "Docker": 0.4,
                "WebApp": 0.3,
                "Database": 0.2,
                "FileSystem": 0.1,
            },
        ),
    ]


@dataclass(frozen=True)
class StudyConfig:
    """Everything needed to reproduce the paper's evaluation once."""

    seed: int = 7
    duration_seconds: int = 600
    trace_sampling_rate: float = 1.0 / 20.0
    #: Metric-table recording thresholds (None = the simulator defaults).
    #: Large scales raise them: at ``xlarge`` the default per-cell floor
    #: would record hundreds of millions of rows per DC.
    min_record_bytes: Optional[float] = None
    min_record_iops: Optional[float] = None
    dc_configs: List[FleetConfig] = field(default_factory=_default_dcs)
    #: Optional deterministic fault schedule applied to every DC build
    #: (per-DC sub-plans via :meth:`FaultPlan.for_dc`).  None or an empty
    #: plan reproduces the fault-free study bit-for-bit.
    fault_plan: Optional[FaultPlan] = None
    #: Redundancy spec ("r=3" / "ec=4+2") applied to every DC.  None (or
    #: "r=1" under the primary policy) reproduces the single-copy study
    #: bit-for-bit.
    redundancy: Optional[str] = None
    #: Read-assignment policy over a segment's copies: primary |
    #: least_loaded | power_of_two | water_filling.
    read_policy: str = "primary"

    # §4 experiment knobs
    wt_cov_windows: Tuple[int, ...] = (60, 300, 600)
    rebind_period_seconds: float = 0.010

    # §5 experiment knobs
    lending_rates: Tuple[float, ...] = (0.2, 0.4, 0.6, 0.8)
    lending_period_seconds: int = 60
    cap_headroom_median: float = 4.0

    # §6 experiment knobs
    balancer_period_seconds: int = 30
    migration_window_scales: Tuple[int, ...] = (15, 60, 300)
    prediction_period_seconds: int = 10
    prediction_warmup_periods: int = 10
    # The paper retrains its ML models every 200 of 1440 periods; the
    # same staleness ratio at simulation scale.
    prediction_epoch_periods: int = 30

    # §7 experiment knobs
    cache_block_bytes: Tuple[int, ...] = (64 * MiB, 512 * MiB, 2048 * MiB)
    cache_min_traces: int = 500
    hot_rate_window_seconds: float = 60.0

    def __post_init__(self) -> None:
        if not self.dc_configs:
            raise ConfigError("at least one data center is required")
        if self.duration_seconds <= 0:
            raise ConfigError("duration_seconds must be positive")
        if not 0.0 < self.trace_sampling_rate <= 1.0:
            raise ConfigError("trace_sampling_rate must be in (0, 1]")
        ids = [dc.dc_id for dc in self.dc_configs]
        if len(set(ids)) != len(ids):
            raise ConfigError(f"duplicate dc_ids: {ids}")
        if not self.lending_rates or any(
            not 0.0 < p < 1.0 for p in self.lending_rates
        ):
            raise ConfigError("lending_rates must lie in (0, 1)")
        if not self.cache_block_bytes or any(
            b <= 0 for b in self.cache_block_bytes
        ):
            raise ConfigError("cache_block_bytes must be positive")
        if self.cache_min_traces < 1:
            raise ConfigError("cache_min_traces must be >= 1")
        for name in ("min_record_bytes", "min_record_iops"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ConfigError(f"{name} must be non-negative")
        if self.redundancy is not None:
            RedundancyConfig.parse(self.redundancy)  # raises on bad spec
        if self.read_policy not in READ_POLICY_NAMES:
            raise ConfigError(
                f"unknown read policy {self.read_policy!r}; choose one of "
                f"{', '.join(READ_POLICY_NAMES)}"
            )

    def simulation_config(self) -> SimulationConfig:
        overrides: Dict[str, Any] = {}
        if self.min_record_bytes is not None:
            overrides["min_record_bytes"] = self.min_record_bytes
        if self.min_record_iops is not None:
            overrides["min_record_iops"] = self.min_record_iops
        return SimulationConfig(
            duration_seconds=self.duration_seconds,
            trace_sampling_rate=self.trace_sampling_rate,
            redundancy=self.redundancy,
            read_policy=self.read_policy,
            **overrides,
        )

    # -- presets ------------------------------------------------------------

    @classmethod
    def scale(
        cls, name: str, *, seed: int = 7, **overrides: Any
    ) -> "StudyConfig":
        """Build a preset-scale config with keyword-only overrides.

        ``name`` is one of :data:`SCALE_NAMES`:

        - ``"small"`` — laptop scale: ~2 minutes to build and run
          everything;
        - ``"medium"`` — the benchmark default: enough periods for the
          §6 experiments;
        - ``"large"`` — longer and larger for tighter statistics (runs
          streamed by default on the CLI);
        - ``"xlarge"`` — the raw-speed tier: >=100k VMs across the three
          DCs (only runs streamed; pair with ``--max-rss-mb`` and the
          raw series format).  Trace sampling and the metric-recording
          thresholds are scaled so outputs stay tractable.

        Any :class:`StudyConfig` field can be overridden::

            StudyConfig.scale("small", seed=11, duration_seconds=200)
            StudyConfig.scale("medium", lending_rates=(0.3, 0.6))

        Unknown override names raise :class:`ConfigError` (catching the
        typo at construction, not deep inside a sweep).  This replaces
        the deprecated ``StudyConfig.small/medium/large`` classmethods.
        """
        factory = _SCALE_PRESETS.get(name)
        if factory is None:
            raise ConfigError(
                f"unknown scale {name!r}; choose from {SCALE_NAMES}"
            )
        params = factory()
        params["seed"] = seed
        known = {f.name for f in fields(cls)}
        unknown = set(overrides) - known
        if unknown:
            raise ConfigError(
                f"unknown StudyConfig override(s): {sorted(unknown)}"
            )
        params.update(overrides)
        return cls(**params)

    # -- deprecated preset shims --------------------------------------------

    @classmethod
    def small(cls, seed: int = 7) -> "StudyConfig":
        """Deprecated: use ``StudyConfig.scale("small", seed=...)``."""
        warnings.warn(
            "StudyConfig.small() is deprecated; use "
            "StudyConfig.scale('small', seed=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return cls.scale("small", seed=seed)

    @classmethod
    def medium(cls, seed: int = 7) -> "StudyConfig":
        """Deprecated: use ``StudyConfig.scale("medium", seed=...)``."""
        warnings.warn(
            "StudyConfig.medium() is deprecated; use "
            "StudyConfig.scale('medium', seed=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return cls.scale("medium", seed=seed)

    @classmethod
    def large(cls, seed: int = 7) -> "StudyConfig":
        """Deprecated: use ``StudyConfig.scale("large", seed=...)``."""
        warnings.warn(
            "StudyConfig.large() is deprecated; use "
            "StudyConfig.scale('large', seed=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return cls.scale("large", seed=seed)


def _small_params() -> "Dict[str, Any]":
    dcs = [
        replace(
            dc,
            num_users=8,
            num_vms=28,
            num_compute_nodes=8,
            num_storage_nodes=6,
        )
        for dc in _default_dcs()
    ]
    return {"duration_seconds": 400, "dc_configs": dcs}


def _medium_params() -> "Dict[str, Any]":
    return {
        "duration_seconds": 1200,
        "wt_cov_windows": (60, 300, 1200),
    }


def _large_params() -> "Dict[str, Any]":
    dcs = [
        replace(
            dc,
            num_users=24,
            num_vms=120,
            num_compute_nodes=24,
            num_storage_nodes=12,
        )
        for dc in _default_dcs()
    ]
    return {
        "duration_seconds": 1800,
        "dc_configs": dcs,
        "wt_cov_windows": (60, 600, 1800),
    }


def _xlarge_params() -> "Dict[str, Any]":
    """The raw-speed tier: ~108k VMs (3 x 36000) — ROADMAP item 5.

    Node counts keep the default ~10 VMs/node density; trace sampling
    and the metric-recording floors scale with fleet size so pass-2 and
    the metric tables stay bounded while pass-1 still aggregates every
    (entity, second) cell.  Only runs streamed (the CLI enforces it).
    """
    dcs = [
        replace(
            dc,
            num_users=2400,
            num_vms=36_000,
            num_compute_nodes=3600,
            num_storage_nodes=1200,
        )
        for dc in _default_dcs()
    ]
    return {
        "duration_seconds": 600,
        "dc_configs": dcs,
        "trace_sampling_rate": 1.0 / 2000.0,
        "min_record_bytes": 64.0 * MiB,
        "min_record_iops": 4096.0,
        "wt_cov_windows": (60, 300, 600),
    }


_SCALE_PRESETS = {
    "small": _small_params,
    "medium": _medium_params,
    "large": _large_params,
    "xlarge": _xlarge_params,
}

#: The preset names accepted by :meth:`StudyConfig.scale` (and the CLI's
#: ``--scale`` flag).
SCALE_NAMES = tuple(_SCALE_PRESETS)
