"""Versioned schema for machine-readable experiment-result payloads.

``ebs-repro run -o results.json`` (and :func:`repro.api.run_study` via
:func:`results_payload`) writes one payload per run::

    {
      "result_schema_version": 2,
      "scale": "small" | null,
      "seed": 7 | null,
      "redundancy": "r=3" | null,             # v2: redundancy spec
      "read_policy": "primary" | null,        # v2: read-assignment policy
      "results": [ExperimentResult.to_dict(), ...],
      "failed_experiment": "fig4b"            # only on partial runs
    }

Version history: v1 had no ``redundancy``/``read_policy`` keys; v2
added them (readers accept both, writers emit v2).

:func:`validate_result_payload` mirrors the ``obs validate`` philosophy:
return a list of human-readable problems (empty = valid) instead of
raising, so the CLI can report every issue at once.  ``ebs-repro obs
validate`` dispatches here when it sees ``result_schema_version``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.core.report import ExperimentResult

#: Bump on any breaking change to the results payload layout.
RESULT_SCHEMA_VERSION = 2

#: Payload versions this build can read.
SUPPORTED_RESULT_SCHEMA_VERSIONS = (1, 2)


def results_payload(
    results: Sequence[ExperimentResult],
    *,
    scale: Optional[str] = None,
    seed: Optional[int] = None,
    redundancy: Optional[str] = None,
    read_policy: Optional[str] = None,
    failed_experiment: Optional[str] = None,
) -> Dict[str, Any]:
    """Assemble the versioned JSON payload for a run's results."""
    payload: Dict[str, Any] = {
        "result_schema_version": RESULT_SCHEMA_VERSION,
        "scale": scale,
        "seed": seed,
        "redundancy": redundancy,
        "read_policy": read_policy,
        "results": [result.to_dict() for result in results],
    }
    if failed_experiment is not None:
        payload["failed_experiment"] = failed_experiment
    return payload


def _check_result_entry(index: int, entry: Any, problems: List[str]) -> None:
    prefix = f"results[{index}]"
    if not isinstance(entry, dict):
        problems.append(f"{prefix}: must be an object")
        return
    for key in ("experiment_id", "title", "headers", "rows"):
        if key not in entry:
            problems.append(f"{prefix}: missing {key!r}")
    headers = entry.get("headers")
    if headers is not None and not (
        isinstance(headers, list)
        and all(isinstance(h, str) for h in headers)
    ):
        problems.append(f"{prefix}: 'headers' must be a list of strings")
    rows = entry.get("rows")
    if rows is not None:
        if not isinstance(rows, list):
            problems.append(f"{prefix}: 'rows' must be a list")
        elif isinstance(headers, list):
            for row_index, row in enumerate(rows):
                if not isinstance(row, list):
                    problems.append(
                        f"{prefix}.rows[{row_index}]: must be a list"
                    )
                elif len(row) != len(headers):
                    problems.append(
                        f"{prefix}.rows[{row_index}]: width {len(row)} != "
                        f"header width {len(headers)}"
                    )


def validate_result_payload(payload: Any) -> List[str]:
    """All schema problems of a results payload (empty = valid)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["results payload must be a JSON object"]
    version = payload.get("result_schema_version")
    if version is None:
        problems.append("missing 'result_schema_version'")
    elif version not in SUPPORTED_RESULT_SCHEMA_VERSIONS:
        problems.append(
            f"unsupported result_schema_version {version!r} "
            f"(this build reads {SUPPORTED_RESULT_SCHEMA_VERSIONS})"
        )
    results = payload.get("results")
    if not isinstance(results, list):
        problems.append("'results' must be a list")
    else:
        for index, entry in enumerate(results):
            _check_result_entry(index, entry, problems)
    seed = payload.get("seed")
    if seed is not None and not isinstance(seed, int):
        problems.append("'seed' must be an integer or null")
    scale = payload.get("scale")
    if scale is not None and not isinstance(scale, str):
        problems.append("'scale' must be a string or null")
    for key in ("redundancy", "read_policy"):
        value = payload.get(key)
        if value is not None and not isinstance(value, str):
            problems.append(f"'{key}' must be a string or null")
    failed = payload.get("failed_experiment")
    if failed is not None and not isinstance(failed, str):
        problems.append("'failed_experiment' must be a string")
    return problems


def load_results(payload: Dict[str, Any]) -> List[ExperimentResult]:
    """Materialize a validated payload's results.

    Raises :class:`~repro.util.errors.ConfigError` (via the
    :class:`ExperimentResult` constructor) on malformed rows — call
    :func:`validate_result_payload` first for a gentle report.
    """
    return [
        ExperimentResult(
            experiment_id=entry["experiment_id"],
            title=entry["title"],
            headers=list(entry["headers"]),
            rows=[list(row) for row in entry["rows"]],
            notes=entry.get("notes", ""),
        )
        for entry in payload.get("results", [])
    ]
