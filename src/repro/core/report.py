"""Result containers and plain-text table rendering for experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.util.errors import ConfigError


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or (0 < abs(value) < 0.001):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".") or "0"
    if value is None:
        return "-"
    return str(value)


@dataclass
class ExperimentResult:
    """One experiment's output: a titled table plus free-form notes."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: str = ""

    def __post_init__(self) -> None:
        for row in self.rows:
            if len(row) != len(self.headers):
                raise ConfigError(
                    f"{self.experiment_id}: row width {len(row)} != "
                    f"header width {len(self.headers)}"
                )

    def render(self) -> str:
        """Render as an aligned plain-text table."""
        cells = [[_format_cell(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.headers[col]), *(len(r[col]) for r in cells))
            if cells
            else len(self.headers[col])
            for col in range(len(self.headers))
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append(
            "  ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if self.notes:
            lines.append("")
            lines.append(self.notes)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": self.notes,
        }

    def column(self, header: str) -> List[Any]:
        """All values of one column, by header name."""
        if header not in self.headers:
            raise ConfigError(
                f"{self.experiment_id}: no column {header!r}; "
                f"have {self.headers}"
            )
        index = self.headers.index(header)
        return [row[index] for row in self.rows]
