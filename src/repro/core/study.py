"""The Study: build fleets, simulate each DC, run experiments."""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional

from repro.cluster.simulator import (
    EBSSimulator,
    SimulationConfig,
    SimulationResult,
)
from repro.core.config import StudyConfig
from repro.core.report import ExperimentResult
from repro.faults.plan import FaultPlan
from repro.obs.runtime import (
    Telemetry,
    get_telemetry,
    peak_rss_bytes,
    set_telemetry,
)
from repro.util.errors import ConfigError, SimulationError
from repro.util.rng import RngFactory
from repro.workload.fleet import FleetConfig, build_fleet


def _simulate_dc(
    payload: (
        "tuple[FleetConfig, SimulationConfig, int, bool, Optional[FaultPlan]]"
    ),
) -> "tuple[SimulationResult, Optional[dict]]":
    """Module-level worker: build + simulate one DC in a child process.

    Every RNG stream is keyed by the DC id (fleet build, workload,
    simulator), so simulating DCs in separate processes yields exactly
    the same datasets as the sequential loop.  With telemetry enabled in
    the parent, the worker records into a fresh handle and returns its
    snapshot for a deterministic merge (else None).  The optional fault
    plan is already scoped to this DC (:meth:`FaultPlan.for_dc`).
    """
    dc_config, sim_config, seed, telemetry_on, fault_plan = payload
    telemetry = None
    previous = None
    if telemetry_on:
        telemetry = Telemetry(enabled=True)
        previous = set_telemetry(telemetry)
    try:
        with get_telemetry().span("study.simulate_dc", dc=dc_config.dc_id):
            rngs = RngFactory(seed)
            fleet = build_fleet(dc_config, rngs)
            result = EBSSimulator(
                fleet, sim_config, rngs, fault_plan=fault_plan
            ).run()
    finally:
        if telemetry is not None:
            set_telemetry(previous)
    return result, telemetry.snapshot() if telemetry is not None else None


class Study:
    """Owns the end-to-end reproduction flow for one configuration.

    ``build()`` simulates every configured data center once; results are
    cached, so running many experiments reuses the same datasets — exactly
    like the paper analyzing one collected dataset many ways.
    """

    def __init__(
        self,
        config: Optional[StudyConfig] = None,
        chunk_epochs: "Optional[int]" = None,
        shard_dir: "Optional[str]" = None,
        max_rss_mb: "Optional[int]" = None,
        series_format: str = "raw",
        series_dtype: str = "float64",
    ):
        self.config = config if config is not None else StudyConfig()
        self.rngs = RngFactory(self.config.seed)
        self._results: List[SimulationResult] = []
        self._experiment_cache: Dict[str, ExperimentResult] = {}
        if chunk_epochs is not None and chunk_epochs < 1:
            raise ConfigError(
                f"chunk_epochs must be >= 1, got {chunk_epochs}"
            )
        #: ``None`` = monolithic build; an int streams each DC's
        #: simulation out-of-core in shards of that many epochs
        #: (byte-identical results; see :mod:`repro.engine`).
        self.chunk_epochs = chunk_epochs
        self.shard_dir = shard_dir
        self.max_rss_mb = max_rss_mb
        #: Streamed-build shard-store options: ``"raw"`` (zero-copy mmap
        #: reads; the default) or ``"npz"``, and the on-disk series dtype
        #: (``"float32"`` is the digest-gated opt-in; raw-only).  Results
        #: are digest-identical across formats at float64.
        self.series_format = series_format
        self.series_dtype = series_dtype
        self._engines: List[object] = []

    @classmethod
    def from_results(
        cls,
        config: StudyConfig,
        results: "List[SimulationResult]",
    ) -> "Study":
        """Assemble a pre-built study from per-DC simulation results.

        The sweep cache replays builds through this: experiments see a
        study indistinguishable from one that just ran ``build()`` —
        experiment RNG streams are label-keyed off the seed alone
        (:class:`~repro.util.rng.RngFactory` is stateless), so outputs
        are byte-identical to the monolithic path.  ``results`` must
        cover exactly the configured DCs, in ``dc_configs`` order.
        """
        want = [dc.dc_id for dc in config.dc_configs]
        got = [result.fleet.config.dc_id for result in results]
        if want != got:
            raise ConfigError(
                f"results cover DCs {got}, config expects {want}"
            )
        study = cls(config)
        study._results = list(results)
        return study

    @property
    def streamed(self) -> bool:
        """Whether builds run through the streaming engine."""
        return self.chunk_epochs is not None

    def cleanup(self) -> None:
        """Purge temp shard stores created by streamed builds.

        Call after the last experiment has consumed ``results`` — the
        streamed ``result.traffic`` views read lazily from the stores.
        Stores under an explicit ``shard_dir`` are kept.
        """
        for engine in self._engines:
            engine.cleanup()  # type: ignore[attr-defined]
        self._engines = []

    @property
    def built(self) -> bool:
        return bool(self._results)

    def _fault_plan_for(self, dc_id: int) -> "Optional[FaultPlan]":
        """The configured plan scoped to one DC (None when fault-free)."""
        plan = self.config.fault_plan
        if plan is None or plan.is_empty:
            return None
        scoped = plan.for_dc(dc_id)
        return None if scoped.is_empty else scoped

    @property
    def results(self) -> List[SimulationResult]:
        if not self._results:
            raise SimulationError("Study.build() has not been called")
        return self._results

    def build(self, workers: int = 1) -> "Study":
        """Simulate every DC (idempotent).

        ``workers > 1`` is an opt-in process fan-out: DCs simulate in
        parallel (each DC's streams are keyed by its dc_id, so results
        are identical to the sequential build); a study with a single DC
        instead fans the per-VD trace generation out over ``workers``.
        Either way the datasets are seed-stable for any worker count.
        """
        if self._results:
            return self
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        telemetry = get_telemetry()
        sim_config = self.config.simulation_config()
        dcs = self.config.dc_configs
        with telemetry.span(
            "study.build", workers=workers, dcs=len(dcs)
        ) as span:
            if self.streamed:
                # Out-of-core path: DCs stream sequentially (one bounded
                # working set at a time); ``workers`` fans out the
                # per-batch pass 2 inside each DC instead.
                from repro.engine import StreamingSimulator

                for dc_config in dcs:
                    fleet = build_fleet(dc_config, self.rngs)
                    simulator = EBSSimulator(
                        fleet,
                        sim_config,
                        self.rngs,
                        fault_plan=self._fault_plan_for(dc_config.dc_id),
                    )
                    dc_dir = (
                        None
                        if self.shard_dir is None
                        else f"{self.shard_dir}/dc{dc_config.dc_id:02d}"
                    )
                    engine = StreamingSimulator(
                        simulator,
                        chunk_epochs=self.chunk_epochs,
                        shard_dir=dc_dir,
                        max_rss_mb=self.max_rss_mb,
                        series_format=self.series_format,
                        series_dtype=self.series_dtype,
                    )
                    self._engines.append(engine)
                    self._results.append(engine.run(workers=workers))
            elif workers > 1 and len(dcs) > 1:
                payloads = [
                    (
                        dc,
                        sim_config,
                        self.rngs.seed,
                        telemetry.enabled,
                        self._fault_plan_for(dc.dc_id),
                    )
                    for dc in dcs
                ]
                with ProcessPoolExecutor(
                    max_workers=min(workers, len(dcs))
                ) as pool:
                    outcomes = list(pool.map(_simulate_dc, payloads))
                # Merge per-worker telemetry in DC order; all metrics are
                # integer-valued, so the merged registry is byte-identical
                # to the sequential build's.
                for _, snapshot in outcomes:
                    telemetry.merge_snapshot(snapshot)
                self._results = [result for result, _ in outcomes]
            else:
                for dc_config in dcs:
                    with telemetry.span(
                        "study.simulate_dc", dc=dc_config.dc_id
                    ):
                        fleet = build_fleet(dc_config, self.rngs)
                        simulator = EBSSimulator(
                            fleet,
                            sim_config,
                            self.rngs,
                            fault_plan=self._fault_plan_for(dc_config.dc_id),
                        )
                        self._results.append(simulator.run(workers=workers))
            if telemetry.enabled:
                rss = peak_rss_bytes()
                if rss is not None:
                    span.set(peak_rss_bytes=rss)
        return self

    def result_for_dc(self, dc_id: int) -> SimulationResult:
        for result in self.results:
            if result.fleet.config.dc_id == dc_id:
                return result
        raise ConfigError(f"no data center with id {dc_id}")

    def run(self, experiment_id: str) -> ExperimentResult:
        """Execute one experiment by its table/figure id (cached)."""
        from repro.core.experiments import EXPERIMENTS

        if experiment_id not in EXPERIMENTS:
            raise ConfigError(
                f"unknown experiment {experiment_id!r}; "
                f"known: {sorted(EXPERIMENTS)}"
            )
        if experiment_id not in self._experiment_cache:
            self.build()
            telemetry = get_telemetry()
            with telemetry.span(
                "study.experiment", experiment=experiment_id
            ) as span:
                result = EXPERIMENTS[experiment_id](self)
                if telemetry.enabled:
                    # Wall-clock lives in the span itself; annotate memory
                    # (peak RSS is cumulative per process, so per-experiment
                    # deltas show which stage first grew the footprint).
                    rss = peak_rss_bytes()
                    if rss is not None:
                        span.set(peak_rss_bytes=rss)
                    telemetry.counter(
                        "study.experiments_run", experiment=experiment_id
                    ).inc()
            self._experiment_cache[experiment_id] = result
        return self._experiment_cache[experiment_id]

    def run_all(self) -> List[ExperimentResult]:
        """Run every registered experiment in id order."""
        from repro.core.experiments import experiment_ids

        return [self.run(experiment_id) for experiment_id in experiment_ids()]
