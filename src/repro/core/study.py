"""The Study: build fleets, simulate each DC, run experiments."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.simulator import EBSSimulator, SimulationResult
from repro.core.config import StudyConfig
from repro.core.report import ExperimentResult
from repro.util.errors import ConfigError, SimulationError
from repro.util.rng import RngFactory
from repro.workload.fleet import build_fleet


class Study:
    """Owns the end-to-end reproduction flow for one configuration.

    ``build()`` simulates every configured data center once; results are
    cached, so running many experiments reuses the same datasets — exactly
    like the paper analyzing one collected dataset many ways.
    """

    def __init__(self, config: Optional[StudyConfig] = None):
        self.config = config if config is not None else StudyConfig()
        self.rngs = RngFactory(self.config.seed)
        self._results: List[SimulationResult] = []
        self._experiment_cache: Dict[str, ExperimentResult] = {}

    @property
    def built(self) -> bool:
        return bool(self._results)

    @property
    def results(self) -> List[SimulationResult]:
        if not self._results:
            raise SimulationError("Study.build() has not been called")
        return self._results

    def build(self) -> "Study":
        """Simulate every DC (idempotent)."""
        if self._results:
            return self
        sim_config = self.config.simulation_config()
        for dc_config in self.config.dc_configs:
            fleet = build_fleet(dc_config, self.rngs)
            simulator = EBSSimulator(fleet, sim_config, self.rngs)
            self._results.append(simulator.run())
        return self

    def result_for_dc(self, dc_id: int) -> SimulationResult:
        for result in self.results:
            if result.fleet.config.dc_id == dc_id:
                return result
        raise ConfigError(f"no data center with id {dc_id}")

    def run(self, experiment_id: str) -> ExperimentResult:
        """Execute one experiment by its table/figure id (cached)."""
        from repro.core.experiments import EXPERIMENTS

        if experiment_id not in EXPERIMENTS:
            raise ConfigError(
                f"unknown experiment {experiment_id!r}; "
                f"known: {sorted(EXPERIMENTS)}"
            )
        if experiment_id not in self._experiment_cache:
            self.build()
            self._experiment_cache[experiment_id] = EXPERIMENTS[
                experiment_id
            ](self)
        return self._experiment_cache[experiment_id]

    def run_all(self) -> List[ExperimentResult]:
        """Run every registered experiment in id order."""
        from repro.core.experiments import experiment_ids

        return [self.run(experiment_id) for experiment_id in experiment_ids()]
