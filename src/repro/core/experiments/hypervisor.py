"""Hypervisor load-balancing experiments: Figure 2 (§4)."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.balancer.wt import (
    RebindingConfig,
    classify_nodes,
    hottest_qp_shares,
    hottest_wt_series,
    simulate_rebinding,
    vm_vd_qp_covs,
    wt_cov_samples,
)
from repro.core.experiments import experiment
from repro.core.report import ExperimentResult
from repro.stats.distributions import fraction_at_least


@experiment("fig2a", "WT-CoV at multiple time scales (Fig 2a)")
def fig2a_wt_cov(study) -> ExperimentResult:
    rows = []
    for window in study.config.wt_cov_windows:
        window = min(window, study.config.duration_seconds)
        for direction in ("read", "write"):
            samples: List[float] = []
            for result in study.results:
                samples.extend(
                    wt_cov_samples(
                        result.metrics.compute,
                        result.fleet,
                        window,
                        direction,
                        sample_fraction=0.5,
                        rng=study.rngs.get(f"fig2a/{window}/{direction}"),
                    )
                )
            if samples:
                rows.append(
                    [
                        f"{window}s",
                        direction,
                        float(np.median(samples)),
                        float(np.percentile(samples, 90)),
                        len(samples),
                    ]
                )
    return ExperimentResult(
        experiment_id="fig2a",
        title="WT-CoV at multiple time scales (Fig 2a)",
        headers=["window", "dir", "median CoV", "p90 CoV", "samples"],
        rows=rows,
        notes="Shape check: read CoV exceeds write CoV at every scale "
        "(paper medians 0.7 vs 0.5 at the 1-minute scale).",
    )


@experiment("fig2b", "VM-VD-QP traffic decomposition (Fig 2b)")
def fig2b_decomposition(study) -> ExperimentResult:
    rows = []
    for direction in ("read", "write"):
        merged = {"vm2qp": [], "vm2vd": [], "vd2qp": []}
        for result in study.results:
            covs = vm_vd_qp_covs(
                result.metrics.compute, result.fleet, direction
            )
            for key, values in covs.items():
                merged[key].extend(values)
        for key in ("vm2qp", "vm2vd", "vd2qp"):
            if merged[key]:
                rows.append(
                    [
                        key,
                        direction,
                        float(np.median(merged[key])),
                        len(merged[key]),
                    ]
                )
    return ExperimentResult(
        experiment_id="fig2b",
        title="VM-VD-QP traffic decomposition (Fig 2b)",
        headers=["level", "dir", "median CoV", "nodes"],
        rows=rows,
        notes="Shape checks: vm2vd is the most extreme split (paper ~0.97); "
        "vd2qp write CoV exceeds read CoV (paper 0.81 vs 0.39).",
    )


@experiment("fig2c", "Hottest QP traffic share per node (Fig 2c)")
def fig2c_hottest_qp(study) -> ExperimentResult:
    rows = []
    for direction in ("read", "write"):
        shares: List[float] = []
        for result in study.results:
            shares.extend(
                hottest_qp_shares(
                    result.metrics.compute, result.fleet, direction
                )
            )
        if shares:
            rows.append(
                [
                    direction,
                    float(np.median(shares)),
                    100.0 * fraction_at_least(shares, 0.8),
                    len(shares),
                ]
            )
    return ExperimentResult(
        experiment_id="fig2c",
        title="Hottest QP traffic share per node (Fig 2c)",
        headers=["dir", "median share", "% nodes > 0.8", "nodes"],
        rows=rows,
        notes="Shape check: the >0.8 fraction is larger for reads "
        "(paper: 42.6% of nodes for reads vs 20.1% for writes).",
    )


@experiment("fig2_types", "Node skewness root causes (Type I/II/III, §4.2)")
def fig2_types(study) -> ExperimentResult:
    rows = []
    merged: dict = {}
    total_nodes = 0
    for result in study.results:
        fractions = classify_nodes(result.metrics.compute, result.fleet)
        nodes = result.fleet.config.num_compute_nodes
        total_nodes += nodes
        for node_type, fraction in fractions.items():
            merged[node_type] = merged.get(node_type, 0.0) + fraction * nodes
    for node_type in sorted(merged, key=lambda t: t.value):
        rows.append(
            [node_type.value, 100.0 * merged[node_type] / total_nodes]
        )
    return ExperimentResult(
        experiment_id="fig2_types",
        title="Node skewness root causes (Type I/II/III, §4.2)",
        headers=["type", "% of nodes"],
        rows=rows,
        notes="Shape check: Type III dominates (paper: 78.9%), then "
        "Type II (18.0%).",
    )


@experiment("fig2d", "QP-to-WT rebinding simulation (Fig 2d)")
def fig2d_rebinding(study) -> ExperimentResult:
    config = RebindingConfig(
        period_seconds=study.config.rebind_period_seconds
    )
    outcomes = []
    for result in study.results:
        for hypervisor in result.hypervisors:
            outcome = simulate_rebinding(result.traces, hypervisor, config)
            if outcome is not None and outcome.cov_before > 0:
                outcomes.append(outcome)
    gains = [o.rebinding_gain for o in outcomes]
    ratios = [o.rebinding_ratio for o in outcomes]
    rows = [
        ["nodes simulated", float(len(outcomes))],
        ["median rebinding ratio", float(np.median(ratios))],
        ["median rebinding gain", float(np.median(gains))],
        ["% nodes improved (gain < 1)",
         100.0 * float(np.mean(np.array(gains) < 1.0))],
        ["% nodes not improved (gain >= 1)",
         100.0 * float(np.mean(np.array(gains) >= 1.0))],
    ]
    return ExperimentResult(
        experiment_id="fig2d",
        title="QP-to-WT rebinding simulation (Fig 2d)",
        headers=["metric", "value"],
        rows=rows,
        notes="Shape check: a sizable minority of nodes sees no benefit "
        "despite frequent rebinding (the paper's blue-circle nodes).",
    )


@experiment("fig2ef", "Hottest-WT burst series (Fig 2e/f)")
def fig2ef_bursts(study) -> ExperimentResult:
    measured = []
    for result in study.results:
        for hypervisor in result.hypervisors:
            series, value = hottest_wt_series(
                result.traces,
                hypervisor,
                period_seconds=study.config.rebind_period_seconds,
            )
            if value > 0:
                measured.append(
                    (value, result.fleet.config.dc_id, hypervisor.node_id)
                )
    measured.sort()
    rows = []
    if measured:
        p2a_low, dc_low, node_low = measured[0]
        p2a_high, dc_high, node_high = measured[-1]
        rows = [
            ["node-r (smoothest)", f"dc{dc_low}/cn{node_low}", p2a_low],
            ["node-b (burstiest)", f"dc{dc_high}/cn{node_high}", p2a_high],
            ["P2A ratio (b / r)", "", p2a_high / max(p2a_low, 1e-9)],
        ]
    return ExperimentResult(
        experiment_id="fig2ef",
        title="Hottest-WT burst series (Fig 2e/f)",
        headers=["node", "where", "P2A @ 10ms"],
        rows=rows,
        notes="Shape check: the burstiest node's P2A is several times the "
        "smoothest node's (paper: 7.7x).",
    )
