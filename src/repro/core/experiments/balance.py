"""Head-to-head: greedy global balancing vs the paper's fixed triggers.

ROADMAP item 2: take one :class:`ClusterState` snapshot per DC from the
simulated metric dataset, plan with both the hbal-style greedy descent
(:func:`repro.balance.plan_moves`) and the paper's fixed-trigger
mechanisms (:func:`repro.balance.fixed_trigger_plan`), apply each plan,
and compare the resulting badness and per-dimension load CoVs.  Run it
across fleet scales with the sweep driver, e.g.::

    ebs-repro sweep balance_h2h --axis "num_vms=40,80,160"

The expected shape — and the acceptance bar — is that the greedy plan's
final score and BS-load CoV are never worse than the fixed trigger's at
any scale: a one-shot trigger round stops at its threshold, while the
descent continues to the min-gain floor.
"""

from __future__ import annotations

from repro.balance import (
    BalanceConfig,
    ClusterState,
    TriggerConfig,
    dimension_covs,
    fixed_trigger_plan,
    plan_moves,
)
from repro.core.experiments import experiment
from repro.core.report import ExperimentResult


def _planners(study):
    trigger_ratio = 1.2
    return (
        ("greedy", lambda state: plan_moves(state, BalanceConfig())),
        (
            "fixed_trigger",
            lambda state: fixed_trigger_plan(
                state, TriggerConfig(trigger_ratio=trigger_ratio)
            ),
        ),
    )


@experiment("balance_h2h", "Global move plan vs fixed triggers (ROADMAP 2)")
def balance_h2h(study) -> ExperimentResult:
    rows = []
    greedy_never_worse = True
    for result in study.results:
        state = ClusterState.from_simulation(result, direction="total")
        finals = {}
        for name, planner in _planners(study):
            plan = planner(state)
            applied = plan.apply_to(state.copy())
            covs = dimension_covs(applied)
            finals[name] = plan.final_score
            rows.append(
                [
                    f"DC-{result.fleet.config.dc_id + 1}",
                    name,
                    plan.num_moves,
                    plan.initial_score,
                    plan.final_score,
                    covs["bs"],
                    covs["wt"],
                    covs["node"],
                ]
            )
        if finals["greedy"] > finals["fixed_trigger"]:
            greedy_never_worse = False
    return ExperimentResult(
        experiment_id="balance_h2h",
        title="Global move plan vs fixed triggers (ROADMAP 2)",
        headers=[
            "cluster",
            "planner",
            "moves",
            "initial badness",
            "final badness",
            "BS CoV",
            "WT CoV",
            "node CoV",
        ],
        rows=rows,
        notes=(
            "Shape check: the greedy plan's final badness is <= the "
            "fixed trigger's in every DC "
            f"({'holds' if greedy_never_worse else 'VIOLATED'} here); "
            "fixed triggers cannot reduce WT CoV on a single snapshot "
            "(swaps only permute loads), which is the paper's §4.3 point."
        ),
    )
