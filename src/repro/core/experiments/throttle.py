"""Traffic-throttle experiments: Figure 3 (§5)."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.experiments import experiment
from repro.core.report import ExperimentResult
from repro.stats.ratios import DOMINANCE_THRESHOLD
from repro.throttle.caps import calibrated_caps
from repro.throttle.lending import LendingConfig, simulate_lending
from repro.throttle.metrics import (
    ThrottleGroup,
    build_node_groups,
    build_vm_groups,
    rar_during_throttle,
    reduction_rates,
    throttle_seconds,
    wr_ratio_under_throttle,
)


def _groups(study) -> "tuple[List[ThrottleGroup], List[ThrottleGroup]]":
    """(multi-VD-VM groups, multi-VM-node groups) over all DCs."""
    vm_groups: List[ThrottleGroup] = []
    node_groups: List[ThrottleGroup] = []
    for result in study.results:
        caps = calibrated_caps(
            result.traffic,
            study.rngs.child(f"caps/dc{result.fleet.config.dc_id}"),
            headroom_median=study.config.cap_headroom_median,
        )
        vm_groups.extend(build_vm_groups(result.fleet, result.traffic, caps))
        node_groups.extend(
            build_node_groups(result.fleet, result.traffic, caps)
        )
    return vm_groups, node_groups


@experiment("fig3a", "Single-VD throttle case (Fig 3a)")
def fig3a_case(study) -> ExperimentResult:
    """Find the strongest real case: a VD throttles while the VM has room."""
    vm_groups, __ = _groups(study)
    best = None
    for group in vm_groups:
        throttled = group.throttled("throughput")
        if not throttled.any():
            continue
        usage = group.usage("throughput")
        cap_total = group.caps("throughput").sum()
        any_throttle = throttled.any(axis=0)
        vm_util = usage.sum(axis=0)[any_throttle] / cap_total
        headroom = 1.0 - float(vm_util.min())
        seconds = int(any_throttle.sum())
        if best is None or headroom > best[0]:
            best = (headroom, group.label, seconds, float(vm_util.min()))
    rows = []
    if best is not None:
        headroom, label, seconds, vm_util = best
        rows = [
            ["group", label],
            ["seconds with a throttled VD", seconds],
            ["VM utilization at throttle (min)", f"{100 * vm_util:.1f}%"],
            ["VM-level headroom while throttled", f"{100 * headroom:.1f}%"],
        ]
    return ExperimentResult(
        experiment_id="fig3a",
        title="Single-VD throttle case (Fig 3a)",
        headers=["metric", "value"],
        rows=rows,
        notes="Shape check: a VD hits its cap while the VM's total stays "
        "far below the summed cap (the paper's 32-VD VM case).",
    )


@experiment("fig3b", "Resource Available Rate during throttle (Fig 3b)")
def fig3b_rar(study) -> ExperimentResult:
    vm_groups, node_groups = _groups(study)
    rows = []
    for label, groups in (("multi-VD VM", vm_groups), ("multi-VM node", node_groups)):
        for resource in ("throughput", "iops"):
            samples: List[float] = []
            for group in groups:
                samples.extend(rar_during_throttle(group, resource))
            if samples:
                rows.append(
                    [
                        label,
                        resource,
                        100.0 * float(np.median(samples)),
                        100.0 * float(np.percentile(samples, 10)),
                        len(samples),
                    ]
                )
    return ExperimentResult(
        experiment_id="fig3b",
        title="Resource Available Rate during throttle (Fig 3b)",
        headers=["group", "resource", "median RAR %", "p10 RAR %", "samples"],
        rows=rows,
        notes="Shape check: RAR is high during throttle (paper medians "
        "61.6% throughput / 74.7% IOPS for multi-VD VMs).",
    )


@experiment("fig3c", "Write-to-read ratio under throttle (Fig 3c)")
def fig3c_wr_ratio(study) -> ExperimentResult:
    vm_groups, __ = _groups(study)
    rows = []
    throttle_counts = {}
    for resource in ("throughput", "iops"):
        ratios: List[float] = []
        count = 0
        for group in vm_groups:
            ratios.extend(wr_ratio_under_throttle(group, resource))
            count += throttle_seconds(group, resource)
        throttle_counts[resource] = count
        if ratios:
            arr = np.asarray(ratios)
            rows.append(
                [
                    resource,
                    100.0 * float(np.mean(arr > DOMINANCE_THRESHOLD)),
                    100.0 * float(np.mean(np.abs(arr) <= DOMINANCE_THRESHOLD)),
                    100.0 * float(np.mean(arr < -DOMINANCE_THRESHOLD)),
                    len(ratios),
                ]
            )
    ratio = (
        throttle_counts.get("throughput", 0)
        / max(1, throttle_counts.get("iops", 0))
    )
    return ExperimentResult(
        experiment_id="fig3c",
        title="Write-to-read ratio under throttle (Fig 3c)",
        headers=[
            "resource",
            "% write-dominant",
            "% mixed",
            "% read-dominant",
            "samples",
        ],
        rows=rows,
        notes=(
            "Shape checks: write-dominant throttling prevails and mixed "
            "traffic is rare (paper: 11.7% / 6.9%). Throughput-vs-IOPS "
            f"throttle event ratio here: {ratio:.1f}x (paper: 14.3x)."
        ),
    )


@experiment("fig3de", "Theoretical reduction rate of throttle time (Fig 3d/e)")
def fig3de_reduction(study) -> ExperimentResult:
    vm_groups, node_groups = _groups(study)
    rows = []
    for label, groups in (("multi-VD VM", vm_groups), ("multi-VM node", node_groups)):
        for resource in ("throughput", "iops"):
            for p in study.config.lending_rates:
                rates: List[float] = []
                for group in groups:
                    rates.extend(reduction_rates(group, resource, p))
                if rates:
                    rows.append(
                        [
                            label,
                            resource,
                            p,
                            100.0 * float(np.median(rates)),
                        ]
                    )
    return ExperimentResult(
        experiment_id="fig3de",
        title="Theoretical reduction rate of throttle time (Fig 3d/e)",
        headers=["group", "resource", "p", "median RR %"],
        rows=rows,
        notes="Shape checks: RR falls as p rises; IOPS throttling is "
        "nearly eliminated at p=0.8 (paper: 3.9% vs 43.7% for throughput).",
    )


@experiment("fig3fg", "Limited lending gain (Fig 3f/g)")
def fig3fg_lending(study) -> ExperimentResult:
    vm_groups, node_groups = _groups(study)
    rows = []
    for label, groups in (("multi-VD VM", vm_groups), ("multi-VM node", node_groups)):
        for p in study.config.lending_rates:
            config = LendingConfig(
                lending_rate=p,
                period_seconds=study.config.lending_period_seconds,
            )
            gains: List[float] = []
            for group in groups:
                outcome = simulate_lending(group, "throughput", config)
                if outcome.throttled_seconds_without > 0:
                    gains.append(outcome.gain)
            if gains:
                arr = np.asarray(gains)
                rows.append(
                    [
                        label,
                        p,
                        float(np.median(arr)),
                        100.0 * float(np.mean(arr > 0)),
                        100.0 * float(np.mean(arr < 0)),
                        len(gains),
                    ]
                )
    return ExperimentResult(
        experiment_id="fig3fg",
        title="Limited lending gain (Fig 3f/g)",
        headers=[
            "group",
            "p",
            "median gain",
            "% positive",
            "% negative",
            "groups",
        ],
        rows=rows,
        notes="Shape checks: most groups gain (paper: 85.9% at p=0.8) but "
        "negative gains persist even at conservative p (paper: 5.2% at "
        "p=0.4) because lenders burst into their reduced caps.",
    )
