"""Storage-cluster balancing experiments: Figures 4 and 5 (§6)."""

from __future__ import annotations

import numpy as np

from repro.balancer.importer import IMPORTER_STRATEGIES, make_importer
from repro.balancer.interbs import (
    BalancerConfig,
    InterBsBalancer,
    frequent_migration_proportion,
    normalized_migration_intervals,
    per_bs_cov,
    segment_period_matrix,
)
from repro.cluster.storage import StorageCluster
from repro.core.experiments import experiment
from repro.core.report import ExperimentResult
from repro.prediction.evaluate import (
    EvaluationConfig,
    evaluate_predictor,
    paper_prediction_suite,
)
from repro.stats.ratios import wr_ratio_arrays


def _matrices(study, result, direction: str) -> np.ndarray:
    return segment_period_matrix(
        result.metrics.storage,
        len(result.fleet.segments),
        study.config.duration_seconds,
        study.config.balancer_period_seconds,
        direction,
    )


def _balancer_config(study) -> BalancerConfig:
    return BalancerConfig(
        period_seconds=study.config.balancer_period_seconds
    )


def _run_balancer(study, result, importer_name: str, with_read: bool = False):
    """Run the balancer on a fresh placement of one DC's segments."""
    storage = StorageCluster(result.fleet)
    balancer = InterBsBalancer(
        storage,
        _balancer_config(study),
        make_importer(importer_name),
        rng=study.rngs.get(
            f"balancer/{importer_name}/dc{result.fleet.config.dc_id}"
        ),
    )
    write = _matrices(study, result, "write")
    read = _matrices(study, result, "read") if with_read else None
    run = balancer.run(write, secondary_traffic=read)
    storage.check_invariants()
    return run


def _busiest_dc(study):
    """The DC whose production balancer migrates the most (the paper picks
    the cluster with the most frequent migrations for its deep dives)."""
    best = None
    for result in study.results:
        run = _run_balancer(study, result, "min_traffic")
        if best is None or run.num_migrations > best[0]:
            best = (run.num_migrations, result)
    return best[1]


@experiment("fig4a", "Frequent-migration proportion (Fig 4a)")
def fig4a_frequent(study) -> ExperimentResult:
    rows = []
    for result in study.results:
        run = _run_balancer(study, result, "min_traffic")
        for window in study.config.migration_window_scales:
            rows.append(
                [
                    f"DC-{result.fleet.config.dc_id + 1}",
                    f"{window}s",
                    run.num_migrations,
                    100.0
                    * frequent_migration_proportion(run.migrations, window),
                ]
            )
    return ExperimentResult(
        experiment_id="fig4a",
        title="Frequent-migration proportion (Fig 4a)",
        headers=["cluster", "window", "migrations", "% frequent"],
        rows=rows,
        notes="Shape check: the proportion grows with the window scale; "
        "some clusters show none, others a large share (paper max 59.2% "
        "at 15s).",
    )


@experiment("fig4b", "Migration interval by importer strategy (Fig 4b)")
def fig4b_importers(study) -> ExperimentResult:
    result = _busiest_dc(study)
    total = study.config.duration_seconds
    rows = []
    for name in IMPORTER_STRATEGIES:
        run = _run_balancer(study, result, name)
        intervals = normalized_migration_intervals(run.migrations, total)
        rows.append(
            [
                name,
                run.num_migrations,
                float(np.median(intervals)) if intervals else float("nan"),
                float(np.mean(intervals)) if intervals else float("nan"),
            ]
        )
    return ExperimentResult(
        experiment_id="fig4b",
        title="Migration interval by importer strategy (Fig 4b)",
        headers=["strategy", "migrations", "median interval", "mean interval"],
        rows=rows,
        notes="Shape checks: ideal (S5) clearly extends the interval over "
        "min_traffic (S2, paper: 2.0x); random (S1) is close to S2; "
        "lunule's linear fit (S4) does not beat S2.",
    )


@experiment("fig4c", "Traffic prediction accuracy (Fig 4c)")
def fig4c_prediction(study) -> ExperimentResult:
    result = _busiest_dc(study)
    storage = StorageCluster(result.fleet)
    write = segment_period_matrix(
        result.metrics.storage,
        len(result.fleet.segments),
        study.config.duration_seconds,
        study.config.prediction_period_seconds,
        "write",
    )
    num_bs = storage.num_block_servers
    seg_bs = storage.primary_array()
    matrix = np.zeros((num_bs, write.shape[1]))
    np.add.at(matrix, seg_bs, write)

    suite = paper_prediction_suite(
        epoch_periods=study.config.prediction_epoch_periods
    )
    rows = []
    for name, (factory, cadence) in suite.items():
        evaluation = evaluate_predictor(
            factory(),
            matrix,
            EvaluationConfig(
                warmup_periods=study.config.prediction_warmup_periods,
                retrain_every=cadence,
            ),
        )
        rows.append([name, cadence, evaluation.mse, evaluation.num_predictions])
    return ExperimentResult(
        experiment_id="fig4c",
        title="Traffic prediction accuracy (Fig 4c)",
        headers=["predictor", "retrain every", "MSE", "predictions"],
        rows=rows,
        notes="Shape checks: linear fit (P1) is the worst classic method "
        "and ARIMA (P2) the best; per-period retraining (P5) beats the "
        "same model per-epoch (P4).",
    )


@experiment("fig5a", "Read vs write inter-BS CoV per cluster (Fig 5a)")
def fig5a_read_write_cov(study) -> ExperimentResult:
    rows = []
    above = 0
    for result in study.results:
        storage = StorageCluster(result.fleet)
        seg_bs = storage.primary_array()
        num_bs = storage.num_block_servers
        covs = {}
        for direction in ("read", "write"):
            matrix = _matrices(study, result, direction)
            loads = np.zeros((num_bs, matrix.shape[1]))
            np.add.at(loads, seg_bs, matrix)
            covs[direction] = per_bs_cov(loads)
        if covs["read"] >= covs["write"]:
            above += 1
        rows.append(
            [
                f"DC-{result.fleet.config.dc_id + 1}",
                covs["read"],
                covs["write"],
                "yes" if covs["read"] >= covs["write"] else "no",
            ]
        )
    return ExperimentResult(
        experiment_id="fig5a",
        title="Read vs write inter-BS CoV per cluster (Fig 5a)",
        headers=["cluster", "read CoV", "write CoV", "read >= write"],
        rows=rows,
        notes=(
            f"{above}/{len(rows)} clusters above the y=x line "
            "(paper: 96.8% of clusters)."
        ),
    )


@experiment("fig5b", "Segment |wr_ratio| per cluster (Fig 5b)")
def fig5b_wr_ratio(study) -> ExperimentResult:
    rows = []
    for result in study.results:
        table = result.metrics.storage
        reads = table.sum_by("segment_id", "read_bytes")
        writes = table.sum_by("segment_id", "write_bytes")
        seg_ids = sorted(set(reads) | set(writes))
        read_arr = np.array([reads.get(s, 0.0) for s in seg_ids])
        write_arr = np.array([writes.get(s, 0.0) for s in seg_ids])
        totals = read_arr + write_arr
        # Only segments contributing the top 80% of traffic, as the paper.
        order = np.argsort(totals)[::-1]
        cum = np.cumsum(totals[order])
        keep = order[: int(np.searchsorted(cum, 0.8 * totals.sum())) + 1]
        ratios = np.abs(wr_ratio_arrays(write_arr[keep], read_arr[keep]))
        rows.append(
            [
                f"DC-{result.fleet.config.dc_id + 1}",
                float(np.median(ratios)),
                100.0 * float(np.mean(ratios > 0.9)),
                len(keep),
            ]
        )
    return ExperimentResult(
        experiment_id="fig5b",
        title="Segment |wr_ratio| per cluster (Fig 5b)",
        headers=["cluster", "median |wr_ratio|", "% segs > 0.9", "segments"],
        rows=rows,
        notes="Shape check: hot segments are read- or write-dominant "
        "(paper: 85.2% of clusters have a median above 0.9).",
    )


@experiment("fig5c", "Write-Only vs Write-then-Read migration (Fig 5c)")
def fig5c_write_then_read(study) -> ExperimentResult:
    result = _busiest_dc(study)
    rows = []
    for mode, with_read in (("write_only", False), ("write_then_read", True)):
        storage = StorageCluster(result.fleet)
        balancer = InterBsBalancer(
            storage,
            _balancer_config(study),
            make_importer("ideal"),
            rng=study.rngs.get(f"fig5c/{mode}"),
        )
        write = _matrices(study, result, "write")
        read = _matrices(study, result, "read")
        run = balancer.run(write, secondary_traffic=read if with_read else None)
        storage.check_invariants()
        # Recompute read/write CoV per period under the evolving placement.
        placements = run.placement_history
        read_covs, write_covs = [], []
        num_bs = storage.num_block_servers
        for period, placement in enumerate(placements):
            seg_ids = np.fromiter(placement.keys(), dtype=np.int64)
            seg_bs = np.fromiter(placement.values(), dtype=np.int64)
            for matrix, out in ((read, read_covs), (write, write_covs)):
                loads = np.zeros(num_bs)
                np.add.at(loads, seg_bs, matrix[seg_ids, period])
                if loads.sum() > 0:
                    from repro.stats.skewness import normalized_cov

                    out.append(normalized_cov(loads))
        rows.append(
            [
                mode,
                float(np.median(read_covs)) if read_covs else float("nan"),
                float(np.median(write_covs)) if write_covs else float("nan"),
                run.num_migrations,
            ]
        )
    return ExperimentResult(
        experiment_id="fig5c",
        title="Write-Only vs Write-then-Read migration (Fig 5c)",
        headers=["mode", "median read CoV", "median write CoV", "migrations"],
        rows=rows,
        notes="Shape checks: the read pass clearly reduces read CoV and "
        "does not worsen (often improves) write CoV.",
    )
