"""Supplementary experiments beyond the paper's figures.

These use the same datasets to answer the natural follow-up questions the
paper's infrastructure sections raise: where the latency goes
(`extra_latency`), what the IO mix looks like (`extra_iostats`), how much
write amplification the append-only segments' GC generates under the
skewed rewrite traffic (`extra_gc`), and how the §4.4/§6.1.3 proposals
perform end-to-end (`extra_dispatch`).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.balancer.dispatch import DispatchPolicy, compare_policies
from repro.cluster.gc import simulate_gc
from repro.core.experiments import experiment
from repro.core.report import ExperimentResult
from repro.stats.iostats import (
    inter_arrival_cvs,
    io_size_summary,
    latency_breakdown,
)
from repro.util.units import KiB


@experiment("extra_latency", "Per-component latency breakdown (DiTing, §2.3)")
def extra_latency(study) -> ExperimentResult:
    traces = study.results[0].traces
    for result in study.results[1:]:
        traces = traces.concat(result.traces)
    rows: List[list] = []
    for direction in ("read", "write"):
        breakdown = latency_breakdown(traces, direction)
        for component in (
            "compute",
            "frontend",
            "block_server",
            "backend",
            "chunk_server",
            "total",
        ):
            stats = breakdown[component]
            rows.append(
                [
                    direction,
                    component,
                    stats["mean_us"],
                    stats["p50_us"],
                    stats["p99_us"],
                    100.0 * stats["share"],
                ]
            )
    return ExperimentResult(
        experiment_id="extra_latency",
        title="Per-component latency breakdown (DiTing, §2.3)",
        headers=["dir", "component", "mean us", "p50 us", "p99 us", "share %"],
        rows=rows,
        notes="Reads pay the ChunkServer media read; writes pay the "
        "replicated backend round (§2.1's append-only persistence).",
    )


@experiment("extra_iostats", "IO mix and burstiness characterization")
def extra_iostats(study) -> ExperimentResult:
    rows: List[list] = []
    for result in study.results:
        dc = f"DC-{result.fleet.config.dc_id + 1}"
        sizes = io_size_summary(result.traces)
        for direction, stats in sorted(sizes.items()):
            rows.append(
                [
                    dc,
                    f"{direction} size",
                    stats["median_bytes"] / KiB,
                    stats["p99_bytes"] / KiB,
                    int(stats["count"]),
                ]
            )
        cvs = inter_arrival_cvs(result.traces)
        if cvs:
            rows.append(
                [
                    dc,
                    "inter-arrival CV",
                    float(np.median(cvs)),
                    float(np.percentile(cvs, 90)),
                    len(cvs),
                ]
            )
    return ExperimentResult(
        experiment_id="extra_iostats",
        title="IO mix and burstiness characterization",
        headers=["cluster", "metric", "median (KiB / CV)", "p99/p90", "n"],
        rows=rows,
        notes="Inter-arrival CV >> 1 is the burstiness signature the "
        "related characterization work reports; Poisson arrivals give 1.",
    )


@experiment("extra_gc", "GC write amplification of append-only segments")
def extra_gc(study) -> ExperimentResult:
    rows: List[list] = []
    for result in study.results:
        stats = simulate_gc(result.traces)
        rewrites = stats.per_segment_rewrites
        top_share = 0.0
        if rewrites:
            values = np.array(sorted(rewrites.values(), reverse=True), float)
            top_share = float(values[0] / values.sum())
        rows.append(
            [
                f"DC-{result.fleet.config.dc_id + 1}",
                stats.write_amplification,
                stats.compactions,
                len(rewrites),
                100.0 * top_share,
            ]
        )
    return ExperimentResult(
        experiment_id="extra_gc",
        title="GC write amplification of append-only segments",
        headers=[
            "cluster",
            "write amplification",
            "compactions",
            "segments compacted",
            "top segment share %",
        ],
        rows=rows,
        notes="Hot-block rewrites concentrate garbage: a handful of "
        "segments produces most of the GC work, compounding the write "
        "imbalance the inter-BS balancer fights.",
    )


@experiment("extra_dispatch", "Multi-WT dispatch vs single-WT hosting (§4.4)")
def extra_dispatch(study) -> ExperimentResult:
    merged: Dict[DispatchPolicy, List] = {p: [] for p in DispatchPolicy}
    for result in study.results:
        outcomes = compare_policies(result.traces, result.hypervisors)
        for policy, outcome_list in outcomes.items():
            merged[policy].extend(outcome_list)
    rows: List[list] = []
    for policy in (
        DispatchPolicy.HASH_QP,
        DispatchPolicy.ROUND_ROBIN,
        DispatchPolicy.JOIN_SHORTEST_QUEUE,
    ):
        outcomes = merged[policy]
        if not outcomes:
            continue
        rows.append(
            [
                policy.value,
                float(np.mean([o.total_cov for o in outcomes])),
                float(np.mean([o.mean_window_cov for o in outcomes])),
                float(np.mean([o.dispatched_fraction for o in outcomes])),
                float(np.mean([o.added_cost_us_per_io for o in outcomes])),
            ]
        )
    return ExperimentResult(
        experiment_id="extra_dispatch",
        title="Multi-WT dispatch vs single-WT hosting (§4.4)",
        headers=[
            "policy",
            "mean total CoV",
            "mean window CoV",
            "dispatched frac",
            "cost us/IO",
        ],
        rows=rows,
        notes="The paper's takeaway quantified: per-IO dispatch removes "
        "the WT imbalance rebinding cannot, at a per-IO synchronization "
        "cost that motivates a hardware dispatcher.",
    )
