"""LBA hotspot and caching experiments: Figures 6 and 7 (§7)."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.cache.hotspot import hot_rate, hottest_block, hottest_block_wr_ratio
from repro.cache.placement import (
    CachePlacementConfig,
    cacheable_vd_counts,
    latency_gain,
)
from repro.cache.simulate import simulate_vd_caches
from repro.cluster.latency import LatencyModel
from repro.core.experiments import experiment
from repro.core.report import ExperimentResult
from repro.stats.ratios import DOMINANCE_THRESHOLD
from repro.util.units import MiB


def _eligible_vds(study, result) -> List[int]:
    """VDs with enough traced IOs for stable hotspot statistics."""
    ids, counts = np.unique(result.traces.vd_id, return_counts=True)
    return [
        int(vd) for vd, count in zip(ids, counts)
        if count >= study.config.cache_min_traces
    ]


def _blocks(study, block_bytes: int):
    """(result, vd_id, HottestBlock) for every eligible VD in every DC."""
    out = []
    for result in study.results:
        for vd_id in _eligible_vds(study, result):
            block = hottest_block(
                result.traces,
                vd_id,
                block_bytes,
                result.fleet.vds[vd_id].capacity_bytes,
            )
            if block is not None:
                out.append((result, vd_id, block))
    return out


@experiment("fig6a", "Hottest-block access rate by block size (Fig 6a)")
def fig6a_access_rate(study) -> ExperimentResult:
    rows = []
    for block_bytes in study.config.cache_block_bytes:
        rates = [b.access_rate for __, __, b in _blocks(study, block_bytes)]
        if rates:
            rows.append(
                [
                    f"{block_bytes // MiB} MiB",
                    100.0 * float(np.median(rates)),
                    100.0 * float(np.percentile(rates, 90)),
                    len(rates),
                ]
            )
    return ExperimentResult(
        experiment_id="fig6a",
        title="Hottest-block access rate by block size (Fig 6a)",
        headers=["block size", "median rate %", "p90 rate %", "VDs"],
        rows=rows,
        notes="Shape check: a tiny LBA fraction takes a large access "
        "share (paper: 18.2% at 64 MiB) and the rate grows with size.",
    )


@experiment("fig6b", "Hottest-block LBA share (Fig 6b)")
def fig6b_lba_share(study) -> ExperimentResult:
    rows = []
    for block_bytes in study.config.cache_block_bytes:
        shares = [b.lba_share for __, __, b in _blocks(study, block_bytes)]
        if shares:
            rows.append(
                [
                    f"{block_bytes // MiB} MiB",
                    100.0 * float(np.median(shares)),
                    len(shares),
                ]
            )
    return ExperimentResult(
        experiment_id="fig6b",
        title="Hottest-block LBA share (Fig 6b)",
        headers=["block size", "median share of LBA %", "VDs"],
        rows=rows,
        notes="Shape check: the 64 MiB block is ~3% of the LBA in the "
        "median (paper: 3.0%), far below its access rate in Fig 6a.",
    )


@experiment("fig6c", "Hottest-block write dominance (Fig 6c)")
def fig6c_write_dominance(study) -> ExperimentResult:
    rows = []
    for block_bytes in study.config.cache_block_bytes:
        ratios = [
            hottest_block_wr_ratio(result.traces, block)
            for result, __, block in _blocks(study, block_bytes)
        ]
        if ratios:
            arr = np.asarray(ratios)
            rows.append(
                [
                    f"{block_bytes // MiB} MiB",
                    100.0 * float(np.mean(arr > DOMINANCE_THRESHOLD)),
                    100.0 * float(np.mean(arr < -DOMINANCE_THRESHOLD)),
                    len(ratios),
                ]
            )
    return ExperimentResult(
        experiment_id="fig6c",
        title="Hottest-block write dominance (Fig 6c)",
        headers=[
            "block size",
            "% write-dominant",
            "% read-dominant",
            "VDs",
        ],
        rows=rows,
        notes="Shape check: hottest blocks are overwhelmingly "
        "write-dominant (paper: 93.9% vs 5.5% at 64 MiB).",
    )


@experiment("fig6d", "Hot rate of the hottest block (Fig 6d)")
def fig6d_hot_rate(study) -> ExperimentResult:
    rows = []
    for block_bytes in study.config.cache_block_bytes:
        rates = []
        for result, __, block in _blocks(study, block_bytes):
            value = hot_rate(
                result.traces,
                block,
                window_seconds=study.config.hot_rate_window_seconds,
            )
            if value is not None:
                rates.append(value)
        if rates:
            rows.append(
                [
                    f"{block_bytes // MiB} MiB",
                    100.0 * float(np.mean(rates)),
                    100.0 * float(np.std(rates)),
                    len(rates),
                ]
            )
    return ExperimentResult(
        experiment_id="fig6d",
        title="Hot rate of the hottest block (Fig 6d)",
        headers=["block size", "mean hot rate %", "std %", "VDs"],
        rows=rows,
        notes="Shape check: the hot rate distributes around ~50% (the "
        "hottest block stays persistently warm, Gaussian-like).",
    )


@experiment("fig7a", "Cache hit ratio by policy and block size (Fig 7a)")
def fig7a_hit_ratio(study) -> ExperimentResult:
    rows = []
    block_sizes = study.config.cache_block_bytes
    hits_by_block: Dict[int, Dict[str, List[float]]] = {
        block_bytes: {"fifo": [], "lru": [], "frozen": []}
        for block_bytes in block_sizes
    }
    # VDs outer, block sizes inner: one trace slice + page-stream prep per
    # VD is shared by every (block size, policy) replay.
    for result in study.results:
        for vd_id in _eligible_vds(study, result):
            out = simulate_vd_caches(
                result.traces,
                vd_id,
                block_sizes,
                result.fleet.vds[vd_id].capacity_bytes,
            )
            if out is None:
                continue
            for block_bytes, ratios in out.items():
                for policy, value in ratios.items():
                    hits_by_block[block_bytes][policy].append(value)
    for block_bytes in block_sizes:
        hits = hits_by_block[block_bytes]
        for policy in ("fifo", "lru", "frozen"):
            values = hits[policy]
            if values:
                rows.append(
                    [
                        f"{block_bytes // MiB} MiB",
                        policy,
                        float(np.median(values)),
                        float(np.percentile(values, 10)),
                        len(values),
                    ]
                )
    return ExperimentResult(
        experiment_id="fig7a",
        title="Cache hit ratio by policy and block size (Fig 7a)",
        headers=["block size", "policy", "median hit", "p10 hit", "VDs"],
        rows=rows,
        notes="Shape checks: FIFO and LRU are near-identical at every "
        "size; the frozen cache catches up with size and its lower bound "
        "(p10) ends clearly higher.",
    )


@experiment("fig7bc", "CN-cache vs BS-cache latency gain (Fig 7b/c)")
def fig7bc_latency_gain(study) -> ExperimentResult:
    model = LatencyModel()
    config = CachePlacementConfig(
        block_bytes=max(study.config.cache_block_bytes)
    )
    rows = []
    for direction in ("read", "write"):
        for location in ("compute_node", "block_server"):
            gains_all: Dict[float, List[float]] = {0.0: [], 50.0: [], 99.0: []}
            for result in study.results:
                gains = latency_gain(
                    result.traces,
                    result.fleet,
                    location,
                    model,
                    study.rngs.get(f"fig7bc/{location}/{direction}"),
                    config,
                    direction=direction,
                )
                if gains is None:
                    continue
                for percentile, value in gains.items():
                    gains_all[percentile].append(value)
            if gains_all[50.0]:
                rows.append(
                    [
                        direction,
                        location,
                        100.0 * float(np.mean(gains_all[0.0])),
                        100.0 * float(np.mean(gains_all[50.0])),
                        100.0 * float(np.mean(gains_all[99.0])),
                    ]
                )
    return ExperimentResult(
        experiment_id="fig7bc",
        title="CN-cache vs BS-cache latency gain (Fig 7b/c)",
        headers=["dir", "location", "0%ile gain %", "50%ile gain %", "99%ile gain %"],
        rows=rows,
        notes="Shape checks: CN-cache beats BS-cache at the 0/50%ile for "
        "writes; neither improves the 99%ile much (tail IOs miss the hot "
        "block); read gains are weak (hot blocks are write-dominant).",
    )


@experiment("fig7d", "Cache space utilization (Fig 7d)")
def fig7d_space_utilization(study) -> ExperimentResult:
    rows = []
    for block_bytes in study.config.cache_block_bytes:
        config = CachePlacementConfig(block_bytes=block_bytes)
        cn_counts: List[int] = []
        bs_counts: List[int] = []
        for result in study.results:
            placement = result.storage.placement.primary_mapping()
            cn_counts.extend(
                cacheable_vd_counts(
                    result.traces, result.fleet, "compute_node",
                    placement, config,
                )
            )
            bs_counts.extend(
                cacheable_vd_counts(
                    result.traces, result.fleet, "block_server",
                    placement, config,
                )
            )
        if cn_counts and bs_counts:
            cn_std = float(np.std(cn_counts))
            bs_std = float(np.std(bs_counts))
            rows.append(
                [
                    f"{block_bytes // MiB} MiB",
                    cn_std,
                    bs_std,
                    cn_std / bs_std if bs_std > 0 else float("nan"),
                ]
            )
    return ExperimentResult(
        experiment_id="fig7d",
        title="Cache space utilization (Fig 7d)",
        headers=["block size", "CN-cache std", "BS-cache std", "CN/BS ratio"],
        rows=rows,
        notes="Shape check: the CN-cache's cacheable-VD spread is several "
        "times the BS-cache's (paper: 21x at 2048 MiB) — BS caches "
        "over-provision less.",
    )
