"""Redundancy experiments: replication/EC placement under skewed traffic.

Not a paper table — these extend the reproduction with the questions a
redundancy-aware placement raises on the paper's skewed traffic (§6):
how much inter-BS imbalance each redundancy level absorbs per skew
regime (the three DCs differ in skew mix, Table 3), what the write
fan-out costs, and how replicated reads ride through BlockServer
crashes by failing over instead of queueing.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.cluster.redundancy import RedundancyConfig
from repro.cluster.simulator import EBSSimulator
from repro.core.experiments import experiment
from repro.core.report import ExperimentResult
from repro.faults.plan import (
    FaultEvent,
    FaultKind,
    FaultPlan,
    RedirectPolicy,
)
from repro.stats.skewness import normalized_cov
from repro.util.rng import RngFactory

#: The redundancy ladder both experiments climb: single-copy baseline,
#: the paper-typical 3-way replication ladder, and a (4, 2) erasure
#: code.  Non-trivial levels steer reads with the least-loaded policy.
_LADDER = (
    ("r=1", "primary"),
    ("r=2", "least_loaded"),
    ("r=3", "least_loaded"),
    ("ec=4+2", "least_loaded"),
)


def _fits(spec: str, num_block_servers: int) -> bool:
    return RedundancyConfig.parse(spec).width <= num_block_servers


def _resimulate(study, fleet, spec, policy, fault_plan=None):
    """One DC re-simulated under a redundancy level (same seed/knobs)."""
    sim_config = replace(
        study.config.simulation_config(),
        redundancy=spec,
        read_policy=policy,
    )
    sim = EBSSimulator(
        fleet,
        sim_config,
        RngFactory(study.config.seed),
        fault_plan=fault_plan,
    )
    return sim.run()


def _p99_latency_us(traces) -> float:
    """P99 of the end-to-end per-IO latency (NaN with no traces)."""
    if len(traces) == 0:
        return float("nan")
    total = (
        traces.lat_compute_us
        + traces.lat_frontend_us
        + traces.lat_block_server_us
        + traces.lat_backend_us
        + traces.lat_chunk_server_us
    )
    return float(np.percentile(total, 99))


@experiment(
    "redundancy_cov", "Inter-BS load CoV and tail latency vs redundancy"
)
def redundancy_cov(study) -> ExperimentResult:
    """Load CoV / P99 latency across the redundancy ladder, per DC.

    Each DC (skew regime) is re-simulated per redundancy level with the
    same seed.  ``r=1`` under the primary policy is the untouched
    single-copy baseline — bit-identical to the pinned golden run.
    Spreading copies (and steering reads) flattens the per-BS load
    distribution, so the inter-BS CoV must drop monotonically along the
    replication ladder; the write fan-out column shows what that costs
    in delivered bytes.
    """
    rows = []
    monotone_dcs = 0
    num_dcs = 0
    for result in study.results:
        fleet = result.fleet
        dc_label = f"DC-{fleet.config.dc_id + 1}"
        num_bs = fleet.config.num_block_servers
        num_dcs += 1
        covs = []
        for spec, policy in _LADDER:
            if not _fits(spec, num_bs):
                rows.append(
                    [dc_label, spec, policy, float("nan"), float("nan"),
                     float("nan"), "skipped: too few BS"]
                )
                continue
            out = _resimulate(study, fleet, spec, policy)
            totals = out.bs_load_bps.sum(axis=1)
            cov = normalized_cov(totals)
            if spec.startswith("r="):
                covs.append(cov)
            baseline_bytes = result.bs_load_bps.sum()
            fanout = (
                float(totals.sum() / baseline_bytes)
                if baseline_bytes > 0
                else float("nan")
            )
            rows.append(
                [
                    dc_label,
                    spec,
                    policy,
                    round(cov, 4),
                    round(_p99_latency_us(out.traces), 1),
                    round(fanout, 3),
                    "",
                ]
            )
        if covs == sorted(covs, reverse=True):
            monotone_dcs += 1
    return ExperimentResult(
        experiment_id="redundancy_cov",
        title="Inter-BS load CoV and tail latency vs redundancy",
        headers=[
            "cluster", "redundancy", "read policy", "load CoV",
            "P99 latency (us)", "byte fan-out", "note",
        ],
        rows=rows,
        notes=(
            f"Shape checks: {monotone_dcs}/{num_dcs} DCs show a "
            "monotone load-CoV reduction along the replication ladder "
            "r=1 -> r=2 -> r=3; the byte fan-out grows with the write "
            "amplification of each scheme (r for replication, (k+m)/k "
            "per written byte for EC)."
        ),
    )


@experiment(
    "redundancy_faults", "Redundancy x fault-plan interaction (failover)"
)
def redundancy_faults(study) -> ExperimentResult:
    """A BlockServer crash replayed across the redundancy ladder.

    The hottest BS of the first DC crashes for the middle third of the
    run under the ``queue`` redirect policy.  Single-copy runs hold the
    affected IOs until recovery (queued mass); redundant runs fail
    reads over to a surviving copy instead (redirected mass) and defer
    the downed copy's writes to re-replication (dropped mass).  The IO
    mass conservation check delivered + dropped == offered holds for
    every level.
    """
    result = study.results[0]
    fleet = result.fleet
    num_bs = fleet.config.num_block_servers
    duration = study.config.duration_seconds
    hot_bs = int(np.argmax(result.bs_load_bps.sum(axis=1)))
    plan = FaultPlan(
        events=(
            FaultEvent(
                kind=FaultKind.BS_CRASH,
                start_s=duration // 3,
                end_s=2 * duration // 3,
                target=hot_bs,
            ),
        ),
        policy=RedirectPolicy.QUEUE,
    )
    rows = []
    for spec, policy in _LADDER:
        if not _fits(spec, num_bs):
            rows.append(
                [spec, policy, float("nan"), float("nan"), float("nan"),
                 float("nan"), "skipped: too few BS"]
            )
            continue
        out = _resimulate(study, fleet, spec, policy, fault_plan=plan)
        acct = out.faults.accounting
        offered = max(acct.offered_storage_ios, 1.0)
        storage_residual, compute_residual = (
            out.faults.conservation_residual()
        )
        assert storage_residual / offered < 1e-6, "IO mass not conserved"
        assert compute_residual / max(
            acct.offered_compute_ios, 1.0
        ) < 1e-6, "compute IO mass not conserved"
        rows.append(
            [
                spec,
                policy,
                round(100.0 * acct.delivered_storage_ios / offered, 3),
                round(acct.redirected_ios, 1),
                round(acct.queued_ios, 1),
                round(acct.dropped_storage_ios, 1),
                f"bs{hot_bs} down "
                f"[{duration // 3}s, {2 * duration // 3}s)",
            ]
        )
    return ExperimentResult(
        experiment_id="redundancy_faults",
        title="Redundancy x fault-plan interaction (failover)",
        headers=[
            "redundancy", "read policy", "% delivered", "failover",
            "queued", "dropped", "note",
        ],
        rows=rows,
        notes=(
            "Shape checks: the single-copy run queues the crashed BS's "
            "IOs until recovery; redundant runs queue nothing — reads "
            "fail over to surviving copies and the downed copy's writes "
            "defer to re-replication; delivered + dropped conserves the "
            "offered IO mass at every level."
        ),
    )
