"""Fault-injection experiments: failure sensitivity under skewed traffic.

Not a paper table — these extend the reproduction with the degraded-mode
questions the paper's production narrative raises (§2.2, §4.3, §6): how
much of the offered load survives component failures under each redirect
policy, and how the inter-BS balancer behaves around control-plane
blackouts and BlockServer crash/recovery cycles.
"""

from __future__ import annotations

import math

import numpy as np

from repro.balancer.importer import make_importer
from repro.balancer.interbs import (
    BalancerConfig,
    InterBsBalancer,
    segment_period_matrix,
)
from repro.cluster.simulator import EBSSimulator
from repro.cluster.storage import StorageCluster
from repro.core.experiments import experiment
from repro.core.report import ExperimentResult
from repro.faults.generate import PlanShape, random_fault_plan
from repro.faults.plan import RedirectPolicy
from repro.util.rng import RngFactory


def _worst_inflation(outcome) -> float:
    """Max in-window P99 inflation across fault windows (NaN if none)."""
    best = float("nan")
    for window in outcome.windows:
        value = window.p99_inflation
        if value == value and (best != best or value > best):
            best = value
    return best


@experiment("extra_faults", "Failure sensitivity by DC and redirect policy")
def extra_faults_sweep(study) -> ExperimentResult:
    """Re-simulate every DC under a seed-stable random fault plan.

    The same event schedule (crashes, stalls, degrade windows) is applied
    once per redirect policy, so the redirect-vs-queue columns are an
    apples-to-apples comparison on identical failure timing.  The DCs
    differ in skew mix (Table 3), which is what makes this a skew x
    failure sensitivity sweep.
    """
    sim_config = study.config.simulation_config()
    rows = []
    for result in study.results:
        fleet = result.fleet
        dc_id = fleet.config.dc_id
        shape = PlanShape.of_fleet(fleet, study.config.duration_seconds)
        for policy in (RedirectPolicy.REDIRECT, RedirectPolicy.QUEUE):
            plan = random_fault_plan(
                study.config.seed + dc_id,
                shape,
                num_events=8,
                policy=policy,
                label=f"extra_faults/dc{dc_id}",
            )
            sim = EBSSimulator(
                fleet,
                sim_config,
                RngFactory(study.config.seed),
                fault_plan=plan,
            )
            outcome = sim.run().faults
            acct = outcome.accounting
            delivered_pct = (
                100.0 * acct.delivered_storage_ios / acct.offered_storage_ios
                if acct.offered_storage_ios > 0
                else 100.0
            )
            storage_residual, compute_residual = (
                outcome.conservation_residual()
            )
            scale = max(acct.offered_storage_ios, 1.0)
            assert storage_residual / scale < 1e-6, "IO mass not conserved"
            assert compute_residual / max(
                acct.offered_compute_ios, 1.0
            ) < 1e-6, "compute IO mass not conserved"
            rows.append(
                [
                    f"DC-{dc_id + 1}",
                    policy.value,
                    len(plan),
                    round(delivered_pct, 3),
                    round(acct.redirected_ios, 1),
                    round(acct.queued_ios, 1),
                    round(
                        100.0 * outcome.dropped_fraction, 3
                    ),
                    round(
                        100.0 * outcome.degraded_latency_fraction, 2
                    ),
                    round(_worst_inflation(outcome), 2)
                    if not math.isnan(_worst_inflation(outcome))
                    else float("nan"),
                ]
            )
    return ExperimentResult(
        experiment_id="extra_faults",
        title="Failure sensitivity by DC and redirect policy",
        headers=[
            "cluster", "policy", "events", "% delivered", "redirected",
            "queued", "% dropped", "% degraded", "max P99 inflation",
        ],
        rows=rows,
        notes="Shape checks: redirect delivers at least as much as queue "
        "(queued mass past the horizon is dropped); delivered + dropped "
        "conserves the offered IO mass; degrade windows inflate the "
        "in-window P99 above the run-wide P99.",
    )


@experiment(
    "extra_faults_lb", "Inter-BS balancing under blackout and BS failure"
)
def extra_faults_balancer(study) -> ExperimentResult:
    """The §6 balancer replayed around control-plane and BS faults.

    Four replays over the same write-traffic matrix of the first DC:
    a fault-free baseline; a migration blackout over the middle third of
    periods; a run with the hottest BS failed throughout (the importer
    fallback must route around it); and a crash/recovery cycle where the
    BS fails for the first half and recovers for the second — migrations
    resume post-recovery, which is the "recovery triggers re-balancing"
    wiring.
    """
    result = study.results[0]
    write = segment_period_matrix(
        result.metrics.storage,
        len(result.fleet.segments),
        study.config.duration_seconds,
        study.config.balancer_period_seconds,
        "write",
    )
    num_periods = write.shape[1]
    config = BalancerConfig(
        period_seconds=study.config.balancer_period_seconds
    )

    def _balancer(storage, mode):
        return InterBsBalancer(
            storage,
            config,
            make_importer("min_traffic"),
            rng=study.rngs.get(f"extra_faults_lb/{mode}"),
        )

    rows = []

    # Baseline, and identify the hottest BS under the initial placement.
    storage = StorageCluster(result.fleet)
    seg_bs = storage.primary_array()
    totals = np.zeros(storage.num_block_servers)
    np.add.at(totals, seg_bs, write.sum(axis=1))
    hot_bs = int(np.argmax(totals))
    run = _balancer(storage, "baseline").run(write)
    storage.check_invariants()
    rows.append(["baseline", run.num_migrations, 0, "-"])

    # Control-plane blackout over the middle third of the periods.
    lo, hi = num_periods // 3, 2 * num_periods // 3
    blackout = range(lo, hi)
    storage = StorageCluster(result.fleet)
    run = _balancer(storage, "blackout").run(
        write, blackout_periods=blackout
    )
    storage.check_invariants()
    frozen = sum(
        1 for m in run.migrations
        if lo <= m.timestamp // config.period_seconds < hi
    )
    rows.append(["blackout_mid_third", run.num_migrations, frozen, "-"])

    # Hottest BS failed for the whole replay: nothing may land on it.
    storage = StorageCluster(result.fleet)
    storage.fail_block_server(hot_bs)
    run = _balancer(storage, "bs_failed").run(write)
    storage.check_invariants()
    onto_failed = sum(1 for m in run.migrations if m.to_bs == hot_bs)
    rows.append(
        [f"bs{hot_bs}_failed", run.num_migrations, onto_failed, "0 required"]
    )

    # Crash for the first half, recover, then balance the second half:
    # the post-recovery phase shows migrations resuming.
    storage = StorageCluster(result.fleet)
    mid = num_periods // 2
    storage.fail_block_server(hot_bs)
    balancer = _balancer(storage, "crash_recover")
    first = balancer.run(write[:, :mid])
    storage.recover_block_server(hot_bs, timestamp=mid * config.period_seconds)
    second = balancer.run(write[:, mid:])
    storage.check_invariants()
    rows.append(
        [
            f"bs{hot_bs}_crash_recover",
            first.num_migrations + second.num_migrations,
            sum(1 for m in first.migrations if m.to_bs == hot_bs),
            f"{second.num_migrations} post-recovery",
        ]
    )

    return ExperimentResult(
        experiment_id="extra_faults_lb",
        title="Inter-BS balancing under blackout and BS failure",
        headers=["scenario", "migrations", "constrained", "note"],
        rows=rows,
        notes="Shape checks: zero migrations inside blackout periods; zero "
        "migrations onto a failed BS (importer fallback is serving-aware); "
        "migrations resume after the crash/recovery cycle.",
    )
