"""Baseline dataset statistics: Tables 2, 3 and 4."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.experiments import experiment
from repro.core.report import ExperimentResult
from repro.stats.skewness import ccr, p2a
from repro.trace.dataset import _ColumnarTable
from repro.trace.records import OpKind
from repro.util.units import GiB


def _per_entity_totals(
    table: _ColumnarTable, key_field: str, direction: str
) -> "Dict[int, float]":
    value_field = "read_bytes" if direction == "read" else "write_bytes"
    return table.sum_by(key_field, value_field)


def _median_p2a(
    table: _ColumnarTable, key_field: str, direction: str, duration: int
) -> float:
    value_field = "read_bytes" if direction == "read" else "write_bytes"
    series = table.timeseries_by(key_field, value_field, duration)
    values = [p2a(s) for s in series.values() if s.sum() > 0]
    return float(np.median(values)) if values else 0.0


@experiment("table2", "Dataset summary (Table 2)")
def table2_summary(study) -> ExperimentResult:
    """Counts and totals over all DCs, plus per-user medians/maxima."""
    users = set()
    num_vms = 0
    num_vds = 0
    vms_per_user: Dict[str, int] = {}
    vds_per_user: Dict[str, int] = {}
    read_bytes = write_bytes = 0.0
    read_traces = write_traces = 0
    for result in study.results:
        dc = result.fleet.config.dc_id
        for vm in result.fleet.vms:
            key = f"{dc}/{vm.user_id}"
            users.add(key)
            vms_per_user[key] = vms_per_user.get(key, 0) + 1
        for vd in result.fleet.vds:
            key = f"{dc}/{vd.user_id}"
            vds_per_user[key] = vds_per_user.get(key, 0) + 1
        num_vms += len(result.fleet.vms)
        num_vds += len(result.fleet.vds)
        read_bytes += result.metrics.total_read_bytes()
        write_bytes += result.metrics.total_write_bytes()
        read_traces += int((result.traces.op == int(OpKind.READ)).sum())
        write_traces += int((result.traces.op == int(OpKind.WRITE)).sum())

    rows = [
        ["Total number of user / VM / VD",
         f"{len(users)} / {num_vms} / {num_vds}"],
        ["Median / Max number of VM per user",
         f"{int(np.median(list(vms_per_user.values())))} / "
         f"{max(vms_per_user.values())}"],
        ["Median / Max number of VD per user",
         f"{int(np.median(list(vds_per_user.values())))} / "
         f"{max(vds_per_user.values())}"],
        ["Total write / read traffic (GiB)",
         f"{write_bytes / GiB:.1f} / {read_bytes / GiB:.1f}"],
        ["Total write / read traces",
         f"{write_traces} / {read_traces}"],
    ]
    return ExperimentResult(
        experiment_id="table2",
        title="Dataset summary (Table 2)",
        headers=["Statistic", "Value"],
        rows=rows,
        notes="Shape check: total write traffic exceeds read (paper: 21.7 "
        "vs 6.5 PiB) while read *traces* are the minority.",
    )


@experiment("table3", "Baseline CCR and P2A by aggregation level (Table 3)")
def table3_baseline(study) -> ExperimentResult:
    """1%/20%-CCR and median P2A at CN/VM/SN/Seg level for each DC."""
    rows: List[list] = []
    duration = study.config.duration_seconds
    levels = [
        ("CN", "compute", "compute_node_id"),
        ("VM", "compute", "vm_id"),
        ("SN", "storage", "storage_node_id"),
        ("Seg", "storage", "segment_id"),
    ]
    for result in study.results:
        dc = result.fleet.config.dc_id
        for level, domain, key_field in levels:
            table = getattr(result.metrics, domain)
            for direction in ("read", "write"):
                totals = list(
                    _per_entity_totals(table, key_field, direction).values()
                )
                if not totals:
                    continue
                rows.append(
                    [
                        f"DC-{dc + 1}",
                        level,
                        direction,
                        100.0 * ccr(totals, 0.01),
                        100.0 * ccr(totals, 0.20),
                        _median_p2a(table, key_field, direction, duration),
                    ]
                )
    return ExperimentResult(
        experiment_id="table3",
        title="Baseline CCR and P2A by aggregation level (Table 3)",
        headers=["DC", "level", "dir", "1%-CCR", "20%-CCR", "50%ile P2A"],
        rows=rows,
        notes="Shape checks: read CCR/P2A exceed write at the VM level; "
        "SN level is far flatter than VM/Seg (the storage stripe works).",
    )


@experiment("table4", "Skewness by application type (Table 4)")
def table4_applications(study) -> ExperimentResult:
    """Per-application VM-level CCR and traffic share."""
    by_app: Dict[str, Dict[str, Dict[int, float]]] = {}
    total = {"read": 0.0, "write": 0.0}
    for result in study.results:
        dc = result.fleet.config.dc_id
        table = result.metrics.compute
        for direction in ("read", "write"):
            per_vm = _per_entity_totals(table, "vm_id", direction)
            for vm_id, value in per_vm.items():
                app = result.fleet.vms[vm_id].application
                bucket = by_app.setdefault(app, {"read": {}, "write": {}})
                bucket[direction][(dc, vm_id)] = value
                total[direction] += value

    rows = []
    for app in sorted(by_app):
        row = [app]
        for direction in ("read", "write"):
            values = list(by_app[app][direction].values())
            row.append(100.0 * ccr(values, 0.01) if values else 0.0)
            row.append(100.0 * ccr(values, 0.20) if values else 0.0)
        for direction in ("read", "write"):
            share = sum(by_app[app][direction].values())
            row.append(
                100.0 * share / total[direction] if total[direction] else 0.0
            )
        rows.append(row)
    return ExperimentResult(
        experiment_id="table4",
        title="Skewness by application type (Table 4)",
        headers=[
            "App",
            "1%-CCR R",
            "1%-CCR W",
            "20%-CCR R",
            "20%-CCR W",
            "share R (%)",
            "share W (%)",
        ],
        rows=rows,
        notes="Shape checks: BigData carries the largest share with the "
        "lowest CCR; Docker shows the highest CCR.",
    )
