"""The experiment registry: one entry per paper table/figure.

Experiments are plain functions ``(Study) -> ExperimentResult`` registered
with the :func:`experiment` decorator.  Importing this package pulls in all
experiment modules so the registry is complete.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.report import ExperimentResult
from repro.util.errors import ConfigError

ExperimentFn = Callable[["object"], ExperimentResult]

EXPERIMENTS: Dict[str, ExperimentFn] = {}

#: Paper-order listing used by ``run_all`` and the CLI.
_ORDER: List[str] = []


def experiment(experiment_id: str, title: str) -> Callable[[ExperimentFn], ExperimentFn]:
    """Register an experiment under its table/figure id."""

    def decorator(fn: ExperimentFn) -> ExperimentFn:
        if experiment_id in EXPERIMENTS:
            raise ConfigError(f"duplicate experiment id {experiment_id!r}")

        def wrapped(study) -> ExperimentResult:
            result = fn(study)
            if result.experiment_id != experiment_id:
                raise ConfigError(
                    f"experiment {experiment_id!r} returned result tagged "
                    f"{result.experiment_id!r}"
                )
            return result

        wrapped.__name__ = fn.__name__
        wrapped.__doc__ = fn.__doc__
        wrapped.title = title  # type: ignore[attr-defined]
        EXPERIMENTS[experiment_id] = wrapped
        _ORDER.append(experiment_id)
        return wrapped

    return decorator


def experiment_ids() -> List[str]:
    """All experiment ids in paper order."""
    return list(_ORDER)


# Import for registration side effects (order defines run_all order).
from repro.core.experiments import baseline  # noqa: E402,F401
from repro.core.experiments import hypervisor  # noqa: E402,F401
from repro.core.experiments import throttle  # noqa: E402,F401
from repro.core.experiments import storage  # noqa: E402,F401
from repro.core.experiments import cache  # noqa: E402,F401
from repro.core.experiments import extras  # noqa: E402,F401
from repro.core.experiments import faults  # noqa: E402,F401
from repro.core.experiments import balance  # noqa: E402,F401
from repro.core.experiments import redundancy  # noqa: E402,F401
