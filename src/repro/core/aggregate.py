"""Multi-seed study aggregation.

A single small fleet is one draw from a heavy-tailed distribution — one
monster VM can flip a read-vs-write comparison (see EXPERIMENTS.md).  The
paper's 60k-VM fleet averages such draws out; offline, the equivalent is
running the study across several seeds and aggregating each experiment's
table.  :class:`MultiSeedStudy` does exactly that: numeric cells are
averaged (with a spread column appended), non-numeric key columns must
agree across seeds and act as the row identity.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.config import StudyConfig
from repro.core.report import ExperimentResult
from repro.core.study import Study
from repro.util.errors import ConfigError


def aggregate_results(
    results: Sequence[ExperimentResult],
) -> ExperimentResult:
    """Average numeric columns of per-seed results row by row.

    Rows are matched by their non-numeric cells (the key columns); every
    seed must produce the same key set.  Numeric cells become their mean,
    and one "spread" column (mean over columns of the coefficient of
    variation across seeds) is appended.
    """
    if not results:
        raise ConfigError("need at least one result to aggregate")
    first = results[0]
    for other in results[1:]:
        if other.experiment_id != first.experiment_id:
            raise ConfigError(
                "cannot aggregate different experiments: "
                f"{first.experiment_id} vs {other.experiment_id}"
            )
        if other.headers != first.headers:
            raise ConfigError("header mismatch across seeds")

    def key_of(row: List) -> Tuple:
        return tuple(
            cell for cell in row if not isinstance(cell, (int, float))
        )

    buckets: Dict[Tuple, List[List]] = {}
    order: List[Tuple] = []
    for result in results:
        seen = set()
        for row in result.rows:
            key = key_of(row)
            if key in seen:
                # Duplicate keys within one seed: disambiguate by index.
                key = key + (len([k for k in seen if k[:1] == key[:1]]),)
            seen.add(key)
            if key not in buckets:
                buckets[key] = []
                order.append(key)
            buckets[key].append(row)

    rows: List[List] = []
    for key in order:
        group = buckets[key]
        template = group[0]
        aggregated: List = []
        cvs: List[float] = []
        for col in range(len(template)):
            values = [row[col] for row in group]
            if all(isinstance(v, (int, float)) for v in values):
                arr = np.asarray(values, dtype=float)
                mean = float(arr.mean())
                aggregated.append(mean)
                if abs(mean) > 1e-12 and len(arr) > 1:
                    cvs.append(float(arr.std() / abs(mean)))
            else:
                aggregated.append(template[col])
        aggregated.append(float(np.mean(cvs)) if cvs else 0.0)
        rows.append(aggregated)

    return ExperimentResult(
        experiment_id=first.experiment_id,
        title=f"{first.title} [mean of {len(results)} seeds]",
        headers=[*first.headers, "seed spread"],
        rows=rows,
        notes=first.notes,
    )


class MultiSeedStudy:
    """Runs the same study config under several seeds and aggregates."""

    def __init__(
        self,
        seeds: Sequence[int],
        config_factory: "Callable[[int], StudyConfig] | None" = None,
    ):
        if not seeds:
            raise ConfigError("need at least one seed")
        if len(set(seeds)) != len(seeds):
            raise ConfigError("seeds must be distinct")
        self.seeds = list(seeds)
        self._factory = (
            config_factory
            if config_factory is not None
            else (lambda seed: StudyConfig.scale("small", seed=seed))
        )
        self._studies: "Dict[int, Study]" = {}

    def study(self, seed: int) -> Study:
        if seed not in self._studies:
            self._studies[seed] = Study(self._factory(seed)).build()
        return self._studies[seed]

    def run(self, experiment_id: str) -> ExperimentResult:
        """Run one experiment across all seeds and aggregate the tables."""
        return aggregate_results(
            [self.study(seed).run(experiment_id) for seed in self.seeds]
        )
