"""The study pipeline and the per-table/figure experiment registry.

:class:`Study` owns the full reproduction flow: build one fleet per data
center, simulate each through the EBS stack, and expose the resulting
datasets to the experiments.  Every table and figure of the paper's
evaluation maps to one experiment id (``table2`` .. ``fig7d``) registered in
:mod:`repro.core.experiments`; ``Study.run(experiment_id)`` executes it and
returns a renderable :class:`ExperimentResult`.

    from repro.core import Study, StudyConfig

    study = Study(StudyConfig.scale("small", seed=7))
    study.build()
    print(study.run("table3").render())

Prefer the stable facade in :mod:`repro.api` for scripting; this module
is plumbing and may change between versions.
"""

from repro.core.aggregate import MultiSeedStudy, aggregate_results
from repro.core.config import SCALE_NAMES, StudyConfig
from repro.core.report import ExperimentResult
from repro.core.result_schema import (
    RESULT_SCHEMA_VERSION,
    results_payload,
    validate_result_payload,
)
from repro.core.study import Study
from repro.core.experiments import EXPERIMENTS, experiment_ids

__all__ = [
    "MultiSeedStudy",
    "aggregate_results",
    "SCALE_NAMES",
    "StudyConfig",
    "ExperimentResult",
    "RESULT_SCHEMA_VERSION",
    "results_payload",
    "validate_result_payload",
    "Study",
    "EXPERIMENTS",
    "experiment_ids",
]
