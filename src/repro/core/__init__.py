"""The study pipeline and the per-table/figure experiment registry.

:class:`Study` owns the full reproduction flow: build one fleet per data
center, simulate each through the EBS stack, and expose the resulting
datasets to the experiments.  Every table and figure of the paper's
evaluation maps to one experiment id (``table2`` .. ``fig7d``) registered in
:mod:`repro.core.experiments`; ``Study.run(experiment_id)`` executes it and
returns a renderable :class:`ExperimentResult`.

    from repro.core import Study, StudyConfig

    study = Study(StudyConfig.small(seed=7))
    study.build()
    print(study.run("table3").render())
"""

from repro.core.aggregate import MultiSeedStudy, aggregate_results
from repro.core.config import StudyConfig
from repro.core.report import ExperimentResult
from repro.core.study import Study
from repro.core.experiments import EXPERIMENTS, experiment_ids

__all__ = [
    "MultiSeedStudy",
    "aggregate_results",
    "StudyConfig",
    "ExperimentResult",
    "Study",
    "EXPERIMENTS",
    "experiment_ids",
]
