"""Reproduction of "Hey Hey, My My, Skewness Is Here to Stay" (EuroSys '25).

This package reproduces the measurement study and mitigation simulations of
the EuroSys '25 paper on traffic skewness in Alibaba Cloud's Elastic Block
Storage (EBS).  Because the production traces are not available offline, the
package also ships the full substrate needed to regenerate them:

- :mod:`repro.workload` — a hierarchical synthetic fleet and traffic
  generator with per-application skew profiles.
- :mod:`repro.cluster` — a discrete-time EBS stack simulator (compute nodes,
  hypervisor worker threads, virtual disks and queue pairs, BlockServers,
  ChunkServers, segments, and a per-component latency model).
- :mod:`repro.trace` — the DiTing-style dual dataset model: sampled per-IO
  traces plus full-volume second-granularity metrics.
- :mod:`repro.stats` — the statistics toolkit used throughout the paper
  (CCR, P2A, normalized CoV, write-to-read ratio, CDFs).
- :mod:`repro.balancer` — the hypervisor worker-thread analyses (§4) and the
  inter-BlockServer segment balancer with importer-selection strategies (§6).
- :mod:`repro.throttle` — throughput/IOPS caps and the limited-lending
  mechanism (§5, Algorithm 2).
- :mod:`repro.prediction` — from-scratch traffic predictors (linear fit,
  ARIMA, gradient-boosted trees, attention forecaster; Appendix C).
- :mod:`repro.cache` — FIFO/LRU/Frozen caches and the CN-cache vs BS-cache
  placement study (§7).
- :mod:`repro.core` — the end-to-end study pipeline and the experiment
  registry keyed by the paper's table/figure ids.

Quickstart (the blessed surface lives in :mod:`repro.api` and is
re-exported here)::

    from repro.api import run_experiment, sweep

    print(run_experiment("table3", seed=7).render())
    outcome = sweep(
        {"cache_min_traces": [300, 500]},
        experiments=["fig7a"],
        store_dir="out/sweep-cache",
    )
    for grid in outcome.tables():
        print(grid.render())

Anything not exported by :mod:`repro.api` — the :class:`Study` plumbing
in :mod:`repro.core.study`, the streaming executor in
:mod:`repro.engine.executor`, the sweep orchestrator internals — is a
private implementation detail.
"""

from repro._version import __version__

#: Names re-exported lazily from :mod:`repro.api` (PEP 562), so that
#: ``import repro`` stays import-cheap for tooling that only wants
#: ``__version__``.
_API_EXPORTS = (
    "ExperimentResult",
    "StudyConfig",
    "load_result",
    "plan_balance",
    "run_experiment",
    "run_study",
    "save_results",
    "sweep",
)

__all__ = ["__version__", "api", *_API_EXPORTS]


def __getattr__(name):
    if name in _API_EXPORTS or name == "api":
        # `from repro import api` would recurse: the import system probes
        # the parent package with hasattr(), which lands right back here
        # before the submodule import ever starts.
        import importlib

        api = importlib.import_module("repro.api")
        return api if name == "api" else getattr(api, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(__all__))
