"""Reproduction of "Hey Hey, My My, Skewness Is Here to Stay" (EuroSys '25).

This package reproduces the measurement study and mitigation simulations of
the EuroSys '25 paper on traffic skewness in Alibaba Cloud's Elastic Block
Storage (EBS).  Because the production traces are not available offline, the
package also ships the full substrate needed to regenerate them:

- :mod:`repro.workload` — a hierarchical synthetic fleet and traffic
  generator with per-application skew profiles.
- :mod:`repro.cluster` — a discrete-time EBS stack simulator (compute nodes,
  hypervisor worker threads, virtual disks and queue pairs, BlockServers,
  ChunkServers, segments, and a per-component latency model).
- :mod:`repro.trace` — the DiTing-style dual dataset model: sampled per-IO
  traces plus full-volume second-granularity metrics.
- :mod:`repro.stats` — the statistics toolkit used throughout the paper
  (CCR, P2A, normalized CoV, write-to-read ratio, CDFs).
- :mod:`repro.balancer` — the hypervisor worker-thread analyses (§4) and the
  inter-BlockServer segment balancer with importer-selection strategies (§6).
- :mod:`repro.throttle` — throughput/IOPS caps and the limited-lending
  mechanism (§5, Algorithm 2).
- :mod:`repro.prediction` — from-scratch traffic predictors (linear fit,
  ARIMA, gradient-boosted trees, attention forecaster; Appendix C).
- :mod:`repro.cache` — FIFO/LRU/Frozen caches and the CN-cache vs BS-cache
  placement study (§7).
- :mod:`repro.core` — the end-to-end study pipeline and the experiment
  registry keyed by the paper's table/figure ids.

Quickstart::

    from repro.core import Study, StudyConfig

    study = Study(StudyConfig.small(seed=7))
    study.build()
    result = study.run("table3")
    print(result.render())
"""

from repro._version import __version__

__all__ = ["__version__"]
