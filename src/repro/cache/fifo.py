"""First-In-First-Out page cache."""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.base import Cache


class FifoCache(Cache):
    """Evicts the page that was *admitted* earliest; hits do not promote."""

    def __init__(self, capacity_pages: int):
        super().__init__(capacity_pages)
        self._pages: "OrderedDict[int, None]" = OrderedDict()

    def _lookup_and_admit(self, page: int) -> bool:
        if page in self._pages:
            return True
        if len(self._pages) >= self.capacity_pages:
            self._pages.popitem(last=False)
        self._pages[page] = None
        return False

    def __contains__(self, page: int) -> bool:
        return page in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    def _page_state(self) -> "list[int]":
        """Resident pages in admission order (eviction queue order)."""
        return list(self._pages.keys())

    def _load_page_state(self, state: "list[int]") -> None:
        self._pages = OrderedDict((int(page), None) for page in state)
