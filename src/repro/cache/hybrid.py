"""Hybrid CN+BS cache deployment (§7.3.3's cost-benefit proposal).

The paper suggests deploying the compute-node cache for latency and the
BlockServer cache as its backup for capacity: a CN-cache hit never leaves
the node; on a CN miss, the BS-cache can still absorb the IO before it
reaches the ChunkServer.  This module evaluates that two-level frozen
deployment: the CN tier pins the hottest fraction of each cacheable VD's
hot block, the BS tier pins the remainder.

``latency_gain_hybrid`` mirrors :func:`repro.cache.placement.latency_gain`
but routes each IO to the first tier that covers its offset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.cache.hotspot import HottestBlock
from repro.cache.placement import CachePlacementConfig, find_cacheable_blocks
from repro.cluster.latency import LatencyModel
from repro.trace.dataset import TraceDataset
from repro.trace.records import OpKind
from repro.util.errors import ConfigError
from repro.workload.fleet import Fleet


@dataclass(frozen=True)
class HybridCacheConfig:
    """Split of the hot block between the CN tier and the BS tier."""

    placement: CachePlacementConfig = CachePlacementConfig()
    #: Fraction of each cacheable hot block pinned at the compute node;
    #: the rest is pinned at the BlockServer.
    cn_fraction: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.cn_fraction <= 1.0:
            raise ConfigError("cn_fraction must be in [0, 1]")


def _tier_ranges(
    block: HottestBlock, cn_fraction: float
) -> "tuple[tuple[int, int], tuple[int, int]]":
    """((cn_start, cn_end), (bs_start, bs_end)) byte ranges of the tiers.

    The CN tier takes the leading fraction of the hot block — with the
    log-structured write pattern the leading pages are the most recently
    re-written ones as the cursor wraps, and the exact choice is
    irrelevant for frozen tiers of fixed total coverage.
    """
    split = block.start_byte + int(cn_fraction * block.block_bytes)
    return (block.start_byte, split), (split, block.end_byte)


def latency_gain_hybrid(
    traces: TraceDataset,
    fleet: Fleet,
    latency_model: LatencyModel,
    rng: np.random.Generator,
    config: HybridCacheConfig = HybridCacheConfig(),
    percentiles: "tuple[float, ...]" = (0.0, 50.0, 99.0),
    direction: str = "write",
) -> "Optional[Dict[float, float]]":
    """Percentile latency gains of the two-tier frozen deployment.

    Returns ``{percentile: with/without ratio}`` or None if no VD
    qualifies.  IOs inside a VD's CN tier get compute-node-cache latency,
    IOs inside the BS tier get BlockServer-cache latency, the rest go the
    full path.
    """
    if direction not in ("read", "write"):
        raise ConfigError("direction must be 'read' or 'write'")
    blocks = find_cacheable_blocks(traces, fleet, config.placement)
    if not blocks:
        return None
    vd_ids = np.fromiter(blocks.keys(), dtype=np.int64)
    mask = np.isin(traces.vd_id, vd_ids)
    op = int(OpKind.WRITE) if direction == "write" else int(OpKind.READ)
    mask &= traces.op == op
    if not mask.any():
        return None
    subset = traces.where(mask)

    cn_lo = np.empty(len(subset), dtype=np.int64)
    cn_hi = np.empty(len(subset), dtype=np.int64)
    bs_lo = np.empty(len(subset), dtype=np.int64)
    bs_hi = np.empty(len(subset), dtype=np.int64)
    for row, vd in enumerate(subset.vd_id):
        (a, b), (c, d) = _tier_ranges(blocks[int(vd)], config.cn_fraction)
        cn_lo[row], cn_hi[row], bs_lo[row], bs_hi[row] = a, b, c, d

    offsets = subset.offset_bytes
    in_cn = (offsets >= cn_lo) & (offsets < cn_hi)
    in_bs = (offsets >= bs_lo) & (offsets < bs_hi)

    without = subset.latency_us
    with_cache = without.copy()
    if in_cn.any():
        with_cache[in_cn] = latency_model.cached_latency(
            rng,
            subset.op[in_cn].astype(bool),
            subset.size_bytes[in_cn],
            "compute_node",
        )
    if in_bs.any():
        with_cache[in_bs] = latency_model.cached_latency(
            rng,
            subset.op[in_bs].astype(bool),
            subset.size_bytes[in_bs],
            "block_server",
        )
    gains: Dict[float, float] = {}
    for percentile in percentiles:
        baseline = float(np.percentile(without, percentile))
        cached = float(np.percentile(with_cache, percentile))
        gains[percentile] = cached / baseline if baseline > 0 else 1.0
    return gains
