"""Array-based cache-replay fast paths (exact, policy-equivalent).

``repro.cache.simulate.replay_trace`` feeds IOs one at a time through
:meth:`Cache.access` — the audited reference path, but far too slow for
fleet-scale replay.  This module replays the same page stream with the
same semantics at array speed:

- **FrozenCache** residency is a fixed range, so the whole replay is one
  vectorized range check (see :meth:`FrozenCache.contains_pages`).
- **FIFO / LRU** exploit exact reductions before touching a Python loop:

  1. *Consecutive-duplicate compression*: after any access the touched
     page is resident (a miss admits it), so an immediately repeated
     access is always a hit and — since FIFO ignores hits and LRU's
     move-to-MRU is a no-op for the already-MRU page — never changes
     state.  Duplicates are counted as hits and dropped.
  2. *No-eviction shortcut*: if the number of distinct pages does not
     exceed the capacity, no eviction ever happens under either policy,
     so misses == distinct pages and hits == accesses - distinct.
  3. *Last-access-index trick (LRU only)*: LRU is a stack algorithm — an
     access hits iff the page's reuse (stack) distance is at most the
     capacity.  On the compressed stream the *gap* since a page's
     previous access upper-bounds that distance, so every access with
     ``gap <= capacity`` is a guaranteed hit with no state needed.  Only
     the few "suspects" with larger gaps need their exact stack distance,
     computed with a block-decomposition counting pass (see
     :func:`_lru_suspect_distances`).

Work shared between policies (time sort, page extraction, compression,
previous-occurrence indices) is factored into :class:`PreparedPages` so
one trace replayed through several caches pays for it once (see
:func:`replay_many`).

All fast paths produce hit/miss counts **identical** to the scalar
reference; the equivalence is pinned by tests/cache/test_fastreplay.py.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Optional
from weakref import WeakKeyDictionary

import numpy as np

from repro.cache.base import Cache
from repro.cache.fifo import FifoCache
from repro.cache.frozen import FrozenCache
from repro.cache.lru import LruCache
from repro.obs.runtime import get_telemetry
from repro.trace.dataset import TraceDataset
from repro.util.errors import ConfigError

PAGE_BYTES = 4096

#: Block size of the LRU suspect-counting decomposition.
_LRU_BLOCK = 2048
#: If more than this fraction of the compressed stream are suspects the
#: counting pass stops paying off; fall back to the OrderedDict loop.
_LRU_SUSPECT_FRACTION = 0.25


def pages_in_time_order(
    traces: TraceDataset, page_bytes: int = PAGE_BYTES
) -> np.ndarray:
    """The 4 KiB page id of each traced IO, sorted by timestamp (stable)."""
    ts = traces.timestamp
    if ts.size > 1 and not np.all(ts[:-1] <= ts[1:]):
        order = np.argsort(ts, kind="stable")
        return traces.offset_bytes[order] // page_bytes
    return traces.offset_bytes // page_bytes


def _compress_consecutive(pages: np.ndarray) -> "tuple[np.ndarray, int]":
    """Drop immediately-repeated pages; returns (stream, guaranteed hits)."""
    if pages.size == 0:
        return pages, 0
    keep = np.empty(pages.size, dtype=bool)
    keep[0] = True
    np.not_equal(pages[1:], pages[:-1], out=keep[1:])
    kept = int(keep.sum())
    if kept == pages.size:
        return pages, 0
    return pages[keep], pages.size - kept


@dataclass
class PreparedPages:
    """Shared per-trace precomputation for the FIFO/LRU fast paths.

    ``stream`` is the consecutive-duplicate-compressed page stream,
    ``dense`` the same stream relabelled to ``0..distinct-1`` (dense ids
    make the FIFO loop's bookkeeping a flat list instead of a dict), and
    ``prev`` maps each stream position to the previous position touching
    the same page (-1 for a first occurrence).  Everything derives from
    one stable argsort of the stream, so a trace replayed through many
    policies or capacities pays for the sort once.
    """

    pages: np.ndarray          #: full page stream in time order
    stream: np.ndarray         #: compressed stream (original page ids)
    dup_hits: int              #: accesses dropped by compression (hits)
    distinct: int              #: number of distinct pages
    dense: np.ndarray          #: compressed stream with dense 0-based ids
    prev: np.ndarray           #: previous same-page position (-1 if first)
    order: np.ndarray          #: stable grouping permutation (by page)

    @property
    def accesses(self) -> int:
        return int(self.pages.size)


def prepare_pages(pages: np.ndarray) -> PreparedPages:
    """Compress and index one page stream for repeated fast replays.

    One stable argsort groups equal pages while preserving time order
    within each group; from the grouped view the distinct count, dense
    relabelling, and previous-occurrence indices all fall out with O(n)
    scatter passes.
    """
    pages = np.asarray(pages)
    stream, dup_hits = _compress_consecutive(pages)
    m = int(stream.size)
    if m == 0:
        empty = np.zeros(0, dtype=np.int64)
        return PreparedPages(pages, stream, dup_hits, 0, empty, empty, empty)
    order = np.argsort(stream, kind="stable")
    grouped = stream[order]
    first = np.empty(m, dtype=bool)
    first[0] = True
    np.not_equal(grouped[1:], grouped[:-1], out=first[1:])
    distinct = int(first.sum())
    # Previous same-page position: within a group (time-ordered, thanks to
    # the stable sort) each position's predecessor is the one before it.
    prev_sorted = np.empty(m, dtype=np.int64)
    prev_sorted[0] = -1
    prev_sorted[1:] = np.where(first[1:], -1, order[:-1])
    prev = np.empty(m, dtype=np.int64)
    prev[order] = prev_sorted
    # Dense ids: rank of each page's group, scattered back to stream order.
    dense_sorted = np.cumsum(first, dtype=np.int64) - 1
    dense = np.empty(m, dtype=np.int64)
    dense[order] = dense_sorted
    return PreparedPages(
        pages, stream, dup_hits, distinct, dense, prev, order
    )


def frozen_hit_count(
    pages: np.ndarray, start_page: int, capacity_pages: int
) -> int:
    """Hits of a frozen cache over ``[start_page, start_page + capacity)``."""
    if capacity_pages < 1:
        raise ConfigError("capacity must be at least one page")
    pages = np.asarray(pages)
    return int(
        ((pages >= start_page) & (pages < start_page + capacity_pages)).sum()
    )


def _fifo_hits_loop(prep: PreparedPages, capacity_pages: int) -> int:
    """FIFO admission-counter loop over the compressed dense stream.

    A page admitted as the a-th admission is evicted by the (a + C)-th;
    it is resident iff (admissions so far) - a <= C.
    """
    admission_of = [-1] * prep.distinct
    admissions = 0
    misses = 0
    cap = capacity_pages
    for page in prep.dense.tolist():
        a = admission_of[page]
        if a < 0 or admissions - a > cap:
            admission_of[page] = admissions
            admissions += 1
            misses += 1
    return prep.accesses - misses


#: Give up on one chunk's FIFO fixpoint iteration after this many rounds.
_FIFO_MAX_ROUNDS = 64
#: Chunk length in eviction generations (multiples of the capacity).
_FIFO_CHUNK_GENERATIONS = 4
#: The first chunk doubles as a convergence probe: if it alone needs more
#: than this many rounds, the stream is churn-heavy and the scalar loop
#: will be cheaper than iterating the remaining chunks.
_FIFO_PROBE_ROUNDS = 6
#: Streams whose distinct-page count exceeds this multiple of the capacity
#: churn through too many eviction generations for the fixpoint to pay off.
_FIFO_CHURN_FACTOR = 2


def _fifo_hits_fixpoint(
    prep: PreparedPages, capacity_pages: int
) -> "int | None":
    """Vectorized FIFO via chunked fixpoint iteration on the miss vector.

    Unlike LRU, FIFO is not a stack algorithm: whether access ``i`` hits
    depends on *which* earlier accesses missed (misses admit, hits do
    not).  But the miss vector satisfies a self-consistency relation:
    with admission numbers assigned in miss order, access ``i`` hits iff
    the page's latest admission ``a`` exists and at most ``capacity``
    admissions happened since (``admissions_before_i - a <= capacity``) —
    the page has not been pushed out yet.  Iterating the relation from
    the all-miss vector converges to the unique fixpoint (the actual
    replay; any two fixpoints agree by induction on their earliest
    disagreement), but information propagates only about one eviction
    generation (``capacity`` misses) per round, so a long stream over a
    small cache needs thousands of rounds.  Processing the stream in
    chunks of a few generations — carrying the exact per-page admission
    numbers and the admission counter between chunks, exactly like the
    scalar loop's state — keeps every local fixpoint a handful of rounds.

    Returns None (caller falls back to the exact loop) if any chunk
    fails to converge within ``_FIFO_MAX_ROUNDS`` rounds, or if the
    cumulative rounds across chunks blow a total budget — streams whose
    chunks routinely take many rounds are cheaper in the scalar loop,
    and the budget bounds the work wasted before discovering that.
    """
    m = int(prep.stream.size)
    dense = prep.dense
    cap = np.int64(capacity_pages)
    chunk_len = max(1024, _FIFO_CHUNK_GENERATIONS * capacity_pages)
    # The first chunk is shortened to a cheap probe: churn-heavy streams
    # are detected after a fraction of the stream instead of a full chunk.
    probe_len = min(chunk_len, max(1024, m // 4))
    num_chunks = 1 + max(0, (m - probe_len + chunk_len - 1) // chunk_len)
    rounds_budget = max(_FIFO_MAX_ROUNDS, 3 * num_chunks)
    rounds_used = 0
    #: admission number of each page's latest admission (-1: never).
    adm = np.full(prep.distinct, -1, dtype=np.int64)
    admissions = np.int64(0)   # total admissions before the current chunk
    misses_total = 0
    starts = [0] + list(range(probe_len, m, chunk_len))
    for s in starts:
        d = dense[s:s + chunk_len] if s else dense[:probe_len]
        n = int(d.size)
        # Group the chunk's accesses by page (stable: time order within
        # each group), for the per-page "latest earlier miss" cummax.
        order = np.argsort(d, kind="stable")
        g = d[order]
        first = np.empty(n, dtype=bool)
        first[0] = True
        np.not_equal(g[1:], g[:-1], out=first[1:])
        # Segment-offset trick: group ranks scale a base large enough
        # that one global maximum.accumulate respects group boundaries.
        base = (np.cumsum(first, dtype=np.int64) - 1) * np.int64(n + 2)
        adm_entering = adm[d]      # latest admission from prior chunks
        shifted = np.empty(n, dtype=np.int64)
        j_in = np.empty(n, dtype=np.int64)
        miss = np.ones(n, dtype=bool)
        chunk_rounds = 0
        for _ in range(_FIFO_MAX_ROUNDS):
            # j_in(i): latest earlier in-chunk same-page miss (-1: none).
            cand = np.where(miss[order], order, np.int64(-1))
            shifted[0] = -1
            shifted[1:] = cand[:-1]
            shifted[first] = -1
            j_in[order] = np.maximum.accumulate(shifted + base) - base
            c = np.cumsum(miss, dtype=np.int64)   # inclusive miss count
            # Latest admission number of i's page: the in-chunk miss
            # j_in if any (admission number A0 + c[j_in] - 1), else the
            # admission carried in from previous chunks.
            has_in = j_in >= 0
            adm_latest = np.where(
                has_in,
                admissions + c[np.maximum(j_in, 0)] - 1,
                adm_entering,
            )
            before = admissions + c - miss       # admissions before i
            hit = (adm_latest >= 0) & (before - adm_latest <= cap)
            rounds_used += 1
            chunk_rounds += 1
            new_miss = ~hit
            if np.array_equal(new_miss, miss):
                break
            miss = new_miss
        else:
            return None
        if s == 0 and chunk_rounds > _FIFO_PROBE_ROUNDS:
            return None
        if rounds_used > rounds_budget:
            return None
        # Carry the state forward: per page touched in this chunk, its
        # latest in-chunk miss (if any) sets the new admission number.
        c = np.cumsum(miss, dtype=np.int64)
        cand = np.where(miss[order], order, np.int64(-1))
        latest_sorted = np.maximum.accumulate(cand + base) - base
        ends = np.empty(int(first.sum()), dtype=np.int64)
        ends[:-1] = np.nonzero(first)[0][1:] - 1
        ends[-1] = n - 1
        latest = latest_sorted[ends]
        touched = g[ends]
        updated = latest >= 0
        adm[touched[updated]] = (
            admissions + c[latest[updated]] - 1
        )
        chunk_misses = int(c[-1])
        admissions += chunk_misses
        misses_total += chunk_misses
    return prep.accesses - misses_total


def fifo_hit_count(
    pages: np.ndarray,
    capacity_pages: int,
    prepared: Optional[PreparedPages] = None,
) -> int:
    """Exact FIFO hit count (admission-order eviction, hits don't promote)."""
    if capacity_pages < 1:
        raise ConfigError("capacity must be at least one page")
    prep = prepared if prepared is not None else prepare_pages(pages)
    if prep.accesses == 0:
        return 0
    if prep.distinct <= capacity_pages:
        return prep.accesses - prep.distinct
    if (
        capacity_pages < 256
        or prep.distinct > _FIFO_CHURN_FACTOR * capacity_pages
    ):
        # Tiny caches and churn-heavy streams (working set far above the
        # capacity) cycle through many eviction generations; the fixpoint
        # would burn its round budget before falling back.
        return _fifo_hits_loop(prep, capacity_pages)
    hits = _fifo_hits_fixpoint(prep, capacity_pages)
    if hits is None:
        return _fifo_hits_loop(prep, capacity_pages)
    return hits


def _lru_hits_loop(prep: PreparedPages, capacity_pages: int) -> int:
    """Reference OrderedDict LRU loop over the compressed stream."""
    resident: "OrderedDict[int, None]" = OrderedDict()
    promote = resident.move_to_end
    evict = resident.popitem
    misses = 0
    cap = capacity_pages
    for page in prep.dense.tolist():
        if page in resident:
            promote(page)
        else:
            misses += 1
            if len(resident) >= cap:
                evict(last=False)
            resident[page] = None
    return prep.accesses - misses


def _lru_suspect_distances(
    prev: np.ndarray, suspects: np.ndarray
) -> np.ndarray:
    """For each suspect index ``i``, count ``#{k < i : prev[k] > prev[i]}``.

    That count is the number of *duplicate* accesses inside the suspect's
    reuse window ``(prev[i], i)`` — pages seen there whose own previous
    occurrence also falls after ``prev[i]`` don't add a distinct page.
    (Every ``k <= prev[i]`` has ``prev[k] < k <= prev[i]``, so the prefix
    form over all ``k < i`` equals the in-window count.)

    Counted with a block decomposition: full blocks of ``prev`` are
    sorted once and binary-searched per suspect; the suspect's own
    partial block is counted directly.  Cost is roughly
    ``O(n log B + s * (n / B + log B))`` for ``s`` suspects.
    """
    n = int(prev.size)
    s = int(suspects.size)
    thresholds = prev[suspects]
    counts = np.zeros(s, dtype=np.int64)
    block = _LRU_BLOCK
    num_full = n // block
    if num_full:
        sorted_blocks = np.sort(
            prev[: num_full * block].reshape(num_full, block), axis=1
        )
        for b in range(num_full):
            # Suspects strictly after this block see the whole block.
            lo = int(np.searchsorted(suspects, (b + 1) * block))
            if lo == s:
                break
            counts[lo:] += block - np.searchsorted(
                sorted_blocks[b], thresholds[lo:], side="right"
            )
    for idx in range(s):
        i = int(suspects[idx])
        start = (i // block) * block
        if start < i:
            counts[idx] += int(
                np.count_nonzero(prev[start:i] > thresholds[idx])
            )
    return counts


def lru_hit_count(
    pages: np.ndarray,
    capacity_pages: int,
    prepared: Optional[PreparedPages] = None,
) -> int:
    """Exact LRU hit count (recency eviction, hits promote to MRU).

    LRU is a stack algorithm: an access hits iff the number of distinct
    pages since the previous access to the same page is at most
    ``capacity - 1``.  On the compressed stream the raw index gap already
    bounds that number from above, so ``gap <= capacity`` guarantees a
    hit; only the remaining "suspects" need the exact distinct count,
    obtained by subtracting in-window duplicates (see
    :func:`_lru_suspect_distances`).
    """
    if capacity_pages < 1:
        raise ConfigError("capacity must be at least one page")
    prep = prepared if prepared is not None else prepare_pages(pages)
    if prep.accesses == 0:
        return 0
    if prep.distinct <= capacity_pages:
        return prep.accesses - prep.distinct
    prev = prep.prev
    m = prev.size
    idx = np.arange(m, dtype=np.int64)
    gap = idx - prev  # >= 1; huge where prev == -1
    seen_before = prev >= 0
    sure_hits = seen_before & (gap <= capacity_pages)
    maybe = np.nonzero(seen_before & ~sure_hits)[0]
    hits = int(sure_hits.sum())
    if maybe.size:
        # Sure-miss prefilter: first occurrences inside the reuse window
        # (prev_i, i) are distinct by definition, so their prefix count
        # lower-bounds the stack distance.  At least ``capacity`` of them
        # means a guaranteed eviction — resolved in O(1) per access.
        first_prefix = np.cumsum(prev < 0)
        new_in_window = first_prefix[maybe - 1] - first_prefix[prev[maybe]]
        suspects = maybe[new_in_window < capacity_pages]
        # Cost-based crossover: the decomposition pays about one binary
        # search per (suspect, preceding block) while the OrderedDict
        # loop pays a constant per access, so hand long streams with
        # many spread-out suspects to the loop.
        num_blocks = m // _LRU_BLOCK + 1
        if (
            suspects.size > m * _LRU_SUSPECT_FRACTION
            or suspects.size * num_blocks > 16 * m
        ):
            return _lru_hits_loop(prep, capacity_pages)
        if suspects.size:
            dup_in_window = _lru_suspect_distances(prev, suspects)
            distinct_between = (suspects - prev[suspects] - 1) - dup_in_window
            hits += int(
                np.count_nonzero(distinct_between <= capacity_pages - 1)
            )
    return prep.dup_hits + hits


def replay_pages_fast(
    cache: Cache,
    pages: np.ndarray,
    prepared: Optional[PreparedPages] = None,
) -> "int | None":
    """Hit count of ``pages`` through ``cache``'s policy, or None.

    Returns None for cache types without a fast path (callers fall back
    to the scalar reference).  Does **not** mutate the cache: the fast
    paths compute counts analytically, so residency is left untouched.
    """
    # Exact type checks: subclasses may override policy behaviour.
    if type(cache) is FrozenCache:
        return frozen_hit_count(
            pages, cache.start_page, cache.capacity_pages
        )
    if type(cache) is FifoCache:
        return fifo_hit_count(pages, cache.capacity_pages, prepared)
    if type(cache) is LruCache:
        return lru_hit_count(pages, cache.capacity_pages, prepared)
    return None


def replay_pages_resumable(cache: Cache, pages: np.ndarray) -> int:
    """Stateful replay of one chunk of pages; returns the chunk's hits.

    Unlike :func:`replay_pages_fast` this *advances* the cache: residency
    and stats after the call are exactly what a scalar replay of the
    chunk leaves behind, so a run cut into chunks — with
    :meth:`Cache.state_dict` checkpoints at the cuts — reproduces the
    unchunked replay access for access.  The streaming engine drives it
    via :func:`repro.engine.state.replay_pages_streamed`.
    """
    pages = np.asarray(pages, dtype=np.int64)
    hits = 0
    for page in pages:
        hits += cache.access(int(page))
    telemetry = get_telemetry()
    if telemetry.enabled:
        policy = _policy_label(cache)
        _counter(telemetry, "cache.replay.resumable_chunks", policy).inc()
        _counter(telemetry, "cache.replay.pages", policy).inc(
            int(pages.size)
        )
    return hits


def _policy_label(cache: Cache) -> str:
    """Short policy name for telemetry labels (``FifoCache`` -> ``fifo``)."""
    name = type(cache).__name__
    return (name[:-5] if name.endswith("Cache") else name).lower()


#: Per-registry memo of counter handles.  ``replay_many`` runs once per
#: (VD, cache size) — a microsecond-scale unit of work at small trace
#: counts — so even the registry's labeled-series lookup is worth
#: skipping on repeat calls.  Keyed weakly so dropped telemetry handles
#: (tests, sessions) don't pin their registries.
_COUNTER_MEMO: "WeakKeyDictionary" = WeakKeyDictionary()


def _counter(telemetry, name: str, policy: Optional[str] = None):
    """Memoized ``telemetry.counter(...)`` for the replay hot path."""
    memo = _COUNTER_MEMO.get(telemetry.registry)
    if memo is None:
        memo = _COUNTER_MEMO[telemetry.registry] = {}
    key = (name, policy)
    counter = memo.get(key)
    if counter is None:
        if policy is None:
            counter = telemetry.counter(name)
        else:
            counter = telemetry.counter(name, policy=policy)
        memo[key] = counter
    return counter


def _record_replay(cache: Cache, pages: int, fast: bool) -> None:
    """Count one replay: fast-path taken vs fallback-to-scalar."""
    telemetry = get_telemetry()
    if not telemetry.enabled:
        return
    policy = _policy_label(cache)
    if fast:
        _counter(telemetry, "cache.replay.fast", policy).inc()
        _counter(telemetry, "cache.replay.pages", policy).inc(pages)
    else:
        _counter(telemetry, "cache.replay.fallback_scalar", policy).inc()


def replay_trace_fast(cache: Cache, traces: TraceDataset) -> float:
    """Fast-path equivalent of :func:`repro.cache.simulate.replay_trace`.

    Returns the hit ratio and updates ``cache.stats`` with the exact same
    hit/miss totals the scalar path would produce.  Falls back to the
    scalar path for cache types without a fast implementation.
    """
    if len(traces) == 0:
        return 0.0
    pages = pages_in_time_order(traces)
    hits = replay_pages_fast(cache, pages)
    if hits is None:
        from repro.cache.simulate import replay_trace

        _record_replay(cache, int(pages.size), fast=False)
        return replay_trace(cache, traces)
    _record_replay(cache, int(pages.size), fast=True)
    cache.stats.hits += int(hits)
    cache.stats.misses += int(pages.size - hits)
    return cache.stats.hit_ratio


def replay_many(
    caches: "Iterable[tuple[str, Cache]] | Dict[str, Cache]",
    traces: TraceDataset,
    prepared: Optional[PreparedPages] = None,
) -> "dict[str, float]":
    """Replay one trace through several caches, sharing the preparation.

    The page extraction / time sort / compression / previous-occurrence
    work is done once and reused by every policy; each cache's stats are
    updated exactly as :func:`replay_trace_fast` would.  Returns the hit
    ratio per cache name.  Pass a :class:`PreparedPages` built from the
    same trace to also share the preparation *across* calls (e.g. one VD
    replayed at several capacities).
    """
    items = list(caches.items()) if isinstance(caches, dict) else list(caches)
    if len(traces) == 0:
        return {name: 0.0 for name, _ in items}
    telemetry = get_telemetry()
    if prepared is None:
        prepared = prepare_pages(pages_in_time_order(traces))
        if telemetry.enabled:
            _counter(telemetry, "cache.prepared.build").inc()
    elif telemetry.enabled:
        # The caller shared one PreparedPages across calls: the page sort /
        # compression / prev-index work was reused, not recomputed.
        _counter(telemetry, "cache.prepared.reuse").inc()
    pages = prepared.pages
    ratios: "dict[str, float]" = {}
    for name, cache in items:
        hits = replay_pages_fast(cache, pages, prepared)
        if hits is None:
            from repro.cache.simulate import replay_trace

            _record_replay(cache, int(pages.size), fast=False)
            ratios[name] = replay_trace(cache, traces)
            continue
        _record_replay(cache, int(pages.size), fast=True)
        cache.stats.hits += int(hits)
        cache.stats.misses += int(pages.size - hits)
        ratios[name] = cache.stats.hit_ratio
    return ratios
