"""Page-cache interface and bookkeeping.

Caches operate on 4 KiB pages (the paper's cache page size); callers map
byte offsets to page ids.  Both reads and writes are "accesses": the EBS
caches under study are persistent write-back caches, so a write to a cached
page is a hit that avoids the remote round-trip just like a read.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.util.errors import ConfigError


@dataclass
class CacheStats:
    """Hit/miss counters with derived ratios."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Hits / accesses; 0.0 before any access."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


class Cache(abc.ABC):
    """A fixed-capacity page cache."""

    def __init__(self, capacity_pages: int):
        if capacity_pages < 1:
            raise ConfigError(
                f"capacity must be at least one page, got {capacity_pages}"
            )
        self.capacity_pages = capacity_pages
        self.stats = CacheStats()

    @abc.abstractmethod
    def _lookup_and_admit(self, page: int) -> bool:
        """Return True on hit; on miss, admit per the policy."""

    def access(self, page: int, is_write: bool = False) -> bool:
        """Access one page; returns True on a hit and updates stats."""
        if page < 0:
            raise ConfigError(f"page ids are non-negative, got {page}")
        hit = self._lookup_and_admit(page)
        if hit:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        return hit

    @abc.abstractmethod
    def __contains__(self, page: int) -> bool:
        """Whether the page is currently resident (no stats update)."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of resident pages."""

    def check_invariants(self) -> None:
        """Raise if the cache exceeds capacity."""
        if len(self) > self.capacity_pages:
            raise ConfigError(
                f"cache holds {len(self)} pages, capacity {self.capacity_pages}"
            )
