"""Page-cache interface and bookkeeping.

Caches operate on 4 KiB pages (the paper's cache page size); callers map
byte offsets to page ids.  Both reads and writes are "accesses": the EBS
caches under study are persistent write-back caches, so a write to a cached
page is a hit that avoids the remote round-trip just like a read.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Dict

from repro.util.errors import ConfigError


@dataclass
class CacheStats:
    """Hit/miss counters with derived ratios."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Hits / accesses; 0.0 before any access."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


class Cache(abc.ABC):
    """A fixed-capacity page cache."""

    def __init__(self, capacity_pages: int):
        if capacity_pages < 1:
            raise ConfigError(
                f"capacity must be at least one page, got {capacity_pages}"
            )
        self.capacity_pages = capacity_pages
        self.stats = CacheStats()

    @abc.abstractmethod
    def _lookup_and_admit(self, page: int) -> bool:
        """Return True on hit; on miss, admit per the policy."""

    def access(self, page: int, is_write: bool = False) -> bool:
        """Access one page; returns True on a hit and updates stats."""
        if page < 0:
            raise ConfigError(f"page ids are non-negative, got {page}")
        hit = self._lookup_and_admit(page)
        if hit:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        return hit

    @abc.abstractmethod
    def __contains__(self, page: int) -> bool:
        """Whether the page is currently resident (no stats update)."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of resident pages."""

    def check_invariants(self) -> None:
        """Raise if the cache exceeds capacity."""
        if len(self) > self.capacity_pages:
            raise ConfigError(
                f"cache holds {len(self)} pages, capacity {self.capacity_pages}"
            )

    # -- carry-over state (chunked replay across shard boundaries) -----------

    def _page_state(self) -> Any:
        """Policy-specific residency state; override with recency intact."""
        return None

    def _load_page_state(self, state: Any) -> None:
        """Restore what :meth:`_page_state` captured."""
        if state is not None:
            raise ConfigError(
                f"{type(self).__name__} does not carry page state"
            )

    def state_dict(self) -> Dict[str, Any]:
        """Snapshot residency + stats for save/restore at a chunk boundary.

        The streaming engine checkpoints caches here when a replay is cut
        at a shard boundary; :meth:`load_state_dict` round-trips exactly,
        so a chunked replay's hits/misses match the unchunked replay
        access for access.
        """
        return {
            "policy": type(self).__name__,
            "capacity_pages": self.capacity_pages,
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "pages": self._page_state(),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot (same policy + capacity)."""
        if state.get("policy") != type(self).__name__:
            raise ConfigError(
                f"state is for {state.get('policy')}, "
                f"cache is {type(self).__name__}"
            )
        if state.get("capacity_pages") != self.capacity_pages:
            raise ConfigError(
                f"state capacity {state.get('capacity_pages')} != "
                f"cache capacity {self.capacity_pages}"
            )
        self._load_page_state(state.get("pages"))
        self.stats.hits = int(state["hits"])
        self.stats.misses = int(state["misses"])
        self.check_invariants()
