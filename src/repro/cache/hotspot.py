"""Hottest-block analysis over the trace data (§7.1, §7.2, Fig 6).

For a VD, the LBA space is divided into fixed-size blocks; the block with
the highest access count is the VD's *hottest block*.  The paper measures
its access rate vs its LBA share (Fig 6(a)/(b)), its write dominance
(Fig 6(c)), and its *hot rate* (Fig 6(d)): the share of short windows in
which the block is at least as hot as its long-run average.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.stats.ratios import wr_ratio
from repro.trace.dataset import TraceDataset
from repro.trace.records import OpKind
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class HottestBlock:
    """The hottest fixed-size block of one VD."""

    vd_id: int
    block_bytes: int
    block_index: int
    access_rate: float        # share of the VD's IOs landing in the block
    lba_share: float          # block size / VD capacity
    num_accesses: int

    @property
    def start_byte(self) -> int:
        return self.block_index * self.block_bytes

    @property
    def end_byte(self) -> int:
        return self.start_byte + self.block_bytes


def _block_ids(offsets: np.ndarray, block_bytes: int) -> np.ndarray:
    if block_bytes <= 0:
        raise ConfigError("block_bytes must be positive")
    return offsets // block_bytes


def hottest_block(
    traces: TraceDataset,
    vd_id: int,
    block_bytes: int,
    capacity_bytes: int,
    vd_traces: Optional[TraceDataset] = None,
) -> Optional[HottestBlock]:
    """Locate a VD's hottest block; None if the VD has no traced IOs.

    ``vd_traces`` may carry the pre-sliced ``traces.for_vd(vd_id)`` when
    the caller already has it (slicing a fleet-sized dataset per VD per
    block size dominates otherwise); it must match ``vd_id``.
    """
    if capacity_bytes <= 0:
        raise ConfigError("capacity_bytes must be positive")
    if vd_traces is None:
        vd_traces = traces.for_vd(vd_id)
    if len(vd_traces) == 0:
        return None
    blocks = _block_ids(vd_traces.offset_bytes, block_bytes)
    ids, counts = np.unique(blocks, return_counts=True)
    best = int(np.argmax(counts))
    return HottestBlock(
        vd_id=vd_id,
        block_bytes=block_bytes,
        block_index=int(ids[best]),
        access_rate=float(counts[best] / len(vd_traces)),
        lba_share=min(1.0, block_bytes / capacity_bytes),
        num_accesses=int(counts[best]),
    )


def hottest_block_wr_ratio(
    traces: TraceDataset, block: HottestBlock
) -> float:
    """wr_ratio (by IO count) of the traffic inside the hottest block."""
    vd_traces = traces.for_vd(block.vd_id)
    in_block = (
        (vd_traces.offset_bytes >= block.start_byte)
        & (vd_traces.offset_bytes < block.end_byte)
    )
    ops = vd_traces.op[in_block]
    writes = float((ops == int(OpKind.WRITE)).sum())
    reads = float((ops == int(OpKind.READ)).sum())
    return wr_ratio(writes, reads)


def hot_rate(
    traces: TraceDataset,
    block: HottestBlock,
    window_seconds: float = 300.0,
) -> Optional[float]:
    """Share of windows where the block beats its long-run access rate.

    Only windows in which the VD issued IOs count.  Returns None when no
    window has traffic (cannot be measured).
    """
    if window_seconds <= 0:
        raise ConfigError("window_seconds must be positive")
    vd_traces = traces.for_vd(block.vd_id)
    if len(vd_traces) == 0:
        return None
    windows = np.floor(vd_traces.timestamp / window_seconds).astype(np.int64)
    in_block = (
        (vd_traces.offset_bytes >= block.start_byte)
        & (vd_traces.offset_bytes < block.end_byte)
    )
    num_windows = int(windows.max()) + 1
    total = np.zeros(num_windows)
    hot = np.zeros(num_windows)
    np.add.at(total, windows, 1.0)
    np.add.at(hot, windows, in_block.astype(float))
    active = total > 0
    if not active.any():
        return None
    rates = hot[active] / total[active]
    return float(np.mean(rates >= block.access_rate))
