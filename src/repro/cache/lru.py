"""Least-Recently-Used page cache."""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.base import Cache


class LruCache(Cache):
    """Evicts the least recently *accessed* page; hits promote to MRU."""

    def __init__(self, capacity_pages: int):
        super().__init__(capacity_pages)
        self._pages: "OrderedDict[int, None]" = OrderedDict()

    def _lookup_and_admit(self, page: int) -> bool:
        if page in self._pages:
            self._pages.move_to_end(page)
            return True
        if len(self._pages) >= self.capacity_pages:
            self._pages.popitem(last=False)
        self._pages[page] = None
        return False

    def __contains__(self, page: int) -> bool:
        return page in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    def _page_state(self) -> "list[int]":
        """Resident pages in LRU→MRU order (the full recency chain)."""
        return list(self._pages.keys())

    def _load_page_state(self, state: "list[int]") -> None:
        self._pages = OrderedDict((int(page), None) for page in state)
