"""The BlockServer's sequential-read prefetcher (§2.2).

Production EBS detects "continuous large block reads on a per-segment
basis" at the BlockServer and prefetches the subsequent data from the
ChunkServer into local memory.  Only reads benefit; §7.2 then observes that
this is why the existing cache helps little — the hottest blocks are
write-dominant, and writes bypass the prefetch cache entirely.

:class:`SequentialPrefetcher` reproduces the mechanism: a per-segment
detector that arms after ``trigger_run`` consecutive sequential large
reads and then keeps a prefetch window ahead of the stream.  Replaying a
trace yields the read hit ratio and the overall hit ratio, whose gap is
exactly the paper's point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.trace.dataset import TraceDataset
from repro.trace.records import OpKind
from repro.util.errors import ConfigError
from repro.util.units import KiB, MiB


@dataclass(frozen=True)
class PrefetchConfig:
    """Detector and window parameters."""

    #: Reads at least this large count toward a sequential run.
    min_read_bytes: int = 64 * KiB
    #: Consecutive sequential large reads needed to arm the prefetcher.
    trigger_run: int = 3
    #: How far ahead of the stream the prefetcher stays once armed.
    window_bytes: int = 8 * MiB
    #: A gap larger than this breaks the run (allows small strides).
    max_gap_bytes: int = 1 * MiB

    def __post_init__(self) -> None:
        if self.min_read_bytes <= 0:
            raise ConfigError("min_read_bytes must be positive")
        if self.trigger_run < 1:
            raise ConfigError("trigger_run must be >= 1")
        if self.window_bytes <= 0:
            raise ConfigError("window_bytes must be positive")
        if self.max_gap_bytes < 0:
            raise ConfigError("max_gap_bytes must be non-negative")


@dataclass
class _SegmentState:
    """Per-segment detector state."""

    last_end: int = -1
    run_length: int = 0
    window_start: int = -1
    window_end: int = -1

    @property
    def armed(self) -> bool:
        return self.window_end > self.window_start


@dataclass
class PrefetchStats:
    """Outcome of replaying a trace through the prefetcher."""

    read_hits: int = 0
    read_misses: int = 0
    writes: int = 0
    prefetched_bytes: int = 0

    @property
    def read_hit_ratio(self) -> float:
        total = self.read_hits + self.read_misses
        return self.read_hits / total if total else 0.0

    @property
    def overall_hit_ratio(self) -> float:
        """Hits over *all* IOs — writes can never hit (§7.2's gap)."""
        total = self.read_hits + self.read_misses + self.writes
        return self.read_hits / total if total else 0.0


class SequentialPrefetcher:
    """Per-segment sequential-read detection with a look-ahead window."""

    def __init__(self, config: PrefetchConfig = PrefetchConfig()):
        self.config = config
        self._segments: Dict[int, _SegmentState] = {}
        self.stats = PrefetchStats()

    def on_read(self, segment_id: int, offset: int, size: int) -> bool:
        """Process one read; returns True when served from the window."""
        if size <= 0 or offset < 0:
            raise ConfigError("reads need positive size and offset >= 0")
        state = self._segments.setdefault(segment_id, _SegmentState())
        cfg = self.config

        hit = state.armed and state.window_start <= offset < state.window_end
        if hit:
            self.stats.read_hits += 1
        else:
            self.stats.read_misses += 1

        # Sequential-run detection.
        sequential = (
            state.last_end >= 0
            and 0 <= offset - state.last_end <= cfg.max_gap_bytes
        )
        large = size >= cfg.min_read_bytes
        if sequential and large:
            state.run_length += 1
        elif large:
            state.run_length = 1
        else:
            state.run_length = 0
        state.last_end = offset + size

        if state.run_length >= cfg.trigger_run:
            # (Re)position the window just ahead of the stream.
            new_end = state.last_end + cfg.window_bytes
            if new_end > state.window_end:
                self.stats.prefetched_bytes += new_end - max(
                    state.window_end, state.last_end
                )
            state.window_start = state.last_end
            state.window_end = new_end
        return hit

    def on_write(self, segment_id: int, offset: int, size: int) -> None:
        """Writes never hit; they also invalidate an overlapping window."""
        if size <= 0 or offset < 0:
            raise ConfigError("writes need positive size and offset >= 0")
        self.stats.writes += 1
        state = self._segments.get(segment_id)
        if state is not None and state.armed:
            if offset < state.window_end and offset + size > state.window_start:
                state.window_start = state.window_end = -1

    def replay(self, traces: TraceDataset) -> PrefetchStats:
        """Feed a trace (time-ordered) through the prefetcher."""
        order = np.argsort(traces.timestamp, kind="stable")
        segments = traces.segment_id[order]
        offsets = traces.offset_bytes[order]
        sizes = traces.size_bytes[order]
        ops = traces.op[order]
        for seg, off, size, op in zip(segments, offsets, sizes, ops):
            if op == int(OpKind.READ):
                self.on_read(int(seg), int(off), int(size))
            else:
                self.on_write(int(seg), int(off), int(size))
        return self.stats
