"""CN-cache vs BS-cache placement comparison (§7.3.2, Fig 7(b)-(d)).

Both locations run a frozen cache over each *cacheable* VD's hottest block
(cacheable: hottest-block access rate above a threshold, 25% in the paper).

- **Latency gain**: per direction, the ratio of the latency percentile with
  the cache to the percentile without it (lower is better).  A CN-cache hit
  never leaves the compute node; a BS-cache hit crosses the frontend but
  skips the ChunkServer and backend network.
- **Cache space utilization**: caches are provisioned per node, so the
  spread of cacheable-VD counts across nodes measures over-provisioning.
  CN-cache spreads worse than BS-cache because one compute node can host
  many hot VDs while another hosts none.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.cache.hotspot import HottestBlock, hottest_block
from repro.cluster.latency import LatencyModel
from repro.trace.dataset import TraceDataset
from repro.trace.records import OpKind
from repro.util.errors import ConfigError
from repro.workload.fleet import Fleet


@dataclass(frozen=True)
class CachePlacementConfig:
    """Parameters of the placement study."""

    block_bytes: int = 2048 * 1024 * 1024
    access_rate_threshold: float = 0.25

    def __post_init__(self) -> None:
        if self.block_bytes <= 0:
            raise ConfigError("block_bytes must be positive")
        if not 0.0 < self.access_rate_threshold < 1.0:
            raise ConfigError("access_rate_threshold must be in (0, 1)")


def find_cacheable_blocks(
    traces: TraceDataset,
    fleet: Fleet,
    config: CachePlacementConfig,
) -> "Dict[int, HottestBlock]":
    """Hottest blocks of every cacheable VD, keyed by vd_id."""
    blocks: Dict[int, HottestBlock] = {}
    for vd in fleet.vds:
        block = hottest_block(
            traces, vd.vd_id, config.block_bytes, vd.capacity_bytes
        )
        if block is not None and block.access_rate >= config.access_rate_threshold:
            blocks[vd.vd_id] = block
    return blocks


def latency_gain(
    traces: TraceDataset,
    fleet: Fleet,
    location: str,
    latency_model: LatencyModel,
    rng: np.random.Generator,
    config: CachePlacementConfig = CachePlacementConfig(),
    percentiles: "tuple[float, ...]" = (0.0, 50.0, 99.0),
    direction: str = "read",
) -> "Optional[Dict[float, float]]":
    """Percentile latency gains (with/without) for one cache location.

    Returns ``{percentile: gain}`` over the traced IOs of cacheable VDs,
    or None when no VD qualifies or the direction has no IOs.
    """
    if direction not in ("read", "write"):
        raise ConfigError("direction must be 'read' or 'write'")
    blocks = find_cacheable_blocks(traces, fleet, config)
    if not blocks:
        return None
    vd_ids = np.fromiter(blocks.keys(), dtype=np.int64)
    mask = np.isin(traces.vd_id, vd_ids)
    op = int(OpKind.WRITE) if direction == "write" else int(OpKind.READ)
    mask &= traces.op == op
    if not mask.any():
        return None
    subset = traces.where(mask)

    starts = np.array([blocks[int(vd)].start_byte for vd in subset.vd_id])
    ends = np.array([blocks[int(vd)].end_byte for vd in subset.vd_id])
    hits = (subset.offset_bytes >= starts) & (subset.offset_bytes < ends)

    without = subset.latency_us
    with_cache = without.copy()
    if hits.any():
        with_cache[hits] = latency_model.cached_latency(
            rng,
            subset.op[hits].astype(bool),
            subset.size_bytes[hits],
            location,
        )
    gains: Dict[float, float] = {}
    for percentile in percentiles:
        baseline = float(np.percentile(without, percentile))
        cached = float(np.percentile(with_cache, percentile))
        gains[percentile] = cached / baseline if baseline > 0 else 1.0
    return gains


def cacheable_vd_counts(
    traces: TraceDataset,
    fleet: Fleet,
    location: str,
    storage_placement: "Dict[int, int]",
    config: CachePlacementConfig = CachePlacementConfig(),
) -> List[int]:
    """Cacheable-VD count per node for one cache location.

    For ``"compute_node"`` a VD counts toward the node hosting its VM; for
    ``"block_server"`` it counts toward the BS holding the segment its
    hottest block lives in (``storage_placement`` is the segment -> BS map).
    Every node appears, including those with zero cacheable VDs — the zeros
    are precisely the wasted provisioned cache.
    """
    if location not in ("compute_node", "block_server"):
        raise ConfigError(
            "location must be 'compute_node' or 'block_server', "
            f"got {location!r}"
        )
    blocks = find_cacheable_blocks(traces, fleet, config)
    if location == "compute_node":
        counts = {node: 0 for node in range(fleet.config.num_compute_nodes)}
        for vd_id in blocks:
            vm = fleet.vms[fleet.vds[vd_id].vm_id]
            counts[vm.compute_node_id] += 1
    else:
        counts = {bs: 0 for bs in range(fleet.config.num_block_servers)}
        segment_bytes = fleet.config.segment_bytes
        for vd_id, block in blocks.items():
            vd = fleet.vds[vd_id]
            seg_index = min(
                block.start_byte // segment_bytes, vd.num_segments - 1
            )
            seg_id = vd.first_segment_id + seg_index
            counts[storage_placement[seg_id]] += 1
    return [counts[key] for key in sorted(counts)]
