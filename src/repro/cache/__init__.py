"""Caching across the EBS stack (§7).

- :mod:`repro.cache.base` — the page-cache interface and hit/miss stats;
- :mod:`repro.cache.fifo` / :mod:`repro.cache.lru` — the classic
  eviction policies of Fig 7(a);
- :mod:`repro.cache.frozen` — the FrozenHot-style frozen cache: pin the
  hottest LBA region, never evict;
- :mod:`repro.cache.hotspot` — hottest-block analysis over the trace data
  (access rate, LBA share, write dominance, hot rate — Fig 6);
- :mod:`repro.cache.simulate` — trace-driven cache simulation and hit
  ratios (Fig 7(a));
- :mod:`repro.cache.fastreplay` — array-based replay fast paths, exactly
  equivalent to the scalar ``Cache.access`` reference;
- :mod:`repro.cache.placement` — CN-cache vs BS-cache comparison:
  latency gain and cache-space utilization (Fig 7(b)-(d)).
"""

from repro.cache.base import Cache, CacheStats
from repro.cache.fastreplay import (
    PreparedPages,
    fifo_hit_count,
    frozen_hit_count,
    lru_hit_count,
    prepare_pages,
    replay_many,
    replay_trace_fast,
)
from repro.cache.fifo import FifoCache
from repro.cache.frozen import FrozenCache
from repro.cache.hotspot import (
    HottestBlock,
    hot_rate,
    hottest_block,
    hottest_block_wr_ratio,
)
from repro.cache.hybrid import HybridCacheConfig, latency_gain_hybrid
from repro.cache.prefetch import (
    PrefetchConfig,
    PrefetchStats,
    SequentialPrefetcher,
)
from repro.cache.lru import LruCache
from repro.cache.placement import (
    CachePlacementConfig,
    cacheable_vd_counts,
    latency_gain,
)
from repro.cache.simulate import simulate_vd_cache, simulate_vd_caches

__all__ = [
    "Cache",
    "CacheStats",
    "FifoCache",
    "FrozenCache",
    "HottestBlock",
    "hot_rate",
    "hottest_block",
    "hottest_block_wr_ratio",
    "HybridCacheConfig",
    "latency_gain_hybrid",
    "PrefetchConfig",
    "PrefetchStats",
    "SequentialPrefetcher",
    "LruCache",
    "CachePlacementConfig",
    "cacheable_vd_counts",
    "latency_gain",
    "simulate_vd_cache",
    "simulate_vd_caches",
    "PreparedPages",
    "fifo_hit_count",
    "frozen_hit_count",
    "lru_hit_count",
    "prepare_pages",
    "replay_many",
    "replay_trace_fast",
]
