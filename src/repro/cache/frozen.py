"""The frozen cache (FrozenHot-style, §7.3.1).

A frozen cache pins a fixed page set — here the VD's hottest LBA block —
and never evicts.  This removes all cache-management overhead (no metadata
updates, no eviction) at the cost of zero adaptivity: accesses outside the
frozen range always miss.  The paper finds it competitive with LRU only
once the frozen region is large (≈2 GiB), which suits persistent
flash/PMEM caches.
"""

from __future__ import annotations

import numpy as np

from repro.cache.base import Cache
from repro.util.errors import ConfigError


class FrozenCache(Cache):
    """Caches exactly the pages in ``[start_page, start_page + capacity)``."""

    def __init__(self, capacity_pages: int, start_page: int):
        super().__init__(capacity_pages)
        if start_page < 0:
            raise ConfigError(f"start_page must be non-negative, got {start_page}")
        self.start_page = start_page

    @classmethod
    def for_byte_range(
        cls, start_byte: int, length_bytes: int, page_bytes: int = 4096
    ) -> "FrozenCache":
        """Freeze the pages covering a byte range (e.g. the hottest block)."""
        if page_bytes <= 0:
            raise ConfigError("page_bytes must be positive")
        if length_bytes <= 0:
            raise ConfigError("length_bytes must be positive")
        start_page = start_byte // page_bytes
        end_page = -(-(start_byte + length_bytes) // page_bytes)
        return cls(capacity_pages=end_page - start_page, start_page=start_page)

    def _lookup_and_admit(self, page: int) -> bool:
        # No admission: residency is fixed at construction.
        return page in self

    def __contains__(self, page: int) -> bool:
        return self.start_page <= page < self.start_page + self.capacity_pages

    def contains_pages(self, pages: np.ndarray) -> np.ndarray:
        """Vectorized residency check: bool array, one entry per page id."""
        pages = np.asarray(pages)
        return (pages >= self.start_page) & (
            pages < self.start_page + self.capacity_pages
        )

    def __len__(self) -> int:
        return self.capacity_pages

    def _page_state(self) -> int:
        """Residency is the fixed range; its start pins it exactly."""
        return self.start_page

    def _load_page_state(self, state: int) -> None:
        if int(state) != self.start_page:
            raise ConfigError(
                f"state start_page {state} != cache start_page "
                f"{self.start_page}"
            )
