"""Trace-driven cache simulation (§7.3.1, Fig 7(a)).

Replays one VD's IO trace (time-ordered) through a cache with 4 KiB pages.
The paper sizes each policy's cache to the hottest-block size and anchors
the frozen cache at the hottest block's LBA.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.cache.base import Cache
from repro.cache.fastreplay import (
    pages_in_time_order,
    prepare_pages,
    replay_many,
)
from repro.cache.fifo import FifoCache
from repro.cache.frozen import FrozenCache
from repro.cache.hotspot import hottest_block
from repro.cache.lru import LruCache
from repro.trace.dataset import TraceDataset

PAGE_BYTES = 4096


def replay_trace(cache: Cache, traces: TraceDataset) -> float:
    """Feed every traced IO through ``cache`` in time order; returns hit ratio.

    Multi-page IOs touch only their first page (the paper traces one offset
    per IO); the simplification affects all policies identically.

    This is the scalar **reference** implementation; the array-based
    equivalent lives in :mod:`repro.cache.fastreplay` and is pinned
    bit-identical to this path by tests.
    """
    if len(traces) == 0:
        return 0.0
    order = np.argsort(traces.timestamp, kind="stable")
    offsets = traces.offset_bytes[order]
    writes = traces.op[order].astype(bool)
    pages = offsets // PAGE_BYTES
    for page, is_write in zip(pages, writes):
        cache.access(int(page), bool(is_write))
    return cache.stats.hit_ratio


def simulate_vd_cache(
    traces: TraceDataset,
    vd_id: int,
    block_bytes: int,
    capacity_bytes: int,
    fast: bool = True,
) -> "Dict[str, float] | None":
    """Hit ratios of FIFO, LRU, and the frozen cache for one VD.

    All three caches get the same capacity (the block size, in pages); the
    frozen cache is anchored at the hottest block.  Returns None when the
    VD has no traced IOs.  ``fast=False`` pins the scalar reference replay
    (the default fast path produces identical ratios).
    """
    out = simulate_vd_caches(
        traces, vd_id, (block_bytes,), capacity_bytes, fast=fast
    )
    return None if out is None else out[block_bytes]


def simulate_vd_caches(
    traces: TraceDataset,
    vd_id: int,
    block_bytes_list: Sequence[int],
    capacity_bytes: int,
    fast: bool = True,
) -> "Dict[int, Dict[str, float]] | None":
    """:func:`simulate_vd_cache` for several block sizes at once.

    Slicing the fleet-sized dataset down to one VD and preparing its page
    stream (time sort, duplicate compression, previous-occurrence index)
    both cost more than a single replay — doing them once per VD instead
    of once per (VD, block size, policy) is where the fast path's
    fleet-scale speedup comes from.  Returns ``{block_bytes: {policy:
    hit_ratio}}``, or None when the VD has no traced IOs.
    """
    vd_traces = traces.for_vd(vd_id)
    if len(vd_traces) == 0:
        return None
    prepared = (
        prepare_pages(pages_in_time_order(vd_traces)) if fast else None
    )
    out: "Dict[int, Dict[str, float]]" = {}
    for block_bytes in block_bytes_list:
        block = hottest_block(
            traces, vd_id, block_bytes, capacity_bytes, vd_traces=vd_traces
        )
        capacity_pages = max(1, block_bytes // PAGE_BYTES)
        caches: Dict[str, Cache] = {
            "fifo": FifoCache(capacity_pages),
            "lru": LruCache(capacity_pages),
            "frozen": FrozenCache.for_byte_range(
                block.start_byte, block.block_bytes, PAGE_BYTES
            ),
        }
        if fast:
            out[block_bytes] = replay_many(caches, vd_traces, prepared)
        else:
            out[block_bytes] = {
                name: replay_trace(cache, vd_traces)
                for name, cache in caches.items()
            }
    return out
