"""Deterministic tree-merge of per-shard pass-1 outputs.

Each time shard yields a :class:`ShardPart`: two load-grid windows and
the raw metric-table columns for seconds ``[t0, t1)``.  Adjacent parts
are combined pairwise up a binary tree — grids concatenate along time
(windows are disjoint and contiguous), column chunks concatenate
row-wise — and one canonical sort at the root recovers the exact row
permutation of the monolithic pass.

Why this is byte-identical: the vectorized pass emits metric rows
strictly ordered by ``(entity_id, timestamp)`` with unique key pairs
(the compute table is keyed by ``qp_id``, the storage table by
``segment_id``), and every per-cell grid value is elementwise in time.
So ``np.lexsort((timestamp, entity))`` over the union of shard rows is
not merely *a* deterministic order — it is *the* monolithic order, and
``np.hstack`` of disjoint grid windows is *the* monolithic grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple, TypeVar

import numpy as np

from repro.trace.dataset import ComputeMetricTable, StorageMetricTable
from repro.util.errors import ConfigError

T = TypeVar("T")

#: Sort key column per table: the entity axis the monolithic fast path
#: iterates over in ascending global-id order.
COMPUTE_ENTITY_FIELD = "qp_id"
STORAGE_ENTITY_FIELD = "segment_id"


@dataclass
class ShardPart:
    """One time shard's pass-1 output, in window coordinates.

    ``compute_cols`` / ``storage_cols`` hold full-run timestamps already
    (the windowed pass offsets them by ``t0`` at append time); the grids
    cover only ``[t0, t1)`` columns.
    """

    t0: int
    t1: int
    wt_load: np.ndarray
    bs_load: np.ndarray
    compute_cols: Dict[str, np.ndarray]
    storage_cols: Dict[str, np.ndarray]


def tree_reduce(items: Sequence[T], combine: Callable[[T, T], T]) -> T:
    """Reduce ``items`` pairwise up a binary tree, preserving order.

    ``((a+b) + (c+d))`` instead of ``(((a+b)+c)+d)``: the shape lets a
    parallel driver merge results as siblings complete while staying
    reproducible, because adjacent pairing is a function of the index
    only.  Requires ``combine`` to be associative over ordered,
    adjacent operands (true for disjoint-window concatenation).
    """
    parts = list(items)
    if not parts:
        raise ConfigError("tree_reduce needs at least one item")
    while len(parts) > 1:
        nxt: List[T] = []
        for i in range(0, len(parts) - 1, 2):
            nxt.append(combine(parts[i], parts[i + 1]))
        if len(parts) % 2:
            nxt.append(parts[-1])
        parts = nxt
    return parts[0]


def _concat_columns(
    a: Dict[str, np.ndarray], b: Dict[str, np.ndarray]
) -> Dict[str, np.ndarray]:
    out: Dict[str, np.ndarray] = {}
    for name in a:
        left, right = a[name], b[name]
        if not right.size:
            out[name] = left
        elif not left.size:
            out[name] = right
        else:
            out[name] = np.concatenate([left, right])
    return out


def _combine_adjacent(a: ShardPart, b: ShardPart) -> ShardPart:
    if a.t1 != b.t0:
        raise ConfigError(
            f"shard windows not adjacent: [{a.t0},{a.t1}) + [{b.t0},{b.t1})"
        )
    return ShardPart(
        t0=a.t0,
        t1=b.t1,
        wt_load=np.hstack([a.wt_load, b.wt_load]),
        bs_load=np.hstack([a.bs_load, b.bs_load]),
        compute_cols=_concat_columns(a.compute_cols, b.compute_cols),
        storage_cols=_concat_columns(a.storage_cols, b.storage_cols),
    )


def canonical_order(cols: Dict[str, np.ndarray], entity_field: str) -> None:
    """Permute ``cols`` in place into monolithic row order.

    Primary key ascending entity id, secondary ascending timestamp —
    exactly the order the single-shot vectorized pass emits (entities in
    ascending global-id chunks; within an entity, ``np.nonzero`` scans
    seconds ascending).  Key pairs are unique, so the permutation is
    total and independent of the pre-sort shard order.
    """
    if not cols["timestamp"].size:
        return
    perm = np.lexsort((cols["timestamp"], cols[entity_field]))
    for name, column in cols.items():
        cols[name] = column[perm]


def merge_shard_parts(
    parts: Sequence[ShardPart],
) -> Tuple[np.ndarray, np.ndarray, ComputeMetricTable, StorageMetricTable]:
    """Tree-merge shard parts into full-run grids and metric tables.

    ``parts`` must be in ascending shard (time-window) order and cover
    the run contiguously; the result is bitwise equal to running pass 1
    once over the whole horizon.
    """
    merged = tree_reduce(parts, _combine_adjacent)
    canonical_order(merged.compute_cols, COMPUTE_ENTITY_FIELD)
    canonical_order(merged.storage_cols, STORAGE_ENTITY_FIELD)
    compute_table = ComputeMetricTable(**merged.compute_cols)
    storage_table = StorageMetricTable(**merged.storage_cols)
    return merged.wt_load, merged.bs_load, compute_table, storage_table
