"""Canonical result digests: the streaming determinism contract's yardstick.

``result_digest`` hashes every trace column, both metric tables'
columns, and both load grids of a :class:`SimulationResult` — dtypes
included, since ``tobytes`` covers the raw buffer.  A streamed run is
correct iff its digest equals the monolithic run's for the same seed,
which is exactly what the parity tests and the nightly CI job assert.

``snapshot_digest`` does the same for a telemetry snapshot's *metrics*
section (counters / gauges / histograms).  Spans are excluded on
purpose: their wall-clock durations differ between runs by nature, and
the streaming engine opens differently-shaped spans; the determinism
contract covers measured values, not measured time.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict

import numpy as np

#: Metric namespaces covered by the streaming telemetry-parity contract.
#: Engine-internal bookkeeping lives under ``engine.*`` and is allowed
#: to differ from a monolithic run.
PARITY_METRIC_PREFIXES = ("sim.", "workload.")


def result_digest(result) -> str:
    """SHA-256 over a result's traces, metric tables, and load grids."""
    h = hashlib.sha256()
    for name in sorted(result.traces.columns()):
        h.update(name.encode())
        h.update(
            np.ascontiguousarray(result.traces.columns()[name]).tobytes()
        )
    for table in (result.metrics.compute, result.metrics.storage):
        for name in sorted(table.columns()):
            h.update(name.encode())
            h.update(np.ascontiguousarray(table.columns()[name]).tobytes())
    h.update(np.ascontiguousarray(result.wt_load_bps).tobytes())
    h.update(np.ascontiguousarray(result.bs_load_bps).tobytes())
    return h.hexdigest()


def parity_metrics(snapshot: dict) -> Dict[str, list]:
    """The metric series a streamed run must reproduce exactly.

    Filters a telemetry snapshot's metrics down to the contract
    namespaces (:data:`PARITY_METRIC_PREFIXES`) and to list-valued
    kinds, dropping spans and any engine-internal series.
    """
    out: Dict[str, list] = {}
    for kind, series in (snapshot.get("metrics") or {}).items():
        if not isinstance(series, list):
            continue
        kept = [
            entry
            for entry in series
            if str(entry.get("name", "")).startswith(PARITY_METRIC_PREFIXES)
        ]
        if kept:
            out[kind] = sorted(
                kept, key=lambda e: json.dumps(e, sort_keys=True)
            )
    return out


def snapshot_digest(snapshot: dict) -> str:
    """SHA-256 over the contract metrics of a telemetry snapshot."""
    payload = json.dumps(parity_metrics(snapshot), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()
