"""The streaming executor: bounded-memory runs, bit-identical results.

:class:`StreamingSimulator` wraps an :class:`EBSSimulator` and replays
its exact pipeline out-of-core:

1. **Spill** — workload generation proceeds in fleet-order VD batches
   (:meth:`WorkloadGenerator.iter_batches`); each batch's series are cut
   at epoch multiples and written to a :class:`ShardStore`, then dropped
   from RAM.  Per-entity weight vectors (small) accumulate incrementally.
2. **Pass 1, shard by shard** — each time shard reloads its
   ``(num_vds, L)`` series window and runs the *same* vectorized pass
   the monolithic path uses (:meth:`EBSSimulator._pass1_fast` with
   ``stacked``/``t0``), yielding a :class:`ShardPart`.
3. **Tree-merge** — parts combine pairwise
   (:func:`repro.engine.merge.merge_shard_parts`) into full-run load
   grids and canonically ordered metric tables; pass-1 telemetry is
   recorded once post-merge, exactly like a monolithic run.
4. **Pass 2, batch by batch** — sampled traces reload one VD batch at a
   time (optionally fanned out over worker processes that open the
   store themselves); per-VD columns feed
   :meth:`EBSSimulator._collect_trace_columns` in fleet order.

Fault-plan runs with churn need the full stacked matrices for
``timeline.adjust`` and therefore materialize traffic up front — the
documented memory trade-off; their pass 1 still streams over
window-sliced :class:`FaultAdjustedInputs`.

The determinism contract: for a fixed seed, any ``chunk_epochs`` /
``vd_batch_size`` / ``workers`` choice produces a result whose
:func:`repro.engine.digest.result_digest` — and whose ``sim.*`` /
``workload.*`` telemetry metrics — equal the monolithic run's.
"""

from __future__ import annotations

import tempfile
from dataclasses import replace
from typing import List, Optional

import numpy as np

from repro.cluster.simulator import (
    EBSSimulator,
    SimulationResult,
    _trace_chunk_worker,
)
from repro.engine.arena import Arena
from repro.engine.merge import ShardPart, merge_shard_parts
from repro.engine.plan import EPOCH_SECONDS, StreamPlan, plan_for
from repro.engine.shards import ShardStore, StreamedTraffic, purge_store
from repro.faults.timeline import FaultAdjustedInputs
from repro.obs.runtime import get_telemetry, peak_rss_bytes
from repro.trace.dataset import MetricDataset, SpecDataset
from repro.util.errors import ConfigError
from repro.workload.generator import VdTraffic, WorkloadGenerator

from concurrent.futures import ProcessPoolExecutor


def _pass2_batch_worker(
    payload: "tuple[EBSSimulator, str, int, np.ndarray, np.ndarray, np.ndarray, np.ndarray, bool]",
):
    """Module-level pass-2 worker that reloads its own VD batch.

    The payload ships only ids and grids; the batch's traffic comes out
    of the shard store inside the child, so the parent never holds more
    than its own working batch.  Reuses the monolithic chunk worker for
    the actual per-VD work (and its telemetry-snapshot protocol).
    """
    (
        simulator, store_dir, batch, qp_to_wt, seg_to_bs,
        wt_load, bs_load, telemetry_on,
    ) = payload
    chunk = ShardStore.open(store_dir).traffic_batch(batch)
    return _trace_chunk_worker((
        simulator, chunk, qp_to_wt, seg_to_bs, wt_load, bs_load,
        telemetry_on,
    ))


def _window_adjusted(
    adjusted: FaultAdjustedInputs, t0: int, t1: int
) -> FaultAdjustedInputs:
    """Slice fault-adjusted inputs to one shard window.

    Per-second series slice along time; ``seg_bs_ep`` stays whole (it is
    epoch-indexed) and ``epoch_index`` slices so ``ep_idx[ts]`` inside
    the windowed pass resolves the same epoch a monolithic pass sees at
    second ``t0 + ts``.
    """
    return replace(
        adjusted,
        qp_rb=adjusted.qp_rb[:, t0:t1],
        qp_wb=adjusted.qp_wb[:, t0:t1],
        qp_ri=adjusted.qp_ri[:, t0:t1],
        qp_wi=adjusted.qp_wi[:, t0:t1],
        seg_rb=adjusted.seg_rb[:, t0:t1],
        seg_wb=adjusted.seg_wb[:, t0:t1],
        seg_ri=adjusted.seg_ri[:, t0:t1],
        seg_wi=adjusted.seg_wi[:, t0:t1],
        epoch_index=adjusted.epoch_index[t0:t1],
    )


class StreamingSimulator:
    """Run one :class:`EBSSimulator` out-of-core against a shard store."""

    def __init__(
        self,
        simulator: EBSSimulator,
        chunk_epochs: int,
        shard_dir: "Optional[str]" = None,
        max_rss_mb: "Optional[int]" = None,
        epoch_seconds: int = EPOCH_SECONDS,
        vd_batch_size: "Optional[int]" = None,
        series_format: str = "raw",
        series_dtype: str = "float64",
    ):
        if simulator._redundancy is not None:
            raise ConfigError(
                "the streaming engine does not support non-trivial "
                "redundancy (r>1 / ec or a non-primary read policy); run "
                "monolithic, or use redundancy=None / 'r=1' with the "
                "primary policy"
            )
        self._sim = simulator
        self.plan: StreamPlan = plan_for(
            duration_seconds=simulator.config.duration_seconds,
            num_vds=len(simulator.fleet.vds),
            chunk_epochs=chunk_epochs,
            epoch_seconds=epoch_seconds,
            max_rss_mb=max_rss_mb,
            vd_batch_size=vd_batch_size,
            series_itemsize=np.dtype(series_dtype).itemsize,
        )
        #: True when we created a temp dir and own its cleanup.
        self.owns_directory = shard_dir is None
        self._directory = (
            tempfile.mkdtemp(prefix="repro-shards-")
            if shard_dir is None
            else str(shard_dir)
        )
        self.store = ShardStore(
            self._directory,
            self.plan,
            series_format=series_format,
            series_dtype=series_dtype,
        )
        #: Scratch buffers reused across shard reloads (never shipped to
        #: worker processes; see :class:`repro.engine.arena.Arena`).
        self._arena = Arena()

    # -- lifecycle -----------------------------------------------------------

    def cleanup(self) -> None:
        """Delete the shard store if this run created a temp directory."""
        if self.owns_directory:
            purge_store(self._directory)

    # -- phase 1: spill ------------------------------------------------------

    def _spill(self, generator: WorkloadGenerator) -> "tuple[np.ndarray, ...]":
        """Generate + spill every VD batch; return stacked weight vectors."""
        fleet = self._sim.fleet
        telemetry = get_telemetry()
        qp_rw = np.zeros(len(fleet.queue_pairs))
        qp_ww = np.zeros(len(fleet.queue_pairs))
        seg_rw = np.zeros(len(fleet.segments))
        seg_ww = np.zeros(len(fleet.segments))
        batch_index = 0
        for start, batch in generator.iter_batches(self.plan.vd_batch_size):
            if batch and batch[0].vd_id != start:
                raise ConfigError(
                    "fleet VD ids are not contiguous fleet-order indexes; "
                    "the shard store's row order would be wrong"
                )
            with telemetry.span(
                "engine.spill.batch",
                dc=fleet.config.dc_id,
                batch=batch_index,
                vds=len(batch),
            ):
                self.store.spill_batch(batch_index, batch)
            for tr in batch:
                vd = fleet.vds[tr.vd_id]
                qs = slice(
                    vd.first_qp_id, vd.first_qp_id + vd.num_queue_pairs
                )
                qp_rw[qs] = tr.qp_read_weights
                qp_ww[qs] = tr.qp_write_weights
                ss = slice(
                    vd.first_segment_id,
                    vd.first_segment_id + vd.num_segments,
                )
                seg_rw[ss] = tr.segment_read_weights
                seg_ww[ss] = tr.segment_write_weights
            batch_index += 1
        if telemetry.enabled:
            telemetry.counter(
                "engine.batches_spilled", dc=fleet.config.dc_id
            ).inc(batch_index)
        weights = (qp_rw, qp_ww, seg_rw, seg_ww)
        self.store.finalize(weights)
        return weights

    # -- phase 2/3: sharded pass 1 + tree merge ------------------------------

    def _pass1_streamed(
        self,
        qp_to_wt: np.ndarray,
        seg_to_bs: np.ndarray,
        adjusted: "Optional[FaultAdjustedInputs]",
    ):
        sim = self._sim
        telemetry = get_telemetry()
        dc = sim.fleet.config.dc_id
        weights = self.store.stacked_weights()
        timeline = sim._timeline
        parts: List[ShardPart] = []
        for shard in range(self.plan.num_shards):
            t0, t1 = self.plan.shard_bounds(shard)
            with telemetry.span(
                "engine.pass1.shard", dc=dc, shard=shard, t0=t0, t1=t1
            ):
                if adjusted is not None:
                    # Thread the fault carry-over across the boundary:
                    # the drain memo round-trips and the epoch cursor
                    # pins where this shard re-enters the epoch grid.
                    if timeline is not None:
                        timeline.restore_state(timeline.save_state())
                        telemetry.gauge(
                            "engine.pass1.epoch_cursor", dc=dc
                        ).set(timeline.epoch_cursor(t0))
                    window = _window_adjusted(adjusted, t0, t1)
                    wt_load, bs_load, cbuf, sbuf = sim._pass1_fast(
                        None, qp_to_wt, seg_to_bs, adjusted=window, t0=t0
                    )
                else:
                    series = self.store.series_for_shard(
                        shard, arena=self._arena
                    )
                    wt_load, bs_load, cbuf, sbuf = sim._pass1_fast(
                        None,
                        qp_to_wt,
                        seg_to_bs,
                        stacked=series + weights,
                        t0=t0,
                    )
                parts.append(ShardPart(
                    t0=t0,
                    t1=t1,
                    wt_load=wt_load,
                    bs_load=bs_load,
                    compute_cols=cbuf.concatenated(),
                    storage_cols=sbuf.concatenated(),
                ))
        with telemetry.span("engine.merge", dc=dc, shards=len(parts)):
            wt_load, bs_load, compute_table, storage_table = (
                merge_shard_parts(parts)
            )
        # Recorded once, post-merge: metric parity with the monolithic
        # run_pass1 holds for any chunk_epochs choice.
        sim._record_pass1_telemetry(
            wt_load, bs_load, compute_table, storage_table, fast=True
        )
        return wt_load, bs_load, compute_table, storage_table

    # -- phase 4: batch-wise pass 2 ------------------------------------------

    def _pass2_streamed(
        self,
        qp_to_wt: np.ndarray,
        seg_to_bs: np.ndarray,
        wt_load: np.ndarray,
        bs_load: np.ndarray,
        workers: int,
        traffic_list: "Optional[List[VdTraffic]]",
    ):
        sim = self._sim
        telemetry = get_telemetry()
        dc = sim.fleet.config.dc_id

        def batch_traffic(batch: int) -> List[VdTraffic]:
            if traffic_list is not None:
                v0, v1 = self.plan.batch_bounds(batch)
                return traffic_list[v0:v1]
            return self.store.traffic_batch(batch)

        if workers <= 1:
            def columns_in_order():
                for batch in range(self.plan.num_batches):
                    with telemetry.span(
                        "engine.pass2.batch", dc=dc, batch=batch
                    ):
                        for vd_traffic in batch_traffic(batch):
                            yield sim._trace_columns_for_vd(
                                vd_traffic, qp_to_wt, seg_to_bs,
                                wt_load, bs_load,
                            )
            return sim._collect_trace_columns(columns_in_order())

        # Fan batches out over processes, and merge snapshots in batch
        # order — counters are integer-valued, so the merged metrics
        # equal the sequential run's byte for byte.  Fault-free workers
        # reload their batch from the store themselves (the payload
        # carries only ids + grids); fault runs already hold the
        # materialized list, so they ship slices like the monolithic
        # worker path does.
        if traffic_list is None:
            payloads = [
                (
                    sim, str(self._directory), batch, qp_to_wt, seg_to_bs,
                    wt_load, bs_load, telemetry.enabled,
                )
                for batch in range(self.plan.num_batches)
            ]
            worker = _pass2_batch_worker
        else:
            payloads = [
                (
                    sim, batch_traffic(batch), qp_to_wt, seg_to_bs,
                    wt_load, bs_load, telemetry.enabled,
                )
                for batch in range(self.plan.num_batches)
            ]
            worker = _trace_chunk_worker
        with ProcessPoolExecutor(
            max_workers=min(workers, len(payloads))
        ) as pool:
            chunk_results = list(pool.map(worker, payloads))
        for _, snapshot in chunk_results:
            telemetry.merge_snapshot(snapshot)
        return sim._collect_trace_columns(
            columns for chunk, _ in chunk_results for columns in chunk
        )

    # -- the full streamed run -----------------------------------------------

    def run(self, workers: int = 1) -> SimulationResult:
        """Execute the wrapped simulation out-of-core.

        Byte-identical to :meth:`EBSSimulator.run` for the same seed —
        same datasets, same grids, same ``sim.*``/``workload.*`` metric
        totals — for any ``workers`` / plan geometry.
        """
        from repro.cluster.hypervisor import HypervisorSet
        from repro.cluster.storage import StorageCluster

        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        sim = self._sim
        fleet = sim.fleet
        cfg = sim.config
        telemetry = get_telemetry()
        dc = fleet.config.dc_id

        hypervisors = HypervisorSet(fleet)
        storage = StorageCluster(fleet)
        generator = WorkloadGenerator(
            fleet,
            cfg.duration_seconds,
            sim._rngs,
            diurnal_amplitude=cfg.diurnal_amplitude,
        )
        with telemetry.span(
            "engine.spill",
            dc=dc,
            vds=len(fleet.vds),
            shards=self.plan.num_shards,
            batches=self.plan.num_batches,
        ):
            self._spill(generator)

        qp_to_wt, seg_to_bs = sim.bindings(hypervisors, storage)

        # Fault churn needs the full stacked matrices for timeline.adjust:
        # materialize once and keep the list for pass 2 / the result.
        # Fault-free runs stay bounded.
        traffic_list: Optional[List[VdTraffic]] = None
        timeline = sim._timeline
        if timeline is not None and timeline.has_churn:
            traffic_list = self.store.materialize()
        adjusted = (
            sim.fault_adjusted_inputs(traffic_list, qp_to_wt, seg_to_bs)
            if traffic_list is not None
            else None
        )

        wt_load, bs_load, compute_table, storage_table = (
            self._pass1_streamed(qp_to_wt, seg_to_bs, adjusted)
        )
        metrics = MetricDataset(
            compute=compute_table,
            storage=storage_table,
            duration_seconds=cfg.duration_seconds,
        )

        traces, trace_fault_stats = self._pass2_streamed(
            qp_to_wt, seg_to_bs, wt_load, bs_load, workers, traffic_list
        )

        specs = SpecDataset(
            vd_specs=[fleet.vd_spec(vd.vd_id) for vd in fleet.vds],
            vm_specs=[fleet.vm_spec(vm.vm_id) for vm in fleet.vms],
        )
        faults = sim._finalize_faults(
            hypervisors, storage, adjusted, traces, trace_fault_stats
        )
        if telemetry.enabled:
            telemetry.gauge("engine.peak_rss_bytes", dc=dc).set_max(
                peak_rss_bytes()
            )
        traffic = (
            traffic_list
            if traffic_list is not None
            else StreamedTraffic(self.store)
        )
        return SimulationResult(
            fleet=fleet,
            config=cfg,
            metrics=metrics,
            traces=traces,
            specs=specs,
            hypervisors=hypervisors,
            storage=storage,
            traffic=traffic,  # type: ignore[arg-type]
            wt_load_bps=wt_load,
            bs_load_bps=bs_load,
            faults=faults,
        )
