"""Streaming, sharded execution: fleet-scale studies in bounded memory.

The engine cuts a run along two axes — time (epoch-aligned shards) and
the VD axis (fleet-order batches) — spills generated traffic to a
columnar on-disk store, and re-runs the simulator's own vectorized
passes over reloaded windows.  A deterministic tree-merge then
reassembles full-run outputs that are **byte-identical** to a
single-shot run for any ``--chunk-epochs`` / ``--workers`` choice.

Module map::

    plan      StreamPlan geometry (pure arithmetic, property-tested)
    arena     reusable scratch buffers for kernels and shard reloads
    shards    on-disk ShardStore (npz or raw/mmap) + StreamedTraffic view
    state     carry-over save/restore drivers (buckets, caches, faults)
    merge     ShardPart tree-merge with the canonical row order
    digest    result / telemetry-snapshot digests (the parity yardstick)
    executor  StreamingSimulator: the out-of-core pipeline itself
"""

from repro.engine.arena import Arena
from repro.engine.digest import result_digest, snapshot_digest
from repro.engine.executor import StreamingSimulator
from repro.engine.merge import ShardPart, merge_shard_parts, tree_reduce
from repro.engine.plan import EPOCH_SECONDS, StreamPlan, plan_for
from repro.engine.shards import (
    SERIES_DTYPES,
    SERIES_FORMATS,
    ShardStore,
    StreamedTraffic,
    purge_store,
)
from repro.engine.state import (
    cut_series,
    replay_pages_streamed,
    shape_streamed,
)

__all__ = [
    "Arena",
    "EPOCH_SECONDS",
    "SERIES_DTYPES",
    "SERIES_FORMATS",
    "ShardPart",
    "ShardStore",
    "StreamPlan",
    "StreamedTraffic",
    "StreamingSimulator",
    "cut_series",
    "merge_shard_parts",
    "plan_for",
    "purge_store",
    "replay_pages_streamed",
    "result_digest",
    "shape_streamed",
    "snapshot_digest",
    "tree_reduce",
]
