"""Carry-over state threading across shard boundaries.

Bounded-memory execution cuts a run into time shards, which forces
every stateful component to expose explicit save/restore:

* token buckets carry ``(tokens, backlog)``
  (:class:`repro.throttle.tokenbucket.TokenBucketState`),
* caches carry residency + recency + stats
  (:meth:`repro.cache.base.Cache.state_dict`),
* fault timelines carry their drain-queue memo tables and an epoch
  cursor (:meth:`repro.faults.timeline.FaultTimeline.save_state`).

The drivers here run a component chunk by chunk, checkpointing at
every cut and **proving the checkpoint** by restoring it into the live
object before the next chunk.  Their outputs are bitwise equal to the
unchunked call for any cut placement — the property the
``tests/engine`` carry-over suite hammers on.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.cache.base import Cache
from repro.cache.fastreplay import replay_pages_resumable
from repro.throttle.tokenbucket import ShapedTraffic, TokenBucket
from repro.util.errors import ConfigError


def cut_series(series: np.ndarray, cuts: Sequence[int]) -> List[np.ndarray]:
    """Split a 1-D series at ``cuts`` (strictly increasing interior cuts)."""
    series = np.asarray(series)
    if series.ndim != 1:
        raise ConfigError("series must be 1-D")
    previous = 0
    for cut in cuts:
        if not previous < cut < series.size:
            raise ConfigError(
                f"cuts must be strictly increasing interior points, "
                f"got {list(cuts)} for length {series.size}"
            )
        previous = cut
    return np.split(series, list(cuts))


def shape_streamed(
    bucket: TokenBucket, chunks: Iterable[np.ndarray]
) -> ShapedTraffic:
    """Shape an offered series chunk by chunk through one bucket.

    The first chunk starts fresh (exactly like :meth:`TokenBucket.shape`
    on the whole series); each boundary saves the bucket state, restores
    it, and continues with ``fresh=False``.  The concatenated result is
    bitwise equal to the monolithic call: the per-second recurrence only
    depends on ``(tokens, backlog)``, which round-trip verbatim.
    """
    delivered: List[np.ndarray] = []
    backlog: List[np.ndarray] = []
    throttled: List[np.ndarray] = []
    first = True
    for chunk in chunks:
        if not first:
            # Checkpoint/restore at the cut: proves the saved state is
            # sufficient to resume (a worker handoff would do exactly
            # this across processes).
            bucket.restore_state(bucket.save_state())
        shaped = bucket.shape(np.asarray(chunk), fresh=first)
        first = False
        delivered.append(shaped.delivered)
        backlog.append(shaped.backlog)
        throttled.append(shaped.throttled)
    if first:
        raise ConfigError("shape_streamed needs at least one chunk")
    return ShapedTraffic(
        delivered=np.concatenate(delivered),
        backlog=np.concatenate(backlog),
        throttled=np.concatenate(throttled),
    )


def replay_pages_streamed(
    cache: Cache, chunks: Iterable[np.ndarray]
) -> Tuple[int, int]:
    """Replay page chunks through a live cache with boundary checkpoints.

    Returns ``(hits, accesses)``.  At every cut the cache is snapshotted
    with :meth:`Cache.state_dict` and the snapshot is restored before
    the next chunk, so the total equals the unchunked stateful replay
    for any cut placement — residency, recency order, and stats
    included.
    """
    hits = 0
    accesses = 0
    first = True
    for chunk in chunks:
        if not first:
            cache.load_state_dict(cache.state_dict())
        first = False
        chunk = np.asarray(chunk, dtype=np.int64)
        hits += replay_pages_resumable(cache, chunk)
        accesses += int(chunk.size)
    return hits, accesses
