"""Reusable buffer arena for the fused pass-1 kernels and shard reloads.

A hot streamed run calls the same kernels once per (shard, chunk); every
call used to allocate the same handful of large temporaries (tens to
hundreds of MiB at ``xlarge``) just to free them microseconds later.
:class:`Arena` keeps one flat backing buffer per call-site name and hands
out shaped views into it, so steady-state epochs run allocation-free.

Correctness notes:

- a view is only valid until the next :meth:`take` with the same name —
  callers must fully consume (or copy out of) a buffer before reusing
  its slot, which the pass-1 loop structure guarantees;
- buffers are handed back *uninitialized* (the previous call's bytes);
  every kernel writes each cell before reading it, so values — and
  therefore result digests — are independent of the arena's history;
- arenas never travel to worker processes: pickling one yields a fresh
  empty arena (the buffers are pure scratch, and shipping hundreds of
  MiB of garbage through a ``ProcessPoolExecutor`` would defeat the
  point).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np


class Arena:
    """Named, capacity-grown scratch buffers handed out as shaped views."""

    def __init__(self) -> None:
        self._buffers: Dict[str, np.ndarray] = {}

    def take(
        self,
        name: str,
        shape: "Tuple[int, ...]",
        dtype: "np.dtype | type" = np.float64,
    ) -> np.ndarray:
        """A C-contiguous ``shape``/``dtype`` view backed by slot ``name``.

        The backing buffer grows monotonically to the largest byte size
        ever requested for the slot and is reused for every smaller (or
        equal) request.  Contents are unspecified — treat it like
        ``np.empty``.
        """
        dtype = np.dtype(dtype)
        needed = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        buf = self._buffers.get(name)
        if buf is None or buf.nbytes < needed:
            buf = np.empty(max(needed, 1), dtype=np.uint8)
            self._buffers[name] = buf
        return buf[:needed].view(dtype).reshape(shape)

    def nbytes(self) -> int:
        """Total bytes currently held across all slots."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def release(self) -> None:
        """Drop every backing buffer (the arena stays usable)."""
        self._buffers.clear()

    def __reduce__(self):
        # Scratch state never crosses process boundaries: a pickled
        # arena reconstructs empty on the other side.
        return (Arena, ())
