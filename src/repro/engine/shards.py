"""The on-disk shard store behind out-of-core execution.

Layout of one store directory::

    manifest.json                 # schema, plan geometry, vd ids
    series_s0003_b0001.npz        # 5 x (batch_vds, shard_len) float64
    static_b0001.pkl              # per-VD weights / LBA model / sizes
    weights.npz                   # stacked per-entity weight vectors

Series are written as raw float64 ``np.savez`` blocks, so a reloaded
slice is bitwise equal to the generated one; the per-VD static payload
(weight vectors, the :class:`HotspotLbaModel` with its draw-time state,
mean IO sizes) is pickled once, at the same lifecycle point the
monolithic run reaches pass 2 with — which is what makes a reloaded
:class:`VdTraffic` indistinguishable from the original.
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.plan import StreamPlan
from repro.util.errors import ConfigError
from repro.workload.generator import VdTraffic

SHARD_SCHEMA_VERSION = 1

_SERIES_FIELDS = (
    "read_bytes", "write_bytes", "read_iops", "write_iops",
    "hot_fraction_series",
)
_STATIC_FIELDS = (
    "vd_id", "qp_read_weights", "qp_write_weights",
    "segment_read_weights", "segment_write_weights",
    "lba_model", "mean_read_size_bytes", "mean_write_size_bytes",
)


class ShardStore:
    """Columnar spill/reload of per-VD traffic, cut by (shard, batch)."""

    def __init__(self, directory: "str | Path", plan: StreamPlan):
        self.directory = Path(directory)
        self.plan = plan

    # -- paths ---------------------------------------------------------------

    def _series_path(self, shard: int, batch: int) -> Path:
        return self.directory / f"series_s{shard:04d}_b{batch:04d}.npz"

    def _static_path(self, batch: int) -> Path:
        return self.directory / f"static_b{batch:04d}.pkl"

    @property
    def manifest_path(self) -> Path:
        return self.directory / "manifest.json"

    @property
    def weights_path(self) -> Path:
        return self.directory / "weights.npz"

    # -- writing -------------------------------------------------------------

    def spill_batch(self, batch: int, traffic: List[VdTraffic]) -> None:
        """Write one VD batch: time-sliced series + the static payload."""
        self.directory.mkdir(parents=True, exist_ok=True)
        v0, v1 = self.plan.batch_bounds(batch)
        if len(traffic) != v1 - v0:
            raise ConfigError(
                f"batch {batch} expects {v1 - v0} VDs, got {len(traffic)}"
            )
        for shard in range(self.plan.num_shards):
            t0, t1 = self.plan.shard_bounds(shard)
            arrays = {
                field: np.stack(
                    [getattr(tr, field)[t0:t1] for tr in traffic]
                )
                for field in _SERIES_FIELDS
            }
            with open(self._series_path(shard, batch), "wb") as fh:
                np.savez(fh, **arrays)
        static = [
            {field: getattr(tr, field) for field in _STATIC_FIELDS}
            for tr in traffic
        ]
        with open(self._static_path(batch), "wb") as fh:
            pickle.dump(static, fh, protocol=pickle.HIGHEST_PROTOCOL)

    def finalize(
        self,
        stacked_weights: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    ) -> None:
        """Write the per-entity weight vectors and the manifest."""
        qp_rw, qp_ww, seg_rw, seg_ww = stacked_weights
        with open(self.weights_path, "wb") as fh:
            np.savez(
                fh, qp_rw=qp_rw, qp_ww=qp_ww, seg_rw=seg_rw, seg_ww=seg_ww
            )
        plan = self.plan
        self.manifest_path.write_text(json.dumps({
            "schema_version": SHARD_SCHEMA_VERSION,
            "duration_seconds": plan.duration_seconds,
            "epoch_seconds": plan.epoch_seconds,
            "chunk_epochs": plan.chunk_epochs,
            "num_vds": plan.num_vds,
            "vd_batch_size": plan.vd_batch_size,
            "num_shards": plan.num_shards,
            "num_batches": plan.num_batches,
        }, indent=2) + "\n")

    # -- reading -------------------------------------------------------------

    @classmethod
    def open(cls, directory: "str | Path") -> "ShardStore":
        """Open a finalized store from its manifest (e.g. in a worker)."""
        directory = Path(directory)
        try:
            manifest = json.loads((directory / "manifest.json").read_text())
        except FileNotFoundError:
            raise ConfigError(f"no shard store at {directory}")
        if manifest.get("schema_version") != SHARD_SCHEMA_VERSION:
            raise ConfigError(
                f"shard store schema {manifest.get('schema_version')} "
                f"!= supported {SHARD_SCHEMA_VERSION}"
            )
        plan = StreamPlan(
            duration_seconds=manifest["duration_seconds"],
            epoch_seconds=manifest["epoch_seconds"],
            chunk_epochs=manifest["chunk_epochs"],
            num_vds=manifest["num_vds"],
            vd_batch_size=manifest["vd_batch_size"],
        )
        return cls(directory, plan)

    def stacked_weights(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        with np.load(self.weights_path) as z:
            return z["qp_rw"], z["qp_ww"], z["seg_rw"], z["seg_ww"]

    def series_for_shard(
        self, shard: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(read_b, write_b, read_i, write_i)`` as (num_vds, L) blocks.

        Rows are in VD-id order (batches are contiguous fleet-order
        ranges), so each matrix is bitwise equal to the corresponding
        time slice of the monolithic stacked series.
        """
        parts = {field: [] for field in _SERIES_FIELDS[:4]}
        for batch in range(self.plan.num_batches):
            with np.load(self._series_path(shard, batch)) as z:
                for field in parts:
                    parts[field].append(z[field])
        out = tuple(
            np.vstack(parts[field]) for field in _SERIES_FIELDS[:4]
        )
        return out  # type: ignore[return-value]

    def traffic_batch(self, batch: int) -> List[VdTraffic]:
        """Reassemble one batch of full-duration :class:`VdTraffic`.

        Time slices concatenate back to the exact original arrays and the
        static payload unpickles to the exact spill-time object state, so
        pass 2 draws the same streams it would have drawn monolithically.
        """
        with open(self._static_path(batch), "rb") as fh:
            static = pickle.load(fh)
        slices: Dict[str, List[np.ndarray]] = {
            field: [] for field in _SERIES_FIELDS
        }
        for shard in range(self.plan.num_shards):
            with np.load(self._series_path(shard, batch)) as z:
                for field in slices:
                    slices[field].append(z[field])
        series = {
            field: np.concatenate(slices[field], axis=1)
            for field in slices
        }
        out: List[VdTraffic] = []
        for row, payload in enumerate(static):
            out.append(VdTraffic(
                **payload,
                **{field: series[field][row] for field in _SERIES_FIELDS},
            ))
        return out

    def materialize(self) -> List[VdTraffic]:
        """Every VD's traffic, in fleet order (defeats the memory bound)."""
        out: List[VdTraffic] = []
        for batch in range(self.plan.num_batches):
            out.extend(self.traffic_batch(batch))
        return out


class StreamedTraffic:
    """Lazy ``Sequence[VdTraffic]`` view over a :class:`ShardStore`.

    Stands in for ``SimulationResult.traffic`` after a streamed run:
    experiments iterate (or index) it like the materialized list, but only
    a small window of batches is resident at a time.  Values are bitwise
    equal to the monolithic list's, so any analysis downstream is
    unchanged.
    """

    def __init__(self, store: ShardStore, cached_batches: int = 2):
        self._store = store
        self._cached_batches = max(1, int(cached_batches))
        self._cache: "Dict[int, List[VdTraffic]]" = {}
        self._lru: List[int] = []

    def __len__(self) -> int:
        return self._store.plan.num_vds

    def _batch(self, batch: int) -> List[VdTraffic]:
        if batch in self._cache:
            self._lru.remove(batch)
            self._lru.append(batch)
            return self._cache[batch]
        loaded = self._store.traffic_batch(batch)
        self._cache[batch] = loaded
        self._lru.append(batch)
        while len(self._lru) > self._cached_batches:
            evicted = self._lru.pop(0)
            del self._cache[evicted]
        return loaded

    def __getitem__(self, index: int) -> VdTraffic:
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        batch, offset = divmod(index, self._store.plan.vd_batch_size)
        return self._batch(batch)[offset]

    def __iter__(self):
        for batch in range(self._store.plan.num_batches):
            yield from self._batch(batch)

    def materialize(self) -> List[VdTraffic]:
        return self._store.materialize()


def purge_store(directory: "str | Path") -> None:
    """Delete a store's files (used for --shard-dir temp cleanup)."""
    directory = Path(directory)
    if not directory.is_dir():
        return
    for path in directory.iterdir():
        if path.name == "manifest.json" or path.suffix in (".npz", ".pkl"):
            path.unlink()
    try:
        directory.rmdir()
    except OSError:
        pass
