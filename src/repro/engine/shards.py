"""The on-disk shard store behind out-of-core execution.

Layout of one store directory::

    manifest.json                 # schema, plan geometry, series format
    series_s0003_b0001.npz        # npz format: 5 named (batch_vds, shard_len)
    series_s0003_b0001.npy        # raw format: one (5, batch_vds, shard_len)
    static_b0001.pkl              # per-VD weights / LBA model / sizes
    weights.npz                   # stacked per-entity weight vectors

Two series formats coexist (``manifest.json`` records which one a store
uses, so readers autodetect it):

- ``"npz"`` — the original format: five named float64 arrays per
  (shard, batch), zip-framed by ``np.savez``.  Robust and compact-ish,
  but every read pays a full deserialize + copy.
- ``"raw"`` — one plain ``.npy`` per (shard, batch) holding a single
  ``(5, batch_vds, shard_len)`` block.  Readers open it with
  ``np.load(..., mmap_mode="r")``: the kernel pages bytes in lazily and
  pool workers share the page cache instead of each materializing their
  own copy.  At float64 a raw store round-trips bitwise, so run digests
  are identical to the npz path's.

The raw format optionally stores series as float32 (``series_dtype``),
halving disk and resident bytes.  The cast is lossy: results are still
fully deterministic, but digests differ from float64 runs — callers opt
in explicitly and re-pin their golden digests (see
docs/architecture.md).

The per-VD static payload (weight vectors, the :class:`HotspotLbaModel`
with its draw-time state, mean IO sizes) is pickled once, at the same
lifecycle point the monolithic run reaches pass 2 with — which is what
makes a reloaded :class:`VdTraffic` indistinguishable from the original.
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.arena import Arena
from repro.engine.plan import StreamPlan
from repro.util.errors import ConfigError
from repro.workload.generator import VdTraffic

#: Version 2 added ``series_format`` / ``series_dtype``; version-1 stores
#: (always npz/float64) remain readable.
SHARD_SCHEMA_VERSION = 2
_READABLE_SCHEMA_VERSIONS = (1, 2)

SERIES_FORMATS = ("npz", "raw")
SERIES_DTYPES = ("float64", "float32")

_SERIES_FIELDS = (
    "read_bytes", "write_bytes", "read_iops", "write_iops",
    "hot_fraction_series",
)
_STATIC_FIELDS = (
    "vd_id", "qp_read_weights", "qp_write_weights",
    "segment_read_weights", "segment_write_weights",
    "lba_model", "mean_read_size_bytes", "mean_write_size_bytes",
)


def _check_series_options(series_format: str, series_dtype: str) -> None:
    if series_format not in SERIES_FORMATS:
        raise ConfigError(
            f"unknown series format {series_format!r}; "
            f"choose from {SERIES_FORMATS}"
        )
    if series_dtype not in SERIES_DTYPES:
        raise ConfigError(
            f"unknown series dtype {series_dtype!r}; "
            f"choose from {SERIES_DTYPES}"
        )
    if series_dtype == "float32" and series_format != "raw":
        raise ConfigError(
            "float32 series storage requires the raw series format "
            "(npz stores are float64-only)"
        )


class ShardStore:
    """Columnar spill/reload of per-VD traffic, cut by (shard, batch)."""

    def __init__(
        self,
        directory: "str | Path",
        plan: StreamPlan,
        series_format: str = "npz",
        series_dtype: str = "float64",
    ):
        _check_series_options(series_format, series_dtype)
        self.directory = Path(directory)
        self.plan = plan
        self.series_format = series_format
        self.series_dtype = series_dtype

    @property
    def _dtype(self) -> np.dtype:
        return np.dtype(self.series_dtype)

    # -- paths ---------------------------------------------------------------

    def _series_path(self, shard: int, batch: int) -> Path:
        suffix = "npy" if self.series_format == "raw" else "npz"
        return self.directory / f"series_s{shard:04d}_b{batch:04d}.{suffix}"

    def _static_path(self, batch: int) -> Path:
        return self.directory / f"static_b{batch:04d}.pkl"

    @property
    def manifest_path(self) -> Path:
        return self.directory / "manifest.json"

    @property
    def weights_path(self) -> Path:
        return self.directory / "weights.npz"

    # -- writing -------------------------------------------------------------

    def spill_batch(self, batch: int, traffic: List[VdTraffic]) -> None:
        """Write one VD batch: time-sliced series + the static payload."""
        self.directory.mkdir(parents=True, exist_ok=True)
        v0, v1 = self.plan.batch_bounds(batch)
        if len(traffic) != v1 - v0:
            raise ConfigError(
                f"batch {batch} expects {v1 - v0} VDs, got {len(traffic)}"
            )
        for shard in range(self.plan.num_shards):
            t0, t1 = self.plan.shard_bounds(shard)
            if self.series_format == "raw":
                block = np.empty(
                    (len(_SERIES_FIELDS), len(traffic), t1 - t0),
                    dtype=self._dtype,
                )
                for fi, field in enumerate(_SERIES_FIELDS):
                    for vi, tr in enumerate(traffic):
                        block[fi, vi] = getattr(tr, field)[t0:t1]
                with open(self._series_path(shard, batch), "wb") as fh:
                    np.save(fh, block)
            else:
                arrays = {
                    field: np.stack(
                        [getattr(tr, field)[t0:t1] for tr in traffic]
                    )
                    for field in _SERIES_FIELDS
                }
                with open(self._series_path(shard, batch), "wb") as fh:
                    np.savez(fh, **arrays)
        static = [
            {field: getattr(tr, field) for field in _STATIC_FIELDS}
            for tr in traffic
        ]
        with open(self._static_path(batch), "wb") as fh:
            pickle.dump(static, fh, protocol=pickle.HIGHEST_PROTOCOL)

    def finalize(
        self,
        stacked_weights: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    ) -> None:
        """Write the per-entity weight vectors and the manifest."""
        qp_rw, qp_ww, seg_rw, seg_ww = stacked_weights
        with open(self.weights_path, "wb") as fh:
            np.savez(
                fh, qp_rw=qp_rw, qp_ww=qp_ww, seg_rw=seg_rw, seg_ww=seg_ww
            )
        plan = self.plan
        self.manifest_path.write_text(json.dumps({
            "schema_version": SHARD_SCHEMA_VERSION,
            "series_format": self.series_format,
            "series_dtype": self.series_dtype,
            "duration_seconds": plan.duration_seconds,
            "epoch_seconds": plan.epoch_seconds,
            "chunk_epochs": plan.chunk_epochs,
            "num_vds": plan.num_vds,
            "vd_batch_size": plan.vd_batch_size,
            "num_shards": plan.num_shards,
            "num_batches": plan.num_batches,
        }, indent=2) + "\n")

    # -- reading -------------------------------------------------------------

    @classmethod
    def open(cls, directory: "str | Path") -> "ShardStore":
        """Open a finalized store from its manifest (e.g. in a worker).

        The series format/dtype come from the manifest, so readers work
        against either format without being told which; version-1
        manifests (pre-raw) imply npz/float64.
        """
        directory = Path(directory)
        try:
            manifest = json.loads((directory / "manifest.json").read_text())
        except FileNotFoundError:
            raise ConfigError(f"no shard store at {directory}")
        version = manifest.get("schema_version")
        if version not in _READABLE_SCHEMA_VERSIONS:
            raise ConfigError(
                f"shard store schema {version} not in supported "
                f"{_READABLE_SCHEMA_VERSIONS}"
            )
        plan = StreamPlan(
            duration_seconds=manifest["duration_seconds"],
            epoch_seconds=manifest["epoch_seconds"],
            chunk_epochs=manifest["chunk_epochs"],
            num_vds=manifest["num_vds"],
            vd_batch_size=manifest["vd_batch_size"],
        )
        return cls(
            directory,
            plan,
            series_format=manifest.get("series_format", "npz"),
            series_dtype=manifest.get("series_dtype", "float64"),
        )

    def stacked_weights(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        with np.load(self.weights_path) as z:
            return z["qp_rw"], z["qp_ww"], z["seg_rw"], z["seg_ww"]

    def _raw_block(self, shard: int, batch: int) -> np.ndarray:
        """One raw (5, batch_vds, shard_len) block as a read-only memmap."""
        return np.load(self._series_path(shard, batch), mmap_mode="r")

    def series_for_shard(
        self, shard: int, arena: "Optional[Arena]" = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(read_b, write_b, read_i, write_i)`` as (num_vds, L) blocks.

        Rows are in VD-id order (batches are contiguous fleet-order
        ranges), so each matrix is bitwise equal to the corresponding
        time slice of the monolithic stacked series (after the storage
        dtype's cast, for float32 stores).

        Raw single-batch stores return zero-copy memmap views; raw
        multi-batch stores copy batch rows into one destination block
        per field (arena-reused when ``arena`` is given).  npz stores
        keep the original load-and-vstack path.
        """
        if self.series_format == "raw":
            if self.plan.num_batches == 1:
                mm = self._raw_block(shard, 0)
                return mm[0], mm[1], mm[2], mm[3]
            t0, t1 = self.plan.shard_bounds(shard)
            shape = (self.plan.num_vds, t1 - t0)
            if arena is not None:
                out = tuple(
                    arena.take(f"shards.series.{field}", shape, self._dtype)
                    for field in _SERIES_FIELDS[:4]
                )
            else:
                out = tuple(
                    np.empty(shape, dtype=self._dtype)
                    for _ in _SERIES_FIELDS[:4]
                )
            for batch in range(self.plan.num_batches):
                v0, v1 = self.plan.batch_bounds(batch)
                mm = self._raw_block(shard, batch)
                for fi in range(4):
                    np.copyto(out[fi][v0:v1], mm[fi])
            return out  # type: ignore[return-value]
        parts = {field: [] for field in _SERIES_FIELDS[:4]}
        for batch in range(self.plan.num_batches):
            with np.load(self._series_path(shard, batch)) as z:
                for field in parts:
                    parts[field].append(z[field])
        out = tuple(
            np.vstack(parts[field]) for field in _SERIES_FIELDS[:4]
        )
        return out  # type: ignore[return-value]

    def traffic_batch(self, batch: int) -> List[VdTraffic]:
        """Reassemble one batch of full-duration :class:`VdTraffic`.

        Time slices concatenate back to the exact original arrays (modulo
        the storage dtype) and the static payload unpickles to the exact
        spill-time object state, so pass 2 draws the same streams it
        would have drawn monolithically.
        """
        with open(self._static_path(batch), "rb") as fh:
            static = pickle.load(fh)
        if self.series_format == "raw":
            v0, v1 = self.plan.batch_bounds(batch)
            block = np.empty(
                (
                    len(_SERIES_FIELDS),
                    v1 - v0,
                    self.plan.duration_seconds,
                ),
                dtype=self._dtype,
            )
            for shard in range(self.plan.num_shards):
                t0, t1 = self.plan.shard_bounds(shard)
                np.copyto(block[:, :, t0:t1], self._raw_block(shard, batch))
            series = {
                field: block[fi] for fi, field in enumerate(_SERIES_FIELDS)
            }
        else:
            slices: Dict[str, List[np.ndarray]] = {
                field: [] for field in _SERIES_FIELDS
            }
            for shard in range(self.plan.num_shards):
                with np.load(self._series_path(shard, batch)) as z:
                    for field in slices:
                        slices[field].append(z[field])
            series = {
                field: np.concatenate(slices[field], axis=1)
                for field in slices
            }
        out: List[VdTraffic] = []
        for row, payload in enumerate(static):
            out.append(VdTraffic(
                **payload,
                **{field: series[field][row] for field in _SERIES_FIELDS},
            ))
        return out

    def materialize(self) -> List[VdTraffic]:
        """Every VD's traffic, in fleet order (defeats the memory bound)."""
        out: List[VdTraffic] = []
        for batch in range(self.plan.num_batches):
            out.extend(self.traffic_batch(batch))
        return out


class StreamedTraffic:
    """Lazy ``Sequence[VdTraffic]`` view over a :class:`ShardStore`.

    Stands in for ``SimulationResult.traffic`` after a streamed run:
    experiments iterate (or index) it like the materialized list, but only
    a small window of batches is resident at a time.  Values are bitwise
    equal to the monolithic list's, so any analysis downstream is
    unchanged.
    """

    def __init__(self, store: ShardStore, cached_batches: int = 2):
        self._store = store
        self._cached_batches = max(1, int(cached_batches))
        self._cache: "Dict[int, List[VdTraffic]]" = {}
        self._lru: List[int] = []

    def __len__(self) -> int:
        return self._store.plan.num_vds

    def _batch(self, batch: int) -> List[VdTraffic]:
        if batch in self._cache:
            self._lru.remove(batch)
            self._lru.append(batch)
            return self._cache[batch]
        loaded = self._store.traffic_batch(batch)
        self._cache[batch] = loaded
        self._lru.append(batch)
        while len(self._lru) > self._cached_batches:
            evicted = self._lru.pop(0)
            del self._cache[evicted]
        return loaded

    def __getitem__(self, index: int) -> VdTraffic:
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        batch, offset = divmod(index, self._store.plan.vd_batch_size)
        return self._batch(batch)[offset]

    def __iter__(self):
        for batch in range(self._store.plan.num_batches):
            yield from self._batch(batch)

    def materialize(self) -> List[VdTraffic]:
        return self._store.materialize()


def purge_store(directory: "str | Path") -> None:
    """Delete a store's files (used for --shard-dir temp cleanup)."""
    directory = Path(directory)
    if not directory.is_dir():
        return
    for path in directory.iterdir():
        # .npy covers the raw series format (regression: raw stores used
        # to leave their series blocks behind and the rmdir failed).
        if path.name == "manifest.json" or path.suffix in (
            ".npz", ".npy", ".pkl"
        ):
            path.unlink()
    try:
        directory.rmdir()
    except OSError:
        pass
