"""Shard planning: how a run is cut along time and along the VD axis.

A :class:`StreamPlan` is pure arithmetic — no IO, no simulator state —
so it can be built identically in the parent and in worker processes,
and property-tested in isolation.  Time is cut at epoch multiples
(:data:`EPOCH_SECONDS` by default): a shard spans ``chunk_epochs``
epochs, the last shard is ragged.  VDs are cut into contiguous
fleet-order batches, which keeps every spilled series block a contiguous
row range of the stacked ``(vd, second)`` matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.util.errors import ConfigError

#: The engine's natural time quantum: one minute of simulated traffic.
#: Matches the paper's per-minute aggregation windows, and divides every
#: preset duration (small 400s is the one ragged case).
EPOCH_SECONDS = 60

#: Default VD-batch sizing target: series bytes held live per batch.
_DEFAULT_BATCH_BYTES = 64 * 2**20
#: Series per (VD, second): rb, wb, ri, wi, hot.
_SERIES_PER_VD = 5
#: Bytes per (VD, second) at the default float64 storage dtype.
_SERIES_BYTES_PER_SECOND = _SERIES_PER_VD * 8


@dataclass(frozen=True)
class StreamPlan:
    """Shard and batch boundaries for one streamed run."""

    duration_seconds: int
    epoch_seconds: int
    chunk_epochs: int
    num_vds: int
    vd_batch_size: int

    def __post_init__(self) -> None:
        if self.duration_seconds <= 0:
            raise ConfigError("duration_seconds must be positive")
        if self.epoch_seconds <= 0:
            raise ConfigError("epoch_seconds must be positive")
        if self.chunk_epochs < 1:
            raise ConfigError(
                f"chunk_epochs must be >= 1, got {self.chunk_epochs}"
            )
        if self.num_vds < 1:
            raise ConfigError("num_vds must be >= 1")
        if self.vd_batch_size < 1:
            raise ConfigError("vd_batch_size must be >= 1")

    @property
    def shard_seconds(self) -> int:
        return self.epoch_seconds * self.chunk_epochs

    @property
    def num_shards(self) -> int:
        return -(-self.duration_seconds // self.shard_seconds)

    @property
    def num_batches(self) -> int:
        return -(-self.num_vds // self.vd_batch_size)

    def shard_bounds(self, shard: int) -> Tuple[int, int]:
        """Half-open ``[t0, t1)`` second range of one shard."""
        if not 0 <= shard < self.num_shards:
            raise ConfigError(f"shard {shard} out of range")
        t0 = shard * self.shard_seconds
        return t0, min(t0 + self.shard_seconds, self.duration_seconds)

    def batch_bounds(self, batch: int) -> Tuple[int, int]:
        """Half-open ``[v0, v1)`` VD-index range of one batch."""
        if not 0 <= batch < self.num_batches:
            raise ConfigError(f"batch {batch} out of range")
        v0 = batch * self.vd_batch_size
        return v0, min(v0 + self.vd_batch_size, self.num_vds)

    def all_shard_bounds(self) -> List[Tuple[int, int]]:
        return [self.shard_bounds(i) for i in range(self.num_shards)]

    def all_batch_bounds(self) -> List[Tuple[int, int]]:
        return [self.batch_bounds(b) for b in range(self.num_batches)]


def plan_for(
    duration_seconds: int,
    num_vds: int,
    chunk_epochs: int,
    epoch_seconds: int = EPOCH_SECONDS,
    max_rss_mb: "int | None" = None,
    vd_batch_size: "int | None" = None,
    series_itemsize: int = 8,
) -> StreamPlan:
    """Build a :class:`StreamPlan`, sizing VD batches from a memory target.

    ``max_rss_mb`` is an advisory ceiling: the batch size is chosen so
    one batch of full-duration series stays within a quarter of it
    (leaving headroom for the pass-1 window temporaries and the merged
    tables).  It never changes *results* — only how much lives in RAM at
    once — so any value is digest-identical to any other.

    ``series_itemsize`` is the on-disk bytes per series value (8 for
    float64 stores, 4 for the opt-in float32 raw format), so halving the
    storage dtype doubles the VDs per batch under the same ceiling.
    """
    if series_itemsize <= 0:
        raise ConfigError(
            f"series_itemsize must be positive, got {series_itemsize}"
        )
    if vd_batch_size is None:
        budget = (
            max_rss_mb * 2**20 // 4
            if max_rss_mb is not None
            else _DEFAULT_BATCH_BYTES
        )
        per_vd = max(
            1, duration_seconds * _SERIES_PER_VD * series_itemsize
        )
        vd_batch_size = max(1, min(num_vds, budget // per_vd))
    return StreamPlan(
        duration_seconds=duration_seconds,
        epoch_seconds=epoch_seconds,
        chunk_epochs=chunk_epochs,
        num_vds=num_vds,
        vd_batch_size=int(vd_batch_size),
    )
