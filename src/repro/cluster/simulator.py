"""The end-to-end EBS simulator producing the DiTing datasets.

``EBSSimulator.run()`` drives every VD's offered load (from
:class:`repro.workload.WorkloadGenerator`) through the stack:

1. QPs are bound to worker threads by the hypervisor's round-robin balancer;
   per-second traffic splits over QPs by the VD's QP weights, yielding the
   compute-domain metric table (one row per active QP-second, Table 1).
2. Traffic splits over segments by the LBA model's segment weights; the
   current segment-to-BS placement yields the storage-domain metric table.
3. A sampled subset of individual IOs becomes the trace dataset: opcodes,
   sizes, LBA offsets from the hotspot model, the stack path, and the five
   per-component latencies (load-dependent via per-second WT/BS utilization).

Rows below the recording thresholds are dropped, mirroring a production
metric pipeline that does not emit all-zero aggregates.

Two implementations of pass 1 (metric tables + load grids) exist:

- the **reference path** iterates VDs and their QPs/segments in Python --
  easy to audit, kept as ground truth;
- the **fast path** (default) stacks the per-VD series into ``(entity,
  second)`` weight matrices and emits rows with one mask per table.  The
  fast path is *bit-identical* to the reference path (same multiplication
  operands, same ``np.add.at`` accumulation order, same row order) and is
  verified by an equivalence test.

Pass 2 (sampled traces) draws per-VD random streams from label-keyed child
RNGs, so it can optionally fan out over a ``ProcessPoolExecutor`` without
changing any output: results are seed-stable regardless of worker count.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.hypervisor import HypervisorSet
from repro.cluster.latency import LatencyConfig, LatencyModel
from repro.cluster.redundancy import (
    READ_POLICY_NAMES,
    RedundancyConfig,
    ReplicaExpansion,
    build_expansion,
    check_plan_compatible,
    redundancy_fault_inputs,
    ring_table,
)
from repro.cluster.storage import StorageCluster
from repro.faults.outcome import (
    FaultOutcome,
    compute_window_stats,
    empty_trace_stats,
    merge_trace_stats,
)
from repro.faults.plan import FaultKind, FaultPlan
from repro.faults.timeline import (
    FaultAccounting,
    FaultAdjustedInputs,
    FaultTimeline,
)
from repro.obs.runtime import Telemetry, get_telemetry, set_telemetry
from repro.trace.dataset import (
    ComputeMetricTable,
    MetricDataset,
    SpecDataset,
    StorageMetricTable,
    TraceDataset,
)
from repro.trace.sampling import TraceSampler
from repro.util.errors import ConfigError
from repro.util.rng import RngFactory
from repro.util.units import GiB
from repro.workload.fleet import Fleet
from repro.workload.generator import VdTraffic, WorkloadGenerator

_MIN_IO_BYTES = 512
_MAX_IO_BYTES = 4 * 1024 * 1024

#: Upper bound on the number of (entity, second) cells materialized at once
#: by the vectorized pass 1; keeps peak memory flat on huge fleets.
_FAST_PASS_CHUNK_CELLS = 4 * 1024 * 1024


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of one simulation run."""

    duration_seconds: int = 1200
    trace_sampling_rate: float = 1.0 / 200.0
    min_record_bytes: float = 1024.0
    min_record_iops: float = 0.5
    diurnal_amplitude: float = 0.3
    latency: LatencyConfig = field(default_factory=LatencyConfig)
    wt_capacity_bps: float = 2.0 * GiB
    bs_capacity_bps: float = 4.0 * GiB
    #: Use the vectorized pass-1 implementation (bit-identical to the
    #: reference loop; see the module docstring).  Exposed so tests and
    #: benchmarks can pin either path.
    use_fast_path: bool = True
    #: Redundancy spec ("r=3" / "ec=4+2"); None (or "r=1") keeps the
    #: single-copy legacy paths byte-identical.
    redundancy: "Optional[str]" = None
    #: Read-assignment policy over a segment's copies (ignored when
    #: redundancy is trivial): primary | least_loaded | power_of_two |
    #: water_filling.
    read_policy: str = "primary"

    def __post_init__(self) -> None:
        if self.duration_seconds <= 0:
            raise ConfigError("duration_seconds must be positive")
        if not 0.0 < self.trace_sampling_rate <= 1.0:
            raise ConfigError("trace_sampling_rate must be in (0, 1]")
        if self.min_record_bytes < 0 or self.min_record_iops < 0:
            raise ConfigError("recording thresholds must be non-negative")
        if self.wt_capacity_bps <= 0 or self.bs_capacity_bps <= 0:
            raise ConfigError("capacities must be positive")
        if self.redundancy is not None:
            RedundancyConfig.parse(self.redundancy)  # raises on bad spec
        if self.read_policy not in READ_POLICY_NAMES:
            raise ConfigError(
                f"unknown read policy {self.read_policy!r}; choose one of "
                f"{', '.join(READ_POLICY_NAMES)}"
            )

    def redundancy_config(self) -> "Optional[RedundancyConfig]":
        """Parsed scheme, or None when redundancy is trivially single-copy
        under the primary policy (the golden-digest-preserving case)."""
        if self.redundancy is None:
            return None
        scheme = RedundancyConfig.parse(self.redundancy)
        if scheme.is_trivial and self.read_policy == "primary":
            return None
        return scheme


@dataclass
class SimulationResult:
    """Everything a study needs downstream of one simulator run."""

    fleet: Fleet
    config: SimulationConfig
    metrics: MetricDataset
    traces: TraceDataset
    specs: SpecDataset
    hypervisors: HypervisorSet
    storage: StorageCluster
    traffic: List[VdTraffic]
    wt_load_bps: np.ndarray  # (num_wts, duration) total bytes/s per WT
    bs_load_bps: np.ndarray  # (num_bs, duration) total bytes/s per BS
    #: Failure attribution; None for failure-free runs, so every existing
    #: dataset, schema, and digest is untouched when no plan is given.
    faults: "Optional[FaultOutcome]" = None


class _ColumnBuffer:
    """Accumulates per-VD column chunks, concatenated once at the end.

    The empty fallback is dtyped per field: an integer column of a
    zero-traffic simulation must still come out as ``int64``, not as the
    float64 ``np.zeros(0)`` default (regression: quiet fleets used to
    yield float columns where the datasets expect ints).
    """

    def __init__(
        self,
        int_fields: "tuple[str, ...]",
        float_fields: "tuple[str, ...]" = (),
    ):
        self._dtypes: Dict[str, np.dtype] = {
            name: np.dtype(np.int64) for name in int_fields
        }
        self._dtypes.update(
            {name: np.dtype(np.float64) for name in float_fields}
        )
        self._chunks: Dict[str, List[np.ndarray]] = {
            name: [] for name in self._dtypes
        }

    def append(self, **chunks: np.ndarray) -> None:
        for name, chunk in chunks.items():
            self._chunks[name].append(np.asarray(chunk))

    def concatenated(self) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {}
        for name, chunks in self._chunks.items():
            if not chunks:
                out[name] = np.zeros(0, dtype=self._dtypes[name])
            elif len(chunks) == 1:
                # Single-chunk columns (the vectorized pass emits one chunk
                # per table) skip the concatenate copy entirely.
                out[name] = chunks[0]
            else:
                out[name] = np.concatenate(chunks)
        return out


def _normalized_probabilities(weights: np.ndarray, label: str) -> np.ndarray:
    """Defensively re-normalize a weight vector for ``rng.choice(p=...)``.

    Upstream weight computation accumulates float drift; ``Generator.choice``
    rejects ``p`` whose sum strays more than ~1e-8 from 1.  Negative or
    non-finite weights indicate a real upstream bug and raise instead.
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1 or w.size == 0:
        raise ConfigError(f"{label} must be a non-empty 1-D vector")
    if not np.all(np.isfinite(w)):
        raise ConfigError(f"{label} must be finite")
    if np.any(w < 0.0):
        raise ConfigError(f"{label} must be non-negative")
    total = float(w.sum())
    if total <= 0.0:
        raise ConfigError(f"{label} must have positive mass")
    return w / total


@dataclass(frozen=True)
class _EntityArrays:
    """Flat per-QP / per-segment metadata, indexed by global entity id."""

    qp_vd: np.ndarray
    qp_vm: np.ndarray
    qp_user: np.ndarray
    qp_node: np.ndarray
    seg_vd: np.ndarray
    seg_vm: np.ndarray
    seg_user: np.ndarray


def _trace_chunk_worker(
    payload: "tuple[EBSSimulator, List[VdTraffic], np.ndarray, np.ndarray, np.ndarray, np.ndarray, bool]",
) -> "tuple[List[Optional[Dict[str, np.ndarray]]], Optional[dict]]":
    """Module-level worker: per-VD trace columns for one chunk of VDs.

    Runs in a child process.  Each VD draws only from its own label-keyed
    RNG streams, so the output is identical no matter how VDs are
    partitioned over workers.  When the parent runs with telemetry
    enabled, the worker installs a fresh handle and ships its snapshot
    back for a deterministic merge (second tuple element, else None).
    """
    (
        simulator, chunk, qp_to_wt, seg_to_bs, wt_load, bs_load, telemetry_on,
    ) = payload
    telemetry = None
    previous = None
    if telemetry_on:
        telemetry = Telemetry(enabled=True)
        previous = set_telemetry(telemetry)
    try:
        with get_telemetry().span(
            "sim.pass2.chunk",
            dc=simulator.fleet.config.dc_id,
            vds=len(chunk),
        ):
            columns = [
                simulator._trace_columns_for_vd(
                    vd_traffic, qp_to_wt, seg_to_bs, wt_load, bs_load
                )
                for vd_traffic in chunk
            ]
    finally:
        if telemetry is not None:
            set_telemetry(previous)
    return columns, telemetry.snapshot() if telemetry is not None else None


class EBSSimulator:
    """Simulates one data center's EBS stack for a fixed duration."""

    def __init__(
        self,
        fleet: Fleet,
        config: SimulationConfig,
        rngs: RngFactory,
        fault_plan: "Optional[FaultPlan]" = None,
    ):
        self.fleet = fleet
        self.config = config
        self._rngs = rngs.child(f"sim/dc{fleet.config.dc_id}")
        self.latency_model = LatencyModel(config.latency)
        self._entities: Optional[_EntityArrays] = None
        #: Scratch-buffer arena for the fused pass-1 kernels, created
        #: lazily (and pickled as empty: it is pure scratch).  One
        #: simulator instance reuses the same buffers across every
        #: pass-1 call — i.e. across all shards of a streamed run.
        self._arena = None
        self.fault_plan = fault_plan
        #: Compiled once; an empty (or absent) plan compiles to None, so
        #: the failure-free paths run exactly today's code.
        self._timeline: Optional[FaultTimeline] = (
            FaultTimeline(fault_plan, fleet, config.duration_seconds)
            if fault_plan is not None and not fault_plan.is_empty
            else None
        )
        #: Parsed redundancy scheme; None when trivial (r=1 + primary),
        #: in which case every legacy code path runs untouched.
        self._redundancy: Optional[RedundancyConfig] = (
            config.redundancy_config()
        )
        if self._redundancy is not None:
            self._redundancy.validate_against(fleet.config.num_block_servers)
            if self._timeline is not None:
                check_plan_compatible(self._timeline)
        #: Replica expansion (placement x read policy), built once per run
        #: by :meth:`prepare_redundancy` after bindings are known.
        self._expansion: Optional[ReplicaExpansion] = None

    # -- helpers -------------------------------------------------------------

    @property
    def _pass1_arena(self):
        """The lazily created kernel arena (import deferred: the engine
        package imports this module, so a top-level import would cycle)."""
        if self._arena is None:
            from repro.engine.arena import Arena

            self._arena = Arena()
        return self._arena

    def _record_mask(
        self, read_b: np.ndarray, write_b: np.ndarray,
        read_i: np.ndarray, write_i: np.ndarray,
    ) -> np.ndarray:
        cfg = self.config
        return (read_b + write_b >= cfg.min_record_bytes) | (
            read_i + write_i >= cfg.min_record_iops
        )

    def bindings(
        self, hypervisors: HypervisorSet, storage: StorageCluster
    ) -> "tuple[np.ndarray, np.ndarray]":
        """(qp -> WT, segment -> BS) binding arrays for the current state."""
        fleet = self.fleet
        qp_to_wt = np.zeros(len(fleet.queue_pairs), dtype=np.int64)
        for qp_id, wt_id in hypervisors.binding_arrays().items():
            qp_to_wt[qp_id] = wt_id
        return qp_to_wt, storage.primary_array()

    def _entity_arrays(self) -> _EntityArrays:
        """Flat per-entity metadata (built once, cached)."""
        if self._entities is not None:
            return self._entities
        fleet = self.fleet
        vd_user = np.fromiter(
            (vd.user_id for vd in fleet.vds), dtype=np.int64,
            count=len(fleet.vds),
        )
        qp_vd = np.fromiter(
            (qp.vd_id for qp in fleet.queue_pairs), dtype=np.int64,
            count=len(fleet.queue_pairs),
        )
        qp_vm = np.fromiter(
            (qp.vm_id for qp in fleet.queue_pairs), dtype=np.int64,
            count=len(fleet.queue_pairs),
        )
        qp_node = np.fromiter(
            (qp.compute_node_id for qp in fleet.queue_pairs), dtype=np.int64,
            count=len(fleet.queue_pairs),
        )
        seg_vd = np.fromiter(
            (seg.vd_id for seg in fleet.segments), dtype=np.int64,
            count=len(fleet.segments),
        )
        vd_vm = np.fromiter(
            (vd.vm_id for vd in fleet.vds), dtype=np.int64,
            count=len(fleet.vds),
        )
        self._entities = _EntityArrays(
            qp_vd=qp_vd,
            qp_vm=qp_vm,
            qp_user=vd_user[qp_vd],
            qp_node=qp_node,
            seg_vd=seg_vd,
            seg_vm=vd_vm[seg_vd],
            seg_user=vd_user[seg_vd],
        )
        return self._entities

    # -- redundancy -----------------------------------------------------------

    def prepare_redundancy(
        self,
        traffic: List[VdTraffic],
        seg_to_bs: np.ndarray,
        table: "Optional[np.ndarray]" = None,
    ) -> "Optional[ReplicaExpansion]":
        """Build the replica expansion for this run's placement + traffic.

        ``table`` is the (num_segments, width) placement table (from
        ``storage.placement``); when omitted it is derived from the
        primary array by ring expansion — the same construction
        :class:`StorageCluster` starts from.  No-op (returns None) when
        redundancy is trivial.
        """
        scheme = self._redundancy
        if scheme is None:
            self._expansion = None
            return None
        fleet = self.fleet
        num_bs = fleet.config.num_block_servers
        if table is None:
            table = ring_table(seg_to_bs, scheme.width, num_bs)
        ent = self._entity_arrays()
        _qp_rw, _qp_ww, seg_rw, seg_ww = self._stacked_weights(traffic)
        vd_read_total = np.zeros(len(fleet.vds))
        vd_write_total = np.zeros(len(fleet.vds))
        for tr in traffic:
            vd_read_total[tr.vd_id] = float(tr.read_bytes.sum())
            vd_write_total[tr.vd_id] = float(tr.write_bytes.sum())
        rng = (
            self._rngs.get("redundancy/policy")
            if self.config.read_policy == "power_of_two"
            else None
        )
        with get_telemetry().span(
            "sim.redundancy.expand",
            dc=fleet.config.dc_id,
            scheme=scheme.spec,
            policy=self.config.read_policy,
        ):
            self._expansion = build_expansion(
                scheme,
                self.config.read_policy,
                table,
                ent.seg_vd,
                ent.seg_vm,
                ent.seg_user,
                seg_rw,
                seg_ww,
                vd_read_total,
                vd_write_total,
                num_bs,
                rng=rng,
            )
        return self._expansion

    # -- pass 1: metric tables + load grids ----------------------------------

    def fault_adjusted_inputs(
        self,
        traffic: List[VdTraffic],
        qp_to_wt: np.ndarray,
        seg_to_bs: np.ndarray,
    ) -> "Optional[FaultAdjustedInputs]":
        """Fault-adjusted per-entity series shared by both pass-1 paths.

        None when there is no plan (or the plan has no crash/stall inside
        the horizon) — the no-fault code paths then run unchanged.
        """
        timeline = self._timeline
        if timeline is None or not timeline.has_churn:
            return None
        t = self.config.duration_seconds
        with get_telemetry().span(
            "sim.faults.adjust",
            dc=self.fleet.config.dc_id,
            events=len(timeline.events),
        ):
            if self._redundancy is not None:
                if self._expansion is None:
                    self.prepare_redundancy(traffic, seg_to_bs)
                return redundancy_fault_inputs(
                    self._expansion,
                    timeline,
                    self._stacked_series(traffic, t),
                    self._stacked_weights(traffic),
                )
            return timeline.adjust(
                traffic,
                qp_to_wt,
                seg_to_bs,
                self._stacked_series(traffic, t),
                self._stacked_weights(traffic),
            )

    def run_pass1(
        self,
        traffic: List[VdTraffic],
        qp_to_wt: np.ndarray,
        seg_to_bs: np.ndarray,
        fast: "bool | None" = None,
        adjusted: "Optional[FaultAdjustedInputs]" = None,
    ) -> "tuple[np.ndarray, np.ndarray, ComputeMetricTable, StorageMetricTable]":
        """Load grids + metric tables; ``fast`` overrides the config knob.

        ``adjusted`` carries precomputed fault-adjusted inputs (so
        :meth:`run` computes them once for both passes and the outcome);
        when omitted they are derived here from the simulator's plan.
        """
        if fast is None:
            fast = self.config.use_fast_path
        if (
            self._redundancy is not None
            and self._expansion is None
            and traffic is not None
        ):
            # Direct pass-1 callers (tests, benches) skip run(): derive
            # the expansion from the primary placement by ring expansion.
            self.prepare_redundancy(traffic, seg_to_bs)
        if adjusted is None:
            adjusted = self.fault_adjusted_inputs(traffic, qp_to_wt, seg_to_bs)
        telemetry = get_telemetry()
        dc = self.fleet.config.dc_id
        with telemetry.span(
            "sim.pass1", dc=dc, path="fast" if fast else "reference"
        ):
            if fast:
                wt_load, bs_load, cbuf, sbuf = self._pass1_fast(
                    traffic, qp_to_wt, seg_to_bs, adjusted
                )
            else:
                wt_load, bs_load, cbuf, sbuf = self._pass1_reference(
                    traffic, qp_to_wt, seg_to_bs, adjusted
                )
            compute_table = ComputeMetricTable(**cbuf.concatenated())
            storage_table = StorageMetricTable(**sbuf.concatenated())
        self._record_pass1_telemetry(
            wt_load, bs_load, compute_table, storage_table, fast=fast
        )
        return wt_load, bs_load, compute_table, storage_table

    def _record_pass1_telemetry(
        self, wt_load, bs_load, compute_table, storage_table, fast: bool
    ) -> None:
        """Pass-1 counters/gauges; the streaming engine calls this once
        after merging its shards so metric parity with the monolithic run
        holds for any ``--chunk-epochs`` choice."""
        telemetry = get_telemetry()
        if not telemetry.enabled:
            return
        dc = self.fleet.config.dc_id
        path = "fast" if fast else "reference"
        telemetry.counter("sim.pass1.runs", dc=dc, path=path).inc()
        telemetry.counter(
            "sim.pass1.rows", dc=dc, table="compute"
        ).inc(len(compute_table))
        telemetry.counter(
            "sim.pass1.rows", dc=dc, table="storage"
        ).inc(len(storage_table))
        telemetry.gauge("sim.pass1.wt_grid_cells", dc=dc).set_max(
            int(wt_load.size)
        )
        telemetry.gauge("sim.pass1.bs_grid_cells", dc=dc).set_max(
            int(bs_load.size)
        )

    def _pass1_reference(
        self,
        traffic: List[VdTraffic],
        qp_to_wt: np.ndarray,
        seg_to_bs: np.ndarray,
        adjusted: "Optional[FaultAdjustedInputs]" = None,
    ) -> "tuple[np.ndarray, np.ndarray, _ColumnBuffer, _ColumnBuffer]":
        """Scalar per-VD/per-QP loops: the audited ground-truth path.

        With ``adjusted`` (fault churn) the per-entity series are read
        from the shared fault-adjusted matrices instead of being derived
        from the VD series, and the per-segment BlockServer may vary per
        epoch (redirects) — accumulated with ``np.add.at`` in the same
        element order the fast path uses.
        """
        fleet = self.fleet
        cfg = self.config
        t = cfg.duration_seconds
        dc = fleet.config.dc_id
        bs_per_node = fleet.config.block_servers_per_node
        ep_idx = adjusted.epoch_index if adjusted is not None else None
        arange_t = np.arange(t) if adjusted is not None else None
        exp = self._expansion if self._redundancy is not None else None
        width = exp.width if exp is not None else 1

        wt_load = np.zeros((fleet.num_wts, t))
        bs_load = np.zeros((fleet.config.num_block_servers, t))
        compute_buf = _ColumnBuffer(
            ComputeMetricTable.INT_FIELDS, ComputeMetricTable.FLOAT_FIELDS
        )
        storage_buf = _ColumnBuffer(
            StorageMetricTable.INT_FIELDS, StorageMetricTable.FLOAT_FIELDS
        )

        for vd_traffic in traffic:
            vd = fleet.vds[vd_traffic.vd_id]
            vm = fleet.vms[vd.vm_id]
            for index, qp_id in enumerate(vd.qp_ids):
                if adjusted is None:
                    rb = vd_traffic.read_bytes * vd_traffic.qp_read_weights[index]
                    wb = vd_traffic.write_bytes * vd_traffic.qp_write_weights[index]
                    ri = vd_traffic.read_iops * vd_traffic.qp_read_weights[index]
                    wi = vd_traffic.write_iops * vd_traffic.qp_write_weights[index]
                else:
                    rb = adjusted.qp_rb[qp_id]
                    wb = adjusted.qp_wb[qp_id]
                    ri = adjusted.qp_ri[qp_id]
                    wi = adjusted.qp_wi[qp_id]
                wt_id = int(qp_to_wt[qp_id])
                wt_load[wt_id] += rb + wb
                mask = self._record_mask(rb, wb, ri, wi)
                if not mask.any():
                    continue
                ts = np.nonzero(mask)[0]
                n = ts.size
                compute_buf.append(
                    timestamp=ts,
                    cluster_id=np.full(n, dc),
                    compute_node_id=np.full(n, vm.compute_node_id),
                    user_id=np.full(n, vd.user_id),
                    vm_id=np.full(n, vd.vm_id),
                    vd_id=np.full(n, vd.vd_id),
                    wt_id=np.full(n, wt_id),
                    qp_id=np.full(n, qp_id),
                    read_bytes=rb[ts],
                    write_bytes=wb[ts],
                    read_iops=ri[ts],
                    write_iops=wi[ts],
                )
            for index, seg_id in enumerate(vd.segment_ids):
                # With redundancy active the storage entities are the
                # segment's copies (global replica id = seg * width +
                # slot); the precomputed per-replica weight vectors are
                # the exact operands the fast path multiplies with, so
                # both paths stay bit-identical.
                for slot in range(width):
                    ent_id = seg_id * width + slot if exp is not None else seg_id
                    if adjusted is None:
                        if exp is None:
                            s_rw = vd_traffic.segment_read_weights[index]
                            s_ww = vd_traffic.segment_write_weights[index]
                        else:
                            s_rw = exp.rep_rw[ent_id]
                            s_ww = exp.rep_ww[ent_id]
                        rb = vd_traffic.read_bytes * s_rw
                        wb = vd_traffic.write_bytes * s_ww
                        ri = vd_traffic.read_iops * s_rw
                        wi = vd_traffic.write_iops * s_ww
                        bs_id = int(
                            seg_to_bs[seg_id] if exp is None
                            else exp.rep_bs[ent_id]
                        )
                        bs_load[bs_id] += rb + wb
                        bs_sec = None
                    else:
                        rb = adjusted.seg_rb[ent_id]
                        wb = adjusted.seg_wb[ent_id]
                        ri = adjusted.seg_ri[ent_id]
                        wi = adjusted.seg_wi[ent_id]
                        bs_sec = adjusted.seg_bs_ep[ent_id][ep_idx]
                        np.add.at(bs_load, (bs_sec, arange_t), rb + wb)
                    mask = self._record_mask(rb, wb, ri, wi)
                    if not mask.any():
                        continue
                    ts = np.nonzero(mask)[0]
                    n = ts.size
                    if bs_sec is None:
                        bs_rows = np.full(n, bs_id)
                        node_rows = np.full(n, bs_id // bs_per_node)
                    else:
                        bs_rows = bs_sec[ts]
                        node_rows = bs_rows // bs_per_node
                    storage_buf.append(
                        timestamp=ts,
                        cluster_id=np.full(n, dc),
                        storage_node_id=node_rows,
                        block_server_id=bs_rows,
                        user_id=np.full(n, vd.user_id),
                        vm_id=np.full(n, vd.vm_id),
                        vd_id=np.full(n, vd.vd_id),
                        segment_id=np.full(n, seg_id),
                        read_bytes=rb[ts],
                        write_bytes=wb[ts],
                        read_iops=ri[ts],
                        write_iops=wi[ts],
                    )
        return wt_load, bs_load, compute_buf, storage_buf

    def _stacked_series(
        self, traffic: List[VdTraffic], t: int
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
        """Per-VD series stacked into ``(num_vds, t)`` matrices."""
        num_vds = len(self.fleet.vds)
        read_b = np.zeros((num_vds, t))
        write_b = np.zeros((num_vds, t))
        read_i = np.zeros((num_vds, t))
        write_i = np.zeros((num_vds, t))
        for tr in traffic:
            read_b[tr.vd_id] = tr.read_bytes
            write_b[tr.vd_id] = tr.write_bytes
            read_i[tr.vd_id] = tr.read_iops
            write_i[tr.vd_id] = tr.write_iops
        return read_b, write_b, read_i, write_i

    def _stacked_weights(
        self, traffic: List[VdTraffic]
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
        """QP/segment weights stacked by global entity id."""
        fleet = self.fleet
        qp_rw = np.zeros(len(fleet.queue_pairs))
        qp_ww = np.zeros(len(fleet.queue_pairs))
        seg_rw = np.zeros(len(fleet.segments))
        seg_ww = np.zeros(len(fleet.segments))
        for tr in traffic:
            vd = fleet.vds[tr.vd_id]
            qs = slice(vd.first_qp_id, vd.first_qp_id + vd.num_queue_pairs)
            qp_rw[qs] = tr.qp_read_weights
            qp_ww[qs] = tr.qp_write_weights
            ss = slice(
                vd.first_segment_id, vd.first_segment_id + vd.num_segments
            )
            seg_rw[ss] = tr.segment_read_weights
            seg_ww[ss] = tr.segment_write_weights
        return qp_rw, qp_ww, seg_rw, seg_ww

    def _pass1_fast(
        self,
        traffic: "Optional[List[VdTraffic]]",
        qp_to_wt: np.ndarray,
        seg_to_bs: np.ndarray,
        adjusted: "Optional[FaultAdjustedInputs]" = None,
        stacked: "Optional[tuple]" = None,
        t0: int = 0,
    ) -> "tuple[np.ndarray, np.ndarray, _ColumnBuffer, _ColumnBuffer]":
        """Vectorized pass 1 over stacked (entity, second) matrices.

        The streaming engine (:mod:`repro.engine`) reuses this pass on a
        bounded **time window**: ``stacked`` supplies precomputed
        ``(read_b, write_b, read_i, write_i, qp_rw, qp_ww, seg_rw,
        seg_ww)`` matrices covering seconds ``[t0, t0 + L)`` (or
        ``adjusted`` supplies window-sliced fault matrices), and ``t0``
        offsets the emitted row timestamps back into run coordinates.
        Every per-cell value is elementwise in time, so a window's
        outputs are bitwise equal to the same columns of a full-horizon
        pass; with ``t0 == 0`` and ``stacked is None`` this is exactly
        the monolithic pass.

        Entities are processed in global id order in bounded-size chunks;
        within a chunk every per-second value is computed with the exact
        same elementwise operations (and ``np.add.at`` applies additions in
        index order), so load grids and metric rows are bit-identical to
        :meth:`_pass1_reference` when ``traffic`` is in fleet VD order.

        The scatter-add onto a load grid uses a flat-index ``np.bincount``
        when the whole entity range fits in one chunk (the common case):
        ``bincount`` accumulates its weights sequentially in input order,
        exactly like the reference's ``+=`` per entity, so the grids stay
        bitwise equal while running several times faster than
        ``np.add.at``.  Multi-chunk runs (huge fleets) fall back to
        ``np.add.at`` per chunk, which updates the accumulator element by
        element in index order and is therefore exact across chunks too.

        The kernels are *fused*: per-chunk temporaries (the four gathered
        and scaled series, their sum, the record masks, the flat scatter
        indexes) are materialized once into arena-reused buffers
        (:class:`repro.engine.arena.Arena`) instead of being reallocated
        per chunk/shard.  Every buffer is fully written by the same
        elementwise operations the unfused code ran (``np.take`` +
        in-place ``multiply``/``add``/``greater_equal`` with ``out=``),
        so values — and digests — are bit-identical; only the allocator
        traffic changes.  Series gathered from a float32 raw store keep
        float32 through the elementwise stage (results deterministic,
        digests re-pinned); the load grids and metric tables accumulate
        in float64 as always.
        """
        fleet = self.fleet
        cfg = self.config
        dc = fleet.config.dc_id
        bs_per_node = fleet.config.block_servers_per_node
        min_bytes = cfg.min_record_bytes
        min_iops = cfg.min_record_iops
        ent = self._entity_arrays()

        if adjusted is None:
            if stacked is not None:
                (
                    read_b, write_b, read_i, write_i,
                    qp_rw, qp_ww, seg_rw, seg_ww,
                ) = stacked
            else:
                read_b, write_b, read_i, write_i = self._stacked_series(
                    traffic, cfg.duration_seconds
                )
                qp_rw, qp_ww, seg_rw, seg_ww = self._stacked_weights(traffic)
            t = int(read_b.shape[1])
        else:
            t = int(adjusted.epoch_index.size)
        ep_idx = adjusted.epoch_index if adjusted is not None else None

        wt_load = np.zeros((fleet.num_wts, t))
        bs_load = np.zeros((fleet.config.num_block_servers, t))
        compute_buf = _ColumnBuffer(
            ComputeMetricTable.INT_FIELDS, ComputeMetricTable.FLOAT_FIELDS
        )
        storage_buf = _ColumnBuffer(
            StorageMetricTable.INT_FIELDS, StorageMetricTable.FLOAT_FIELDS
        )
        num_qps = len(fleet.queue_pairs)
        num_segs = len(fleet.segments)
        chunk = max(64, _FAST_PASS_CHUNK_CELLS // max(1, t))
        arange_t = np.arange(t)
        arena = self._pass1_arena
        # Storage-entity view: without redundancy these alias the segment
        # arrays exactly (so the legacy path is byte-identical); with
        # redundancy the entities are the flattened replicas and the
        # emitted segment_id column maps each replica back to its segment.
        exp = self._expansion if self._redundancy is not None else None
        if exp is None:
            s_num = num_segs
            s_vd, s_vm, s_user = ent.seg_vd, ent.seg_vm, ent.seg_user
            s_bs = seg_to_bs
            s_seg = None
            if adjusted is None:
                s_rw, s_ww = seg_rw, seg_ww
        else:
            s_num = exp.num_replicas
            s_vd, s_vm, s_user = exp.rep_vd, exp.rep_vm, exp.rep_user
            s_bs = exp.rep_bs
            s_seg = exp.rep_seg
            if adjusted is None:
                s_rw, s_ww = exp.rep_rw, exp.rep_ww
        # Per-entity storage node, computed once instead of per metric row.
        seg_to_node = s_bs // bs_per_node

        def scatter_add(
            load: np.ndarray,
            targets: np.ndarray,
            bw: np.ndarray,
            single_chunk: bool,
        ) -> None:
            if single_chunk:
                flat = arena.take("pass1.flat", bw.shape, np.int64)
                np.multiply(targets[:, None], t, out=flat)
                flat += arange_t
                load += np.bincount(
                    flat.ravel(), weights=bw.ravel(), minlength=load.size
                ).reshape(load.shape)
            else:
                np.add.at(load, targets, bw)

        def gather_scaled(
            series: "tuple[np.ndarray, ...]",
            rows: np.ndarray,
            rw: np.ndarray,
            ww: np.ndarray,
        ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
            """Fused ``series[rows] * weight`` into arena-backed buffers.

            Same elementwise gather + in-place scale the unfused code
            ran (so every value is bit-identical); the four temporaries
            live in reused arena slots instead of fresh allocations, and
            ``np.take`` reads straight out of memmapped raw shards
            without an intermediate copy.
            """
            read_b, write_b, read_i, write_i = series
            shape = (rows.size, read_b.shape[1])
            sdtype = read_b.dtype
            rb = arena.take("pass1.rb", shape, sdtype)
            wb = arena.take("pass1.wb", shape, sdtype)
            ri = arena.take("pass1.ri", shape, sdtype)
            wi = arena.take("pass1.wi", shape, sdtype)
            np.take(read_b, rows, axis=0, out=rb)
            np.take(write_b, rows, axis=0, out=wb)
            np.take(read_i, rows, axis=0, out=ri)
            np.take(write_i, rows, axis=0, out=wi)
            np.multiply(rb, rw, out=rb)
            np.multiply(wb, ww, out=wb)
            np.multiply(ri, rw, out=ri)
            np.multiply(wi, ww, out=wi)
            return rb, wb, ri, wi

        def record_mask_fused(
            bw: np.ndarray, ri: np.ndarray, wi: np.ndarray
        ) -> np.ndarray:
            # Inlined _record_mask over arena buffers: the same two
            # comparisons and logical-or, so the mask is bit-identical.
            mask = arena.take("pass1.mask", bw.shape, np.bool_)
            np.greater_equal(bw, min_bytes, out=mask)
            iops = arena.take("pass1.iops", bw.shape, ri.dtype)
            np.add(ri, wi, out=iops)
            iops_mask = arena.take("pass1.iops_mask", bw.shape, np.bool_)
            np.greater_equal(iops, min_iops, out=iops_mask)
            np.logical_or(mask, iops_mask, out=mask)
            return mask

        for start in range(0, num_qps, chunk):
            stop = min(start + chunk, num_qps)
            if adjusted is None:
                rb, wb, ri, wi = gather_scaled(
                    (read_b, write_b, read_i, write_i),
                    ent.qp_vd[start:stop],
                    qp_rw[start:stop, None],
                    qp_ww[start:stop, None],
                )
            else:
                rb = adjusted.qp_rb[start:stop]
                wb = adjusted.qp_wb[start:stop]
                ri = adjusted.qp_ri[start:stop]
                wi = adjusted.qp_wi[start:stop]
            bw = arena.take("pass1.bw", rb.shape, rb.dtype)
            np.add(rb, wb, out=bw)
            scatter_add(
                wt_load, qp_to_wt[start:stop], bw, num_qps <= chunk
            )
            mask = record_mask_fused(bw, ri, wi)
            e, ts = np.nonzero(mask)
            if not e.size:
                continue
            g = e + start  # global qp ids
            # rb[mask] scans in C order, exactly the (e, ts) row order.
            compute_buf.append(
                timestamp=ts + t0 if t0 else ts,
                cluster_id=np.full(g.size, dc),
                compute_node_id=ent.qp_node[g],
                user_id=ent.qp_user[g],
                vm_id=ent.qp_vm[g],
                vd_id=ent.qp_vd[g],
                wt_id=qp_to_wt[g],
                qp_id=g,
                read_bytes=rb[mask],
                write_bytes=wb[mask],
                read_iops=ri[mask],
                write_iops=wi[mask],
            )

        for start in range(0, s_num, chunk):
            stop = min(start + chunk, s_num)
            if adjusted is None:
                rb, wb, ri, wi = gather_scaled(
                    (read_b, write_b, read_i, write_i),
                    s_vd[start:stop],
                    s_rw[start:stop, None],
                    s_ww[start:stop, None],
                )
            else:
                rb = adjusted.seg_rb[start:stop]
                wb = adjusted.seg_wb[start:stop]
                ri = adjusted.seg_ri[start:stop]
                wi = adjusted.seg_wi[start:stop]
            bw = arena.take("pass1.bw", rb.shape, rb.dtype)
            np.add(rb, wb, out=bw)
            if adjusted is None:
                scatter_add(
                    bs_load, s_bs[start:stop], bw, s_num <= chunk
                )
            else:
                # Redirects make the target BS epoch-dependent: scatter with
                # a per-(segment, second) target grid.  ``np.add.at``
                # iterates in C (entity-major, second-ascending) order —
                # the exact order the reference's per-entity adds use.
                targets = adjusted.seg_bs_ep[start:stop][:, ep_idx]
                np.add.at(
                    bs_load,
                    (targets, np.broadcast_to(arange_t, targets.shape)),
                    bw,
                )
            mask = record_mask_fused(bw, ri, wi)
            e, ts = np.nonzero(mask)
            if not e.size:
                continue
            g = e + start  # global storage-entity ids (segments or replicas)
            if adjusted is None:
                bs_rows = s_bs[g]
                node_rows = seg_to_node[g]
            else:
                bs_rows = adjusted.seg_bs_ep[g, ep_idx[ts]]
                node_rows = bs_rows // bs_per_node
            storage_buf.append(
                timestamp=ts + t0 if t0 else ts,
                cluster_id=np.full(g.size, dc),
                storage_node_id=node_rows,
                block_server_id=bs_rows,
                user_id=s_user[g],
                vm_id=s_vm[g],
                vd_id=s_vd[g],
                segment_id=g if s_seg is None else s_seg[g],
                read_bytes=rb[mask],
                write_bytes=wb[mask],
                read_iops=ri[mask],
                write_iops=wi[mask],
            )
        return wt_load, bs_load, compute_buf, storage_buf

    # -- the full run --------------------------------------------------------

    def run(self, workers: int = 1) -> SimulationResult:
        """Execute the simulation and build all three datasets.

        ``workers > 1`` fans the per-VD trace generation (pass 2) out over
        a process pool; outputs are identical for any worker count.
        """
        fleet = self.fleet
        cfg = self.config
        t = cfg.duration_seconds
        telemetry = get_telemetry()
        dc = fleet.config.dc_id

        hypervisors = HypervisorSet(fleet)
        storage = StorageCluster(fleet, redundancy=self._redundancy)
        generator = WorkloadGenerator(
            fleet, t, self._rngs, diurnal_amplitude=cfg.diurnal_amplitude
        )
        with telemetry.span("sim.workload", dc=dc, vds=len(fleet.vds)):
            traffic = generator.generate_all()

        qp_to_wt, seg_to_bs = self.bindings(hypervisors, storage)
        if self._redundancy is not None:
            self.prepare_redundancy(
                traffic, seg_to_bs, table=storage.placement.table_array()
            )

        adjusted = self.fault_adjusted_inputs(traffic, qp_to_wt, seg_to_bs)
        wt_load, bs_load, compute_table, storage_table = self.run_pass1(
            traffic, qp_to_wt, seg_to_bs, adjusted=adjusted
        )
        metrics = MetricDataset(
            compute=compute_table, storage=storage_table, duration_seconds=t
        )

        # ---- pass 2: sampled traces ----------------------------------------
        with telemetry.span("sim.pass2", dc=dc, workers=workers):
            traces, trace_fault_stats = self._generate_traces(
                traffic, qp_to_wt, seg_to_bs, wt_load, bs_load, workers=workers
            )

        specs = SpecDataset(
            vd_specs=[fleet.vd_spec(vd.vd_id) for vd in fleet.vds],
            vm_specs=[fleet.vm_spec(vm.vm_id) for vm in fleet.vms],
        )

        faults = self._finalize_faults(
            hypervisors, storage, adjusted, traces, trace_fault_stats
        )

        return SimulationResult(
            fleet=fleet,
            config=cfg,
            metrics=metrics,
            traces=traces,
            specs=specs,
            hypervisors=hypervisors,
            storage=storage,
            traffic=traffic,
            wt_load_bps=wt_load,
            bs_load_bps=bs_load,
            faults=faults,
        )

    def _finalize_faults(
        self,
        hypervisors: HypervisorSet,
        storage: StorageCluster,
        adjusted: "Optional[FaultAdjustedInputs]",
        traces: TraceDataset,
        trace_fault_stats: "Optional[Dict[str, int]]",
    ) -> "Optional[FaultOutcome]":
        """Replay crash windows onto the stateful objects and attribute
        failures; None for fault-free runs.  Shared by :meth:`run` and the
        streaming engine so both produce identical :class:`FaultOutcome`s.
        """
        if self._timeline is None:
            return None
        telemetry = get_telemetry()
        with telemetry.span(
            "sim.faults.replay",
            dc=self.fleet.config.dc_id,
            events=len(self._timeline.events),
        ):
            self._replay_failures(hypervisors, storage)
        faults = FaultOutcome(
            plan=self._timeline.plan,
            accounting=(
                adjusted.accounting
                if adjusted is not None
                else FaultAccounting()
            ),
            trace_stats=(
                trace_fault_stats
                if trace_fault_stats is not None
                else empty_trace_stats()
            ),
            windows=compute_window_stats(self._timeline.plan, traces),
        )
        self._record_fault_telemetry(telemetry, faults)
        return faults

    def _replay_failures(
        self, hypervisors: HypervisorSet, storage: StorageCluster
    ) -> None:
        """Replay the plan's crash/stall windows onto the stateful objects.

        Chronological, with recoveries applied before failures at the
        same second (windows are half-open).  Leaves ``storage`` /
        ``hypervisors`` reflecting the end-of-horizon state, with every
        transition recorded in their failure/stall logs.
        """
        timeline = self._timeline
        if timeline is None:
            return
        cfg = self.fleet.config
        t = self.config.duration_seconds
        actions: "List[tuple[int, int, str, int]]" = []
        for event in timeline.events:
            if event.kind is FaultKind.BS_CRASH:
                targets = [int(event.target)]
            elif event.kind is FaultKind.CS_CRASH:
                per = cfg.block_servers_per_node
                targets = list(
                    range(event.target * per, (event.target + 1) * per)
                )
            elif event.kind is FaultKind.QP_STALL:
                actions.append((event.start_s, 1, "stall", int(event.target)))
                if event.end_s < t:
                    actions.append(
                        (event.end_s, 0, "unstall", int(event.target))
                    )
                continue
            else:
                continue
            for bs in targets:
                actions.append((event.start_s, 1, "fail", bs))
                if event.end_s < t:
                    actions.append((event.end_s, 0, "recover", bs))
        for second, _, action, target in sorted(actions):
            if action == "fail":
                storage.fail_block_server(target, timestamp=second)
            elif action == "recover":
                storage.recover_block_server(target, timestamp=second)
            elif action == "stall":
                hypervisors.stall_qp(target, timestamp=second)
            else:
                hypervisors.unstall_qp(target, timestamp=second)

    def _record_fault_telemetry(
        self, telemetry, faults: "FaultOutcome"
    ) -> None:
        """Fault counters (integer-valued, so merges stay deterministic)."""
        if not telemetry.enabled:
            return
        dc = self.fleet.config.dc_id
        timeline = self._timeline
        for event in timeline.events:
            telemetry.counter(
                "sim.faults.events", dc=dc, kind=event.kind.value
            ).inc()
        acct = faults.accounting
        for name, value in (
            ("redirected_ios", acct.redirected_ios),
            ("retried_ios", acct.retried_ios),
            ("queued_ios", acct.queued_ios),
            ("dropped_storage_ios", acct.dropped_storage_ios),
            ("stalled_ios", acct.stalled_ios),
            ("dropped_compute_ios", acct.dropped_compute_ios),
        ):
            telemetry.counter(
                "sim.faults.mass", dc=dc, metric=name
            ).inc(int(round(value)))
        for key, value in faults.trace_stats.items():
            telemetry.counter(
                "sim.faults.traces", dc=dc, metric=key
            ).inc(int(value))

    # -- pass 2: sampled traces ----------------------------------------------

    def _trace_replica_failover(
        self,
        exp: "ReplicaExpansion",
        timeline: FaultTimeline,
        seg_ids: np.ndarray,
        bs_ids: np.ndarray,
        seconds: np.ndarray,
        is_write: np.ndarray,
    ) -> "tuple[np.ndarray, Optional[np.ndarray], Optional[np.ndarray], Dict[str, int]]":
        """Replica-aware trace fault handling (replaces redirect/queue).

        A read whose drawn copy is down fails over to the first
        surviving copy of its segment (one retry hop in the frontend);
        if every copy is down it is dropped.  A write whose primary is
        down is dropped (deferred re-replication).  Deterministic — no
        RNG draws — so trace identity off the crash windows is exact.
        """
        stats = empty_trace_stats()
        ep_all = timeline.epoch_index[seconds]
        down = timeline.bs_down_ep[bs_ids, ep_all]
        if not down.any():
            return bs_ids, None, None, stats
        bs_ids = bs_ids.copy()
        keep = np.ones(bs_ids.size, dtype=bool)
        retries = np.zeros(bs_ids.size, dtype=np.int64)
        idx = np.nonzero(down)[0]
        rows = exp.table[seg_ids[idx]]                       # (n_down, W)
        alive = ~timeline.bs_down_ep[rows, ep_all[idx][:, None]]
        ok = alive.any(axis=1) & ~is_write[idx]
        targets = rows[np.arange(idx.size), np.argmax(alive, axis=1)]
        bs_ids[idx[ok]] = targets[ok]
        retries[idx[ok]] = 1
        keep[idx[~ok]] = False
        n_ok = int(ok.sum())
        stats["redirected_ios"] = n_ok
        stats["retries"] = n_ok
        stats["dropped_ios"] = int(idx.size - n_ok)
        return (
            bs_ids,
            None if bool(keep.all()) else keep,
            retries if n_ok else None,
            stats,
        )

    def _trace_columns_for_vd(
        self,
        vd_traffic: VdTraffic,
        qp_to_wt: np.ndarray,
        seg_to_bs: np.ndarray,
        wt_load: np.ndarray,
        bs_load: np.ndarray,
    ) -> "Optional[Dict[str, np.ndarray]]":
        """Trace columns (sans trace_id) for one VD; None if nothing sampled.

        Every random draw comes from RNG streams keyed by this VD's id, so
        the result does not depend on which process (or in which order)
        generates it.
        """
        fleet = self.fleet
        cfg = self.config
        t = cfg.duration_seconds
        dc = fleet.config.dc_id
        bs_per_node = fleet.config.block_servers_per_node
        segment_bytes = fleet.config.segment_bytes

        vd = fleet.vds[vd_traffic.vd_id]
        vm = fleet.vms[vd.vm_id]
        rng = self._rngs.get(f"trace/vd{vd.vd_id}")
        sampler = TraceSampler(
            cfg.trace_sampling_rate,
            self._rngs.get(f"trace-sampler/vd{vd.vd_id}"),
        )

        read_counts = sampler.sample_counts(
            np.round(vd_traffic.read_iops).astype(np.int64)
        )
        write_counts = sampler.sample_counts(
            np.round(vd_traffic.write_iops).astype(np.int64)
        )
        n_read = int(read_counts.sum())
        n_write = int(write_counts.sum())
        n = n_read + n_write
        telemetry = get_telemetry()
        if telemetry.enabled:
            # Accumulated from array totals (never per element); all values
            # are integers, so per-worker merges are exact in any order.
            telemetry.counter("sim.traces.ios", dc=dc, op="read").inc(n_read)
            telemetry.counter("sim.traces.ios", dc=dc, op="write").inc(n_write)
            telemetry.histogram("sim.traces.ios_per_vd", dc=dc).observe(n)
        if n == 0:
            return None

        seconds = np.concatenate(
            [
                np.repeat(np.arange(t), read_counts),
                np.repeat(np.arange(t), write_counts),
            ]
        )
        is_write = np.zeros(n, dtype=bool)
        is_write[n_read:] = True
        timestamps = seconds + rng.random(n)

        mean_size = np.where(
            is_write,
            vd_traffic.mean_write_size_bytes,
            vd_traffic.mean_read_size_bytes,
        )
        sizes = np.clip(
            mean_size * rng.lognormal(0.0, 0.35, size=n),
            _MIN_IO_BYTES,
            _MAX_IO_BYTES,
        ).astype(np.int64)

        hot_fraction = vd_traffic.hot_fraction_series[seconds]
        offsets = vd_traffic.lba_model.draw_offsets(
            rng, is_write, hot_fraction
        )

        qp_read_p = _normalized_probabilities(
            vd_traffic.qp_read_weights, f"vd {vd.vd_id} qp read weights"
        )
        qp_write_p = _normalized_probabilities(
            vd_traffic.qp_write_weights, f"vd {vd.vd_id} qp write weights"
        )
        qp_index = np.where(
            is_write,
            rng.choice(vd.num_queue_pairs, size=n, p=qp_write_p),
            rng.choice(vd.num_queue_pairs, size=n, p=qp_read_p),
        )

        # ---- fault application (separate label-keyed stream) ---------------
        # All base-stream draws above are unconditional, so a no-fault plan
        # reproduces the failure-free trace dataset bit for bit.
        timeline = self._timeline
        fault_stats: Optional[Dict[str, int]] = None
        keep: Optional[np.ndarray] = None
        retries: Optional[np.ndarray] = None
        frac = timestamps - seconds
        if timeline is not None and timeline.has_any_effect:
            fault_stats = empty_trace_stats()
            fault_stats["total_ios"] = n
            frng = self._rngs.get(f"fault/vd{vd.vd_id}")
            seconds, qp_index, keep, cstats = timeline.trace_compute_faults(
                vd, vd_traffic, frng, seconds, qp_index, is_write
            )
            merge_trace_stats(fault_stats, cstats)

        qp_ids = vd.first_qp_id + qp_index
        wt_ids = qp_to_wt[qp_ids]

        seg_index = np.minimum(offsets // segment_bytes, vd.num_segments - 1)
        seg_ids = vd.first_segment_id + seg_index
        exp = self._expansion if self._redundancy is not None else None
        if exp is None:
            bs_ids = seg_to_bs[seg_ids]
        else:
            # Draw each read's serving copy from the policy's per-segment
            # weights (separate label-keyed stream, so the base trace
            # draws above stay untouched); writes pin to the primary.
            rrng = self._rngs.get(f"redundancy/vd{vd.vd_id}")
            u = rrng.random(n)
            cum = exp.read_cum[seg_ids]
            slots = np.minimum(
                (u[:, None] >= cum).sum(axis=1), exp.width - 1
            )
            slots[is_write] = 0
            bs_ids = exp.table[seg_ids, slots]

        if timeline is not None and timeline.has_any_effect:
            if exp is None:
                bs_ids, seconds, skeep, retries, sstats = (
                    timeline.trace_storage_faults(bs_ids, seconds, alive=keep)
                )
            else:
                # Redundancy: reads on a downed copy fail over to the
                # first surviving copy instead of redirecting/queueing.
                bs_ids, skeep, retries, sstats = (
                    self._trace_replica_failover(
                        exp, timeline, seg_ids, bs_ids, seconds, is_write
                    )
                )
            merge_trace_stats(fault_stats, sstats)
            if skeep is not None:
                keep = skeep if keep is None else keep & skeep
            timestamps = seconds + frac

        wt_u = wt_load[wt_ids, seconds] / cfg.wt_capacity_bps
        bs_u = bs_load[bs_ids, seconds] / cfg.bs_capacity_bps
        latencies = self.latency_model.sample(
            rng, is_write, sizes, wt_u, bs_u
        )

        if timeline is not None and timeline.has_degrade:
            degraded = np.zeros(n, dtype=bool)
            for component in LatencyModel.COMPONENTS:
                series = timeline.multiplier_series(component)
                if series is None:
                    continue
                multipliers = series[seconds]
                latencies[component] = latencies[component] * multipliers
                degraded |= multipliers > 1.0
            if keep is not None:
                degraded &= keep  # dropped IOs are not "degraded"
            fault_stats["degraded_ios"] = int(degraded.sum())
        if retries is not None:
            # Redirect hops happen in the frontend's BlockClient: each hop
            # costs one backoff before the IO reaches the replica BS.
            latencies["frontend"] = (
                latencies["frontend"]
                + retries * timeline.plan.retry_backoff_us
            )

        columns = dict(
            op=is_write.astype(np.int64),
            size_bytes=sizes,
            offset_bytes=offsets,
            user_id=np.full(n, vd.user_id),
            vm_id=np.full(n, vd.vm_id),
            vd_id=np.full(n, vd.vd_id),
            qp_id=qp_ids,
            wt_id=wt_ids,
            compute_node_id=np.full(n, vm.compute_node_id),
            segment_id=seg_ids,
            block_server_id=bs_ids,
            storage_node_id=bs_ids // bs_per_node,
            timestamp=timestamps,
            lat_compute_us=latencies["compute"],
            lat_frontend_us=latencies["frontend"],
            lat_block_server_us=latencies["block_server"],
            lat_backend_us=latencies["backend"],
            lat_chunk_server_us=latencies["chunk_server"],
        )
        if keep is not None and not keep.all():
            # Dropped IOs leave the trace dataset; they are counted in the
            # fault stats (never both recorded and dropped).
            columns = {name: values[keep] for name, values in columns.items()}
        if fault_stats is not None:
            columns["_fault"] = fault_stats  # popped by _generate_traces
        return columns

    def _generate_traces(
        self,
        traffic: List[VdTraffic],
        qp_to_wt: np.ndarray,
        seg_to_bs: np.ndarray,
        wt_load: np.ndarray,
        bs_load: np.ndarray,
        workers: int = 1,
    ) -> "tuple[TraceDataset, Optional[Dict[str, int]]]":
        cfg = self.config
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        telemetry = get_telemetry()

        if workers == 1 or len(traffic) < 2:
            per_vd = (
                self._trace_columns_for_vd(
                    vd_traffic, qp_to_wt, seg_to_bs, wt_load, bs_load
                )
                for vd_traffic in traffic
            )
            columns_in_order = per_vd
        else:
            workers = min(workers, len(traffic))
            bounds = np.linspace(0, len(traffic), workers + 1).astype(int)
            payloads = [
                (
                    self,
                    traffic[bounds[i]: bounds[i + 1]],
                    qp_to_wt,
                    seg_to_bs,
                    wt_load,
                    bs_load,
                    telemetry.enabled,
                )
                for i in range(workers)
                if bounds[i] < bounds[i + 1]
            ]
            with ProcessPoolExecutor(max_workers=len(payloads)) as pool:
                chunk_results = list(pool.map(_trace_chunk_worker, payloads))
            # Merge worker telemetry in chunk (VD) order: counters and
            # histogram buckets are integer-valued, so the merged metrics
            # are byte-identical to the sequential run's.
            for _, snapshot in chunk_results:
                telemetry.merge_snapshot(snapshot)
            columns_in_order = (
                columns for chunk, _ in chunk_results for columns in chunk
            )

        return self._collect_trace_columns(columns_in_order)

    def _collect_trace_columns(
        self, columns_in_order
    ) -> "tuple[TraceDataset, Optional[Dict[str, int]]]":
        """Assemble per-VD trace columns (in fleet VD order) into a dataset.

        Assigns the global ``trace_id`` sequence, folds per-VD fault stats,
        and records the sampled-trace counter.  Shared by the monolithic
        pass 2 and the streaming engine's batch-wise pass 2 — both feed
        VD columns in fleet order, so the dataset is identical however
        the VDs were partitioned.
        """
        cfg = self.config
        telemetry = get_telemetry()
        buffer = _ColumnBuffer(
            TraceDataset.INT_FIELDS, TraceDataset.FLOAT_FIELDS
        )
        next_trace_id = 0
        fault_stats: Optional[Dict[str, int]] = None
        for columns in columns_in_order:
            if columns is None:
                continue
            per_vd_stats = columns.pop("_fault", None)
            if per_vd_stats is not None:
                if fault_stats is None:
                    fault_stats = empty_trace_stats()
                merge_trace_stats(fault_stats, per_vd_stats)
            n = columns["op"].size
            if n:
                buffer.append(
                    trace_id=np.arange(next_trace_id, next_trace_id + n),
                    **columns,
                )
            next_trace_id += n

        if telemetry.enabled:
            telemetry.counter(
                "sim.traces.sampled", dc=self.fleet.config.dc_id
            ).inc(next_trace_id)
        dataset = TraceDataset(
            sampling_rate=cfg.trace_sampling_rate, **buffer.concatenated()
        )
        return dataset, fault_stats
