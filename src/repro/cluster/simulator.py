"""The end-to-end EBS simulator producing the DiTing datasets.

``EBSSimulator.run()`` drives every VD's offered load (from
:class:`repro.workload.WorkloadGenerator`) through the stack:

1. QPs are bound to worker threads by the hypervisor's round-robin balancer;
   per-second traffic splits over QPs by the VD's QP weights, yielding the
   compute-domain metric table (one row per active QP-second, Table 1).
2. Traffic splits over segments by the LBA model's segment weights; the
   current segment-to-BS placement yields the storage-domain metric table.
3. A sampled subset of individual IOs becomes the trace dataset: opcodes,
   sizes, LBA offsets from the hotspot model, the stack path, and the five
   per-component latencies (load-dependent via per-second WT/BS utilization).

Rows below the recording thresholds are dropped, mirroring a production
metric pipeline that does not emit all-zero aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.cluster.hypervisor import HypervisorSet
from repro.cluster.latency import LatencyConfig, LatencyModel
from repro.cluster.storage import StorageCluster
from repro.trace.dataset import (
    ComputeMetricTable,
    MetricDataset,
    SpecDataset,
    StorageMetricTable,
    TraceDataset,
)
from repro.trace.sampling import TraceSampler
from repro.util.errors import ConfigError
from repro.util.rng import RngFactory
from repro.util.units import GiB
from repro.workload.fleet import Fleet
from repro.workload.generator import VdTraffic, WorkloadGenerator

_MIN_IO_BYTES = 512
_MAX_IO_BYTES = 4 * 1024 * 1024


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of one simulation run."""

    duration_seconds: int = 1200
    trace_sampling_rate: float = 1.0 / 200.0
    min_record_bytes: float = 1024.0
    min_record_iops: float = 0.5
    diurnal_amplitude: float = 0.3
    latency: LatencyConfig = field(default_factory=LatencyConfig)
    wt_capacity_bps: float = 2.0 * GiB
    bs_capacity_bps: float = 4.0 * GiB

    def __post_init__(self) -> None:
        if self.duration_seconds <= 0:
            raise ConfigError("duration_seconds must be positive")
        if not 0.0 < self.trace_sampling_rate <= 1.0:
            raise ConfigError("trace_sampling_rate must be in (0, 1]")
        if self.min_record_bytes < 0 or self.min_record_iops < 0:
            raise ConfigError("recording thresholds must be non-negative")
        if self.wt_capacity_bps <= 0 or self.bs_capacity_bps <= 0:
            raise ConfigError("capacities must be positive")


@dataclass
class SimulationResult:
    """Everything a study needs downstream of one simulator run."""

    fleet: Fleet
    config: SimulationConfig
    metrics: MetricDataset
    traces: TraceDataset
    specs: SpecDataset
    hypervisors: HypervisorSet
    storage: StorageCluster
    traffic: List[VdTraffic]
    wt_load_bps: np.ndarray  # (num_wts, duration) total bytes/s per WT
    bs_load_bps: np.ndarray  # (num_bs, duration) total bytes/s per BS


class _ColumnBuffer:
    """Accumulates per-VD column chunks, concatenated once at the end."""

    def __init__(self, fields: "tuple[str, ...]"):
        self._chunks: Dict[str, List[np.ndarray]] = {name: [] for name in fields}

    def append(self, **chunks: np.ndarray) -> None:
        for name, chunk in chunks.items():
            self._chunks[name].append(np.asarray(chunk))

    def concatenated(self) -> Dict[str, np.ndarray]:
        return {
            name: (
                np.concatenate(chunks) if chunks else np.zeros(0)
            )
            for name, chunks in self._chunks.items()
        }


class EBSSimulator:
    """Simulates one data center's EBS stack for a fixed duration."""

    def __init__(
        self,
        fleet: Fleet,
        config: SimulationConfig,
        rngs: RngFactory,
    ):
        self.fleet = fleet
        self.config = config
        self._rngs = rngs.child(f"sim/dc{fleet.config.dc_id}")
        self.latency_model = LatencyModel(config.latency)

    # -- helpers -------------------------------------------------------------

    def _record_mask(
        self, read_b: np.ndarray, write_b: np.ndarray,
        read_i: np.ndarray, write_i: np.ndarray,
    ) -> np.ndarray:
        cfg = self.config
        return (read_b + write_b >= cfg.min_record_bytes) | (
            read_i + write_i >= cfg.min_record_iops
        )

    def run(self) -> SimulationResult:
        """Execute the simulation and build all three datasets."""
        fleet = self.fleet
        cfg = self.config
        t = cfg.duration_seconds
        dc = fleet.config.dc_id

        hypervisors = HypervisorSet(fleet)
        storage = StorageCluster(fleet)
        generator = WorkloadGenerator(
            fleet, t, self._rngs, diurnal_amplitude=cfg.diurnal_amplitude
        )
        traffic = generator.generate_all()

        qp_to_wt = np.zeros(len(fleet.queue_pairs), dtype=np.int64)
        for qp_id, wt_id in hypervisors.binding_arrays().items():
            qp_to_wt[qp_id] = wt_id
        seg_to_bs = np.zeros(len(fleet.segments), dtype=np.int64)
        for seg_id, bs_id in storage.placement_snapshot().items():
            seg_to_bs[seg_id] = bs_id
        bs_per_node = fleet.config.block_servers_per_node

        wt_load = np.zeros((fleet.num_wts, t))
        bs_load = np.zeros((fleet.config.num_block_servers, t))

        compute_buf = _ColumnBuffer(
            (*ComputeMetricTable.INT_FIELDS, *ComputeMetricTable.FLOAT_FIELDS)
        )
        storage_buf = _ColumnBuffer(
            (*StorageMetricTable.INT_FIELDS, *StorageMetricTable.FLOAT_FIELDS)
        )

        # ---- pass 1: metric tables + load grids ---------------------------
        for vd_traffic in traffic:
            vd = fleet.vds[vd_traffic.vd_id]
            vm = fleet.vms[vd.vm_id]
            for index, qp_id in enumerate(vd.qp_ids):
                rb = vd_traffic.read_bytes * vd_traffic.qp_read_weights[index]
                wb = vd_traffic.write_bytes * vd_traffic.qp_write_weights[index]
                ri = vd_traffic.read_iops * vd_traffic.qp_read_weights[index]
                wi = vd_traffic.write_iops * vd_traffic.qp_write_weights[index]
                wt_id = int(qp_to_wt[qp_id])
                wt_load[wt_id] += rb + wb
                mask = self._record_mask(rb, wb, ri, wi)
                if not mask.any():
                    continue
                ts = np.nonzero(mask)[0]
                n = ts.size
                compute_buf.append(
                    timestamp=ts,
                    cluster_id=np.full(n, dc),
                    compute_node_id=np.full(n, vm.compute_node_id),
                    user_id=np.full(n, vd.user_id),
                    vm_id=np.full(n, vd.vm_id),
                    vd_id=np.full(n, vd.vd_id),
                    wt_id=np.full(n, wt_id),
                    qp_id=np.full(n, qp_id),
                    read_bytes=rb[ts],
                    write_bytes=wb[ts],
                    read_iops=ri[ts],
                    write_iops=wi[ts],
                )
            for index, seg_id in enumerate(vd.segment_ids):
                rb = vd_traffic.read_bytes * vd_traffic.segment_read_weights[index]
                wb = vd_traffic.write_bytes * vd_traffic.segment_write_weights[index]
                ri = vd_traffic.read_iops * vd_traffic.segment_read_weights[index]
                wi = vd_traffic.write_iops * vd_traffic.segment_write_weights[index]
                bs_id = int(seg_to_bs[seg_id])
                bs_load[bs_id] += rb + wb
                mask = self._record_mask(rb, wb, ri, wi)
                if not mask.any():
                    continue
                ts = np.nonzero(mask)[0]
                n = ts.size
                storage_buf.append(
                    timestamp=ts,
                    cluster_id=np.full(n, dc),
                    storage_node_id=np.full(n, bs_id // bs_per_node),
                    block_server_id=np.full(n, bs_id),
                    user_id=np.full(n, vd.user_id),
                    vm_id=np.full(n, vd.vm_id),
                    vd_id=np.full(n, vd.vd_id),
                    segment_id=np.full(n, seg_id),
                    read_bytes=rb[ts],
                    write_bytes=wb[ts],
                    read_iops=ri[ts],
                    write_iops=wi[ts],
                )

        compute_table = ComputeMetricTable(**compute_buf.concatenated())
        storage_table = StorageMetricTable(**storage_buf.concatenated())
        metrics = MetricDataset(
            compute=compute_table, storage=storage_table, duration_seconds=t
        )

        # ---- pass 2: sampled traces ----------------------------------------
        traces = self._generate_traces(
            traffic, qp_to_wt, seg_to_bs, wt_load, bs_load
        )

        specs = SpecDataset(
            vd_specs=[fleet.vd_spec(vd.vd_id) for vd in fleet.vds],
            vm_specs=[fleet.vm_spec(vm.vm_id) for vm in fleet.vms],
        )

        return SimulationResult(
            fleet=fleet,
            config=cfg,
            metrics=metrics,
            traces=traces,
            specs=specs,
            hypervisors=hypervisors,
            storage=storage,
            traffic=traffic,
            wt_load_bps=wt_load,
            bs_load_bps=bs_load,
        )

    def _generate_traces(
        self,
        traffic: List[VdTraffic],
        qp_to_wt: np.ndarray,
        seg_to_bs: np.ndarray,
        wt_load: np.ndarray,
        bs_load: np.ndarray,
    ) -> TraceDataset:
        fleet = self.fleet
        cfg = self.config
        t = cfg.duration_seconds
        dc = fleet.config.dc_id
        bs_per_node = fleet.config.block_servers_per_node
        segment_bytes = fleet.config.segment_bytes

        sampler = TraceSampler(
            cfg.trace_sampling_rate, self._rngs.get("trace-sampler")
        )
        buffer = _ColumnBuffer(
            (*TraceDataset.INT_FIELDS, *TraceDataset.FLOAT_FIELDS)
        )
        next_trace_id = 0

        for vd_traffic in traffic:
            vd = fleet.vds[vd_traffic.vd_id]
            vm = fleet.vms[vd.vm_id]
            rng = self._rngs.get(f"trace/vd{vd.vd_id}")

            read_counts = sampler.sample_counts(
                np.round(vd_traffic.read_iops).astype(np.int64)
            )
            write_counts = sampler.sample_counts(
                np.round(vd_traffic.write_iops).astype(np.int64)
            )
            n_read = int(read_counts.sum())
            n_write = int(write_counts.sum())
            n = n_read + n_write
            if n == 0:
                continue

            seconds = np.concatenate(
                [
                    np.repeat(np.arange(t), read_counts),
                    np.repeat(np.arange(t), write_counts),
                ]
            )
            is_write = np.zeros(n, dtype=bool)
            is_write[n_read:] = True
            timestamps = seconds + rng.random(n)

            mean_size = np.where(
                is_write,
                vd_traffic.mean_write_size_bytes,
                vd_traffic.mean_read_size_bytes,
            )
            sizes = np.clip(
                mean_size * rng.lognormal(0.0, 0.35, size=n),
                _MIN_IO_BYTES,
                _MAX_IO_BYTES,
            ).astype(np.int64)

            hot_fraction = vd_traffic.hot_fraction_series[seconds]
            offsets = vd_traffic.lba_model.draw_offsets(
                rng, is_write, hot_fraction
            )

            qp_index = np.where(
                is_write,
                rng.choice(
                    vd.num_queue_pairs, size=n, p=vd_traffic.qp_write_weights
                ),
                rng.choice(
                    vd.num_queue_pairs, size=n, p=vd_traffic.qp_read_weights
                ),
            )
            qp_ids = vd.first_qp_id + qp_index
            wt_ids = qp_to_wt[qp_ids]

            seg_index = np.minimum(offsets // segment_bytes, vd.num_segments - 1)
            seg_ids = vd.first_segment_id + seg_index
            bs_ids = seg_to_bs[seg_ids]

            wt_u = wt_load[wt_ids, seconds] / cfg.wt_capacity_bps
            bs_u = bs_load[bs_ids, seconds] / cfg.bs_capacity_bps
            latencies = self.latency_model.sample(
                rng, is_write, sizes, wt_u, bs_u
            )

            buffer.append(
                trace_id=np.arange(next_trace_id, next_trace_id + n),
                op=is_write.astype(np.int64),
                size_bytes=sizes,
                offset_bytes=offsets,
                user_id=np.full(n, vd.user_id),
                vm_id=np.full(n, vd.vm_id),
                vd_id=np.full(n, vd.vd_id),
                qp_id=qp_ids,
                wt_id=wt_ids,
                compute_node_id=np.full(n, vm.compute_node_id),
                segment_id=seg_ids,
                block_server_id=bs_ids,
                storage_node_id=bs_ids // bs_per_node,
                timestamp=timestamps,
                lat_compute_us=latencies["compute"],
                lat_frontend_us=latencies["frontend"],
                lat_block_server_us=latencies["block_server"],
                lat_backend_us=latencies["backend"],
                lat_chunk_server_us=latencies["chunk_server"],
            )
            next_trace_id += n

        return TraceDataset(
            sampling_rate=cfg.trace_sampling_rate, **buffer.concatenated()
        )
