"""The EBS stack simulator (Figure 1 of the paper).

- :mod:`repro.cluster.hypervisor` — per-compute-node worker threads (WTs)
  with the round-robin QP-to-WT binding of the SPDK-vhost-style single-WT
  hosting model, plus rebind/swap operations for §4's experiments.
- :mod:`repro.cluster.storage` — the storage cluster: BlockServers (BSs)
  holding 32 GiB segments, ChunkServers co-resident on storage nodes, and a
  mutable segment-to-BS mapping supporting migration (§6).
- :mod:`repro.cluster.latency` — a per-component latency model (compute
  node, frontend network, BlockServer, backend network, ChunkServer) with
  size, load and long-tail terms.
- :mod:`repro.cluster.simulator` — the end-to-end simulator: drives the
  workload generator's offered load through the stack and emits the DiTing
  datasets (sampled traces + full metrics + specs).
"""

from repro.cluster.hypervisor import Hypervisor, HypervisorSet
from repro.cluster.latency import LatencyConfig, LatencyModel
from repro.cluster.simulator import (
    EBSSimulator,
    SimulationConfig,
    SimulationResult,
)
from repro.cluster.storage import StorageCluster

__all__ = [
    "Hypervisor",
    "HypervisorSet",
    "LatencyConfig",
    "LatencyModel",
    "EBSSimulator",
    "SimulationConfig",
    "SimulationResult",
    "StorageCluster",
]
