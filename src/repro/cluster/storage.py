"""The storage cluster: BlockServers, ChunkServers, and segment placement.

A BlockServer (BS) proxies block IO into file APIs and owns a set of 32 GiB
segments; ChunkServers (CSs) persist segment data on the storage node's
SSDs.  The segment-to-BS mapping is the state the inter-BS load balancer
(§6) mutates, so it is kept mutable here with conservation checks: a
migration moves exactly one segment and never duplicates or drops one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.util.errors import ConfigError, SimulationError
from repro.workload.fleet import Fleet


@dataclass(frozen=True)
class MigrationEvent:
    """One segment moving between BlockServers at a given time."""

    timestamp: int
    segment_id: int
    from_bs: int
    to_bs: int


@dataclass(frozen=True)
class FailureEvent:
    """One BS transitioning between serving and failed."""

    timestamp: int
    bs_id: int
    action: str  # "fail" | "recover"


@dataclass
class StorageCluster:
    """Mutable segment placement over the BlockServers of one DC."""

    fleet: Fleet
    _seg_to_bs: Dict[int, int] = field(init=False)
    _bs_segments: Dict[int, Set[int]] = field(init=False)
    migration_log: List[MigrationEvent] = field(init=False, default_factory=list)
    failure_log: List[FailureEvent] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        num_bs = self.fleet.config.num_block_servers
        self._seg_to_bs = {}
        self._bs_segments = {bs: set() for bs in range(num_bs)}
        self._active = set(range(num_bs))
        # Transient-failure depth per BS: fault windows may nest/overlap
        # (e.g. a bs_crash inside a cs_crash), so fail/recover count.
        self._fail_depth: Dict[int, int] = {}
        for segment in self.fleet.segments:
            if not 0 <= segment.block_server_id < num_bs:
                raise ConfigError(
                    f"segment {segment.segment_id} placed on unknown BS "
                    f"{segment.block_server_id}"
                )
            self._seg_to_bs[segment.segment_id] = segment.block_server_id
            self._bs_segments[segment.block_server_id].add(segment.segment_id)

    @property
    def num_block_servers(self) -> int:
        return self.fleet.config.num_block_servers

    @property
    def num_segments(self) -> int:
        return len(self._seg_to_bs)

    def block_server_of(self, segment_id: int) -> int:
        if segment_id not in self._seg_to_bs:
            raise SimulationError(f"unknown segment {segment_id}")
        return self._seg_to_bs[segment_id]

    def storage_node_of_bs(self, bs_id: int) -> int:
        if not 0 <= bs_id < self.num_block_servers:
            raise SimulationError(f"unknown BlockServer {bs_id}")
        return bs_id // self.fleet.config.block_servers_per_node

    def segments_of(self, bs_id: int) -> Set[int]:
        if bs_id not in self._bs_segments:
            raise SimulationError(f"unknown BlockServer {bs_id}")
        return set(self._bs_segments[bs_id])

    def is_active(self, bs_id: int) -> bool:
        """Whether the BS is in service (not decommissioned)."""
        if bs_id not in self._bs_segments:
            raise SimulationError(f"unknown BlockServer {bs_id}")
        return bs_id in self._active

    @property
    def active_block_servers(self) -> "Set[int]":
        return set(self._active)

    # -- transient failures (fault injection) --------------------------------

    def fail_block_server(self, bs_id: int, timestamp: int = 0) -> None:
        """Mark a BS failed (transient — segments stay placed on it).

        Unlike :meth:`decommission`, a failure does not evacuate
        segments: production crash windows are orders of magnitude
        shorter than a re-replication, so IOs redirect or queue instead
        (the plan's :class:`~repro.faults.plan.RedirectPolicy`).
        Failures nest: overlapping fault windows on the same BS are
        counted, and the BS serves again only after the last recovery.
        """
        if bs_id not in self._bs_segments:
            raise SimulationError(f"unknown BlockServer {bs_id}")
        self._fail_depth[bs_id] = self._fail_depth.get(bs_id, 0) + 1
        self.failure_log.append(
            FailureEvent(timestamp=timestamp, bs_id=bs_id, action="fail")
        )

    def recover_block_server(self, bs_id: int, timestamp: int = 0) -> None:
        """Undo one :meth:`fail_block_server` (raises if not failed)."""
        if bs_id not in self._bs_segments:
            raise SimulationError(f"unknown BlockServer {bs_id}")
        depth = self._fail_depth.get(bs_id, 0)
        if depth <= 0:
            raise SimulationError(f"BS {bs_id} is not failed")
        if depth == 1:
            self._fail_depth.pop(bs_id)
        else:
            self._fail_depth[bs_id] = depth - 1
        self.failure_log.append(
            FailureEvent(timestamp=timestamp, bs_id=bs_id, action="recover")
        )

    def is_failed(self, bs_id: int) -> bool:
        if bs_id not in self._bs_segments:
            raise SimulationError(f"unknown BlockServer {bs_id}")
        return self._fail_depth.get(bs_id, 0) > 0

    def is_serving(self, bs_id: int) -> bool:
        """Active (not decommissioned) and not currently failed."""
        return self.is_active(bs_id) and not self.is_failed(bs_id)

    @property
    def failed_block_servers(self) -> "Set[int]":
        return {bs for bs, depth in self._fail_depth.items() if depth > 0}

    @property
    def serving_block_servers(self) -> "Set[int]":
        return {bs for bs in self._active if self._fail_depth.get(bs, 0) <= 0}

    def migrate(self, segment_id: int, to_bs: int, timestamp: int = 0) -> None:
        """Move one segment to another BS, recording the event.

        Migrating a segment to the BS it already lives on is rejected —
        the balancer should never emit no-op migrations — and so is
        migrating onto a decommissioned or currently-failed BS.
        """
        if to_bs not in self._bs_segments:
            raise SimulationError(f"unknown destination BS {to_bs}")
        if to_bs not in self._active:
            raise SimulationError(f"BS {to_bs} is decommissioned")
        if self._fail_depth.get(to_bs, 0) > 0:
            raise SimulationError(f"BS {to_bs} is failed")
        from_bs = self.block_server_of(segment_id)
        if from_bs == to_bs:
            raise SimulationError(
                f"segment {segment_id} already lives on BS {to_bs}"
            )
        self._bs_segments[from_bs].remove(segment_id)
        self._bs_segments[to_bs].add(segment_id)
        self._seg_to_bs[segment_id] = to_bs
        self.migration_log.append(
            MigrationEvent(
                timestamp=timestamp,
                segment_id=segment_id,
                from_bs=from_bs,
                to_bs=to_bs,
            )
        )

    def decommission(
        self, bs_id: int, timestamp: int = 0
    ) -> List[MigrationEvent]:
        """Take one BS out of service, evacuating its segments.

        Segments drain to the remaining active BSs, always to the one
        currently holding the fewest segments (the capacity-driven
        re-replication a production control plane performs).  Returns the
        evacuation migrations; raises if this is the last active BS.
        """
        if bs_id not in self._bs_segments:
            raise SimulationError(f"unknown BlockServer {bs_id}")
        if bs_id not in self._active:
            raise SimulationError(f"BS {bs_id} is already decommissioned")
        if len(self._active) <= 1:
            raise SimulationError("cannot decommission the last active BS")
        self._active.discard(bs_id)
        events: List[MigrationEvent] = []
        for segment in sorted(self._bs_segments[bs_id]):
            pool = self.serving_block_servers
            if not pool:
                raise SimulationError(
                    "no serving BS left to evacuate segments to"
                )
            target = min(
                pool, key=lambda bs: (len(self._bs_segments[bs]), bs)
            )
            self.migrate(segment, target, timestamp=timestamp)
            events.append(self.migration_log[-1])
        return events

    def placement_snapshot(self) -> Dict[int, int]:
        """A copy of the segment -> BS mapping."""
        return dict(self._seg_to_bs)

    def check_invariants(self) -> None:
        """Raise if segments were lost, duplicated, or double-placed."""
        seen: Set[int] = set()
        for bs_id, segments in self._bs_segments.items():
            for segment in segments:
                if segment in seen:
                    raise SimulationError(
                        f"segment {segment} placed on multiple BSs"
                    )
                if self._seg_to_bs.get(segment) != bs_id:
                    raise SimulationError(
                        f"segment {segment} map/set disagreement"
                    )
                seen.add(segment)
        if seen != set(self._seg_to_bs):
            raise SimulationError("segment sets and map out of sync")
        if len(seen) != len(self.fleet.segments):
            raise SimulationError(
                f"{len(self.fleet.segments) - len(seen)} segments lost"
            )
