"""The storage cluster: BlockServers, ChunkServers, and segment placement.

A BlockServer (BS) proxies block IO into file APIs and owns a set of 32 GiB
segments; ChunkServers (CSs) persist segment data on the storage node's
SSDs.  Placement is a :class:`~repro.cluster.redundancy.PlacementMap` —
a ``(num_segments, width)`` table whose column 0 is the primary copy —
so ``r``-way replication and (k, m) erasure coding share one surface
with single-copy placement as the width-1 degenerate case.  The map is
the state the inter-BS load balancer (§6) mutates, kept mutable here
with conservation checks: a migration moves exactly one copy, never
duplicates or drops one, and never co-locates two copies of a segment.

The legacy single-mapping accessors (``block_server_of``,
``segments_of``, ``placement_snapshot``) remain as deprecated shims;
in-repo callers use the placement-map API (``primary_of``,
``replicas_of``, ``primaries_on``, ``primary_array``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.util.errors import ConfigError, SimulationError
from repro.workload.fleet import Fleet
from repro.cluster.redundancy.config import RedundancyConfig
from repro.cluster.redundancy.placement import PlacementMap, ring_table


@dataclass(frozen=True)
class MigrationEvent:
    """One segment copy moving between BlockServers at a given time."""

    timestamp: int
    segment_id: int
    from_bs: int
    to_bs: int
    slot: int = 0  # which copy moved (0 = primary)


@dataclass(frozen=True)
class FailureEvent:
    """One BS transitioning between serving and failed."""

    timestamp: int
    bs_id: int
    action: str  # "fail" | "recover"


@dataclass
class StorageCluster:
    """Mutable segment placement over the BlockServers of one DC."""

    fleet: Fleet
    redundancy: Optional[RedundancyConfig] = None
    migration_log: List[MigrationEvent] = field(init=False, default_factory=list)
    failure_log: List[FailureEvent] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        num_bs = self.fleet.config.num_block_servers
        scheme = self.redundancy or RedundancyConfig()
        scheme.validate_against(num_bs)
        primaries = []
        for segment in self.fleet.segments:
            if not 0 <= segment.block_server_id < num_bs:
                raise ConfigError(
                    f"segment {segment.segment_id} placed on unknown BS "
                    f"{segment.block_server_id}"
                )
            primaries.append(segment.block_server_id)
        self._placement = PlacementMap(
            ring_table(primaries, scheme.width, num_bs), num_bs
        )
        self._scheme = scheme
        self._active = set(range(num_bs))
        # Transient-failure depth per BS: fault windows may nest/overlap
        # (e.g. a bs_crash inside a cs_crash), so fail/recover count.
        self._fail_depth: Dict[int, int] = {}

    # -- placement-map surface ------------------------------------------------

    @property
    def placement(self) -> PlacementMap:
        """The live placement map (mutate via :meth:`migrate`)."""
        return self._placement

    @property
    def scheme(self) -> RedundancyConfig:
        """The redundancy scheme (r=1 replication when none was given)."""
        return self._scheme

    @property
    def width(self) -> int:
        """Copies (or coded shares) per segment."""
        return self._placement.width

    @property
    def num_block_servers(self) -> int:
        return self.fleet.config.num_block_servers

    @property
    def num_segments(self) -> int:
        return self._placement.num_segments

    def primary_of(self, segment_id: int) -> int:
        """BS holding the segment's primary copy (slot 0)."""
        return self._placement.primary_of(segment_id)

    def replicas_of(self, segment_id: int) -> Tuple[int, ...]:
        """All BSs holding the segment, slot order (primary first)."""
        return self._placement.replicas_of(segment_id)

    def primary_array(self) -> np.ndarray:
        """(num_segments,) int64 primary placements — the pass-1 input."""
        return self._placement.primary_array()

    def primaries_on(self, bs_id: int) -> Set[int]:
        """Segments whose primary copy lives on ``bs_id``."""
        self._check_bs(bs_id)
        return self._placement.primaries_on(bs_id)

    def resident_on(self, bs_id: int) -> Set[Tuple[int, int]]:
        """All (segment, slot) copies resident on ``bs_id``."""
        self._check_bs(bs_id)
        return self._placement.resident_on(bs_id)

    def storage_node_of_bs(self, bs_id: int) -> int:
        self._check_bs(bs_id)
        return bs_id // self.fleet.config.block_servers_per_node

    def _check_bs(self, bs_id: int) -> None:
        if not 0 <= bs_id < self.num_block_servers:
            raise SimulationError(f"unknown BlockServer {bs_id}")

    # -- deprecated single-mapping accessors ----------------------------------

    def block_server_of(self, segment_id: int) -> int:
        """Deprecated: use :meth:`primary_of`."""
        warnings.warn(
            "StorageCluster.block_server_of is deprecated; use "
            "primary_of(segment_id) (placement-map API)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.primary_of(segment_id)

    def segments_of(self, bs_id: int) -> Set[int]:
        """Deprecated: use :meth:`primaries_on` (or :meth:`resident_on`)."""
        warnings.warn(
            "StorageCluster.segments_of is deprecated; use "
            "primaries_on(bs_id) for primary copies or resident_on(bs_id) "
            "for every copy (placement-map API)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.primaries_on(bs_id)

    def placement_snapshot(self) -> Dict[int, int]:
        """Deprecated: use :meth:`primary_array` (or ``placement.table``)."""
        warnings.warn(
            "StorageCluster.placement_snapshot is deprecated; use "
            "primary_array() or placement.table_array() (placement-map API)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._placement.primary_mapping()

    # -- service state --------------------------------------------------------

    def is_active(self, bs_id: int) -> bool:
        """Whether the BS is in service (not decommissioned)."""
        self._check_bs(bs_id)
        return bs_id in self._active

    @property
    def active_block_servers(self) -> "Set[int]":
        return set(self._active)

    # -- transient failures (fault injection) --------------------------------

    def fail_block_server(self, bs_id: int, timestamp: int = 0) -> None:
        """Mark a BS failed (transient — copies stay placed on it).

        Unlike :meth:`decommission`, a failure does not evacuate
        segments: production crash windows are orders of magnitude
        shorter than a re-replication, so IOs redirect or queue instead
        (the plan's :class:`~repro.faults.plan.RedirectPolicy`; with
        redundancy enabled, reads fail over to surviving copies).
        Failures nest: overlapping fault windows on the same BS are
        counted, and the BS serves again only after the last recovery.
        """
        self._check_bs(bs_id)
        self._fail_depth[bs_id] = self._fail_depth.get(bs_id, 0) + 1
        self.failure_log.append(
            FailureEvent(timestamp=timestamp, bs_id=bs_id, action="fail")
        )

    def recover_block_server(self, bs_id: int, timestamp: int = 0) -> None:
        """Undo one :meth:`fail_block_server` (raises if not failed)."""
        self._check_bs(bs_id)
        depth = self._fail_depth.get(bs_id, 0)
        if depth <= 0:
            raise SimulationError(f"BS {bs_id} is not failed")
        if depth == 1:
            self._fail_depth.pop(bs_id)
        else:
            self._fail_depth[bs_id] = depth - 1
        self.failure_log.append(
            FailureEvent(timestamp=timestamp, bs_id=bs_id, action="recover")
        )

    def is_failed(self, bs_id: int) -> bool:
        self._check_bs(bs_id)
        return self._fail_depth.get(bs_id, 0) > 0

    def is_serving(self, bs_id: int) -> bool:
        """Active (not decommissioned) and not currently failed."""
        return self.is_active(bs_id) and not self.is_failed(bs_id)

    @property
    def failed_block_servers(self) -> "Set[int]":
        return {bs for bs, depth in self._fail_depth.items() if depth > 0}

    @property
    def serving_block_servers(self) -> "Set[int]":
        return {bs for bs in self._active if self._fail_depth.get(bs, 0) <= 0}

    # -- mutation -------------------------------------------------------------

    def migrate(
        self, segment_id: int, to_bs: int, timestamp: int = 0, slot: int = 0
    ) -> None:
        """Move one copy of a segment to another BS, recording the event.

        Migrating a copy to the BS it already lives on is rejected —
        the balancer should never emit no-op migrations — as is
        migrating onto a decommissioned or currently-failed BS, or onto
        a BS already holding another copy of the same segment.
        """
        self._check_bs(to_bs)
        if to_bs not in self._active:
            raise SimulationError(f"BS {to_bs} is decommissioned")
        if self._fail_depth.get(to_bs, 0) > 0:
            raise SimulationError(f"BS {to_bs} is failed")
        from_bs = self._placement.set_slot(segment_id, slot, to_bs)
        self.migration_log.append(
            MigrationEvent(
                timestamp=timestamp,
                segment_id=int(segment_id),
                from_bs=from_bs,
                to_bs=int(to_bs),
                slot=int(slot),
            )
        )

    def decommission(
        self, bs_id: int, timestamp: int = 0
    ) -> List[MigrationEvent]:
        """Take one BS out of service, evacuating its resident copies.

        Copies drain to the remaining serving BSs, always to the one
        currently holding the fewest copies (the capacity-driven
        re-replication a production control plane performs), skipping
        any BS that already holds another copy of the same segment.
        Returns the evacuation migrations; raises if this is the last
        active BS or a copy has nowhere co-location-free to go.
        """
        self._check_bs(bs_id)
        if bs_id not in self._active:
            raise SimulationError(f"BS {bs_id} is already decommissioned")
        if len(self._active) <= 1:
            raise SimulationError("cannot decommission the last active BS")
        self._active.discard(bs_id)
        events: List[MigrationEvent] = []
        for segment, slot in sorted(self._placement.resident_on(bs_id)):
            others = set(self._placement.replicas_of(segment)) - {bs_id}
            pool = {
                bs for bs in self.serving_block_servers if bs not in others
            }
            if not pool:
                raise SimulationError(
                    f"no serving BS left to evacuate segment {segment} "
                    f"slot {slot} to without co-locating copies"
                )
            target = min(
                pool, key=lambda bs: (self._placement.resident_count(bs), bs)
            )
            self.migrate(segment, target, timestamp=timestamp, slot=slot)
            events.append(self.migration_log[-1])
        return events

    def check_invariants(self) -> None:
        """Raise if copies were lost, duplicated, or co-located.

        Validates against the placement map (works for any width), plus
        the fleet-level conservation check that every fleet segment is
        still placed.
        """
        self._placement.check_invariants()
        if self._placement.num_segments != len(self.fleet.segments):
            raise SimulationError(
                f"{len(self.fleet.segments) - self._placement.num_segments} "
                f"segments lost"
            )
        if self._placement.width != self._scheme.width:
            raise SimulationError(
                f"placement width {self._placement.width} disagrees with "
                f"redundancy scheme {self._scheme.spec}"
            )
