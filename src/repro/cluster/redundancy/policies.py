"""Read-assignment policies: how reads spread over a segment's copies.

Every policy maps the placement table plus per-segment offered masses
to a weight matrix ``W`` of shape ``(num_segments, width)`` where
``W[s, j]`` is the fraction of segment ``s``'s read traffic served by
the copy in slot ``j``.  Contract (property-tested):

- rows sum to 1 (read mass is conserved across copies);
- ``0 <= W[s, j] <= cap`` where the cap is 1 for replication and
  ``1/k`` for (k, m) erasure coding — a coded share can serve at most
  its ``1/k`` byte fraction of any read.

Policies are deterministic given the same inputs; the only stochastic
one (power-of-two-choices) draws from a label-keyed RNG stream passed
in by the simulator, so both simulator paths see identical weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, runtime_checkable

import numpy as np

from repro.util.errors import ConfigError
from repro.cluster.redundancy.config import RedundancyConfig

READ_POLICY_NAMES = ("primary", "least_loaded", "power_of_two", "water_filling")


@dataclass(frozen=True)
class PolicyInputs:
    """Everything a read policy may consult."""

    table: np.ndarray          # (S, W) int64 replica placement
    seg_read_mass: np.ndarray  # (S,) offered read bytes over the horizon
    seg_write_mass: np.ndarray  # (S,) offered write bytes PER COPY (fan-out cost)
    num_block_servers: int
    cap: float                 # per-slot weight cap (1.0 or 1/k)
    read_fanout: int           # copies one read touches (1 or k)


@runtime_checkable
class ReadPolicy(Protocol):
    """A read policy produces the (S, W) weight matrix."""

    def __call__(
        self, inputs: PolicyInputs, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray: ...


def _base_bs_load(inputs: PolicyInputs) -> np.ndarray:
    """Per-BS load before read steering: the write fan-out mass.

    Every copy/share receives its per-copy write mass regardless of the
    read policy, so load-aware policies seed their view with it.
    """
    load = np.zeros(inputs.num_block_servers, dtype=np.float64)
    width = inputs.table.shape[1]
    np.add.at(
        load,
        inputs.table.ravel(),
        np.repeat(inputs.seg_write_mass, width),
    )
    return load


def _primary(inputs: PolicyInputs, rng=None) -> np.ndarray:
    """Baseline: reads go to the primary (replication) / first k shares (EC)."""
    num_segments, width = inputs.table.shape
    weights = np.zeros((num_segments, width), dtype=np.float64)
    fanout = inputs.read_fanout
    weights[:, :fanout] = 1.0 / fanout
    return weights


def _descending_mass_order(inputs: PolicyInputs) -> np.ndarray:
    """Heaviest readers first, ties broken by ascending segment id."""
    num_segments = inputs.table.shape[0]
    return np.lexsort((np.arange(num_segments), -inputs.seg_read_mass))


def _least_loaded(inputs: PolicyInputs, rng=None) -> np.ndarray:
    """Greedy: each segment's reads go to its currently lightest copies.

    Segments are visited heaviest-first so the big flows commit before
    the long tail fills in around them.
    """
    num_segments, width = inputs.table.shape
    weights = np.zeros((num_segments, width), dtype=np.float64)
    load = _base_bs_load(inputs)
    fanout = inputs.read_fanout
    share = 1.0 / fanout
    slot_ids = np.arange(width)
    for seg in _descending_mass_order(inputs):
        row = inputs.table[seg]
        order = np.lexsort((slot_ids, load[row]))
        chosen = order[:fanout]
        weights[seg, chosen] = share
        load[row[chosen]] += inputs.seg_read_mass[seg] * share
    return weights


def _power_of_two(
    inputs: PolicyInputs, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Power-of-two-choices: sample two slots, keep the lighter one.

    For EC, the k serving shares are picked one at a time, each by a
    two-sample tournament over the still-unchosen slots.
    """
    if rng is None:
        raise ConfigError("power_of_two read policy needs an RNG stream")
    num_segments, width = inputs.table.shape
    weights = np.zeros((num_segments, width), dtype=np.float64)
    load = _base_bs_load(inputs)
    fanout = inputs.read_fanout
    share = 1.0 / fanout
    for seg in range(num_segments):
        row = inputs.table[seg]
        remaining = list(range(width))
        for _ in range(fanout):
            if len(remaining) == 1:
                pick = remaining[0]
            else:
                pair = rng.choice(len(remaining), size=2, replace=False)
                a, b = remaining[int(pair[0])], remaining[int(pair[1])]
                la, lb = load[row[a]], load[row[b]]
                pick = a if (la, a) <= (lb, b) else b
            remaining.remove(pick)
            weights[seg, pick] = share
            load[row[pick]] += inputs.seg_read_mass[seg] * share
    return weights


def _water_filling(inputs: PolicyInputs, rng=None) -> np.ndarray:
    """Batch water-filling: fractional level-fill of each segment's copies.

    Reads split fractionally so the copies' loads equalize as far as
    the per-slot cap allows — the fluid-limit optimum of least-loaded.
    Solved per segment by bisection on the water level.
    """
    num_segments, width = inputs.table.shape
    weights = np.zeros((num_segments, width), dtype=np.float64)
    load = _base_bs_load(inputs)
    fanout = inputs.read_fanout
    for seg in _descending_mass_order(inputs):
        row = inputs.table[seg]
        mass = float(inputs.seg_read_mass[seg])
        if mass <= 0.0:
            weights[seg, :fanout] = 1.0 / fanout
            continue
        cap_mass = inputs.cap * mass
        levels = load[row].astype(np.float64)
        lo = float(levels.min())
        hi = float(levels.max()) + mass + cap_mass
        for _ in range(64):
            mid = 0.5 * (lo + hi)
            filled = np.clip(mid - levels, 0.0, cap_mass).sum()
            if filled < mass:
                lo = mid
            else:
                hi = mid
        alloc = np.clip(hi - levels, 0.0, cap_mass)
        total = alloc.sum()
        if total <= 0.0:
            weights[seg, :fanout] = 1.0 / fanout
            continue
        row_weights = alloc / total
        weights[seg] = row_weights
        load[row] += mass * row_weights
    return weights


_POLICIES = {
    "primary": _primary,
    "least_loaded": _least_loaded,
    "power_of_two": _power_of_two,
    "water_filling": _water_filling,
}


def assign_read_weights(
    policy: str,
    config: RedundancyConfig,
    table: np.ndarray,
    seg_read_mass: np.ndarray,
    seg_write_mass: np.ndarray,
    num_block_servers: int,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Run a named policy; returns the (S, W) read-weight matrix."""
    if policy not in _POLICIES:
        raise ConfigError(
            f"unknown read policy {policy!r}; choose one of "
            f"{', '.join(READ_POLICY_NAMES)}"
        )
    inputs = PolicyInputs(
        table=np.asarray(table, dtype=np.int64),
        seg_read_mass=np.asarray(seg_read_mass, dtype=np.float64),
        seg_write_mass=np.asarray(seg_write_mass, dtype=np.float64),
        num_block_servers=int(num_block_servers),
        cap=config.read_weight_cap,
        read_fanout=config.read_fanout,
    )
    return _POLICIES[policy](inputs, rng)
