"""Redundancy-aware storage: replication / erasure codes + read policies.

This package owns the redesigned placement surface (ROADMAP item 4):

- :class:`RedundancyConfig` — ``r``-way replication or ``(k, m)``
  erasure coding, parsed from the CLI/StudyConfig spec strings
  (``"r=3"``, ``"ec=4+2"``).
- :class:`PlacementMap` — the (segment, slot) -> BlockServer table that
  replaces the old single-mapping accessors on
  :class:`repro.cluster.storage.StorageCluster`; single-copy placement
  is the width-1 degenerate case.
- read-assignment policies (:mod:`repro.cluster.redundancy.policies`):
  primary-only, least-loaded, power-of-two-choices, and batch
  water-filling, all producing a per-segment weight row that sums to 1.
- :class:`ReplicaExpansion` — the per-replica entity view both pass-1
  implementations consume bit-identically, including write fan-out
  costs and the replica-failover fault inputs.
"""

from repro.cluster.redundancy.config import RedundancyConfig
from repro.cluster.redundancy.placement import PlacementMap, ring_table
from repro.cluster.redundancy.policies import (
    READ_POLICY_NAMES,
    ReadPolicy,
    assign_read_weights,
)
from repro.cluster.redundancy.expand import (
    ReplicaExpansion,
    build_expansion,
    check_plan_compatible,
    redundancy_fault_inputs,
)

__all__ = [
    "READ_POLICY_NAMES",
    "PlacementMap",
    "ReadPolicy",
    "RedundancyConfig",
    "ReplicaExpansion",
    "assign_read_weights",
    "build_expansion",
    "check_plan_compatible",
    "redundancy_fault_inputs",
    "ring_table",
]
