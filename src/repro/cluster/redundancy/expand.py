"""Replica expansion: the per-copy entity view both pass-1 paths consume.

With redundancy active, the storage half of pass 1 aggregates over
*replicas* (physical copies / coded shares) instead of segments.  The
expansion flattens the ``(num_segments, width)`` placement table into
``R = num_segments * width`` replica entities in a fixed global order —
``(segment ascending, slot ascending)``, which, because each VD's
segments are contiguous and ascending, is also ``(vd, segment, slot)``
order — and precomputes the per-replica read/write weights:

- ``rep_rw[rep] = seg_rw[seg] * W[seg, slot]`` — the read policy's
  steering weight applied to the segment's intra-VD read weight;
- ``rep_ww[rep] = seg_ww[seg] * write_scale`` — every copy pays the
  write fan-out cost (full copy for replication, ``1/k`` per EC share).

Both the vectorized and the reference pass-1 read these exact vectors,
which is what makes them bit-identical under redundancy.

This module also builds the fault-adjusted replica inputs for
BS-crash plans: reads on a downed copy *fail over* to the first
surviving copy of their segment (instead of queueing), while writes on
a downed copy are dropped (deferred re-replication), with the same
conservation-checked accounting discipline as
:meth:`FaultTimeline.adjust`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.util.errors import ConfigError
from repro.faults.plan import FaultKind
from repro.faults.timeline import FaultAccounting, FaultAdjustedInputs
from repro.cluster.redundancy.config import RedundancyConfig
from repro.cluster.redundancy.policies import assign_read_weights


@dataclass
class ReplicaExpansion:
    """Flattened per-replica view of one DC's placement + read policy."""

    config: RedundancyConfig
    policy: str
    table: np.ndarray      # (S, W) int64 replica placement
    weights: np.ndarray    # (S, W) read-steering weights, rows sum to 1
    read_cum: np.ndarray   # (S, W) row-wise cumsum of weights (pass-2 draws)
    rep_seg: np.ndarray    # (R,) segment id of each replica
    rep_slot: np.ndarray   # (R,) slot of each replica
    rep_vd: np.ndarray     # (R,) owning VD
    rep_vm: np.ndarray     # (R,) owning VM
    rep_user: np.ndarray   # (R,) owning user
    rep_bs: np.ndarray     # (R,) resident BlockServer
    rep_rw: np.ndarray     # (R,) read weight (policy-steered)
    rep_ww: np.ndarray     # (R,) write weight (fan-out cost applied)

    @property
    def width(self) -> int:
        return int(self.table.shape[1])

    @property
    def num_replicas(self) -> int:
        return int(self.rep_seg.size)


def build_expansion(
    config: RedundancyConfig,
    policy: str,
    table: np.ndarray,
    seg_vd: np.ndarray,
    seg_vm: np.ndarray,
    seg_user: np.ndarray,
    seg_rw: np.ndarray,
    seg_ww: np.ndarray,
    vd_read_total: np.ndarray,
    vd_write_total: np.ndarray,
    num_block_servers: int,
    rng: Optional[np.random.Generator] = None,
) -> ReplicaExpansion:
    """Expand placement + policy into the flat replica arrays.

    ``vd_read_total`` / ``vd_write_total`` are the horizon byte totals
    per VD (the offered mass the load-aware policies balance against).
    """
    table = np.asarray(table, dtype=np.int64)
    num_segments, width = table.shape
    seg_rw = np.asarray(seg_rw, dtype=np.float64)
    seg_ww = np.asarray(seg_ww, dtype=np.float64)
    seg_read_mass = vd_read_total[seg_vd] * seg_rw
    seg_write_mass = (
        vd_write_total[seg_vd] * seg_ww * config.write_weight_scale
    )
    weights = assign_read_weights(
        policy,
        config,
        table,
        seg_read_mass,
        seg_write_mass,
        num_block_servers,
        rng=rng,
    )
    rep_seg = np.repeat(np.arange(num_segments, dtype=np.int64), width)
    rep_slot = np.tile(np.arange(width, dtype=np.int64), num_segments)
    return ReplicaExpansion(
        config=config,
        policy=policy,
        table=table,
        weights=weights,
        read_cum=np.cumsum(weights, axis=1),
        rep_seg=rep_seg,
        rep_slot=rep_slot,
        rep_vd=np.asarray(seg_vd, dtype=np.int64)[rep_seg],
        rep_vm=np.asarray(seg_vm, dtype=np.int64)[rep_seg],
        rep_user=np.asarray(seg_user, dtype=np.int64)[rep_seg],
        rep_bs=table.ravel().copy(),
        rep_rw=(seg_rw[:, None] * weights).ravel(),
        rep_ww=np.repeat(seg_ww * config.write_weight_scale, width),
    )


def check_plan_compatible(timeline) -> None:
    """Redundancy supports crash churn only; QP stalls are compute-side.

    A stalled QP redistributes load across the *compute* plane, which
    is orthogonal to replica steering but shares the per-entity series
    arrays; combining the two adjustment passes is future work, so the
    combination is rejected loudly rather than silently mis-modelled.
    """
    for event in timeline.events:
        if event.kind is FaultKind.QP_STALL:
            raise ConfigError(
                "qp_stall fault events are not supported together with "
                "redundancy (r>1 / ec); use crash/degrade events or run "
                "with redundancy disabled"
            )


def redundancy_fault_inputs(
    exp: ReplicaExpansion,
    timeline,
    stacked_series: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    stacked_weights: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
) -> FaultAdjustedInputs:
    """Apply BS-crash churn to the replica-level series, with failover.

    Mirrors :meth:`FaultTimeline.adjust` but over replicas: per crash
    epoch, a downed copy's *reads* fail over to the first surviving
    copy of the segment (counted as ``redirected``, one retry hop); its
    *writes* are dropped (deferred re-replication).  If every copy is
    down the reads are dropped too.  The returned object uses the
    ``seg_*`` field names for the replica arrays — both pass-1 adjusted
    branches are shape-generic over the entity axis.
    """
    check_plan_compatible(timeline)
    fleet = timeline.fleet
    read_b, write_b, read_i, write_i = stacked_series
    qp_rw, qp_ww, _seg_rw, _seg_ww = stacked_weights
    ent_qp_vd = np.fromiter(
        (qp.vd_id for qp in fleet.queue_pairs), dtype=np.int64,
        count=timeline.num_qps,
    )

    # Per-entity base series (same operand order as the fast pass).
    qp_rb = read_b[ent_qp_vd] * qp_rw[:, None]
    qp_wb = write_b[ent_qp_vd] * qp_ww[:, None]
    qp_ri = read_i[ent_qp_vd] * qp_rw[:, None]
    qp_wi = write_i[ent_qp_vd] * qp_ww[:, None]
    rep_rb = read_b[exp.rep_vd] * exp.rep_rw[:, None]
    rep_wb = write_b[exp.rep_vd] * exp.rep_ww[:, None]
    rep_ri = read_i[exp.rep_vd] * exp.rep_rw[:, None]
    rep_wi = write_i[exp.rep_vd] * exp.rep_ww[:, None]

    acct = FaultAccounting(
        offered_compute_ios=float(qp_ri.sum() + qp_wi.sum()),
        offered_storage_ios=float(rep_ri.sum() + rep_wi.sum()),
    )

    rep_bs_ep = np.tile(exp.rep_bs[:, None], (1, timeline.num_epochs))
    for epoch in range(timeline.num_epochs):
        down_mask = timeline.bs_down_ep[:, epoch]
        if not down_mask.any():
            continue
        lo = int(timeline.epoch_starts[epoch])
        hi = int(timeline.epoch_starts[epoch + 1])
        sl = slice(lo, hi)
        for rep in np.nonzero(down_mask[exp.rep_bs])[0]:
            rep = int(rep)
            # Writes to a downed copy: deferred re-replication -> dropped.
            wi_mass = float(rep_wi[rep, sl].sum())
            wb_mass = float(rep_wb[rep, sl].sum())
            if wi_mass or wb_mass:
                acct.dropped_storage_ios += wi_mass
                acct.dropped_storage_bytes += wb_mass
                rep_wb[rep, sl] = 0.0
                rep_wi[rep, sl] = 0.0
            ri_mass = float(rep_ri[rep, sl].sum())
            rb_mass = float(rep_rb[rep, sl].sum())
            if not (ri_mass or rb_mass):
                continue
            row = exp.table[int(exp.rep_seg[rep])]
            alive = np.nonzero(~down_mask[row])[0]
            if alive.size:
                # Fail the reads over to the first surviving copy.
                rep_bs_ep[rep, epoch] = int(row[int(alive[0])])
                acct.redirected_ios += ri_mass
                acct.redirected_bytes += rb_mass
                acct.retried_ios += ri_mass
            else:
                acct.dropped_storage_ios += ri_mass
                acct.dropped_storage_bytes += rb_mass
                rep_rb[rep, sl] = 0.0
                rep_ri[rep, sl] = 0.0

    acct.delivered_compute_ios = float(qp_ri.sum() + qp_wi.sum())
    acct.delivered_storage_ios = float(rep_ri.sum() + rep_wi.sum())
    return FaultAdjustedInputs(
        qp_rb=qp_rb, qp_wb=qp_wb, qp_ri=qp_ri, qp_wi=qp_wi,
        seg_rb=rep_rb, seg_wb=rep_wb, seg_ri=rep_ri, seg_wi=rep_wi,
        seg_bs_ep=rep_bs_ep,
        epoch_index=timeline.epoch_index,
        accounting=acct,
    )
