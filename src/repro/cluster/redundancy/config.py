"""The redundancy scheme of one cluster: replication or erasure coding.

A :class:`RedundancyConfig` describes how many physical copies (or
coded shares) each 32 GiB segment has and how reads/writes fan out over
them:

- ``r``-way **replication**: every copy holds the full segment.  A
  write lands on all ``r`` copies (r x byte amplification); a read is
  served by exactly one copy, chosen by the read policy.
- ``(k, m)`` **erasure coding**: the segment splits into ``k`` data
  shares plus ``m`` parity shares.  A write updates all ``k + m``
  shares, each carrying ``1/k`` of the segment's bytes (so the byte
  amplification is ``(k + m) / k``); a read reconstructs from any ``k``
  shares, each serving ``1/k`` of the read's bytes.  IOPS fan-out uses
  the same per-share weights — the model counts *logical IO units*, one
  per share touched, scaled by the share's byte fraction.

``r=1`` replication is the degenerate single-copy case: the simulator
detects it and runs the exact legacy code paths, which is what keeps
the pinned golden digests bit-for-bit stable.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.util.errors import ConfigError

_R_SPEC = re.compile(r"^r\s*=\s*(\d+)$")
_EC_SPEC = re.compile(r"^ec\s*=\s*(\d+)\s*\+\s*(\d+)$")


@dataclass(frozen=True)
class RedundancyConfig:
    """One redundancy scheme; immutable and hashable (sweepable)."""

    scheme: str = "replication"  # "replication" | "ec"
    r: int = 1                   # replication factor (scheme="replication")
    k: int = 0                   # data shares (scheme="ec")
    m: int = 0                   # parity shares (scheme="ec")

    def __post_init__(self) -> None:
        if self.scheme == "replication":
            if self.r < 1:
                raise ConfigError(
                    f"replication factor must be >= 1, got r={self.r}"
                )
            if self.k or self.m:
                raise ConfigError("replication takes r only, not k/m")
        elif self.scheme == "ec":
            if self.k < 1:
                raise ConfigError(f"ec needs k >= 1 data shares, got {self.k}")
            if self.m < 1:
                raise ConfigError(
                    f"ec needs m >= 1 parity shares, got {self.m} "
                    "(use replication for m=0)"
                )
            if self.r != 1:
                raise ConfigError("ec takes k+m only, not r")
        else:
            raise ConfigError(
                f"unknown redundancy scheme {self.scheme!r} "
                "(choose 'replication' or 'ec')"
            )

    # -- shape ---------------------------------------------------------------

    @property
    def width(self) -> int:
        """Physical copies/shares per segment (placement-table columns)."""
        return self.r if self.scheme == "replication" else self.k + self.m

    @property
    def read_fanout(self) -> int:
        """Copies one read touches: 1 replica, or k coded shares."""
        return 1 if self.scheme == "replication" else self.k

    @property
    def write_weight_scale(self) -> float:
        """Per-copy write weight: full copy (1.0) or 1/k of the bytes."""
        return 1.0 if self.scheme == "replication" else 1.0 / self.k

    @property
    def read_weight_cap(self) -> float:
        """Upper bound on one slot's read weight (EC shares serve <= 1/k)."""
        return 1.0 if self.scheme == "replication" else 1.0 / self.k

    @property
    def is_trivial(self) -> bool:
        """Single-copy placement — the legacy paths run untouched."""
        return self.scheme == "replication" and self.r == 1

    @property
    def spec(self) -> str:
        """Canonical spec string (``"r=3"`` / ``"ec=4+2"``)."""
        if self.scheme == "replication":
            return f"r={self.r}"
        return f"ec={self.k}+{self.m}"

    # -- parsing -------------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "RedundancyConfig":
        """Parse ``"r=3"`` or ``"ec=4+2"`` (whitespace-tolerant)."""
        text = str(spec).strip().lower()
        match = _R_SPEC.match(text)
        if match:
            return cls(scheme="replication", r=int(match.group(1)))
        match = _EC_SPEC.match(text)
        if match:
            return cls(scheme="ec", k=int(match.group(1)), m=int(match.group(2)))
        raise ConfigError(
            f"malformed redundancy spec {spec!r}; expected 'r=N' or 'ec=K+M'"
        )

    def validate_against(self, num_block_servers: int) -> None:
        """Every segment needs ``width`` distinct BlockServers."""
        if self.width > num_block_servers:
            raise ConfigError(
                f"redundancy {self.spec} needs {self.width} distinct "
                f"BlockServers per segment but the DC has only "
                f"{num_block_servers}"
            )
