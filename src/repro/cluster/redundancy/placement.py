"""PlacementMap: the (segment, slot) -> BlockServer placement table.

This is the redesigned placement surface that replaces the trio of
ad-hoc accessors the cluster model grew around single-copy placement
(``block_server_of`` / ``segments_of`` / ``placement_snapshot``).  A
:class:`PlacementMap` is a dense ``(num_segments, width)`` int64 table:
row ``s`` lists the BlockServers holding segment ``s``'s copies (or
coded shares), column 0 being the *primary*.  Width-1 maps are the
single-copy degenerate case, so every legacy call site migrates onto
the same protocol.

Invariants (enforced on construction and on every mutation):

- every cell is a valid BlockServer id;
- no row repeats a BlockServer — copies of one segment are never
  co-located (a fault-domain rule the balancer must also respect).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.util.errors import SimulationError


def ring_table(
    primaries: Sequence[int], width: int, num_block_servers: int
) -> np.ndarray:
    """Expand primary placements into a ring table.

    Replica ``j`` of a segment whose primary is ``p`` lands on
    ``(p + j) % num_block_servers`` — chained declustering, the same
    round-robin family the fleet builder uses for primaries, so copies
    spread evenly and never collide while ``width <= num_block_servers``.
    """
    if width < 1:
        raise SimulationError(f"placement width must be >= 1, got {width}")
    if width > num_block_servers:
        raise SimulationError(
            f"cannot place {width} distinct copies on "
            f"{num_block_servers} BlockServers"
        )
    base = np.asarray(primaries, dtype=np.int64)
    return (base[:, None] + np.arange(width, dtype=np.int64)[None, :]) % np.int64(
        num_block_servers
    )


class PlacementMap:
    """Mutable placement table with per-slot migration support."""

    def __init__(self, table: np.ndarray, num_block_servers: int) -> None:
        table = np.asarray(table, dtype=np.int64)
        if table.ndim == 1:
            table = table[:, None]
        if table.ndim != 2:
            raise SimulationError(
                f"placement table must be 2-D (segments x slots), "
                f"got shape {table.shape}"
            )
        self._table = table.copy()
        self._num_bs = int(num_block_servers)
        self._check_table()
        # BS -> set of (segment, slot) copies resident there.
        self._resident: Dict[int, Set[Tuple[int, int]]] = {
            bs: set() for bs in range(self._num_bs)
        }
        for seg in range(self._table.shape[0]):
            for slot in range(self._table.shape[1]):
                self._resident[int(self._table[seg, slot])].add((seg, slot))

    def _check_table(self) -> None:
        table = self._table
        if table.size and (table.min() < 0 or table.max() >= self._num_bs):
            raise SimulationError(
                f"placement table references BlockServers outside "
                f"[0, {self._num_bs})"
            )
        if table.shape[1] > 1:
            ordered = np.sort(table, axis=1)
            if bool((ordered[:, 1:] == ordered[:, :-1]).any()):
                bad = np.nonzero(
                    (np.sort(table, axis=1)[:, 1:] == np.sort(table, axis=1)[:, :-1]).any(
                        axis=1
                    )
                )[0]
                raise SimulationError(
                    f"segment {int(bad[0])} has co-located copies: "
                    f"{table[int(bad[0])].tolist()}"
                )

    # -- shape ---------------------------------------------------------------

    @property
    def num_segments(self) -> int:
        return int(self._table.shape[0])

    @property
    def width(self) -> int:
        return int(self._table.shape[1])

    @property
    def num_block_servers(self) -> int:
        return self._num_bs

    @property
    def table(self) -> np.ndarray:
        """Read-only view of the live table (do not mutate)."""
        view = self._table.view()
        view.flags.writeable = False
        return view

    def table_array(self) -> np.ndarray:
        """Defensive copy of the full (num_segments, width) table."""
        return self._table.copy()

    def primary_array(self) -> np.ndarray:
        """Defensive copy of the primary column (slot 0)."""
        return self._table[:, 0].copy()

    # -- lookups -------------------------------------------------------------

    def _check_segment(self, segment_id: int) -> int:
        seg = int(segment_id)
        if not 0 <= seg < self.num_segments:
            raise SimulationError(f"unknown segment {segment_id}")
        return seg

    def primary_of(self, segment_id: int) -> int:
        """BlockServer holding the segment's primary copy (slot 0)."""
        return int(self._table[self._check_segment(segment_id), 0])

    def replicas_of(self, segment_id: int) -> Tuple[int, ...]:
        """All BlockServers holding the segment, slot order (primary first)."""
        return tuple(
            int(bs) for bs in self._table[self._check_segment(segment_id)]
        )

    def slot_of(self, segment_id: int, bs_id: int) -> int:
        """Which slot of the segment lives on ``bs_id`` (-1 if none)."""
        row = self._table[self._check_segment(segment_id)]
        hits = np.nonzero(row == int(bs_id))[0]
        return int(hits[0]) if hits.size else -1

    def is_resident(self, segment_id: int, bs_id: int) -> bool:
        return self.slot_of(segment_id, bs_id) >= 0

    def primaries_on(self, bs_id: int) -> Set[int]:
        """Segments whose primary copy lives on ``bs_id``."""
        self._check_bs(bs_id)
        return {seg for seg, slot in self._resident[int(bs_id)] if slot == 0}

    def resident_on(self, bs_id: int) -> Set[Tuple[int, int]]:
        """All (segment, slot) copies resident on ``bs_id``."""
        self._check_bs(bs_id)
        return set(self._resident[int(bs_id)])

    def resident_count(self, bs_id: int) -> int:
        self._check_bs(bs_id)
        return len(self._resident[int(bs_id)])

    def _check_bs(self, bs_id: int) -> None:
        if not 0 <= int(bs_id) < self._num_bs:
            raise SimulationError(f"unknown BlockServer {bs_id}")

    # -- mutation ------------------------------------------------------------

    def set_slot(self, segment_id: int, slot: int, bs_id: int) -> int:
        """Move one copy; returns the BlockServer it moved from.

        Rejects out-of-range ids, no-op moves, and any move that would
        co-locate two copies of the segment.
        """
        seg = self._check_segment(segment_id)
        if not 0 <= int(slot) < self.width:
            raise SimulationError(
                f"segment {seg} has slots 0..{self.width - 1}, got {slot}"
            )
        self._check_bs(bs_id)
        slot = int(slot)
        dest = int(bs_id)
        row = self._table[seg]
        src = int(row[slot])
        if src == dest:
            raise SimulationError(
                f"segment {seg} slot {slot} already lives on BS {dest}"
            )
        if bool((row == dest).any()):
            raise SimulationError(
                f"segment {seg} already has a copy on BS {dest}; "
                f"copies must not co-locate"
            )
        self._table[seg, slot] = dest
        self._resident[src].discard((seg, slot))
        self._resident[dest].add((seg, slot))
        return src

    # -- invariants ----------------------------------------------------------

    def check_invariants(self) -> None:
        """Table/index consistency; raises SimulationError on violation."""
        self._check_table()
        total = 0
        for bs, copies in self._resident.items():
            for seg, slot in copies:
                if int(self._table[seg, slot]) != bs:
                    raise SimulationError(
                        f"resident index thinks segment {seg} slot {slot} "
                        f"is on BS {bs} but the table says "
                        f"{int(self._table[seg, slot])}"
                    )
            total += len(copies)
        expected = self.num_segments * self.width
        if total != expected:
            raise SimulationError(
                f"resident index holds {total} copies, expected {expected}"
            )

    # -- misc ----------------------------------------------------------------

    def primary_mapping(self) -> Dict[int, int]:
        """{segment -> primary BS} dict (legacy-shaped snapshot)."""
        return {seg: int(bs) for seg, bs in enumerate(self._table[:, 0])}

    def copy(self) -> "PlacementMap":
        return PlacementMap(self._table, self._num_bs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PlacementMap(num_segments={self.num_segments}, "
            f"width={self.width}, num_block_servers={self._num_bs})"
        )
