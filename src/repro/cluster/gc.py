"""Append-only segment files and BlockServer garbage collection (§2.1).

The BlockServer stores each 32 GiB segment as an append-only file on the
ChunkServer: every logical write appends a new extent, invalidating the
extent that previously held those blocks.  Garbage accumulates until the
BlockServer compacts the file — rewriting only the live data — which is
the background GC the paper mentions and a second-order reason write
balance matters (GC multiplies the write traffic a BS carries).

:class:`SegmentFile` tracks live/garbage bytes per segment under logical
writes; :class:`GarbageCollector` triggers compaction when the garbage
ratio crosses a threshold and accounts the resulting write amplification:

    WA = (user bytes + GC-rewritten bytes) / user bytes

Hot blocks that are *re-written* heavily (the paper's write-dominant
hottest blocks) generate garbage at the rewrite rate, so skewed traffic
also concentrates GC work — quantified by :func:`simulate_gc`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.trace.dataset import TraceDataset
from repro.trace.records import OpKind
from repro.util.errors import ConfigError, SimulationError


@dataclass(frozen=True)
class GcConfig:
    """Compaction policy of the BlockServer GC.

    Accounting is at *extent* granularity (``extent_bytes``), coarser than
    the 4 KiB LBA page: the append-only file tracks extents and GC
    decisions are per extent.  A logical write touching any part of a live
    extent invalidates that whole extent.
    """

    #: Compact a segment when garbage exceeds this fraction of the file.
    garbage_threshold: float = 0.5
    #: Extent granularity of invalidation.
    extent_bytes: int = 64 * 1024

    def __post_init__(self) -> None:
        if not 0.0 < self.garbage_threshold < 1.0:
            raise ConfigError("garbage_threshold must be in (0, 1)")
        if self.extent_bytes <= 0:
            raise ConfigError("extent_bytes must be positive")


class SegmentFile:
    """Live/garbage accounting of one append-only segment file.

    Tracks which logical extents currently hold live data; a write to an
    extent that is already live turns the old copy into garbage.  All byte
    figures are extent-rounded.
    """

    def __init__(self, segment_id: int, config: GcConfig = GcConfig()):
        self.segment_id = segment_id
        self.config = config
        self._live: set = set()  # extent indices holding live data
        self._garbage_extents = 0
        self._appended_extents = 0

    @property
    def live_bytes(self) -> int:
        return len(self._live) * self.config.extent_bytes

    @property
    def garbage_bytes(self) -> int:
        return self._garbage_extents * self.config.extent_bytes

    @property
    def appended_bytes(self) -> int:
        return self._appended_extents * self.config.extent_bytes

    @property
    def file_bytes(self) -> int:
        """Physical file size: live data plus not-yet-collected garbage."""
        return self.live_bytes + self.garbage_bytes

    @property
    def garbage_ratio(self) -> float:
        size = self.file_bytes
        return self.garbage_bytes / size if size else 0.0

    def write(self, offset: int, size: int) -> None:
        """Apply one logical write: append extents, invalidate old copies."""
        if size <= 0 or offset < 0:
            raise SimulationError("writes need positive size, offset >= 0")
        extent_bytes = self.config.extent_bytes
        first = offset // extent_bytes
        last = (offset + size - 1) // extent_bytes
        touched = range(first, last + 1)
        self._garbage_extents += len(self._live.intersection(touched))
        self._live.update(touched)
        self._appended_extents += len(touched)

    def compact(self) -> int:
        """Rewrite live data, dropping all garbage; returns bytes rewritten."""
        rewritten = self.live_bytes
        self._garbage_extents = 0
        return rewritten

    @property
    def needs_compaction(self) -> bool:
        return self.garbage_ratio >= self.config.garbage_threshold


@dataclass
class GcStats:
    """Aggregate GC accounting over a replay."""

    user_write_bytes: int = 0
    gc_rewritten_bytes: int = 0
    compactions: int = 0
    per_segment_rewrites: Dict[int, int] = field(default_factory=dict)

    @property
    def write_amplification(self) -> float:
        """(user + GC) / user; 1.0 when no compaction ever ran."""
        if self.user_write_bytes == 0:
            return 1.0
        return (
            self.user_write_bytes + self.gc_rewritten_bytes
        ) / self.user_write_bytes


class GarbageCollector:
    """Threshold-driven compaction over a set of segment files."""

    def __init__(self, config: GcConfig = GcConfig()):
        self.config = config
        self._files: Dict[int, SegmentFile] = {}
        self.stats = GcStats()

    def file(self, segment_id: int) -> SegmentFile:
        if segment_id not in self._files:
            self._files[segment_id] = SegmentFile(segment_id, self.config)
        return self._files[segment_id]

    def write(self, segment_id: int, offset: int, size: int) -> None:
        """Apply a logical write and compact if the threshold is crossed."""
        segment = self.file(segment_id)
        segment.write(offset, size)
        self.stats.user_write_bytes += size
        if segment.needs_compaction:
            rewritten = segment.compact()
            self.stats.gc_rewritten_bytes += rewritten
            self.stats.compactions += 1
            self.stats.per_segment_rewrites[segment_id] = (
                self.stats.per_segment_rewrites.get(segment_id, 0) + rewritten
            )

    def segments(self) -> List[int]:
        return sorted(self._files)


def simulate_gc(
    traces: TraceDataset, config: GcConfig = GcConfig()
) -> GcStats:
    """Replay a trace's writes through the GC; returns the accounting.

    Offsets are segment-relative'd by the trace's segment ids, so the
    per-segment garbage profiles reflect each segment's own rewrite
    behaviour (the hottest blocks dominate).
    """
    gc = GarbageCollector(config)
    order = np.argsort(traces.timestamp, kind="stable")
    ops = traces.op[order]
    segments = traces.segment_id[order]
    offsets = traces.offset_bytes[order]
    sizes = traces.size_bytes[order]
    writes = ops == int(OpKind.WRITE)
    for seg, off, size in zip(
        segments[writes], offsets[writes], sizes[writes]
    ):
        gc.write(int(seg), int(off), int(size))
    return gc.stats
