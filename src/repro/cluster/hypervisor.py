"""Hypervisor worker threads and the QP-to-WT binding (§2.2, §4).

Each compute node runs a fixed set of polling worker threads (WTs).  Every
virtual-disk queue pair (QP) is statically bound to exactly one WT
("single-WT hosting"); the production load balancer assigns QPs to WTs in
round-robin attach order.  The binding is mutable so §4.3's rebinding
experiments can swap the QP sets of two WTs at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.util.errors import ConfigError, SimulationError
from repro.workload.fleet import Fleet


@dataclass(frozen=True)
class StallEvent:
    """One QP wedging or unwedging (an RDMA QP stuck mid-rebind, §4.3)."""

    timestamp: int
    qp_id: int
    action: str  # "stall" | "unstall"


class Hypervisor:
    """The WT set and QP binding of one compute node."""

    def __init__(self, fleet: Fleet, node_id: int):
        if not 0 <= node_id < fleet.config.num_compute_nodes:
            raise ConfigError(
                f"node_id {node_id} out of range "
                f"[0, {fleet.config.num_compute_nodes})"
            )
        self.node_id = node_id
        self.worker_ids: List[int] = list(fleet.wt_ids_of_node(node_id))
        self._binding: Dict[int, int] = {}
        # Stall depth per QP (fault windows may overlap, so they count).
        self._stalled: Dict[int, int] = {}
        self.stall_log: List[StallEvent] = []
        # The fleet's node index returns QPs in ascending id order already;
        # the sort is a cheap invariant guard (O(n) on sorted input).
        node_qps = fleet.qps_of_node(node_id)
        # Round-robin in attach (qp id) order, like the production balancer.
        for index, qp in enumerate(sorted(node_qps, key=lambda q: q.qp_id)):
            wt = self.worker_ids[index % len(self.worker_ids)]
            self._binding[qp.qp_id] = wt

    @property
    def num_workers(self) -> int:
        return len(self.worker_ids)

    @property
    def qp_ids(self) -> List[int]:
        return sorted(self._binding)

    def wt_of(self, qp_id: int) -> int:
        """The worker thread currently hosting ``qp_id``."""
        if qp_id not in self._binding:
            raise SimulationError(
                f"qp {qp_id} is not attached to node {self.node_id}"
            )
        return self._binding[qp_id]

    def qps_of_wt(self, wt_id: int) -> List[int]:
        """All QPs currently bound to ``wt_id`` (ascending)."""
        if wt_id not in self.worker_ids:
            raise SimulationError(
                f"wt {wt_id} does not belong to node {self.node_id}"
            )
        return sorted(
            qp for qp, wt in self._binding.items() if wt == wt_id
        )

    def rebind(self, qp_id: int, wt_id: int) -> None:
        """Move one QP to a different worker thread."""
        if wt_id not in self.worker_ids:
            raise SimulationError(
                f"wt {wt_id} does not belong to node {self.node_id}"
            )
        if qp_id not in self._binding:
            raise SimulationError(
                f"qp {qp_id} is not attached to node {self.node_id}"
            )
        self._binding[qp_id] = wt_id

    def swap_workers(self, wt_a: int, wt_b: int) -> None:
        """Exchange the full QP sets of two worker threads.

        This is the §4.3 rebinding primitive: when the hottest WT exceeds
        the trigger over the coldest, their bound QPs are swapped.
        """
        qps_a = self.qps_of_wt(wt_a)
        qps_b = self.qps_of_wt(wt_b)
        for qp in qps_a:
            self._binding[qp] = wt_b
        for qp in qps_b:
            self._binding[qp] = wt_a

    # -- fault injection: stalled QPs ---------------------------------------

    def stall_qp(self, qp_id: int, timestamp: int = 0) -> None:
        """Mark a QP stalled (stops draining; binding is unchanged).

        Stalls nest: overlapping windows count, and the QP drains again
        only after the last :meth:`unstall_qp`.
        """
        if qp_id not in self._binding:
            raise SimulationError(
                f"qp {qp_id} is not attached to node {self.node_id}"
            )
        self._stalled[qp_id] = self._stalled.get(qp_id, 0) + 1
        self.stall_log.append(
            StallEvent(timestamp=timestamp, qp_id=qp_id, action="stall")
        )

    def unstall_qp(self, qp_id: int, timestamp: int = 0) -> None:
        """Undo one :meth:`stall_qp` (raises if the QP is not stalled)."""
        if qp_id not in self._binding:
            raise SimulationError(
                f"qp {qp_id} is not attached to node {self.node_id}"
            )
        depth = self._stalled.get(qp_id, 0)
        if depth <= 0:
            raise SimulationError(f"qp {qp_id} is not stalled")
        if depth == 1:
            self._stalled.pop(qp_id)
        else:
            self._stalled[qp_id] = depth - 1
        self.stall_log.append(
            StallEvent(timestamp=timestamp, qp_id=qp_id, action="unstall")
        )

    def is_stalled(self, qp_id: int) -> bool:
        if qp_id not in self._binding:
            raise SimulationError(
                f"qp {qp_id} is not attached to node {self.node_id}"
            )
        return self._stalled.get(qp_id, 0) > 0

    @property
    def stalled_qps(self) -> "Set[int]":
        return {qp for qp, depth in self._stalled.items() if depth > 0}

    def binding_snapshot(self) -> Dict[int, int]:
        """A copy of the current QP -> WT mapping."""
        return dict(self._binding)


class HypervisorSet:
    """All hypervisors of a fleet, indexed by compute node."""

    def __init__(self, fleet: Fleet):
        self.fleet = fleet
        self._nodes = [
            Hypervisor(fleet, node_id)
            for node_id in range(fleet.config.num_compute_nodes)
        ]

    def node(self, node_id: int) -> Hypervisor:
        if not 0 <= node_id < len(self._nodes):
            raise SimulationError(f"no hypervisor for node {node_id}")
        return self._nodes[node_id]

    def __iter__(self):
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def wt_of_qp(self, qp_id: int) -> int:
        """Global lookup: the WT hosting a QP anywhere in the fleet."""
        qp = self.fleet.queue_pairs[qp_id]
        return self.node(qp.compute_node_id).wt_of(qp_id)

    def stall_qp(self, qp_id: int, timestamp: int = 0) -> None:
        """Stall a QP anywhere in the fleet (routes to its hypervisor)."""
        qp = self.fleet.queue_pairs[qp_id]
        self.node(qp.compute_node_id).stall_qp(qp_id, timestamp=timestamp)

    def unstall_qp(self, qp_id: int, timestamp: int = 0) -> None:
        """Undo one fleet-level :meth:`stall_qp`."""
        qp = self.fleet.queue_pairs[qp_id]
        self.node(qp.compute_node_id).unstall_qp(qp_id, timestamp=timestamp)

    def stalled_snapshot(self) -> "Set[int]":
        """All currently stalled QPs across the fleet."""
        out: Set[int] = set()
        for hypervisor in self._nodes:
            out |= hypervisor.stalled_qps
        return out

    def binding_arrays(self) -> "Dict[int, int]":
        """Flat QP -> WT mapping over the whole fleet."""
        out: Dict[int, int] = {}
        for hypervisor in self._nodes:
            out.update(hypervisor.binding_snapshot())
        return out
