"""Per-component latency model for the five traced stack stages.

Each IO's end-to-end latency decomposes into compute node (hypervisor),
frontend network, BlockServer, backend network, and ChunkServer, exactly the
five components DiTing traces.  Each component contributes:

- a base service time,
- a size-proportional transfer term,
- a queueing inflation ``1 / (1 - u)`` from the utilization of the shared
  resource (the WT for the compute stage, the BS for the storage stage),
- multiplicative lognormal jitter with a rare heavy-tail excursion.

Reads pay the ChunkServer media read cost; writes are persisted to an
append-only log (plus replication on the backend network), which is cheaper
at the media but pays the replication round on the backend.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ConfigError
from repro.util.units import MiB


@dataclass(frozen=True)
class LatencyConfig:
    """Base costs (microseconds) and shape parameters."""

    compute_base_us: float = 6.0
    frontend_base_us: float = 22.0
    block_server_base_us: float = 18.0
    backend_base_us: float = 14.0
    chunk_server_read_base_us: float = 85.0
    chunk_server_write_base_us: float = 35.0
    write_replication_factor: float = 2.0
    network_us_per_mib: float = 320.0  # ~25 Gbps effective
    media_us_per_mib: float = 450.0
    jitter_sigma: float = 0.25
    tail_probability: float = 0.002
    tail_multiplier: float = 20.0
    max_utilization: float = 0.95

    def __post_init__(self) -> None:
        for name in (
            "compute_base_us",
            "frontend_base_us",
            "block_server_base_us",
            "backend_base_us",
            "chunk_server_read_base_us",
            "chunk_server_write_base_us",
            "network_us_per_mib",
            "media_us_per_mib",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if not 0.0 <= self.tail_probability < 1.0:
            raise ConfigError("tail_probability must be in [0, 1)")
        if self.tail_multiplier < 1.0:
            raise ConfigError("tail_multiplier must be >= 1")
        if not 0.0 < self.max_utilization < 1.0:
            raise ConfigError("max_utilization must be in (0, 1)")


class LatencyModel:
    """Vectorized sampler of the five per-component latencies."""

    COMPONENTS = (
        "compute",
        "frontend",
        "block_server",
        "backend",
        "chunk_server",
    )

    def __init__(self, config: LatencyConfig = LatencyConfig()):
        self.config = config

    def _queueing(self, utilization: np.ndarray) -> np.ndarray:
        u = np.clip(utilization, 0.0, self.config.max_utilization)
        return 1.0 / (1.0 - u)

    def _jitter(self, rng: np.random.Generator, n: int) -> np.ndarray:
        cfg = self.config
        jitter = rng.lognormal(0.0, cfg.jitter_sigma, size=n)
        if cfg.tail_probability > 0:
            tails = rng.random(n) < cfg.tail_probability
            jitter[tails] *= cfg.tail_multiplier
        return jitter

    def sample(
        self,
        rng: np.random.Generator,
        is_write: np.ndarray,
        size_bytes: np.ndarray,
        wt_utilization: np.ndarray,
        bs_utilization: np.ndarray,
    ) -> "dict[str, np.ndarray]":
        """Latency arrays (us) for a batch of IOs, keyed by component.

        ``wt_utilization``/``bs_utilization`` are per-IO utilizations of the
        worker thread and BlockServer serving each IO at its issue time.
        """
        is_write = np.asarray(is_write, dtype=bool)
        size = np.asarray(size_bytes, dtype=float)
        wt_u = np.asarray(wt_utilization, dtype=float)
        bs_u = np.asarray(bs_utilization, dtype=float)
        n = is_write.size
        if not (size.size == wt_u.size == bs_u.size == n):
            raise ConfigError("latency inputs must have equal lengths")
        if n == 0:
            return {name: np.zeros(0) for name in self.COMPONENTS}
        cfg = self.config
        size_mib = size / MiB
        transfer_net = size_mib * cfg.network_us_per_mib
        transfer_media = size_mib * cfg.media_us_per_mib

        compute = (
            cfg.compute_base_us * self._queueing(wt_u) * self._jitter(rng, n)
        )
        frontend = (cfg.frontend_base_us + transfer_net) * self._jitter(rng, n)
        block_server = (
            cfg.block_server_base_us
            * self._queueing(bs_u)
            * self._jitter(rng, n)
        )
        backend_cost = cfg.backend_base_us + transfer_net
        backend = np.where(
            is_write, backend_cost * cfg.write_replication_factor, backend_cost
        ) * self._jitter(rng, n)
        chunk_base = np.where(
            is_write,
            cfg.chunk_server_write_base_us,
            cfg.chunk_server_read_base_us + transfer_media,
        )
        chunk_server = chunk_base * self._jitter(rng, n)
        return {
            "compute": compute,
            "frontend": frontend,
            "block_server": block_server,
            "backend": backend,
            "chunk_server": chunk_server,
        }

    def cached_latency(
        self,
        rng: np.random.Generator,
        is_write: np.ndarray,
        size_bytes: np.ndarray,
        location: str,
    ) -> np.ndarray:
        """End-to-end latency (us) when an IO is served by a cache (§7.3.2).

        ``location`` is ``"compute_node"`` (the IO never leaves the CN) or
        ``"block_server"`` (it crosses the frontend but skips the CS and
        backend network).
        """
        if location not in ("compute_node", "block_server"):
            raise ConfigError(
                "cache location must be 'compute_node' or 'block_server', "
                f"got {location!r}"
            )
        is_write = np.asarray(is_write, dtype=bool)
        size = np.asarray(size_bytes, dtype=float)
        n = is_write.size
        cfg = self.config
        size_mib = size / MiB
        # Persistent cache media (flash/PMEM) on the serving node.
        media = 8.0 + size_mib * cfg.media_us_per_mib * 0.25
        compute = cfg.compute_base_us * self._jitter(rng, n)
        if location == "compute_node":
            return compute + media * self._jitter(rng, n)
        frontend = (
            cfg.frontend_base_us + size_mib * cfg.network_us_per_mib
        ) * self._jitter(rng, n)
        block_server = cfg.block_server_base_us * self._jitter(rng, n)
        return compute + frontend + block_server + media * self._jitter(rng, n)
