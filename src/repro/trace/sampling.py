"""IO sampling, mirroring DiTing's 1/3200 trace downsampling.

The production tracer cannot afford to record every IO, so it samples
uniformly at a fixed rate.  :class:`TraceSampler` reproduces that: given the
number of IOs issued in an interval it returns how many get traced, with the
same expectation and binomial variance as per-IO Bernoulli sampling.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ConfigError

#: The paper's production sampling rate.
PAPER_SAMPLING_RATE = 1.0 / 3200.0


class TraceSampler:
    """Binomial downsampler for per-interval IO counts."""

    def __init__(self, rate: float, rng: np.random.Generator):
        if not 0.0 < rate <= 1.0:
            raise ConfigError(f"sampling rate must be in (0, 1], got {rate}")
        self.rate = float(rate)
        self._rng = rng

    def sample_count(self, num_ios: int) -> int:
        """How many of ``num_ios`` IOs get traced (binomial draw)."""
        if num_ios < 0:
            raise ConfigError(f"num_ios must be non-negative, got {num_ios}")
        if num_ios == 0:
            return 0
        if self.rate == 1.0:
            return num_ios
        return int(self._rng.binomial(num_ios, self.rate))

    def sample_counts(self, num_ios: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`sample_count` over an array of IO counts."""
        counts = np.asarray(num_ios, dtype=np.int64)
        if np.any(counts < 0):
            raise ConfigError("num_ios must be non-negative")
        if self.rate == 1.0:
            return counts.copy()
        out = np.zeros_like(counts)
        positive = counts > 0
        out[positive] = self._rng.binomial(counts[positive], self.rate)
        return out
