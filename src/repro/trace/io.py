"""File IO for trace and metric datasets (JSONL for traces, CSV for metrics).

The on-disk formats follow the released tianchi dataset's spirit: one
self-describing row per IO (traces) or per second-entity aggregate (metrics),
so datasets generated here can be inspected with standard tooling.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Type, Union

from repro.trace.dataset import (
    ComputeMetricTable,
    StorageMetricTable,
    TraceDataset,
    _ColumnarTable,
)
from repro.util.errors import DatasetError

PathLike = Union[str, Path]


def write_trace_jsonl(dataset: TraceDataset, path: PathLike) -> None:
    """Write a trace dataset to JSON-lines, one IO per line.

    The first line is a header object carrying the sampling rate.
    """
    path = Path(path)
    columns = dataset.columns()
    with path.open("w", encoding="utf-8") as handle:
        header = {"kind": "trace", "sampling_rate": dataset.sampling_rate}
        handle.write(json.dumps(header) + "\n")
        for index in range(len(dataset)):
            row = {
                name: (
                    float(arr[index])
                    if name in dataset.FLOAT_FIELDS
                    else int(arr[index])
                )
                for name, arr in columns.items()
            }
            handle.write(json.dumps(row) + "\n")


def read_trace_jsonl(path: PathLike) -> TraceDataset:
    """Read a trace dataset written by :func:`write_trace_jsonl`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line:
            raise DatasetError(f"{path}: empty trace file")
        header = json.loads(header_line)
        if header.get("kind") != "trace":
            raise DatasetError(f"{path}: not a trace file header: {header}")
        rows = [json.loads(line) for line in handle if line.strip()]
    fields = (*TraceDataset.INT_FIELDS, *TraceDataset.FLOAT_FIELDS)
    columns = {name: [row[name] for row in rows] for name in fields}
    return TraceDataset(sampling_rate=header["sampling_rate"], **columns)


def write_metric_csv(table: _ColumnarTable, path: PathLike) -> None:
    """Write a compute or storage metric table to CSV with a header row."""
    path = Path(path)
    fields = (*table.INT_FIELDS, *table.FLOAT_FIELDS)
    columns = table.columns()
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(fields)
        for index in range(len(table)):
            writer.writerow(
                [
                    (
                        repr(float(columns[name][index]))
                        if name in table.FLOAT_FIELDS
                        else int(columns[name][index])
                    )
                    for name in fields
                ]
            )


def read_metric_csv(
    path: PathLike,
    table_cls: "Type[_ColumnarTable]",
) -> _ColumnarTable:
    """Read a metric CSV into ``table_cls`` (compute or storage table)."""
    if table_cls not in (ComputeMetricTable, StorageMetricTable):
        raise DatasetError(
            "table_cls must be ComputeMetricTable or StorageMetricTable"
        )
    path = Path(path)
    with path.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration as exc:
            raise DatasetError(f"{path}: empty metric file") from exc
        expected = [*table_cls.INT_FIELDS, *table_cls.FLOAT_FIELDS]
        if header != expected:
            raise DatasetError(
                f"{path}: header mismatch: got {header}, expected {expected}"
            )
        rows = [row for row in reader if row]
    columns = {
        name: [row[index] for row in rows] for index, name in enumerate(expected)
    }
    typed = {
        name: (
            [float(v) for v in values]
            if name in table_cls.FLOAT_FIELDS
            else [int(v) for v in values]
        )
        for name, values in columns.items()
    }
    return table_cls(**typed)
