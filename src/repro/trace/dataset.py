"""Columnar containers for the trace, metric and specification datasets.

Tables store one numpy array per field.  Analyses that need to slice by
entity or re-aggregate by time work on the arrays directly; tests and file
IO use the row-record views.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.trace.records import (
    ComputeMetricRecord,
    OpKind,
    StorageMetricRecord,
    TraceRecord,
    VdSpec,
    VmSpec,
)
from repro.util.errors import DatasetError


class _ColumnarTable:
    """Base for tables stored as parallel numpy arrays.

    Subclasses define ``INT_FIELDS`` and ``FLOAT_FIELDS``; the constructor
    accepts one keyword per field and validates equal lengths.
    """

    INT_FIELDS: Tuple[str, ...] = ()
    FLOAT_FIELDS: Tuple[str, ...] = ()

    def __init__(self, **columns: Sequence[float]):
        expected = set(self.INT_FIELDS) | set(self.FLOAT_FIELDS)
        given = set(columns)
        if given != expected:
            missing = expected - given
            extra = given - expected
            raise DatasetError(
                f"bad columns for {type(self).__name__}: "
                f"missing={sorted(missing)} extra={sorted(extra)}"
            )
        length = None
        for name in self.INT_FIELDS:
            arr = np.asarray(columns[name], dtype=np.int64)
            if length is None:
                length = arr.size
            elif arr.size != length:
                raise DatasetError(
                    f"column {name} has length {arr.size}, expected {length}"
                )
            setattr(self, name, arr)
        for name in self.FLOAT_FIELDS:
            arr = np.asarray(columns[name], dtype=np.float64)
            if length is None:
                length = arr.size
            elif arr.size != length:
                raise DatasetError(
                    f"column {name} has length {arr.size}, expected {length}"
                )
            setattr(self, name, arr)
        self._length = int(length or 0)

    def __len__(self) -> int:
        return self._length

    def columns(self) -> Dict[str, np.ndarray]:
        """All columns as a name -> array mapping (views, not copies)."""
        return {
            name: getattr(self, name)
            for name in (*self.INT_FIELDS, *self.FLOAT_FIELDS)
        }

    def where(self, mask: np.ndarray) -> "_ColumnarTable":
        """A new table containing only rows where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        if mask.size != self._length:
            raise DatasetError(
                f"mask length {mask.size} != table length {self._length}"
            )
        return type(self)(
            **{name: arr[mask] for name, arr in self.columns().items()}
        )

    def concat(self, other: "_ColumnarTable") -> "_ColumnarTable":
        """A new table with the rows of both tables."""
        if type(other) is not type(self):
            raise DatasetError(
                f"cannot concat {type(self).__name__} with {type(other).__name__}"
            )
        return type(self)(
            **{
                name: np.concatenate([arr, getattr(other, name)])
                for name, arr in self.columns().items()
            }
        )

    # -- aggregation helpers -------------------------------------------------

    def sum_by(self, key_field: str, value_field: str) -> Dict[int, float]:
        """Sum ``value_field`` grouped by integer ``key_field``."""
        keys = getattr(self, key_field)
        values = getattr(self, value_field)
        uniq, inverse = np.unique(keys, return_inverse=True)
        sums = np.zeros(uniq.size)
        np.add.at(sums, inverse, values)
        return {int(k): float(s) for k, s in zip(uniq, sums)}

    def timeseries_by(
        self, key_field: str, value_field: str, total_seconds: int
    ) -> Dict[int, np.ndarray]:
        """Per-key traffic time series of length ``total_seconds``.

        Rows outside ``[0, total_seconds)`` raise, since that indicates a
        duration mismatch between the dataset and the caller.
        """
        timestamps = getattr(self, "timestamp").astype(np.int64)
        if timestamps.size and (
            timestamps.min() < 0 or timestamps.max() >= total_seconds
        ):
            raise DatasetError(
                "timestamps fall outside [0, total_seconds); "
                f"range is [{timestamps.min()}, {timestamps.max()}]"
            )
        keys = getattr(self, key_field)
        values = getattr(self, value_field)
        uniq, inverse = np.unique(keys, return_inverse=True)
        grid = np.zeros((uniq.size, total_seconds))
        np.add.at(grid, (inverse, timestamps), values)
        return {int(k): grid[i] for i, k in enumerate(uniq)}


class ComputeMetricTable(_ColumnarTable):
    """Second-granularity per-QP traffic in the compute domain (Table 1)."""

    INT_FIELDS = (
        "timestamp",
        "cluster_id",
        "compute_node_id",
        "user_id",
        "vm_id",
        "vd_id",
        "wt_id",
        "qp_id",
    )
    FLOAT_FIELDS = ("read_bytes", "write_bytes", "read_iops", "write_iops")

    @classmethod
    def from_records(
        cls, records: Iterable[ComputeMetricRecord]
    ) -> "ComputeMetricTable":
        records = list(records)
        return cls(
            **{
                name: [getattr(r, name) for r in records]
                for name in (*cls.INT_FIELDS, *cls.FLOAT_FIELDS)
            }
        )

    def record(self, index: int) -> ComputeMetricRecord:
        return ComputeMetricRecord(
            **{
                name: (
                    int(getattr(self, name)[index])
                    if name in self.INT_FIELDS
                    else float(getattr(self, name)[index])
                )
                for name in (*self.INT_FIELDS, *self.FLOAT_FIELDS)
            }
        )

    def records(self) -> Iterator[ComputeMetricRecord]:
        for index in range(len(self)):
            yield self.record(index)


class StorageMetricTable(_ColumnarTable):
    """Second-granularity per-segment traffic in the storage domain."""

    INT_FIELDS = (
        "timestamp",
        "cluster_id",
        "storage_node_id",
        "block_server_id",
        "user_id",
        "vm_id",
        "vd_id",
        "segment_id",
    )
    FLOAT_FIELDS = ("read_bytes", "write_bytes", "read_iops", "write_iops")

    @classmethod
    def from_records(
        cls, records: Iterable[StorageMetricRecord]
    ) -> "StorageMetricTable":
        records = list(records)
        return cls(
            **{
                name: [getattr(r, name) for r in records]
                for name in (*cls.INT_FIELDS, *cls.FLOAT_FIELDS)
            }
        )

    def record(self, index: int) -> StorageMetricRecord:
        return StorageMetricRecord(
            **{
                name: (
                    int(getattr(self, name)[index])
                    if name in self.INT_FIELDS
                    else float(getattr(self, name)[index])
                )
                for name in (*self.INT_FIELDS, *self.FLOAT_FIELDS)
            }
        )

    def records(self) -> Iterator[StorageMetricRecord]:
        for index in range(len(self)):
            yield self.record(index)


class TraceDataset(_ColumnarTable):
    """Sampled per-IO traces with per-component latencies."""

    INT_FIELDS = (
        "trace_id",
        "op",
        "size_bytes",
        "offset_bytes",
        "user_id",
        "vm_id",
        "vd_id",
        "qp_id",
        "wt_id",
        "compute_node_id",
        "segment_id",
        "block_server_id",
        "storage_node_id",
    )
    FLOAT_FIELDS = (
        "timestamp",
        "lat_compute_us",
        "lat_frontend_us",
        "lat_block_server_us",
        "lat_backend_us",
        "lat_chunk_server_us",
    )

    def __init__(self, sampling_rate: float = 1.0, **columns):
        if not 0.0 < sampling_rate <= 1.0:
            raise DatasetError(
                f"sampling rate must be in (0, 1], got {sampling_rate}"
            )
        super().__init__(**columns)
        self.sampling_rate = float(sampling_rate)

    def where(self, mask: np.ndarray) -> "TraceDataset":
        mask = np.asarray(mask, dtype=bool)
        if mask.size != len(self):
            raise DatasetError(
                f"mask length {mask.size} != table length {len(self)}"
            )
        return TraceDataset(
            sampling_rate=self.sampling_rate,
            **{name: arr[mask] for name, arr in self.columns().items()},
        )

    def concat(self, other: "TraceDataset") -> "TraceDataset":
        if not isinstance(other, TraceDataset):
            raise DatasetError("can only concat TraceDataset with TraceDataset")
        if other.sampling_rate != self.sampling_rate:
            raise DatasetError(
                "cannot concat traces with different sampling rates: "
                f"{self.sampling_rate} vs {other.sampling_rate}"
            )
        return TraceDataset(
            sampling_rate=self.sampling_rate,
            **{
                name: np.concatenate([arr, getattr(other, name)])
                for name, arr in self.columns().items()
            },
        )

    @classmethod
    def from_records(
        cls, records: Iterable[TraceRecord], sampling_rate: float = 1.0
    ) -> "TraceDataset":
        records = list(records)
        return cls(
            sampling_rate=sampling_rate,
            **{
                name: [getattr(r, name) for r in records]
                for name in (*cls.INT_FIELDS, *cls.FLOAT_FIELDS)
            },
        )

    def record(self, index: int) -> TraceRecord:
        kwargs = {}
        for name in self.INT_FIELDS:
            value = int(getattr(self, name)[index])
            kwargs[name] = OpKind(value) if name == "op" else value
        for name in self.FLOAT_FIELDS:
            kwargs[name] = float(getattr(self, name)[index])
        return TraceRecord(**kwargs)

    def records(self) -> Iterator[TraceRecord]:
        for index in range(len(self)):
            yield self.record(index)

    @property
    def latency_us(self) -> np.ndarray:
        """End-to-end latency per trace (sum of the five components)."""
        return (
            self.lat_compute_us
            + self.lat_frontend_us
            + self.lat_block_server_us
            + self.lat_backend_us
            + self.lat_chunk_server_us
        )

    def reads(self) -> "TraceDataset":
        return self.where(self.op == int(OpKind.READ))

    def writes(self) -> "TraceDataset":
        return self.where(self.op == int(OpKind.WRITE))

    def for_vd(self, vd_id: int) -> "TraceDataset":
        return self.where(self.vd_id == vd_id)

    def estimated_total_ios(self) -> float:
        """Estimated unsampled IO count (sampled count / sampling rate)."""
        return len(self) / self.sampling_rate


@dataclass
class SpecDataset:
    """Specification data: per-VD limits and per-VM applications."""

    vd_specs: List[VdSpec] = field(default_factory=list)
    vm_specs: List[VmSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._vd_by_id = {spec.vd_id: spec for spec in self.vd_specs}
        self._vm_by_id = {spec.vm_id: spec for spec in self.vm_specs}
        if len(self._vd_by_id) != len(self.vd_specs):
            raise DatasetError("duplicate vd_id in specification data")
        if len(self._vm_by_id) != len(self.vm_specs):
            raise DatasetError("duplicate vm_id in specification data")

    def vd(self, vd_id: int) -> VdSpec:
        if vd_id not in self._vd_by_id:
            raise DatasetError(f"unknown vd_id {vd_id}")
        return self._vd_by_id[vd_id]

    def vm(self, vm_id: int) -> VmSpec:
        if vm_id not in self._vm_by_id:
            raise DatasetError(f"unknown vm_id {vm_id}")
        return self._vm_by_id[vm_id]

    def vds_of_vm(self, vm_id: int) -> List[VdSpec]:
        return [spec for spec in self.vd_specs if spec.vm_id == vm_id]

    def application_of_vm(self, vm_id: int) -> str:
        return self.vm(vm_id).application


@dataclass
class MetricDataset:
    """The paired compute/storage metric tables plus the study duration."""

    compute: ComputeMetricTable
    storage: StorageMetricTable
    duration_seconds: int

    def __post_init__(self) -> None:
        if self.duration_seconds <= 0:
            raise DatasetError("duration_seconds must be positive")

    def total_read_bytes(self) -> float:
        return float(self.compute.read_bytes.sum())

    def total_write_bytes(self) -> float:
        return float(self.compute.write_bytes.sum())

    def compute_for_node(self, node_id: int) -> ComputeMetricTable:
        return self.compute.where(self.compute.compute_node_id == node_id)

    def storage_for_cluster(self, cluster_id: int) -> StorageMetricTable:
        return self.storage.where(self.storage.cluster_id == cluster_id)
