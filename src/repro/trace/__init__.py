"""DiTing-style dataset model: sampled per-IO traces + full-volume metrics.

The paper collects three datasets (§2.3):

- **trace data** — per-IO records at a 1/3200 sampling rate, carrying the
  block-layer info (opcode, size, LBA offset), the stack path (node, VM, VD,
  WT, QP, segment, BlockServer, storage node) and per-component latencies;
- **metric data** — second-granularity throughput/IOPS aggregates over *all*
  IOs, split into a compute domain (per QP-WT pair) and a storage domain
  (per segment), see Table 1;
- **specification data** — per-VD capacity and throughput/IOPS caps plus the
  inferred application type of each VM.

This package defines the same three datasets.  Storage is columnar
(:class:`numpy.ndarray` per field) so the statistical analyses stay
vectorized; record dataclasses are provided as row views for IO and tests.
"""

from repro.trace.records import (
    ComputeMetricRecord,
    OpKind,
    StorageMetricRecord,
    TraceRecord,
    VdSpec,
    VmSpec,
)
from repro.trace.dataset import (
    ComputeMetricTable,
    MetricDataset,
    SpecDataset,
    StorageMetricTable,
    TraceDataset,
)
from repro.trace.sampling import TraceSampler
from repro.trace.io import (
    read_metric_csv,
    read_trace_jsonl,
    write_metric_csv,
    write_trace_jsonl,
)
from repro.trace.transform import (
    drop_time_window,
    resample_traces,
    shift_timestamps,
)

__all__ = [
    "ComputeMetricRecord",
    "OpKind",
    "StorageMetricRecord",
    "TraceRecord",
    "VdSpec",
    "VmSpec",
    "ComputeMetricTable",
    "MetricDataset",
    "SpecDataset",
    "StorageMetricTable",
    "TraceDataset",
    "TraceSampler",
    "read_metric_csv",
    "read_trace_jsonl",
    "write_metric_csv",
    "write_trace_jsonl",
    "drop_time_window",
    "resample_traces",
    "shift_timestamps",
]
