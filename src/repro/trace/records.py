"""Row-level record types for the three DiTing datasets.

All entity references are small integer ids assigned by the fleet builder
(:mod:`repro.workload.fleet`); the columnar tables in
:mod:`repro.trace.dataset` store the same fields as parallel arrays.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.errors import DatasetError


class OpKind(enum.IntEnum):
    """Block-layer opcode of an IO."""

    READ = 0
    WRITE = 1


@dataclass(frozen=True)
class TraceRecord:
    """One sampled IO, end to end across the EBS stack.

    Latencies are in microseconds and cover the five major components the
    paper traces: compute node (hypervisor), frontend network, BlockServer,
    backend network, and ChunkServer.
    """

    trace_id: int
    timestamp: float
    op: OpKind
    size_bytes: int
    offset_bytes: int
    user_id: int
    vm_id: int
    vd_id: int
    qp_id: int
    wt_id: int
    compute_node_id: int
    segment_id: int
    block_server_id: int
    storage_node_id: int
    lat_compute_us: float
    lat_frontend_us: float
    lat_block_server_us: float
    lat_backend_us: float
    lat_chunk_server_us: float

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise DatasetError(f"IO size must be positive, got {self.size_bytes}")
        if self.offset_bytes < 0:
            raise DatasetError(
                f"LBA offset must be non-negative, got {self.offset_bytes}"
            )

    @property
    def latency_us(self) -> float:
        """End-to-end latency: the sum of the five component latencies."""
        return (
            self.lat_compute_us
            + self.lat_frontend_us
            + self.lat_block_server_us
            + self.lat_backend_us
            + self.lat_chunk_server_us
        )


@dataclass(frozen=True)
class ComputeMetricRecord:
    """One second of aggregated traffic for a QP-WT pair (Table 1, compute)."""

    timestamp: int
    cluster_id: int
    compute_node_id: int
    user_id: int
    vm_id: int
    vd_id: int
    wt_id: int
    qp_id: int
    read_bytes: float
    write_bytes: float
    read_iops: float
    write_iops: float


@dataclass(frozen=True)
class StorageMetricRecord:
    """One second of aggregated traffic for a segment (Table 1, storage)."""

    timestamp: int
    cluster_id: int
    storage_node_id: int
    block_server_id: int
    user_id: int
    vm_id: int
    vd_id: int
    segment_id: int
    read_bytes: float
    write_bytes: float
    read_iops: float
    write_iops: float


@dataclass(frozen=True)
class VdSpec:
    """Specification data for one virtual disk (subscription limits)."""

    vd_id: int
    vm_id: int
    user_id: int
    capacity_bytes: int
    num_queue_pairs: int
    throughput_cap_bps: float
    iops_cap: float

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise DatasetError("VD capacity must be positive")
        if not 1 <= self.num_queue_pairs <= 8:
            raise DatasetError(
                f"a VD has 1..8 queue pairs, got {self.num_queue_pairs}"
            )
        if self.throughput_cap_bps <= 0 or self.iops_cap <= 0:
            raise DatasetError("VD caps must be positive")


@dataclass(frozen=True)
class VmSpec:
    """Specification data for one VM, including its inferred application."""

    vm_id: int
    user_id: int
    compute_node_id: int
    application: str
