"""Dataset transformations: gaps, re-sampling, time shifts.

Production telemetry is imperfect — collectors restart, windows go
missing, sampling rates change between deployments.  These helpers let
tests and studies inject those imperfections into the generated datasets
and verify the analyses degrade gracefully instead of crashing or biasing.
"""

from __future__ import annotations

import numpy as np

from repro.trace.dataset import TraceDataset, _ColumnarTable
from repro.util.errors import ConfigError


def drop_time_window(
    table: "_ColumnarTable", start: float, end: float
) -> "_ColumnarTable":
    """Remove all rows with ``start <= timestamp < end`` (a telemetry gap)."""
    if end <= start:
        raise ConfigError(f"empty window [{start}, {end})")
    timestamps = getattr(table, "timestamp")
    keep = (timestamps < start) | (timestamps >= end)
    return table.where(keep)


def resample_traces(
    traces: TraceDataset, keep_fraction: float, rng: np.random.Generator
) -> TraceDataset:
    """Thin a trace dataset further, adjusting its sampling rate.

    ``keep_fraction`` = 0.5 keeps each trace with probability 0.5 and
    halves the dataset's effective sampling rate, so
    ``estimated_total_ios`` stays unbiased.
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise ConfigError("keep_fraction must be in (0, 1]")
    if keep_fraction == 1.0:
        return traces
    keep = rng.random(len(traces)) < keep_fraction
    thinned = traces.where(keep)
    return TraceDataset(
        sampling_rate=traces.sampling_rate * keep_fraction,
        **thinned.columns(),
    )


def shift_timestamps(
    table: "_ColumnarTable", offset_seconds: float
) -> "_ColumnarTable":
    """Shift all timestamps by a constant (clock-skew injection).

    Shifts that would make any timestamp negative are rejected.
    """
    timestamps = getattr(table, "timestamp")
    if len(timestamps) and float(timestamps.min()) + offset_seconds < 0:
        raise ConfigError("shift would produce negative timestamps")
    columns = table.columns()
    dtype = columns["timestamp"].dtype
    columns["timestamp"] = (columns["timestamp"] + offset_seconds).astype(dtype)
    if isinstance(table, TraceDataset):
        return TraceDataset(sampling_rate=table.sampling_rate, **columns)
    return type(table)(**columns)
