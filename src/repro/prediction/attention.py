"""P4/P5: a self-attention forecaster with manual backprop (Appendix C).

The paper's Transformer predicts next-period traffic for *all* BlockServers
at once (multi-input multi-output).  This is a faithful miniature: a
single-head, single-layer transformer encoder over a window of per-period
traffic vectors —

    H0 = X We + positional encoding          (L x d)
    A  = softmax(Q K^T / sqrt(d)) V           (self-attention)
    H1 = H0 + A                               (residual)
    H2 = H1 + relu(H1 W1 + b1) W2 + b2        (FFN + residual)
    y  = H2[-1] Wo + bo                       (forecast, one per series)

trained with Adam on squared error, gradients derived by hand on numpy.
Series are scaled to unit mean internally so the learning rate is
workload-independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.prediction.base import MultiSeriesPredictor
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class AttentionConfig:
    """Architecture and training hyper-parameters."""

    window: int = 8
    model_dim: int = 16
    hidden_dim: int = 32
    epochs: int = 60
    finetune_epochs: int = 2
    finetune_windows: int = 12
    learning_rate: float = 3e-3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ConfigError("window must be >= 2")
        if self.model_dim < 1 or self.hidden_dim < 1:
            raise ConfigError("model dims must be positive")
        if self.epochs < 1 or self.finetune_epochs < 1:
            raise ConfigError("epochs must be >= 1")
        if self.finetune_windows < 1:
            raise ConfigError("finetune_windows must be >= 1")
        if self.learning_rate <= 0:
            raise ConfigError("learning_rate must be positive")


def _softmax_rows(scores: np.ndarray) -> np.ndarray:
    shifted = scores - scores.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def _positional_encoding(length: int, dim: int) -> np.ndarray:
    positions = np.arange(length)[:, None]
    dims = np.arange(dim)[None, :]
    angles = positions / np.power(10000.0, (2 * (dims // 2)) / dim)
    encoding = np.zeros((length, dim))
    encoding[:, 0::2] = np.sin(angles[:, 0::2])
    encoding[:, 1::2] = np.cos(angles[:, 1::2])
    return encoding


class AttentionForecaster(MultiSeriesPredictor):
    """Single-head transformer encoder trained with Adam."""

    name = "attention"

    def __init__(self, config: AttentionConfig = AttentionConfig()):
        self.config = config
        self._params: Dict[str, np.ndarray] = {}
        self._adam_m: Dict[str, np.ndarray] = {}
        self._adam_v: Dict[str, np.ndarray] = {}
        self._adam_t = 0
        self._num_series = 0
        self._scale: np.ndarray = np.ones(1)

    # -- parameter management --------------------------------------------

    def _init_params(self, num_series: int) -> None:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        d, h = cfg.model_dim, cfg.hidden_dim

        def glorot(rows: int, cols: int) -> np.ndarray:
            limit = np.sqrt(6.0 / (rows + cols))
            return rng.uniform(-limit, limit, size=(rows, cols))

        self._params = {
            "We": glorot(num_series, d),
            "Wq": glorot(d, d),
            "Wk": glorot(d, d),
            "Wv": glorot(d, d),
            "W1": glorot(d, h),
            "b1": np.zeros(h),
            "W2": glorot(h, d),
            "b2": np.zeros(d),
            "Wo": glorot(d, num_series),
            "bo": np.zeros(num_series),
        }
        self._adam_m = {k: np.zeros_like(v) for k, v in self._params.items()}
        self._adam_v = {k: np.zeros_like(v) for k, v in self._params.items()}
        self._adam_t = 0
        self._num_series = num_series
        self._pos = _positional_encoding(self.config.window, d)

    # -- forward / backward ------------------------------------------------

    def _forward(self, window: np.ndarray) -> "tuple[np.ndarray, dict]":
        """window: (L, num_series) -> (forecast, cache)."""
        p = self._params
        d = self.config.model_dim
        h0 = window @ p["We"] + self._pos
        q = h0 @ p["Wq"]
        k = h0 @ p["Wk"]
        v = h0 @ p["Wv"]
        scores = q @ k.T / np.sqrt(d)
        attn = _softmax_rows(scores)
        a = attn @ v
        h1 = h0 + a
        z = h1 @ p["W1"] + p["b1"]
        relu = np.maximum(z, 0.0)
        f = relu @ p["W2"] + p["b2"]
        h2 = h1 + f
        out = h2[-1] @ p["Wo"] + p["bo"]
        cache = dict(
            window=window, h0=h0, q=q, k=k, v=v, attn=attn, a=a,
            h1=h1, z=z, relu=relu, h2=h2,
        )
        return out, cache

    def _backward(
        self, grad_out: np.ndarray, cache: dict
    ) -> Dict[str, np.ndarray]:
        p = self._params
        d = self.config.model_dim
        length = cache["window"].shape[0]
        grads = {key: np.zeros_like(value) for key, value in p.items()}

        grads["Wo"] = np.outer(cache["h2"][-1], grad_out)
        grads["bo"] = grad_out
        d_h2 = np.zeros_like(cache["h2"])
        d_h2[-1] = p["Wo"] @ grad_out

        # FFN (+ residual): h2 = h1 + relu(h1 W1 + b1) W2 + b2
        d_f = d_h2
        grads["W2"] = cache["relu"].T @ d_f
        grads["b2"] = d_f.sum(axis=0)
        d_relu = d_f @ p["W2"].T
        d_z = d_relu * (cache["z"] > 0)
        grads["W1"] = cache["h1"].T @ d_z
        grads["b1"] = d_z.sum(axis=0)
        d_h1 = d_h2 + d_z @ p["W1"].T

        # Attention (+ residual): h1 = h0 + attn @ v
        d_a = d_h1
        d_attn = d_a @ cache["v"].T
        d_v = cache["attn"].T @ d_a
        # softmax backward, row-wise.
        attn = cache["attn"]
        d_scores = attn * (
            d_attn - (d_attn * attn).sum(axis=1, keepdims=True)
        )
        d_q = d_scores @ cache["k"] / np.sqrt(d)
        d_k = d_scores.T @ cache["q"] / np.sqrt(d)

        h0 = cache["h0"]
        grads["Wq"] = h0.T @ d_q
        grads["Wk"] = h0.T @ d_k
        grads["Wv"] = h0.T @ d_v
        d_h0 = (
            d_h1
            + d_q @ p["Wq"].T
            + d_k @ p["Wk"].T
            + d_v @ p["Wv"].T
        )
        grads["We"] = cache["window"].T @ d_h0
        return grads

    #: Global gradient-norm clip: bursty targets (tens of times the mean)
    #: otherwise produce steps that destabilize fine-tuning.
    GRAD_CLIP_NORM = 5.0

    def _adam_step(self, grads: Dict[str, np.ndarray]) -> None:
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        total_norm = float(
            np.sqrt(sum(float((g**2).sum()) for g in grads.values()))
        )
        if total_norm > self.GRAD_CLIP_NORM:
            scale = self.GRAD_CLIP_NORM / total_norm
            grads = {key: g * scale for key, g in grads.items()}
        self._adam_t += 1
        lr = self.config.learning_rate
        for key, grad in grads.items():
            self._adam_m[key] = beta1 * self._adam_m[key] + (1 - beta1) * grad
            self._adam_v[key] = (
                beta2 * self._adam_v[key] + (1 - beta2) * grad**2
            )
            m_hat = self._adam_m[key] / (1 - beta1**self._adam_t)
            v_hat = self._adam_v[key] / (1 - beta2**self._adam_t)
            self._params[key] -= lr * m_hat / (np.sqrt(v_hat) + eps)

    # -- public API ----------------------------------------------------------

    def fit(self, history: np.ndarray) -> None:
        """Train on the matrix so far.

        The first call does a full training run; subsequent calls with the
        same series count *fine-tune* on the most recent windows — the
        cheap per-period update the paper suggests (§6.1.3: "use the newly
        arrived traffic to update the model").
        """
        history = self._validate(history)
        num_series, t = history.shape
        window = self.config.window
        fresh = self._num_series != num_series or not self._params
        if fresh:
            self._init_params(num_series)
            means = history.mean(axis=1)
            self._scale = np.where(means > 0, means, 1.0)
        scaled = history / self._scale[:, None]
        if t <= window:
            return
        starts = np.arange(t - window)
        if fresh:
            epochs = self.config.epochs
        else:
            epochs = self.config.finetune_epochs
            starts = starts[-self.config.finetune_windows :]
        rng = np.random.default_rng(self.config.seed + 1)
        for __ in range(epochs):
            for start in rng.permutation(starts):
                x = scaled[:, start : start + window].T
                target = scaled[:, start + window]
                out, cache = self._forward(x)
                grad_out = 2.0 * (out - target) / num_series
                self._adam_step(self._backward(grad_out, cache))

    def predict(self, history: np.ndarray) -> np.ndarray:
        history = self._validate(history)
        num_series, t = history.shape
        if not self._params or self._num_series != num_series:
            return history[:, -1].astype(float)
        window = self.config.window
        scaled = history / self._scale[:, None]
        if t < window:
            pad = np.zeros((num_series, window - t))
            scaled = np.concatenate([pad, scaled], axis=1)
        x = scaled[:, -window:].T
        out, __ = self._forward(x)
        return np.clip(out * self._scale, 0.0, None)

    # Exposed for gradient-checking tests.
    def loss_and_grads(
        self, window: np.ndarray, target: np.ndarray
    ) -> "tuple[float, Dict[str, np.ndarray]]":
        out, cache = self._forward(window)
        diff = out - target
        loss = float((diff**2).mean())
        grad_out = 2.0 * diff / diff.size
        return loss, self._backward(grad_out, cache)
