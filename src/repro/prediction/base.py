"""Predictor interfaces: single-series and multi-series forecasting.

Single-series predictors (linear fit, ARIMA, GBT) model each BlockServer
independently; :class:`PerSeriesAdapter` lifts them to the multi-series
interface the evaluation harness uses.  The attention forecaster is natively
multi-series (one model for all BSs, like the paper's Transformer).
"""

from __future__ import annotations

import abc
from typing import List

import numpy as np

from repro.util.errors import ConfigError


class Predictor(abc.ABC):
    """One-step-ahead forecaster for a single non-negative series."""

    #: Stable key for configs/legends.
    name: str = ""

    @abc.abstractmethod
    def fit(self, history: np.ndarray) -> None:
        """(Re)train on the series observed so far (1-D array)."""

    @abc.abstractmethod
    def predict(self, history: np.ndarray) -> float:
        """Forecast the next value given the series so far.

        ``history`` always extends the series ``fit`` saw; predictors that
        condition only on recent lags may ignore the stored fit state.
        """

    @staticmethod
    def _validate(history: np.ndarray) -> np.ndarray:
        arr = np.asarray(history, dtype=float)
        if arr.ndim != 1:
            raise ConfigError(f"history must be 1-D, got shape {arr.shape}")
        if arr.size == 0:
            raise ConfigError("history must be non-empty")
        return arr


class MultiSeriesPredictor(abc.ABC):
    """One-step-ahead forecaster for a (num_series, time) matrix."""

    name: str = ""

    @abc.abstractmethod
    def fit(self, history: np.ndarray) -> None:
        """(Re)train on the matrix observed so far."""

    @abc.abstractmethod
    def predict(self, history: np.ndarray) -> np.ndarray:
        """Forecast the next column (one value per series)."""

    @staticmethod
    def _validate(history: np.ndarray) -> np.ndarray:
        arr = np.asarray(history, dtype=float)
        if arr.ndim != 2:
            raise ConfigError(f"history must be 2-D, got shape {arr.shape}")
        if arr.shape[1] == 0:
            raise ConfigError("history must have at least one period")
        return arr


class PerSeriesAdapter(MultiSeriesPredictor):
    """Runs one independent single-series predictor per row."""

    def __init__(self, factory, name: "str | None" = None):
        self._factory = factory
        self._models: List[Predictor] = []
        probe = factory()
        if not isinstance(probe, Predictor):
            raise ConfigError("factory must produce Predictor instances")
        self.name = name if name is not None else probe.name

    def fit(self, history: np.ndarray) -> None:
        history = self._validate(history)
        self._models = [self._factory() for __ in range(history.shape[0])]
        for row, model in enumerate(self._models):
            model.fit(history[row])

    def predict(self, history: np.ndarray) -> np.ndarray:
        history = self._validate(history)
        if len(self._models) != history.shape[0]:
            raise ConfigError(
                "predict called with a different series count than fit"
            )
        return np.array(
            [
                model.predict(history[row])
                for row, model in enumerate(self._models)
            ]
        )
