"""P1: linear fit over the last few periods (Appendix C).

The paper fits a per-BS linear regression on the past four migration
periods and extrapolates one step.  This is the weakest of the evaluated
predictors: EBS traffic is bursty, so the local trend rarely continues.
"""

from __future__ import annotations

import numpy as np

from repro.prediction.base import Predictor
from repro.util.errors import ConfigError


class LinearFitPredictor(Predictor):
    """Least-squares line through the last ``window`` points, extrapolated."""

    name = "linear_fit"

    def __init__(self, window: int = 4, clamp_non_negative: bool = True):
        if window < 2:
            raise ConfigError(f"window must be >= 2, got {window}")
        self.window = window
        self.clamp_non_negative = clamp_non_negative

    def fit(self, history: np.ndarray) -> None:
        # The model is defined entirely by the recent window at predict
        # time; there is no state to train.
        self._validate(history)

    def predict(self, history: np.ndarray) -> float:
        history = self._validate(history)
        recent = history[-self.window :]
        k = recent.size
        if k < 2:
            return float(recent[-1])
        x = np.arange(k, dtype=float)
        x_mean = x.mean()
        y_mean = recent.mean()
        denom = ((x - x_mean) ** 2).sum()
        slope = ((x - x_mean) * (recent - y_mean)).sum() / denom
        forecast = y_mean + slope * (k - x_mean)
        if self.clamp_non_negative:
            forecast = max(0.0, forecast)
        return float(forecast)
