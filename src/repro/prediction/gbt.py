"""P3: gradient-boosted regression trees on lag features (Appendix C).

The paper uses sklearn's GradientBoostingRegressor fed with 120 s of
history to predict the next 30 s period.  Offline we implement the whole
stack: an exact greedy CART regressor (squared error, depth-limited) and a
squared-loss boosting loop with shrinkage.  Features are the last
``num_lags`` period values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.prediction.base import Predictor
from repro.util.errors import ConfigError


@dataclass
class _Node:
    """One node of a regression tree (leaf when ``feature`` is None)."""

    value: float
    feature: "Optional[int]" = None
    threshold: float = 0.0
    left: "Optional[_Node]" = None
    right: "Optional[_Node]" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class RegressionTree:
    """Exact greedy CART for squared error, used as the boosting base."""

    def __init__(self, max_depth: int = 3, min_samples_leaf: int = 2):
        if max_depth < 1:
            raise ConfigError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise ConfigError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._root: Optional[_Node] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RegressionTree":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2 or y.ndim != 1 or x.shape[0] != y.size:
            raise ConfigError(
                f"bad training shapes x={x.shape} y={y.shape}"
            )
        if y.size == 0:
            raise ConfigError("cannot fit a tree on zero samples")
        self._root = self._build(x, y, depth=0)
        return self

    def _best_split(
        self, x: np.ndarray, y: np.ndarray
    ) -> "Optional[tuple[int, float, float]]":
        """(feature, threshold, sse_reduction) of the best split, or None."""
        n, num_features = x.shape
        total_sum = y.sum()
        total_sse = ((y - y.mean()) ** 2).sum()
        best: Optional[tuple] = None
        min_leaf = self.min_samples_leaf
        for feature in range(num_features):
            order = np.argsort(x[:, feature], kind="stable")
            xs = x[order, feature]
            ys = y[order]
            prefix = np.cumsum(ys)
            prefix_sq = np.cumsum(ys**2)
            # Candidate split after position i (left = [0..i]).
            for i in range(min_leaf - 1, n - min_leaf):
                if xs[i] == xs[i + 1]:
                    continue
                left_n = i + 1
                right_n = n - left_n
                left_sum = prefix[i]
                right_sum = total_sum - left_sum
                left_sse = prefix_sq[i] - left_sum**2 / left_n
                right_sse = (
                    prefix_sq[-1] - prefix_sq[i] - right_sum**2 / right_n
                )
                reduction = total_sse - left_sse - right_sse
                if best is None or reduction > best[2]:
                    threshold = 0.5 * (xs[i] + xs[i + 1])
                    best = (feature, threshold, reduction)
        if best is None or best[2] <= 1e-12:
            return None
        return best

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(y.mean()))
        if depth >= self.max_depth or y.size < 2 * self.min_samples_leaf:
            return node
        split = self._best_split(x, y)
        if split is None:
            return node
        feature, threshold, __ = split
        mask = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(x[mask], y[mask], depth + 1)
        node.right = self._build(x[~mask], y[~mask], depth + 1)
        return node

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise ConfigError("tree is not fitted")
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ConfigError(f"x must be 2-D, got {x.shape}")
        out = np.empty(x.shape[0])
        for index in range(x.shape[0]):
            node = self._root
            while not node.is_leaf:
                if x[index, node.feature] <= node.threshold:
                    node = node.left
                else:
                    node = node.right
            out[index] = node.value
        return out


class GradientBoostedTreesPredictor(Predictor):
    """Squared-loss boosting of shallow trees over lag features."""

    name = "gbt"

    def __init__(
        self,
        num_lags: int = 4,
        n_estimators: int = 50,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 2,
    ):
        if num_lags < 1:
            raise ConfigError("num_lags must be >= 1")
        if n_estimators < 1:
            raise ConfigError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ConfigError("learning_rate must be in (0, 1]")
        self.num_lags = num_lags
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._base: float = 0.0
        self._trees: List[RegressionTree] = []

    def _features(self, history: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
        lags = self.num_lags
        n = history.size - lags
        if n < 1:
            raise ConfigError("history too short for the configured lags")
        x = np.column_stack(
            [history[lags - k - 1 : lags - k - 1 + n] for k in range(lags)]
        )
        return x, history[lags:]

    def fit(self, history: np.ndarray) -> None:
        history = self._validate(history)
        self._trees = []
        if history.size <= self.num_lags:
            self._base = float(history.mean())
            return
        x, y = self._features(history)
        self._base = float(y.mean())
        predictions = np.full(y.size, self._base)
        for __ in range(self.n_estimators):
            residuals = y - predictions
            if np.allclose(residuals, 0.0):
                break
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
            ).fit(x, residuals)
            predictions = predictions + self.learning_rate * tree.predict(x)
            self._trees.append(tree)

    def predict(self, history: np.ndarray) -> float:
        history = self._validate(history)
        if history.size < self.num_lags:
            return float(history[-1])
        features = history[-self.num_lags :][::-1].reshape(1, -1)
        forecast = self._base
        for tree in self._trees:
            forecast += self.learning_rate * float(tree.predict(features)[0])
        return max(0.0, forecast)
