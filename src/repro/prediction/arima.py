"""P2: ARIMA(p, d, q) from scratch (Appendix C).

The production comparison uses statsmodels + pmdarima; offline we implement
the model directly:

1. difference the series ``d`` times;
2. Hannan-Rissanen stage 1: fit a long AR by ordinary least squares and
   take its residuals as innovation estimates;
3. stage 2: regress the differenced series on ``p`` of its own lags and
   ``q`` lagged innovations;
4. forecast one step (recomputing innovations with the conditional
   recursion) and invert the differencing.

Order selection (``auto_order=True``) walks a small grid over p in
{1, 2, 3}, d in {0, 1}, q in {0, 1} and scores each candidate by its
*out-of-sample* one-step error on a holdout tail, against a persistence
baseline.  In-sample AIC selection is dangerous on bursty cloud traffic: a
single spike can push the least-squares fit outside the stationarity
region and make forecasts explode, so candidates with |coefficient| > 2
are rejected outright and persistence wins whenever nothing beats it.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.prediction.base import Predictor
from repro.util.errors import ConfigError

_CANDIDATE_ORDERS = [
    (p, d, q) for p in (1, 2, 3) for d in (0, 1) for q in (0, 1)
]


def _difference(series: np.ndarray, d: int) -> np.ndarray:
    for __ in range(d):
        series = np.diff(series)
    return series


def _lag_matrix(series: np.ndarray, lags: int) -> "Tuple[np.ndarray, np.ndarray]":
    """(X, y) where X rows are the ``lags`` values preceding each y."""
    n = series.size - lags
    if n <= 0:
        raise ConfigError("series too short for the requested lags")
    x = np.column_stack(
        [series[lags - k - 1 : lags - k - 1 + n] for k in range(lags)]
    )
    y = series[lags:]
    return x, y


def _fit_css(series: np.ndarray, p: int, q: int) -> np.ndarray:
    """Hannan-Rissanen two-stage fit; returns [const, phi..., theta...]."""
    if q > 0:
        long_ar = min(max(p, q) + 2, series.size // 2)
        x1, y1 = _lag_matrix(series, long_ar)
        design1 = np.column_stack([np.ones(len(y1)), x1])
        coef1, *__ = np.linalg.lstsq(design1, y1, rcond=None)
        residuals = y1 - design1 @ coef1
        padded = np.zeros(series.size)
        padded[long_ar:] = residuals
    else:
        padded = np.zeros(series.size)

    lags = max(p, q)
    xp, y = _lag_matrix(series, lags)
    columns = [np.ones(y.size)]
    columns.extend(xp[:, k] for k in range(p))
    for k in range(q):
        columns.append(padded[lags - k - 1 : series.size - k - 1])
    design = np.column_stack(columns)
    params, *__ = np.linalg.lstsq(design, y, rcond=None)
    return params


def _one_step(
    params: np.ndarray, order: "Tuple[int, int, int]", history: np.ndarray
) -> float:
    """One-step-ahead forecast of the *level* series under a fitted model."""
    p, d, q = order
    diffed = _difference(history, d)
    lags = max(p, q)
    if diffed.size < lags + 1:
        return float(history[-1])
    # Conditional innovation recursion so the MA terms see current errors.
    innovations = np.zeros(diffed.size)
    if q > 0:
        for t in range(lags, diffed.size):
            fitted = float(params[0])
            for k in range(p):
                fitted += float(params[1 + k]) * float(diffed[t - 1 - k])
            for k in range(q):
                fitted += float(params[1 + p + k]) * float(
                    innovations[t - 1 - k]
                )
            innovations[t] = diffed[t] - fitted
    forecast = float(params[0])
    for k in range(p):
        forecast += float(params[1 + k]) * float(diffed[-1 - k])
    for k in range(q):
        forecast += float(params[1 + p + k]) * float(innovations[-1 - k])
    level = forecast if d == 0 else forecast + float(history[-1])
    # Safety valve: one-step forecasts beyond twice the historical peak are
    # artifacts of a fit destabilized by a burst, not information.
    ceiling = 2.0 * float(history.max())
    return float(np.clip(level, 0.0, ceiling))


class ArimaPredictor(Predictor):
    """ARIMA via two-stage least squares with holdout order selection."""

    name = "arima"

    #: A candidate must beat persistence by this factor on the holdout to
    #: be adopted; ties go to persistence, which is the robust choice on
    #: bursty traffic.
    SELECTION_MARGIN = 0.85

    def __init__(
        self,
        order: "Tuple[int, int, int]" = (2, 1, 1),
        auto_order: bool = True,
        min_history: int = 12,
        holdout: int = 12,
    ):
        p, d, q = order
        if p < 0 or d < 0 or q < 0 or (p == 0 and q == 0):
            raise ConfigError(f"bad ARIMA order {order}")
        if d > 1:
            raise ConfigError("only d <= 1 is supported")
        if holdout < 2:
            raise ConfigError("holdout must be >= 2")
        self.order = (p, d, q)
        self.auto_order = auto_order
        self.min_history = min_history
        self.holdout = holdout
        self._params: Optional[np.ndarray] = None
        self._fitted_order = self.order

    def _try_fit(
        self, series: np.ndarray, p: int, d: int, q: int
    ) -> "Optional[np.ndarray]":
        diffed = _difference(series, d)
        if diffed.size < max(p, q) + 4:
            return None
        try:
            params = _fit_css(diffed, p, q)
        except (ConfigError, np.linalg.LinAlgError):
            return None
        if np.any(np.abs(params[1:]) > 2.0) or not np.all(np.isfinite(params)):
            return None
        return params

    def _holdout_score(
        self,
        history: np.ndarray,
        params: "Optional[np.ndarray]",
        order: "Tuple[int, int, int]",
    ) -> float:
        """Sum of squared one-step errors over the holdout tail.

        ``params=None`` scores the persistence baseline.
        """
        holdout = min(self.holdout, history.size // 3)
        total = 0.0
        for offset in range(holdout, 0, -1):
            past = history[: history.size - offset]
            truth = float(history[history.size - offset])
            if params is None:
                forecast = float(past[-1])
            else:
                forecast = _one_step(params, order, past)
            total += (forecast - truth) ** 2
        return total

    def fit(self, history: np.ndarray) -> None:
        history = self._validate(history)
        if history.size < self.min_history:
            self._params = None
            return
        holdout = min(self.holdout, history.size // 3)
        train = history[: history.size - holdout]
        candidates = _CANDIDATE_ORDERS if self.auto_order else [self.order]

        best_score = self.SELECTION_MARGIN * self._holdout_score(
            history, None, (0, 0, 0)
        )
        best: "Optional[Tuple[Tuple[int, int, int], np.ndarray]]" = None
        for p, d, q in candidates:
            params = self._try_fit(train, p, d, q)
            if params is None:
                continue
            score = self._holdout_score(history, params, (p, d, q))
            if score < best_score:
                best_score = score
                best = ((p, d, q), params)
        if best is None:
            self._params = None
            return
        # Keep the *validated* parameters: refitting on the full series
        # (holdout included) would adopt coefficients the holdout never
        # scored, and one burst in the tail can make them catastrophic.
        self._fitted_order, self._params = best

    def predict(self, history: np.ndarray) -> float:
        history = self._validate(history)
        if self._params is None:
            return float(history[-1])  # persistence
        return _one_step(self._params, self._fitted_order, history)
