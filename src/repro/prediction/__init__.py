"""Traffic prediction for the balancer (§6.1.3, Appendix C).

The paper evaluates four predictors of next-period BlockServer traffic and
finds classic methods weak and retraining frequency decisive (Fig 4(c)).
The environment is offline, so all models are implemented from scratch on
numpy:

- :mod:`repro.prediction.linear` — least-squares linear fit over recent
  periods (P1);
- :mod:`repro.prediction.arima` — ARIMA(p, d, q) fit by the
  Hannan-Rissanen two-stage regression with a small AIC order search (P2);
- :mod:`repro.prediction.gbt` — gradient-boosted regression trees on lag
  features, the XGBoost stand-in (P3);
- :mod:`repro.prediction.attention` — a single-layer self-attention
  forecaster with full manual backprop and Adam, the Transformer stand-in
  (P4 retrained per epoch, P5 per period);
- :mod:`repro.prediction.evaluate` — the walk-forward evaluation harness
  with configurable retraining cadence and normalized MSE.
"""

from repro.prediction.arima import ArimaPredictor
from repro.prediction.attention import AttentionForecaster
from repro.prediction.base import (
    MultiSeriesPredictor,
    Predictor,
    PerSeriesAdapter,
)
from repro.prediction.evaluate import (
    EvaluationConfig,
    EvaluationResult,
    evaluate_predictor,
    paper_prediction_suite,
)
from repro.prediction.gbt import GradientBoostedTreesPredictor
from repro.prediction.linear import LinearFitPredictor

__all__ = [
    "ArimaPredictor",
    "AttentionForecaster",
    "MultiSeriesPredictor",
    "Predictor",
    "PerSeriesAdapter",
    "EvaluationConfig",
    "EvaluationResult",
    "evaluate_predictor",
    "paper_prediction_suite",
    "GradientBoostedTreesPredictor",
    "LinearFitPredictor",
]
