"""Walk-forward evaluation of traffic predictors (Fig 4(c)).

The harness replays a (num_bs, num_periods) traffic matrix: predictors are
retrained every ``retrain_every`` periods ("per-epoch", the paper retrains
the ML models every 200 periods) or every period (``retrain_every=1``), and
predict one period ahead each step.  MSE is reported on mean-normalized
series so clusters of different magnitude are comparable, matching how the
paper compares methods within one figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from repro.prediction.arima import ArimaPredictor
from repro.prediction.attention import AttentionConfig, AttentionForecaster
from repro.prediction.base import MultiSeriesPredictor, PerSeriesAdapter
from repro.prediction.gbt import GradientBoostedTreesPredictor
from repro.prediction.linear import LinearFitPredictor
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class EvaluationConfig:
    """Walk-forward evaluation parameters."""

    warmup_periods: int = 12
    retrain_every: int = 1
    normalize: bool = True

    def __post_init__(self) -> None:
        if self.warmup_periods < 2:
            raise ConfigError("warmup_periods must be >= 2")
        if self.retrain_every < 1:
            raise ConfigError("retrain_every must be >= 1")


@dataclass(frozen=True)
class EvaluationResult:
    """Accuracy of one predictor over one traffic matrix."""

    name: str
    mse: float
    num_predictions: int
    retrain_every: int


def evaluate_predictor(
    predictor: MultiSeriesPredictor,
    matrix: np.ndarray,
    config: EvaluationConfig = EvaluationConfig(),
) -> EvaluationResult:
    """Replay the matrix; returns the mean squared one-step-ahead error."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ConfigError(f"matrix must be 2-D, got {matrix.shape}")
    num_series, num_periods = matrix.shape
    if num_periods <= config.warmup_periods:
        raise ConfigError(
            f"need more than {config.warmup_periods} periods, got {num_periods}"
        )
    if config.normalize:
        means = matrix.mean(axis=1, keepdims=True)
        means[means == 0] = 1.0
        matrix = matrix / means

    errors: List[float] = []
    fitted = False
    for t in range(config.warmup_periods, num_periods):
        history = matrix[:, :t]
        steps_since_warmup = t - config.warmup_periods
        if not fitted or steps_since_warmup % config.retrain_every == 0:
            predictor.fit(history)
            fitted = True
        prediction = predictor.predict(history)
        truth = matrix[:, t]
        errors.extend(((prediction - truth) ** 2).tolist())
    return EvaluationResult(
        name=predictor.name,
        mse=float(np.mean(errors)),
        num_predictions=len(errors),
        retrain_every=config.retrain_every,
    )


def paper_prediction_suite(
    epoch_periods: int = 50,
    attention_config: "AttentionConfig | None" = None,
) -> "Dict[str, tuple[Callable[[], MultiSeriesPredictor], int]]":
    """The P1..P5 lineup of Fig 4(c): (predictor factory, retrain cadence).

    P1 linear fit and P2 ARIMA update every period (cheap statistical
    models); P3 GBT and P4 attention retrain per epoch; P5 is the same
    attention model retrained every period.
    """
    if epoch_periods < 1:
        raise ConfigError("epoch_periods must be >= 1")
    att_cfg = attention_config if attention_config is not None else AttentionConfig()

    def attention() -> MultiSeriesPredictor:
        return AttentionForecaster(att_cfg)

    return {
        "P1_linear": (
            lambda: PerSeriesAdapter(LinearFitPredictor, name="linear_fit"),
            1,
        ),
        "P2_arima": (
            lambda: PerSeriesAdapter(ArimaPredictor, name="arima"),
            1,
        ),
        "P3_gbt": (
            lambda: PerSeriesAdapter(
                GradientBoostedTreesPredictor, name="gbt"
            ),
            epoch_periods,
        ),
        "P4_attention_epoch": (attention, epoch_periods),
        "P5_attention_period": (attention, 1),
    }
