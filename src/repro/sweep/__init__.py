"""Incremental parameter sweeps over a content-addressed result cache.

The paper's conclusions are crossover comparisons swept over knobs —
cache size and placement (§7), lending ratio (§5), balancer strategy
(§6).  This package makes such sweeps *incremental*: every study
decomposes into a DAG of content-addressed nodes (per-DC builds,
per-experiment analyses, per-point aggregates) whose outputs memoize in
an on-disk :class:`ArtifactStore`.  Overlapping sweep points share
builds, warm re-runs are pure cache replay, and an interrupted sweep
resumes from whatever was already published — with results byte-
identical to a cold single-shot run (see ``SweepOutcome.combined_digest``).

Module map::

    canonical     canonical config payloads -> sha256 cache keys
    store         atomic, content-addressed on-disk artifacts
    dag           node decomposition (build -> experiment -> point)
    grid          SweepSpec axes, point expansion, the --axis language
    orchestrator  SweepRunner scheduling, retries, stats, grids

Prefer the facade: :func:`repro.api.sweep`.
"""

from repro.sweep.canonical import (
    CODE_SCHEMA_VERSION,
    build_key,
    canonical_value,
    config_digest,
    digest_payload,
    experiment_key,
    point_key,
    result_table_digest,
)
from repro.sweep.dag import NodeKind, SweepNode, merge_dags, study_nodes
from repro.sweep.grid import (
    SweepPoint,
    SweepSpec,
    override_label,
    parse_axes,
    parse_axis,
)
from repro.sweep.orchestrator import (
    SWEEP_SCHEMA_VERSION,
    SweepOutcome,
    SweepRunner,
    SweepStats,
)
from repro.sweep.store import ArtifactStore
from repro.util.errors import SweepError

__all__ = [
    "ArtifactStore",
    "CODE_SCHEMA_VERSION",
    "NodeKind",
    "SWEEP_SCHEMA_VERSION",
    "SweepError",
    "SweepNode",
    "SweepOutcome",
    "SweepPoint",
    "SweepRunner",
    "SweepSpec",
    "SweepStats",
    "build_key",
    "canonical_value",
    "config_digest",
    "digest_payload",
    "experiment_key",
    "merge_dags",
    "override_label",
    "parse_axes",
    "parse_axis",
    "point_key",
    "result_table_digest",
    "study_nodes",
]
