"""Sweep specifications: axes over :class:`StudyConfig` fields.

A :class:`SweepSpec` is a base config plus named axes; its points are
the cartesian product of the axis values, expanded in **sorted axis
order** so the point list (and therefore every derived cache key and
comparison table) is independent of the order axes were declared in.

Axis values go through :func:`dataclasses.replace`, so each point is a
fully validated :class:`StudyConfig` — an out-of-range axis value fails
at spec expansion, not mid-sweep.

The module also owns the CLI's axis mini-language::

    --axis cache_min_traces=100,200           # scalar axis, 2 values
    --axis lending_rates=0.2:0.4,0.2:0.6      # tuple values use ':'
    --axis cache_block_bytes=64MiB:512MiB,2GiB:4GiB   # unit suffixes
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.core.config import StudyConfig
from repro.sweep.canonical import config_digest
from repro.util.errors import ConfigError
from repro.util.units import GiB, KiB, MiB

_UNIT_SUFFIXES = {
    "KiB": KiB,
    "MiB": MiB,
    "GiB": GiB,
    "KB": 1000,
    "MB": 1000**2,
    "GB": 1000**3,
}


@dataclass(frozen=True)
class SweepPoint:
    """One expanded sweep point: overrides + the resulting config."""

    index: int
    overrides: Tuple[Tuple[str, Any], ...]
    config: StudyConfig

    @property
    def digest(self) -> str:
        return config_digest(self.config)

    def override_dict(self) -> Dict[str, Any]:
        return dict(self.overrides)


@dataclass(frozen=True)
class SweepSpec:
    """A base config, the axes to sweep, and the experiments to run."""

    base: StudyConfig
    axes: Mapping[str, Sequence[Any]]
    experiments: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.experiments:
            raise ConfigError("a sweep needs at least one experiment id")
        object.__setattr__(
            self, "experiments", tuple(str(e) for e in self.experiments)
        )
        field_names = {f.name for f in dataclasses.fields(StudyConfig)}
        axes = dict(self.axes)
        for name, values in axes.items():
            if name not in field_names:
                raise ConfigError(
                    f"unknown sweep axis {name!r}; StudyConfig fields: "
                    f"{sorted(field_names)}"
                )
            if not isinstance(values, (list, tuple)) or not values:
                raise ConfigError(
                    f"axis {name!r} needs a non-empty list of values"
                )
        object.__setattr__(self, "axes", axes)

    @property
    def axis_names(self) -> List[str]:
        return sorted(self.axes)

    def points(self) -> List[SweepPoint]:
        """Expand the cartesian product (deterministic order)."""
        names = self.axis_names
        if not names:
            return [SweepPoint(index=0, overrides=(), config=self.base)]
        points: List[SweepPoint] = []
        for index, combo in enumerate(
            itertools.product(*(self.axes[name] for name in names))
        ):
            overrides = tuple(zip(names, combo))
            try:
                config = dataclasses.replace(self.base, **dict(overrides))
            except ConfigError as error:
                raise ConfigError(
                    f"sweep point {dict(overrides)} is invalid: {error}"
                ) from error
            points.append(
                SweepPoint(index=index, overrides=overrides, config=config)
            )
        return points

    def describe(self) -> str:
        names = self.axis_names
        shape = " x ".join(str(len(self.axes[n])) for n in names) or "1"
        return (
            f"{shape} point(s) over axes {names or ['<none>']} "
            f"x {len(self.experiments)} experiment(s)"
        )


# -- CLI axis mini-language ---------------------------------------------------


def _parse_scalar(token: str) -> Any:
    """Parse one axis scalar: int, float, unit-suffixed size, or string."""
    text = token.strip()
    if not text:
        raise ConfigError("empty axis value")
    for suffix, factor in _UNIT_SUFFIXES.items():
        if text.endswith(suffix):
            stem = text[: -len(suffix)]
            try:
                return int(float(stem) * factor)
            except ValueError:
                raise ConfigError(f"bad sized axis value {token!r}")
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if text in ("true", "True"):
        return True
    if text in ("false", "False"):
        return False
    return text


def parse_axis(spec: str) -> Tuple[str, List[Any]]:
    """Parse one ``--axis FIELD=V1,V2,...`` argument.

    ``,`` separates axis values; ``:`` builds tuple values (for
    tuple-typed fields like ``lending_rates`` or ``cache_block_bytes``).
    """
    if "=" not in spec:
        raise ConfigError(
            f"--axis must look like FIELD=V1,V2,... (got {spec!r})"
        )
    name, _, raw = spec.partition("=")
    name = name.strip()
    if not name:
        raise ConfigError(f"--axis is missing a field name: {spec!r}")
    values: List[Any] = []
    for token in raw.split(","):
        token = token.strip()
        if not token:
            raise ConfigError(f"--axis {name}: empty value in {raw!r}")
        if ":" in token:
            values.append(
                tuple(_parse_scalar(part) for part in token.split(":"))
            )
        else:
            values.append(_parse_scalar(token))
    if not values:
        raise ConfigError(f"--axis {name} needs at least one value")
    return name, values


def parse_axes(specs: Sequence[str]) -> Dict[str, List[Any]]:
    """Parse repeated ``--axis`` arguments into a spec's axes mapping."""
    axes: Dict[str, List[Any]] = {}
    for spec in specs:
        name, values = parse_axis(spec)
        if name in axes:
            raise ConfigError(f"duplicate --axis {name!r}")
        axes[name] = values
    return axes


def override_label(value: Any) -> Any:
    """A table-friendly rendering of one override value."""
    if isinstance(value, (list, tuple)):
        return ":".join(str(override_label(v)) for v in value)
    if isinstance(value, int) and value and value % MiB == 0:
        return f"{value // MiB}MiB"
    return value
