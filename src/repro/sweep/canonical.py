"""Canonical config payloads and content-addressed cache keys.

Every sweep-cache key is the SHA-256 of a *canonical* JSON payload.
Canonicalization makes the key a function of a config's **semantics**,
not of its spelling:

- dataclasses flatten to dicts keyed by field name, fields sorted, so
  declaration/keyword order never matters;
- mappings sort by key (``app_weights`` insertion order is irrelevant);
- sequences normalize to lists (``(0.2, 0.4)`` and ``[0.2, 0.4]`` are
  the same axis value);
- numbers normalize by *value*: integral floats collapse to ints
  (``4`` and ``4.0`` digest identically) and non-integral floats are
  encoded via :meth:`float.hex`, so any decimal spelling of the same
  IEEE-754 double yields the same key while the smallest semantic
  change (one ulp) yields a different one;
- enums encode as their values; NaN and signed infinities get stable
  sentinels.

Two version knobs are folded into every key:

- :data:`CODE_SCHEMA_VERSION` — bump when a result-affecting code
  change lands (simulator semantics, experiment math, dataset layout);
  bumping it invalidates every cached artifact at once.
- the node ``kind`` — build keys and experiment keys can never collide.

Build keys deliberately cover only the fields that influence
``Study.build()`` (seed, horizon, sampling rate, the DC's fleet config,
and the fault plan scoped to that DC).  Experiment knobs — lending
ratios, cache sizes, balancer periods — are excluded, which is exactly
what lets overlapping sweep points share one simulated fleet.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import math
from typing import Any, Dict, Optional

from repro.util.errors import ConfigError

#: Bump when a result-affecting code change must invalidate the cache.
CODE_SCHEMA_VERSION = 1

#: Largest magnitude at which an integral float collapses to an int
#: losslessly (beyond 2**53 doubles skip integers).
_MAX_EXACT_INT_FLOAT = float(2**53)


def canonical_value(value: Any) -> Any:
    """Reduce ``value`` to a canonical, JSON-serializable form.

    Raises :class:`ConfigError` for types with no canonical encoding —
    a config smuggling in an unhashable payload should fail loudly, not
    silently produce an unstable key.
    """
    # bool is an int subclass: test it first so True doesn't become 1
    # *silently* — it canonicalizes as a bool on purpose.
    if isinstance(value, bool):
        return value
    if value is None or isinstance(value, str):
        return value
    if isinstance(value, enum.Enum):
        return canonical_value(value.value)
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        if math.isnan(value):
            return "float:nan"
        if math.isinf(value):
            return "float:+inf" if value > 0 else "float:-inf"
        if value.is_integer() and abs(value) <= _MAX_EXACT_INT_FLOAT:
            # 4.0 == 4: numeric value, not spelling, keys the cache.
            return int(value)
        return value.hex()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: canonical_value(getattr(value, field.name))
            for field in sorted(
                dataclasses.fields(value), key=lambda f: f.name
            )
        }
    if isinstance(value, (list, tuple)):
        return [canonical_value(item) for item in value]
    if isinstance(value, (set, frozenset)):
        items = [canonical_value(item) for item in value]
        return sorted(items, key=lambda item: json.dumps(item, sort_keys=True))
    if isinstance(value, dict):
        out: Dict[str, Any] = {}
        for key in sorted(value, key=str):
            out[str(key)] = canonical_value(value[key])
        return out
    # numpy scalars (if present) expose .item(); duck-type rather than
    # importing numpy here.
    item = getattr(value, "item", None)
    if callable(item):
        return canonical_value(item())
    raise ConfigError(
        f"cannot canonicalize {type(value).__name__!r} for cache keying"
    )


def digest_payload(payload: Any) -> str:
    """SHA-256 hex digest of a canonical payload."""
    encoded = json.dumps(
        canonical_value(payload),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def config_digest(config) -> str:
    """Content key of a full :class:`~repro.core.config.StudyConfig`.

    Covers every field (experiment knobs included) plus the fault plan
    and :data:`CODE_SCHEMA_VERSION` — the identity of one sweep point.
    """
    return digest_payload(
        {
            "schema": CODE_SCHEMA_VERSION,
            "kind": "study-config",
            "config": canonical_value(config),
        }
    )


def build_key(config, dc_config, fault_plan: Optional[object]) -> str:
    """Content key of one DC's *build* (fleet + simulate) node.

    Only build-relevant fields participate: two sweep points that differ
    in an experiment knob (say ``cache_min_traces``) map to the same
    build keys and therefore share the expensive simulation work.
    ``fault_plan`` must already be scoped to this DC
    (:meth:`FaultPlan.for_dc`), or ``None``.
    """
    return digest_payload(
        {
            "schema": CODE_SCHEMA_VERSION,
            "kind": "build",
            "seed": config.seed,
            "duration_seconds": config.duration_seconds,
            "trace_sampling_rate": config.trace_sampling_rate,
            "dc": canonical_value(dc_config),
            "fault_plan": canonical_value(fault_plan),
        }
    )


def experiment_key(config, experiment_id: str) -> str:
    """Content key of one experiment node (full study config + id)."""
    return digest_payload(
        {
            "schema": CODE_SCHEMA_VERSION,
            "kind": "experiment",
            "experiment": str(experiment_id),
            "config": canonical_value(config),
        }
    )


def point_key(config, experiment_ids) -> str:
    """Content key of one sweep point's aggregate node."""
    return digest_payload(
        {
            "schema": CODE_SCHEMA_VERSION,
            "kind": "point",
            "experiments": [str(e) for e in experiment_ids],
            "config": canonical_value(config),
        }
    )


def result_table_digest(result_dict: Dict[str, Any]) -> str:
    """Digest of one experiment's rendered table (its ``to_dict`` form).

    This is the yardstick for cache-hit parity: a warm replay must
    reproduce the cold run's table digests byte for byte.
    """
    return digest_payload({"kind": "experiment-result", "result": result_dict})
