"""The on-disk, content-addressed artifact store behind sweep memoization.

Layout (all under one ``directory``)::

    objects/<key>.json     # envelope: kind, schema, meta, inline payload
    objects/<key>.pkl      # optional bulk blob (pickled SimulationResult)

Keys are the canonical digests from :mod:`repro.sweep.canonical`; the
store never interprets them.  Every write is **atomic**: content goes to
a same-directory temp file first and is published with :func:`os.replace`,
and for two-file artifacts the JSON envelope is written *last* so it acts
as the commit record — a kill between the two writes leaves no visible
artifact, which is what makes interrupted sweeps safely resumable.

Reads are defensive: a torn/invalid envelope, a schema from another code
version, or a missing companion blob all degrade to a cache *miss* (and
the stale files are swept), never to an exception mid-sweep.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

from repro.sweep.canonical import CODE_SCHEMA_VERSION
from repro.util.errors import ConfigError

_ENVELOPE_SUFFIX = ".json"
_BLOB_SUFFIX = ".pkl"


class ArtifactStore:
    """Content-addressed node outputs, safe under concurrent writers."""

    def __init__(self, directory: "str | Path"):
        self.directory = Path(directory)
        self._objects = self.directory / "objects"
        self._objects.mkdir(parents=True, exist_ok=True)

    # -- paths ---------------------------------------------------------------

    def _envelope_path(self, key: str) -> Path:
        self._check_key(key)
        return self._objects / f"{key}{_ENVELOPE_SUFFIX}"

    def _blob_path(self, key: str) -> Path:
        self._check_key(key)
        return self._objects / f"{key}{_BLOB_SUFFIX}"

    @staticmethod
    def _check_key(key: str) -> None:
        if not key or any(ch not in "0123456789abcdef" for ch in key):
            raise ConfigError(f"malformed artifact key: {key!r}")

    # -- atomic publication ---------------------------------------------------

    def _publish(self, path: Path, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(
            dir=str(self._objects), prefix=".tmp-", suffix=path.suffix
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- writes ---------------------------------------------------------------

    def put(
        self,
        key: str,
        kind: str,
        payload: Any = None,
        *,
        meta: Optional[Dict[str, Any]] = None,
        blob: Any = None,
    ) -> None:
        """Publish one artifact.

        ``payload`` is inline JSON data (tables, digests); ``blob`` is an
        optional arbitrary Python object pickled alongside.  The envelope
        is written last: its presence *is* the artifact's existence.
        """
        if blob is not None:
            self._publish(
                self._blob_path(key),
                pickle.dumps(blob, protocol=pickle.HIGHEST_PROTOCOL),
            )
        envelope = {
            "key": key,
            "kind": kind,
            "schema": CODE_SCHEMA_VERSION,
            "has_blob": blob is not None,
            "meta": dict(meta or {}),
            "payload": payload,
        }
        self._publish(
            self._envelope_path(key),
            (json.dumps(envelope, sort_keys=True) + "\n").encode("utf-8"),
        )

    # -- reads ----------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The artifact envelope for ``key``, or None on a miss.

        Invalid envelopes (torn writes are impossible, but crashes from
        other code versions are not) are discarded and read as misses.
        """
        path = self._envelope_path(key)
        try:
            envelope = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            self.discard(key)
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("key") != key
            or envelope.get("schema") != CODE_SCHEMA_VERSION
        ):
            self.discard(key)
            return None
        if envelope.get("has_blob") and not self._blob_path(key).exists():
            self.discard(key)
            return None
        return envelope

    def has(self, key: str) -> bool:
        return self.get(key) is not None

    def get_blob(self, key: str) -> Any:
        """Unpickle the bulk blob of a previously validated artifact."""
        path = self._blob_path(key)
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            raise ConfigError(f"artifact {key[:12]} has no blob")

    def discard(self, key: str) -> None:
        """Remove one artifact (both files); missing files are fine."""
        for path in (self._envelope_path(key), self._blob_path(key)):
            try:
                path.unlink()
            except OSError:
                pass

    def keys(self) -> Iterator[str]:
        """All committed artifact keys (envelope present)."""
        for path in sorted(self._objects.glob(f"*{_ENVELOPE_SUFFIX}")):
            name = path.name[: -len(_ENVELOPE_SUFFIX)]
            if name and not name.startswith("."):
                yield name

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())
