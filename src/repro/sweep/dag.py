"""Sweep DAG construction: one study decomposes into memoizable nodes.

Each sweep point (one :class:`StudyConfig`) expands to::

    build:dc0 ─┐
    build:dc1 ─┼─> experiment:table3 ─┐
    build:dc2 ─┘   experiment:fig7a  ─┼─> point
                   ...               ─┘

- **build** nodes simulate one data center (fleet build + both simulator
  passes).  Keyed by the *build-relevant* config subset only
  (:func:`repro.sweep.canonical.build_key`), so sweep points that differ
  in experiment knobs share these nodes.  Streamed builds additionally
  carry the engine's shard geometry (:func:`repro.engine.plan_for`) as
  node metadata: the pass-1 shard windows and pass-2 VD batches are the
  node's internal sub-steps, visible in ``engine.*`` telemetry.
- **experiment** nodes run one registered experiment against the
  assembled study.  Keyed by the *full* config digest + experiment id.
- **point** nodes aggregate one sweep point's experiment digests into
  the sweep-level record.

Nodes are deduplicated by key across the whole sweep — the DAG of a
sweep is the union of its per-point DAGs, which is where overlapping
points start sharing work even before the on-disk cache is consulted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sweep.canonical import build_key, experiment_key, point_key
from repro.util.errors import ConfigError


class NodeKind(str, enum.Enum):
    BUILD = "build"
    EXPERIMENT = "experiment"
    POINT = "point"


@dataclass(frozen=True)
class SweepNode:
    """One memoizable unit of sweep work."""

    key: str
    kind: NodeKind
    label: str
    deps: Tuple[str, ...] = ()
    #: Node-specific execution context (config, dc_id, experiment_id,
    #: point index); everything here must be picklable.
    context: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", NodeKind(self.kind))


def _scoped_plan(config, dc_id: int):
    plan = config.fault_plan
    if plan is None or plan.is_empty:
        return None
    scoped = plan.for_dc(dc_id)
    return None if scoped.is_empty else scoped


def build_nodes_for(
    config, chunk_epochs: "Optional[int]" = None
) -> List[SweepNode]:
    """The per-DC build nodes of one study config."""
    nodes: List[SweepNode] = []
    for dc_config in config.dc_configs:
        plan = _scoped_plan(config, dc_config.dc_id)
        key = build_key(config, dc_config, plan)
        context = {
            "config": config,
            "dc_id": dc_config.dc_id,
            "chunk_epochs": chunk_epochs,
        }
        if chunk_epochs is not None:
            # Annotate with the engine's shard geometry so progress and
            # telemetry can attribute work to pass-1 windows / pass-2
            # batches (the node's internal sub-steps).
            from repro.engine import plan_for

            # num_vds is unknown before the fleet builds; only the time
            # axis (num_shards) is geometry we can pin here.
            plan_geo = plan_for(
                duration_seconds=config.duration_seconds,
                num_vds=1,
                chunk_epochs=chunk_epochs,
            )
            context["num_shards"] = plan_geo.num_shards
        nodes.append(
            SweepNode(
                key=key,
                kind=NodeKind.BUILD,
                label=f"build:dc{dc_config.dc_id}@{key[:12]}",
                context=context,
            )
        )
    return nodes


def study_nodes(
    config,
    experiment_ids: "Tuple[str, ...]",
    chunk_epochs: "Optional[int]" = None,
    point_index: int = 0,
) -> List[SweepNode]:
    """All nodes of one sweep point, dependency-ordered."""
    if not experiment_ids:
        raise ConfigError("a sweep point needs at least one experiment")
    builds = build_nodes_for(config, chunk_epochs=chunk_epochs)
    build_keys = tuple(node.key for node in builds)
    nodes = list(builds)
    exp_keys = []
    for experiment_id in experiment_ids:
        key = experiment_key(config, experiment_id)
        exp_keys.append(key)
        nodes.append(
            SweepNode(
                key=key,
                kind=NodeKind.EXPERIMENT,
                label=f"experiment:{experiment_id}@{key[:12]}",
                deps=build_keys,
                context={
                    "config": config,
                    "experiment_id": experiment_id,
                    "build_keys": build_keys,
                },
            )
        )
    pkey = point_key(config, experiment_ids)
    nodes.append(
        SweepNode(
            key=pkey,
            kind=NodeKind.POINT,
            label=f"point:{point_index}@{pkey[:12]}",
            deps=tuple(exp_keys),
            context={
                "config": config,
                "experiment_ids": tuple(experiment_ids),
                "experiment_keys": tuple(exp_keys),
                "point_index": point_index,
            },
        )
    )
    return nodes


def merge_dags(per_point: List[List[SweepNode]]) -> List[SweepNode]:
    """Union per-point DAGs, deduplicating shared nodes by key.

    The first occurrence wins (node contexts for the same key are
    equivalent by construction — identical key means identical
    build-relevant inputs).
    """
    seen: Dict[str, SweepNode] = {}
    ordered: List[SweepNode] = []
    for nodes in per_point:
        for node in nodes:
            if node.key not in seen:
                seen[node.key] = node
                ordered.append(node)
    _check_acyclic(ordered)
    return ordered


def _check_acyclic(nodes: List[SweepNode]) -> None:
    """Defensive validation: every dep resolves and the graph is a DAG.

    By construction build < experiment < point, so cycles are impossible
    unless a bug introduces one — fail fast rather than deadlock the
    scheduler.
    """
    by_key = {node.key: node for node in nodes}
    for node in nodes:
        for dep in node.deps:
            if dep not in by_key:
                raise ConfigError(
                    f"node {node.label} depends on unknown key {dep[:12]}"
                )
    state: Dict[str, int] = {}

    def visit(key: str, depth: int = 0) -> None:
        if depth > len(nodes):
            raise ConfigError("sweep DAG has a cycle")
        if state.get(key) == 2:
            return
        if state.get(key) == 1:
            raise ConfigError("sweep DAG has a cycle")
        state[key] = 1
        for dep in by_key[key].deps:
            visit(dep, depth + 1)
        state[key] = 2

    for node in nodes:
        visit(node.key)
