"""The incremental sweep orchestrator.

:class:`SweepRunner` expands a :class:`~repro.sweep.grid.SweepSpec` into
the merged node DAG (:mod:`repro.sweep.dag`), consults the
content-addressed :class:`~repro.sweep.store.ArtifactStore` for every
node, and executes only the *needed misses* — the transitive closure of
uncached work under uncached sinks.  Ready nodes run with bounded
concurrency on a process pool (``workers``) with per-node retry; every
completed node's output is published atomically before the node is
marked done, so an interrupted sweep resumes exactly where it stopped.

Determinism contract: a warm replay, a resumed run, and a cold run of
the same spec produce byte-identical experiment tables — cache hits
replay the exact artifact a cold run would recompute, which the
``combined_digest`` of the outcome (and the kill-and-resume tests) pin.

Telemetry (through :mod:`repro.obs`): ``sweep.node_hits`` /
``sweep.node_misses`` / ``sweep.nodes_executed`` / ``sweep.node_retries``
counters (labelled by node kind), a ``sweep.node_seconds`` histogram,
and ``sweep.run`` / ``sweep.node`` spans.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.report import ExperimentResult
from repro.core.study import Study
from repro.obs.runtime import Telemetry, get_telemetry, set_telemetry
from repro.sweep.canonical import (
    CODE_SCHEMA_VERSION,
    digest_payload,
    result_table_digest,
)
from repro.sweep.dag import NodeKind, SweepNode, merge_dags, study_nodes
from repro.sweep.grid import SweepPoint, SweepSpec, override_label
from repro.sweep.store import ArtifactStore
from repro.util.errors import ConfigError, SweepError
from repro.util.rng import RngFactory

#: Version of the sweep outcome JSON payload (``SweepOutcome.to_dict``).
SWEEP_SCHEMA_VERSION = 1


# -- node execution (module-level: must pickle into worker processes) ---------


def _run_build_node(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Simulate one DC and publish the pickled result as the artifact."""
    from repro.cluster.simulator import EBSSimulator
    from repro.engine.digest import result_digest
    from repro.workload.fleet import build_fleet

    store = ArtifactStore(payload["store_dir"])
    config = payload["config"]
    dc_id = payload["dc_id"]
    chunk_epochs = payload.get("chunk_epochs")
    telemetry, previous = _enter_worker_telemetry(payload)
    started = time.perf_counter()
    try:
        with get_telemetry().span("sweep.node", kind="build", dc=dc_id):
            dc_config = _dc_config(config, dc_id)
            plan = _scoped_plan(config, dc_id)
            # Fresh label-keyed streams per DC: identical to the
            # sequential Study.build() by the same argument the
            # process-parallel build relies on.
            rngs = RngFactory(config.seed)
            fleet = build_fleet(dc_config, rngs)
            simulator = EBSSimulator(
                fleet, config.simulation_config(), rngs, fault_plan=plan
            )
            if chunk_epochs is None:
                result = simulator.run()
            else:
                result = _run_streamed(simulator, chunk_epochs)
            digest = result_digest(result)
            store.put(
                payload["key"],
                "build",
                payload={"result_digest": digest, "dc_id": dc_id},
                meta={"elapsed_s": time.perf_counter() - started},
                blob=result,
            )
    finally:
        snapshot = _exit_worker_telemetry(telemetry, previous)
    return {
        "key": payload["key"],
        "digest": digest,
        "elapsed_s": time.perf_counter() - started,
        "snapshot": snapshot,
    }


def _run_experiment_node(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Assemble a study from cached builds and run one experiment."""
    store = ArtifactStore(payload["store_dir"])
    config = payload["config"]
    experiment_id = payload["experiment_id"]
    telemetry, previous = _enter_worker_telemetry(payload)
    started = time.perf_counter()
    try:
        with get_telemetry().span(
            "sweep.node", kind="experiment", experiment=experiment_id
        ):
            results = [
                store.get_blob(build_key)
                for build_key in payload["build_keys"]
            ]
            study = Study.from_results(config, results)
            result = study.run(experiment_id)
            table = result.to_dict()
            digest = result_table_digest(table)
            store.put(
                payload["key"],
                "experiment",
                payload={
                    "experiment_id": experiment_id,
                    "result": table,
                    "table_digest": digest,
                },
                meta={"elapsed_s": time.perf_counter() - started},
            )
    finally:
        snapshot = _exit_worker_telemetry(telemetry, previous)
    return {
        "key": payload["key"],
        "digest": digest,
        "elapsed_s": time.perf_counter() - started,
        "snapshot": snapshot,
    }


def _run_streamed(simulator, chunk_epochs: int):
    """Streamed build for sweep nodes: run sharded, then materialize.

    The artifact must outlive the engine's temp shard store, so the lazy
    traffic view is materialized into plain per-VD traffic before the
    result pickles (datasets and grids are unaffected — the engine's
    parity contract covers any geometry).
    """
    from repro.engine import StreamingSimulator, StreamedTraffic

    engine = StreamingSimulator(simulator, chunk_epochs=chunk_epochs)
    try:
        result = engine.run()
        if isinstance(result.traffic, StreamedTraffic):
            result.traffic = engine.store.materialize()
        return result
    finally:
        engine.cleanup()


def _enter_worker_telemetry(payload):
    """Fresh telemetry handle inside pool workers (snapshot protocol)."""
    if not payload.get("fresh_telemetry"):
        return None, None
    telemetry = Telemetry(enabled=True)
    return telemetry, set_telemetry(telemetry)


def _exit_worker_telemetry(telemetry, previous):
    if telemetry is None:
        return None
    set_telemetry(previous)
    return telemetry.snapshot()


def _dc_config(config, dc_id: int):
    for dc_config in config.dc_configs:
        if dc_config.dc_id == dc_id:
            return dc_config
    raise ConfigError(f"no data center with id {dc_id}")


def _scoped_plan(config, dc_id: int):
    plan = config.fault_plan
    if plan is None or plan.is_empty:
        return None
    scoped = plan.for_dc(dc_id)
    return None if scoped.is_empty else scoped


_NODE_RUNNERS = {
    NodeKind.BUILD: _run_build_node,
    NodeKind.EXPERIMENT: _run_experiment_node,
}


# -- stats / outcome ----------------------------------------------------------


@dataclass
class SweepStats:
    """Cache accounting over the whole node DAG of one run."""

    total: int = 0
    hits: int = 0
    misses: int = 0
    executed: int = 0
    skipped: int = 0
    retries: int = 0
    by_kind: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def record(self, kind: str, hit: bool) -> None:
        bucket = self.by_kind.setdefault(kind, {"hits": 0, "misses": 0})
        self.total += 1
        if hit:
            self.hits += 1
            bucket["hits"] += 1
        else:
            self.misses += 1
            bucket["misses"] += 1

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 1.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "total": self.total,
            "hits": self.hits,
            "misses": self.misses,
            "executed": self.executed,
            "skipped": self.skipped,
            "retries": self.retries,
            "hit_rate": self.hit_rate,
            "by_kind": {k: dict(v) for k, v in sorted(self.by_kind.items())},
        }


@dataclass
class SweepOutcome:
    """Everything a finished sweep produced."""

    spec: SweepSpec
    points: List[SweepPoint]
    #: ``results[point_index][experiment_id]`` -> ExperimentResult
    results: Dict[int, Dict[str, ExperimentResult]]
    #: ``table_digests[point_index][experiment_id]`` -> sha256 hex
    table_digests: Dict[int, Dict[str, str]]
    stats: SweepStats
    elapsed_seconds: float
    store_dir: str

    @property
    def combined_digest(self) -> str:
        """One digest over every point's experiment-table digests.

        Cold, warm, and resumed runs of the same spec must agree here —
        the sweep-level extension of the engine's parity contract.
        """
        return digest_payload(
            {
                "schema": CODE_SCHEMA_VERSION,
                "points": {
                    str(point.index): {
                        "config": point.digest,
                        "tables": dict(
                            sorted(self.table_digests[point.index].items())
                        ),
                    }
                    for point in self.points
                },
            }
        )

    def tables(self) -> List[ExperimentResult]:
        """Sweep-level comparison grids, one per experiment.

        Each grid prefixes every row of every point's table with that
        point's axis values — e.g. a ``cache_block_bytes`` axis crossed
        with ``fig7a``'s per-policy rows yields the cache-size x policy
        crossover grid directly.
        """
        axis_names = self.spec.axis_names
        grids: List[ExperimentResult] = []
        for experiment_id in self.spec.experiments:
            rows: List[List[Any]] = []
            headers: Optional[List[str]] = None
            title = experiment_id
            for point in self.points:
                result = self.results[point.index][experiment_id]
                if headers is None:
                    headers = [*axis_names, *result.headers]
                    title = result.title
                prefix = [
                    override_label(value)
                    for _, value in sorted(point.overrides)
                ]
                for row in result.rows:
                    rows.append([*prefix, *row])
            grids.append(
                ExperimentResult(
                    experiment_id=f"sweep:{experiment_id}",
                    title=f"{title} — sweep grid",
                    headers=headers or axis_names,
                    rows=rows,
                )
            )
        return grids

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sweep_schema_version": SWEEP_SCHEMA_VERSION,
            "axes": {
                name: [override_label(v) for v in self.spec.axes[name]]
                for name in self.spec.axis_names
            },
            "experiments": list(self.spec.experiments),
            "points": [
                {
                    "index": point.index,
                    "overrides": {
                        name: override_label(value)
                        for name, value in point.overrides
                    },
                    "config_digest": point.digest,
                    "results": {
                        experiment_id: {
                            "table_digest": (
                                self.table_digests[point.index][experiment_id]
                            ),
                            "result": result.to_dict(),
                        }
                        for experiment_id, result in sorted(
                            self.results[point.index].items()
                        )
                    },
                }
                for point in self.points
            ],
            "combined_digest": self.combined_digest,
            "cache": self.stats.to_dict(),
            "elapsed_seconds": self.elapsed_seconds,
            "store_dir": self.store_dir,
        }


# -- the runner ---------------------------------------------------------------


class SweepRunner:
    """Schedule one sweep's DAG against an artifact store."""

    def __init__(
        self,
        spec: SweepSpec,
        store_dir: "str | Path",
        *,
        workers: int = 1,
        retries: int = 1,
        chunk_epochs: Optional[int] = None,
        node_hook: "Optional[Callable[[SweepNode, int], None]]" = None,
    ):
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if retries < 0:
            raise ConfigError(f"retries must be >= 0, got {retries}")
        self.spec = spec
        self.store = ArtifactStore(store_dir)
        self.workers = workers
        self.retries = retries
        self.chunk_epochs = chunk_epochs
        #: Test/ops seam: called as ``hook(node, attempt)`` in the parent
        #: before every execution attempt.  Exceptions count as that
        #: attempt's failure (KeyboardInterrupt/SystemExit propagate).
        self._node_hook = node_hook

    # -- planning -------------------------------------------------------------

    def _dag(self, points: List[SweepPoint]) -> List[SweepNode]:
        return merge_dags(
            [
                study_nodes(
                    point.config,
                    self.spec.experiments,
                    chunk_epochs=self.chunk_epochs,
                    point_index=point.index,
                )
                for point in points
            ]
        )

    def _needed(
        self,
        nodes: List[SweepNode],
        cached: Dict[str, bool],
    ) -> List[SweepNode]:
        """Misses in the demand closure of missed sinks, topo-ordered."""
        by_key = {node.key: node for node in nodes}
        needed: Dict[str, SweepNode] = {}

        def need(key: str) -> None:
            if cached[key] or key in needed:
                return
            needed[key] = by_key[key]
            for dep in by_key[key].deps:
                need(dep)

        for node in nodes:
            if node.kind is NodeKind.POINT:
                need(node.key)
        # nodes is already dependency-ordered (builds before experiments
        # before points, per point expansion order).
        return [node for node in nodes if node.key in needed]

    # -- execution ------------------------------------------------------------

    def run(self) -> SweepOutcome:
        telemetry = get_telemetry()
        started = time.perf_counter()
        points = self.spec.points()
        nodes = self._dag(points)
        stats = SweepStats()
        cached: Dict[str, bool] = {}
        with telemetry.span(
            "sweep.run",
            points=len(points),
            nodes=len(nodes),
            workers=self.workers,
        ):
            for node in nodes:
                hit = self.store.has(node.key)
                cached[node.key] = hit
                stats.record(node.kind.value, hit)
                counter = (
                    "sweep.node_hits" if hit else "sweep.node_misses"
                )
                telemetry.counter(counter, kind=node.kind.value).inc()
            todo = self._needed(nodes, cached)
            stats.skipped = stats.misses - len(todo)
            if todo:
                self._execute(todo, stats, telemetry)
        elapsed = time.perf_counter() - started
        results, digests = self._collect(points)
        return SweepOutcome(
            spec=self.spec,
            points=points,
            results=results,
            table_digests=digests,
            stats=stats,
            elapsed_seconds=elapsed,
            store_dir=str(self.store.directory),
        )

    def _payload_for(self, node: SweepNode, fresh: bool) -> Dict[str, Any]:
        payload = dict(node.context)
        payload["key"] = node.key
        payload["store_dir"] = str(self.store.directory)
        payload["fresh_telemetry"] = fresh
        return payload

    def _run_point_node(self, node: SweepNode) -> None:
        """Point nodes aggregate in-parent (they are trivially cheap)."""
        digests: Dict[str, str] = {}
        context = node.context
        for experiment_id, key in zip(
            context["experiment_ids"], context["experiment_keys"]
        ):
            envelope = self.store.get(key)
            if envelope is None:
                raise SweepError(
                    f"point {node.label} is missing its experiment "
                    f"artifact {key[:12]}"
                )
            digests[experiment_id] = envelope["payload"]["table_digest"]
        self.store.put(
            node.key,
            "point",
            payload={
                "point_index": context["point_index"],
                "experiment_keys": list(context["experiment_keys"]),
                "table_digests": digests,
            },
        )

    def _attempt(
        self, node: SweepNode, attempt: int, stats: SweepStats, telemetry
    ) -> None:
        """One inline execution attempt (workers == 1 path)."""
        if self._node_hook is not None:
            self._node_hook(node, attempt)
        if node.kind is NodeKind.POINT:
            self._run_point_node(node)
            return
        # Attempts run against a fresh worker handle (the pool protocol)
        # and only the attempt that *succeeded* merges back: a failed-
        # then-retried node must not double-count its partial metrics in
        # the parent's snapshot.
        payload = self._payload_for(node, fresh=telemetry.enabled)
        outcome = _NODE_RUNNERS[node.kind](payload)
        telemetry.merge_snapshot(outcome.get("snapshot"))
        telemetry.histogram(
            "sweep.node_seconds", kind=node.kind.value
        ).observe(outcome["elapsed_s"])

    def _execute_inline(
        self, todo: List[SweepNode], stats: SweepStats, telemetry
    ) -> None:
        for node in todo:
            failures: List[BaseException] = []
            for attempt in range(self.retries + 1):
                if attempt:
                    stats.retries += 1
                    telemetry.counter(
                        "sweep.node_retries", kind=node.kind.value
                    ).inc()
                try:
                    self._attempt(node, attempt, stats, telemetry)
                    break
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as error:
                    failures.append(error)
            else:
                # ``from failures[-1]`` keeps the final attempt's real
                # traceback on the chain; the key pinpoints the store
                # entry for post-mortem (``label`` is not unique across
                # chunking variants).
                raise SweepError(
                    f"node {node.label} (key {node.key[:12]}) failed "
                    f"after {self.retries + 1} attempt(s): {failures[-1]}"
                ) from failures[-1]
            stats.executed += 1
            telemetry.counter(
                "sweep.nodes_executed", kind=node.kind.value
            ).inc()

    def _execute_pool(
        self, todo: List[SweepNode], stats: SweepStats, telemetry
    ) -> None:
        """Bounded-concurrency scheduling over a process pool.

        Ready nodes (all deps done) dispatch as slots free up; point
        nodes aggregate in-parent.  Worker telemetry snapshots merge in
        node order post-run (integer counters: order-independent).
        """
        by_key = {node.key: node for node in todo}
        done: set = set()
        remaining_deps = {
            node.key: {dep for dep in node.deps if dep in by_key}
            for node in todo
        }
        attempts: Dict[str, int] = {node.key: 0 for node in todo}
        snapshots: Dict[str, Optional[dict]] = {}
        in_flight: Dict[Any, str] = {}

        def ready() -> List[SweepNode]:
            return [
                node
                for node in todo
                if node.key not in done
                and node.key not in set(in_flight.values())
                and not remaining_deps[node.key]
            ]

        def mark_done(key: str) -> None:
            done.add(key)
            node = by_key[key]
            stats.executed += 1
            telemetry.counter(
                "sweep.nodes_executed", kind=node.kind.value
            ).inc()
            for other in todo:
                remaining_deps[other.key].discard(key)

        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            while len(done) < len(todo):
                for node in ready():
                    if len(in_flight) >= self.workers and (
                        node.kind is not NodeKind.POINT
                    ):
                        break
                    try:
                        # The hook's documented contract: an exception
                        # counts as this attempt's failure (same as the
                        # inline path), it must not abort the sweep
                        # while retry budget remains.
                        if self._node_hook is not None:
                            self._node_hook(node, attempts[node.key])
                        if node.kind is NodeKind.POINT:
                            self._run_point_node(node)
                            mark_done(node.key)
                            continue
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except Exception as error:
                        attempts[node.key] += 1
                        if attempts[node.key] > self.retries:
                            raise SweepError(
                                f"node {node.label} (key "
                                f"{node.key[:12]}) failed after "
                                f"{attempts[node.key]} attempt(s): {error}"
                            ) from error
                        stats.retries += 1
                        telemetry.counter(
                            "sweep.node_retries", kind=node.kind.value
                        ).inc()
                        continue
                    future = pool.submit(
                        _NODE_RUNNERS[node.kind],
                        self._payload_for(node, fresh=telemetry.enabled),
                    )
                    in_flight[future] = node.key
                if not in_flight:
                    if len(done) < len(todo) and not ready():
                        raise SweepError(
                            "sweep scheduler stalled: no ready nodes and "
                            "nothing in flight (dependency bug?)"
                        )
                    continue
                finished, _ = wait(
                    list(in_flight), return_when=FIRST_COMPLETED
                )
                for future in finished:
                    key = in_flight.pop(future)
                    node = by_key[key]
                    error = future.exception()
                    if error is None:
                        outcome = future.result()
                        snapshots[key] = outcome.get("snapshot")
                        telemetry.histogram(
                            "sweep.node_seconds", kind=node.kind.value
                        ).observe(outcome["elapsed_s"])
                        mark_done(key)
                        continue
                    attempts[key] += 1
                    if attempts[key] > self.retries:
                        raise SweepError(
                            f"node {node.label} (key {node.key[:12]}) "
                            f"failed after {attempts[key]} attempt(s): "
                            f"{error}"
                        ) from error
                    stats.retries += 1
                    telemetry.counter(
                        "sweep.node_retries", kind=node.kind.value
                    ).inc()
        # Deterministic merge order: node order, not completion order.
        for node in todo:
            if node.key in snapshots:
                telemetry.merge_snapshot(snapshots[node.key])

    def _execute(
        self, todo: List[SweepNode], stats: SweepStats, telemetry
    ) -> None:
        if self.workers == 1:
            self._execute_inline(todo, stats, telemetry)
        else:
            self._execute_pool(todo, stats, telemetry)

    # -- harvesting -----------------------------------------------------------

    def _collect(
        self, points: List[SweepPoint]
    ) -> "Tuple[Dict[int, Dict[str, ExperimentResult]], Dict[int, Dict[str, str]]]":
        from repro.sweep.canonical import experiment_key

        results: Dict[int, Dict[str, ExperimentResult]] = {}
        digests: Dict[int, Dict[str, str]] = {}
        for point in points:
            results[point.index] = {}
            digests[point.index] = {}
            for experiment_id in self.spec.experiments:
                key = experiment_key(point.config, experiment_id)
                envelope = self.store.get(key)
                if envelope is None:
                    raise SweepError(
                        f"experiment artifact missing post-run: "
                        f"{experiment_id} @ {key[:12]}"
                    )
                table = envelope["payload"]["result"]
                results[point.index][experiment_id] = ExperimentResult(
                    experiment_id=table["experiment_id"],
                    title=table["title"],
                    headers=list(table["headers"]),
                    rows=[list(row) for row in table["rows"]],
                    notes=table.get("notes", ""),
                )
                digests[point.index][experiment_id] = (
                    envelope["payload"]["table_digest"]
                )
        return results, digests
