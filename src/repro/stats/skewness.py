"""Spatial and temporal skewness metrics.

The paper quantifies *spatial* skewness with the Cumulative Contribution
Rate (CCR) — the share of total traffic contributed by the hottest x% of
entities — and *temporal* skewness with the Peak-to-Average ratio (P2A) of a
traffic time series.  Thread/server imbalance is measured with a normalized
Coefficient of Variation (CoV) that lies in ``(0, 1]``.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.util.errors import ConfigError


def _as_array(values: Sequence[float]) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ConfigError(f"expected a 1-D sequence, got shape {arr.shape}")
    if arr.size == 0:
        raise ConfigError("expected a non-empty sequence")
    if np.any(arr < 0):
        raise ConfigError("traffic values must be non-negative")
    return arr


def ccr(values: Sequence[float], fraction: float) -> float:
    """Cumulative Contribution Rate of the top ``fraction`` of entities.

    ``ccr(traffic_per_vm, 0.01)`` is the paper's "1%-CCR": the share of total
    traffic contributed by the hottest 1% of VMs.  At least one entity is
    always counted, matching how a "top 1%" is read off a ranked list.
    Returns 0.0 when total traffic is zero.
    """
    if not 0.0 < fraction <= 1.0:
        raise ConfigError(f"fraction must be in (0, 1], got {fraction}")
    arr = _as_array(values)
    total = float(arr.sum())
    if total == 0.0:
        return 0.0
    k = max(1, math.ceil(fraction * arr.size))
    top = np.sort(arr)[::-1][:k]
    return float(top.sum() / total)


def ccr_curve(
    values: Sequence[float], fractions: Sequence[float]
) -> "dict[float, float]":
    """CCR evaluated at several fractions with one sort."""
    arr = _as_array(values)
    total = float(arr.sum())
    ranked = np.sort(arr)[::-1]
    cumulative = np.cumsum(ranked)
    result: dict[float, float] = {}
    for fraction in fractions:
        if not 0.0 < fraction <= 1.0:
            raise ConfigError(f"fraction must be in (0, 1], got {fraction}")
        if total == 0.0:
            result[fraction] = 0.0
            continue
        k = max(1, math.ceil(fraction * arr.size))
        result[fraction] = float(cumulative[k - 1] / total)
    return result


def top_share(values: Sequence[float]) -> float:
    """Traffic share of the single hottest entity (0.0 if total is zero)."""
    arr = _as_array(values)
    total = float(arr.sum())
    if total == 0.0:
        return 0.0
    return float(arr.max() / total)


def p2a(series: Sequence[float]) -> float:
    """Peak-to-Average ratio of a traffic time series.

    Reflects burstiness: 1.0 for a flat series, large for spiky traffic.
    Returns 0.0 for an all-zero series (no traffic means no burst).
    """
    arr = _as_array(series)
    mean = float(arr.mean())
    if mean == 0.0:
        return 0.0
    return float(arr.max() / mean)


def cov(values: Sequence[float]) -> float:
    """Plain coefficient of variation (population std / mean).

    Returns 0.0 for an all-zero sequence.
    """
    arr = _as_array(values)
    mean = float(arr.mean())
    if mean == 0.0:
        return 0.0
    return float(arr.std() / mean)


def normalized_cov(values: Sequence[float]) -> float:
    """CoV normalized to ``[0, 1]`` as used by the paper.

    For ``n`` non-negative values the maximum possible CoV (all traffic on
    one entity) is ``sqrt(n - 1)``, so dividing by that bound maps a
    perfectly skewed distribution to 1.0 and a perfectly even one to 0.0
    — the range is closed at *both* ends, since an even distribution has
    zero dispersion.  A single value has no dispersion; 0.0 is returned.
    """
    arr = _as_array(values)
    if arr.size == 1:
        return 0.0
    bound = math.sqrt(arr.size - 1)
    return cov(arr) / bound
