"""Statistics toolkit used throughout the paper's analyses.

- :mod:`repro.stats.skewness` — Cumulative Contribution Rate (CCR),
  Peak-to-Average ratio (P2A), and the normalized Coefficient of Variation
  (CoV) the paper uses to quantify spatial and temporal skewness.
- :mod:`repro.stats.ratios` — the normalized write-to-read ratio (Eq. 2).
- :mod:`repro.stats.distributions` — empirical CDFs, percentile summaries
  and histogram helpers backing the paper's CDF figures.
- :mod:`repro.stats.aggregation` — group-by reductions over record arrays.
"""

from repro.stats.aggregation import group_reduce, group_sum
from repro.stats.distributions import (
    EmpiricalCdf,
    fraction_at_least,
    fraction_at_most,
    histogram,
    percentile_summary,
)
from repro.stats.iostats import (
    inter_arrival_cv,
    inter_arrival_cvs,
    io_size_summary,
    latency_breakdown,
)
from repro.stats.ratios import wr_ratio, wr_ratio_arrays
from repro.stats.skewness import (
    ccr,
    ccr_curve,
    cov,
    normalized_cov,
    p2a,
    top_share,
)

__all__ = [
    "group_reduce",
    "group_sum",
    "EmpiricalCdf",
    "fraction_at_least",
    "fraction_at_most",
    "histogram",
    "percentile_summary",
    "inter_arrival_cv",
    "inter_arrival_cvs",
    "io_size_summary",
    "latency_breakdown",
    "wr_ratio",
    "wr_ratio_arrays",
    "ccr",
    "ccr_curve",
    "cov",
    "normalized_cov",
    "p2a",
    "top_share",
]
