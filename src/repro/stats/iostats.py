"""Trace-level IO characterization helpers.

These back the supplementary experiments: per-component latency breakdown
(the five stages DiTing traces, §2.3), IO-size profiles per direction, and
inter-arrival statistics (the self-similarity angle of the related work the
paper cites).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.trace.dataset import TraceDataset
from repro.util.errors import ConfigError

_COMPONENT_FIELDS = {
    "compute": "lat_compute_us",
    "frontend": "lat_frontend_us",
    "block_server": "lat_block_server_us",
    "backend": "lat_backend_us",
    "chunk_server": "lat_chunk_server_us",
}


def latency_breakdown(
    traces: TraceDataset, direction: "str | None" = None
) -> "Dict[str, Dict[str, float]]":
    """Per-component latency summary: mean, p50, p99, and share of total.

    ``direction`` filters to reads or writes; None keeps everything.
    """
    if direction not in (None, "read", "write"):
        raise ConfigError("direction must be None, 'read' or 'write'")
    subset = traces
    if direction == "read":
        subset = traces.reads()
    elif direction == "write":
        subset = traces.writes()
    if len(subset) == 0:
        raise ConfigError("no traces to summarize")
    total = subset.latency_us
    total_mean = float(total.mean())
    out: Dict[str, Dict[str, float]] = {}
    for name, field_name in _COMPONENT_FIELDS.items():
        values = getattr(subset, field_name)
        out[name] = {
            "mean_us": float(values.mean()),
            "p50_us": float(np.percentile(values, 50)),
            "p99_us": float(np.percentile(values, 99)),
            "share": float(values.mean() / total_mean) if total_mean else 0.0,
        }
    out["total"] = {
        "mean_us": total_mean,
        "p50_us": float(np.percentile(total, 50)),
        "p99_us": float(np.percentile(total, 99)),
        "share": 1.0,
    }
    return out


def io_size_summary(traces: TraceDataset) -> "Dict[str, Dict[str, float]]":
    """Read/write IO-size profiles (bytes): median, mean, p99."""
    out: Dict[str, Dict[str, float]] = {}
    for label, subset in (("read", traces.reads()), ("write", traces.writes())):
        if len(subset) == 0:
            continue
        sizes = subset.size_bytes.astype(float)
        out[label] = {
            "count": float(len(subset)),
            "median_bytes": float(np.median(sizes)),
            "mean_bytes": float(sizes.mean()),
            "p99_bytes": float(np.percentile(sizes, 99)),
        }
    if not out:
        raise ConfigError("no traces to summarize")
    return out


def inter_arrival_cv(traces: TraceDataset, vd_id: int) -> "float | None":
    """Coefficient of variation of one VD's IO inter-arrival times.

    CV = 1 for a Poisson arrival process; cloud block traffic is far
    burstier (CV >> 1), the self-similarity signature of the related
    characterization work.  Returns None with fewer than 3 traced IOs.
    """
    vd_traces = traces.for_vd(vd_id)
    if len(vd_traces) < 3:
        return None
    times = np.sort(vd_traces.timestamp)
    gaps = np.diff(times)
    mean = gaps.mean()
    if mean == 0:
        return None
    return float(gaps.std() / mean)


def inter_arrival_cvs(
    traces: TraceDataset, min_traces: int = 100
) -> List[float]:
    """Inter-arrival CV for every VD with at least ``min_traces`` IOs."""
    if min_traces < 3:
        raise ConfigError("min_traces must be >= 3")
    ids, counts = np.unique(traces.vd_id, return_counts=True)
    out: List[float] = []
    for vd_id, count in zip(ids, counts):
        if count < min_traces:
            continue
        value = inter_arrival_cv(traces, int(vd_id))
        if value is not None:
            out.append(value)
    return out
