"""Empirical distribution helpers backing the paper's CDF/percentile figures."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.util.errors import ConfigError


@dataclass(frozen=True)
class EmpiricalCdf:
    """An empirical CDF built once from a sample, queryable repeatedly."""

    sorted_values: np.ndarray

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "EmpiricalCdf":
        arr = np.asarray(values, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise ConfigError("EmpiricalCdf requires a non-empty 1-D sample")
        return cls(np.sort(arr))

    def __call__(self, x: float) -> float:
        """P(X <= x)."""
        return float(
            np.searchsorted(self.sorted_values, x, side="right")
            / self.sorted_values.size
        )

    def quantile(self, q: float) -> float:
        """The q-quantile (q in [0, 1]) by linear interpolation."""
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(self.sorted_values, q))

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    def series(self) -> Tuple[np.ndarray, np.ndarray]:
        """(x, F(x)) arrays suitable for plotting the CDF curve."""
        n = self.sorted_values.size
        return self.sorted_values, np.arange(1, n + 1) / n


def percentile_summary(
    values: Sequence[float],
    percentiles: Sequence[float] = (0.0, 50.0, 99.0),
) -> Dict[float, float]:
    """Map each percentile (0-100) to its value in the sample."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigError("percentile_summary requires a non-empty 1-D sample")
    for p in percentiles:
        if not 0.0 <= p <= 100.0:
            raise ConfigError(f"percentile must be in [0, 100], got {p}")
    return {p: float(np.percentile(arr, p)) for p in percentiles}


def fraction_at_least(values: Sequence[float], threshold: float) -> float:
    """Fraction of the sample with value >= threshold."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ConfigError("fraction_at_least requires a non-empty sample")
    return float(np.mean(arr >= threshold))


def fraction_at_most(values: Sequence[float], threshold: float) -> float:
    """Fraction of the sample with value <= threshold."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ConfigError("fraction_at_most requires a non-empty sample")
    return float(np.mean(arr <= threshold))


def histogram(
    values: Sequence[float],
    bins: int = 10,
    value_range: "Tuple[float, float] | None" = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Density-normalized histogram returning (counts_fraction, bin_edges)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ConfigError("histogram requires a non-empty sample")
    counts, edges = np.histogram(arr, bins=bins, range=value_range)
    return counts / arr.size, edges
