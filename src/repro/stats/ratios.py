"""The normalized write-to-read ratio (Equation 2 of the paper).

``wr_ratio = (W - R) / (W + R)`` lies in ``[-1, 1]``: +1 is pure write, -1 is
pure read, and |wr_ratio| > 1/3 marks a 2x dominance of one direction.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.errors import ConfigError

#: |wr_ratio| above this marks traffic as write- or read-dominant (2x).
DOMINANCE_THRESHOLD = 1.0 / 3.0


def wr_ratio(write: float, read: float) -> float:
    """Normalized write-to-read ratio of a single (write, read) pair.

    Returns 0.0 when there is no traffic at all, which keeps downstream
    CDFs total-ordering-safe without special-casing.
    """
    if write < 0 or read < 0:
        raise ConfigError(
            f"traffic must be non-negative, got write={write} read={read}"
        )
    total = write + read
    if total == 0:
        return 0.0
    return (write - read) / total


def wr_ratio_arrays(
    write: Sequence[float], read: Sequence[float]
) -> np.ndarray:
    """Element-wise :func:`wr_ratio` over aligned write/read arrays."""
    w = np.asarray(write, dtype=float)
    r = np.asarray(read, dtype=float)
    if w.shape != r.shape:
        raise ConfigError(
            f"write/read shapes differ: {w.shape} vs {r.shape}"
        )
    if np.any(w < 0) or np.any(r < 0):
        raise ConfigError("traffic must be non-negative")
    total = w + r
    out = np.zeros_like(total)
    nonzero = total > 0
    out[nonzero] = (w[nonzero] - r[nonzero]) / total[nonzero]
    return out
