"""Group-by reductions over parallel key/value arrays.

The metric dataset is stored column-wise (numpy arrays); these helpers do
the "aggregate traffic at the level of VM / node / segment" operations the
paper performs before computing CCR/P2A/CoV.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Sequence

import numpy as np

from repro.util.errors import ConfigError


def group_sum(
    keys: Sequence[Hashable], values: Sequence[float]
) -> "Dict[Hashable, float]":
    """Sum ``values`` grouped by ``keys`` (arbitrary hashable keys)."""
    keys = list(keys)
    arr = np.asarray(values, dtype=float)
    if len(keys) != arr.size:
        raise ConfigError(
            f"keys ({len(keys)}) and values ({arr.size}) lengths differ"
        )
    # np.unique on object keys is slower than a dict pass for mixed types.
    out: Dict[Hashable, float] = {}
    for key, value in zip(keys, arr):
        out[key] = out.get(key, 0.0) + float(value)
    return out


def group_reduce(
    keys: Sequence[Hashable],
    values: Sequence[float],
    reducer: Callable[[np.ndarray], float],
) -> "Dict[Hashable, float]":
    """Apply ``reducer`` to the values of each group.

    Useful for per-group P2A/CoV where the reduction is not a plain sum.
    """
    keys = list(keys)
    arr = np.asarray(values, dtype=float)
    if len(keys) != arr.size:
        raise ConfigError(
            f"keys ({len(keys)}) and values ({arr.size}) lengths differ"
        )
    buckets: Dict[Hashable, list] = {}
    for index, key in enumerate(keys):
        buckets.setdefault(key, []).append(index)
    return {
        key: float(reducer(arr[np.asarray(indices)]))
        for key, indices in buckets.items()
    }
