"""The blessed public API of the reproduction package.

This module is the **stable surface**: scripts, notebooks, README
examples, and downstream tooling should import from here (or from the
package root, which re-exports the same names)::

    from repro.api import run_experiment, run_study, sweep, load_result

Everything else — :mod:`repro.core.study` plumbing,
:mod:`repro.engine.executor`, the sweep orchestrator internals — is
private: importable for spelunking, but free to change between
versions without notice.

Five entry points cover the package's use cases:

- :func:`run_experiment` — one table/figure, one config.
- :func:`run_study` — several experiments over one shared build.
- :func:`sweep` — a parameter grid with the incremental, content-
  addressed result cache (:mod:`repro.sweep`).
- :func:`load_result` — read back a results artifact written by
  ``ebs-repro run -o`` / :func:`save_results`.
- :func:`plan_balance` — an hbal-style global move plan for a cluster
  snapshot (:mod:`repro.balance`; the ``ebs-repro balance`` engine).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.core.config import SCALE_NAMES, StudyConfig
from repro.core.report import ExperimentResult
from repro.core.study import Study
from repro.core.result_schema import (
    RESULT_SCHEMA_VERSION,
    load_results,
    results_payload,
    validate_result_payload,
)
from repro.util.errors import ConfigError

__all__ = [
    "RESULT_SCHEMA_VERSION",
    "SCALE_NAMES",
    "ExperimentResult",
    "StudyConfig",
    "load_result",
    "plan_balance",
    "run_experiment",
    "run_study",
    "save_results",
    "sweep",
]


def _resolve_config(
    config: Optional[StudyConfig],
    scale: str,
    seed: int,
    overrides: Dict[str, Any],
) -> StudyConfig:
    if config is not None:
        if overrides:
            raise ConfigError(
                "pass either a full config= or keyword overrides, not both"
            )
        return config
    return StudyConfig.scale(scale, seed=seed, **overrides)


def run_experiment(
    experiment_id: str,
    *,
    config: Optional[StudyConfig] = None,
    scale: str = "small",
    seed: int = 7,
    workers: int = 1,
    **overrides: Any,
) -> ExperimentResult:
    """Build a study and run one experiment by its table/figure id.

    Either pass a full ``config=`` or let ``scale``/``seed`` plus
    keyword overrides build one via :meth:`StudyConfig.scale`::

        result = run_experiment("table3")
        result = run_experiment("fig7a", scale="medium", seed=11)
        result = run_experiment("fig3a", duration_seconds=300)
        result = run_experiment(
            "redundancy_cov", redundancy="r=3", read_policy="least_loaded"
        )
    """
    study = Study(_resolve_config(config, scale, seed, overrides))
    study.build(workers=workers)
    return study.run(experiment_id)


def run_study(
    experiments: Optional[Sequence[str]] = None,
    *,
    config: Optional[StudyConfig] = None,
    scale: str = "small",
    seed: int = 7,
    workers: int = 1,
    **overrides: Any,
) -> Dict[str, ExperimentResult]:
    """Run several experiments over one shared build.

    ``experiments=None`` runs the full registry in paper order.  Returns
    ``{experiment_id: ExperimentResult}`` preserving the requested order
    (dicts are insertion-ordered).
    """
    from repro.core.experiments import experiment_ids

    study = Study(_resolve_config(config, scale, seed, overrides))
    study.build(workers=workers)
    targets = list(experiments) if experiments else experiment_ids()
    return {
        experiment_id: study.run(experiment_id) for experiment_id in targets
    }


def sweep(
    axes: Mapping[str, Sequence[Any]],
    *,
    experiments: Sequence[str],
    base: Optional[StudyConfig] = None,
    scale: str = "small",
    seed: int = 7,
    store_dir: "Optional[str | Path]" = None,
    workers: int = 1,
    retries: int = 1,
    chunk_epochs: Optional[int] = None,
):
    """Run an incremental parameter sweep with a content-addressed cache.

    ``axes`` maps :class:`StudyConfig` field names to value lists; the
    sweep covers their cartesian product.  Node outputs (per-DC builds,
    per-experiment tables) memoize under ``store_dir`` — overlapping
    points share builds, re-runs replay from cache byte-identically, and
    an interrupted sweep resumes from whatever was already published.
    ``store_dir=None`` uses a temp store (no reuse across calls).

    Returns a :class:`repro.sweep.SweepOutcome`: ``outcome.tables()``
    for the comparison grids, ``outcome.stats`` for hit/miss accounting,
    ``outcome.combined_digest`` for the parity yardstick. ::

        from repro.util.units import MiB
        outcome = sweep(
            {"cache_block_bytes": [(64 * MiB,), (512 * MiB,)]},
            experiments=["fig7a"],
            store_dir="out/sweep-cache",
        )
        for grid in outcome.tables():
            print(grid.render())
    """
    import tempfile

    from repro.sweep import SweepRunner, SweepSpec

    base_config = (
        base
        if base is not None
        else StudyConfig.scale(scale, seed=seed)
    )
    spec = SweepSpec(
        base=base_config, axes=dict(axes), experiments=tuple(experiments)
    )
    if store_dir is None:
        with tempfile.TemporaryDirectory(prefix="repro-sweep-") as temp:
            return SweepRunner(
                spec,
                temp,
                workers=workers,
                retries=retries,
                chunk_epochs=chunk_epochs,
            ).run()
    return SweepRunner(
        spec,
        store_dir,
        workers=workers,
        retries=retries,
        chunk_epochs=chunk_epochs,
    ).run()


def plan_balance(
    state=None,
    *,
    balance_config=None,
    config: Optional[StudyConfig] = None,
    scale: str = "small",
    seed: int = 7,
    dc: int = 0,
    direction: str = "total",
    workers: int = 1,
    **overrides: Any,
):
    """Plan an hbal-style global move plan for one cluster snapshot.

    Pass an explicit :class:`repro.balance.ClusterState` (e.g. from
    :meth:`~repro.balance.ClusterState.load` or
    :func:`repro.balance.random_cluster_state`), or let the function
    simulate one: build a study from ``config=`` / ``scale``/``seed``
    plus overrides, snapshot DC ``dc`` with traffic ``direction``.
    ``balance_config`` is a :class:`repro.balance.BalanceConfig`
    (defaults apply when omitted).  Returns the
    :class:`repro.balance.MovePlan`; apply it with
    ``plan.apply_to(state.copy())`` or hand it to
    ``ebs-repro balance apply``. ::

        plan = plan_balance(scale="small", seed=7)
        plan = plan_balance(state, balance_config=BalanceConfig(
            no_segment_moves=True))
    """
    from repro.balance import BalanceConfig, ClusterState, plan_moves

    if state is None:
        study = Study(_resolve_config(config, scale, seed, overrides))
        try:
            study.build(workers=workers)
            results = study.results
            if not 0 <= dc < len(results):
                raise ConfigError(
                    f"dc must be in [0, {len(results) - 1}] for this "
                    f"study, got {dc}"
                )
            state = ClusterState.from_simulation(
                results[dc], direction=direction
            )
        finally:
            study.cleanup()
    elif overrides or config is not None:
        raise ConfigError(
            "pass either an explicit state or study parameters, not both"
        )
    return plan_moves(state, balance_config or BalanceConfig())


def save_results(
    results: Sequence[ExperimentResult],
    path: "str | Path",
    *,
    scale: Optional[str] = None,
    seed: Optional[int] = None,
    redundancy: Optional[str] = None,
    read_policy: Optional[str] = None,
) -> Path:
    """Write results as a versioned JSON artifact (see ``load_result``)."""
    import json

    payload = results_payload(
        results,
        scale=scale,
        seed=seed,
        redundancy=redundancy,
        read_policy=read_policy,
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_result(path: "str | Path") -> List[ExperimentResult]:
    """Load a results artifact written by ``ebs-repro run -o`` / CI.

    Validates the payload against :data:`RESULT_SCHEMA_VERSION` first
    and raises :class:`ConfigError` listing every problem found.
    """
    import json

    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise ConfigError(f"no such results file: {path}")
    except json.JSONDecodeError as error:
        raise ConfigError(f"{path} is not valid JSON: {error}")
    problems = validate_result_payload(payload)
    if problems:
        raise ConfigError(
            f"{path} is not a valid results artifact: "
            + "; ".join(problems)
        )
    return load_results(payload)
