"""Time-window helpers for bucketing second-granularity series.

The paper repeatedly re-aggregates its second-level metric data into coarser
windows (1/30/60-minute WT-CoV in Fig 2(a), 15s migration windows in Fig 4(a),
5-minute hot-rate windows in Fig 6(d)).  These helpers centralize the
bucketing arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.util.errors import ConfigError


@dataclass(frozen=True)
class TimeWindow:
    """A half-open time interval ``[start, end)`` in seconds."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ConfigError(
                f"window end ({self.end}) must exceed start ({self.start})"
            )

    @property
    def duration(self) -> int:
        return self.end - self.start

    def contains(self, t: int) -> bool:
        return self.start <= t < self.end

    def overlaps(self, other: "TimeWindow") -> bool:
        return self.start < other.end and other.start < self.end


def iter_windows(
    total_seconds: int, window_seconds: int, drop_partial: bool = False
) -> Iterator[TimeWindow]:
    """Yield consecutive windows covering ``[0, total_seconds)``.

    The final window is truncated to ``total_seconds`` unless ``drop_partial``
    is set, in which case a trailing partial window is omitted.
    """
    if total_seconds <= 0:
        raise ConfigError(f"total_seconds must be positive, got {total_seconds}")
    if window_seconds <= 0:
        raise ConfigError(f"window_seconds must be positive, got {window_seconds}")
    start = 0
    while start < total_seconds:
        end = min(start + window_seconds, total_seconds)
        if end - start == window_seconds or not drop_partial:
            yield TimeWindow(start, end)
        start += window_seconds


def window_index(t: int, window_seconds: int) -> int:
    """Return the index of the window containing second ``t``."""
    if window_seconds <= 0:
        raise ConfigError(f"window_seconds must be positive, got {window_seconds}")
    if t < 0:
        raise ConfigError(f"time must be non-negative, got {t}")
    return t // window_seconds
