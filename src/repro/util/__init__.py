"""Shared utilities: byte units, deterministic RNG, time windows, errors."""

from repro.util.errors import (
    ConfigError,
    DatasetError,
    ReproError,
    SimulationError,
)
from repro.util.rng import RngFactory, spawn_rng
from repro.util.timewindow import TimeWindow, iter_windows, window_index
from repro.util.units import (
    GiB,
    KiB,
    MiB,
    PiB,
    TiB,
    format_bytes,
    parse_size,
)
from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
)

__all__ = [
    "ConfigError",
    "DatasetError",
    "ReproError",
    "SimulationError",
    "RngFactory",
    "spawn_rng",
    "TimeWindow",
    "iter_windows",
    "window_index",
    "KiB",
    "MiB",
    "GiB",
    "TiB",
    "PiB",
    "format_bytes",
    "parse_size",
    "check_fraction",
    "check_non_negative",
    "check_positive",
]
