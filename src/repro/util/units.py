"""Byte-size units and helpers.

The paper quotes sizes in binary units (32 GiB segments, 4 KiB cache pages,
64 MiB-2048 MiB hottest blocks), so the constants here are powers of two.
"""

from __future__ import annotations

import re

from repro.util.errors import ConfigError

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB
PiB = 1024 * TiB

_UNIT_FACTORS = {
    "b": 1,
    "kib": KiB,
    "mib": MiB,
    "gib": GiB,
    "tib": TiB,
    "pib": PiB,
    "k": KiB,
    "m": MiB,
    "g": GiB,
    "t": TiB,
    "p": PiB,
}

_SIZE_RE = re.compile(r"^\s*([0-9]+(?:\.[0-9]+)?)\s*([a-zA-Z]*)\s*$")


def parse_size(text: str) -> int:
    """Parse a human-readable size like ``"32GiB"`` or ``"4 KiB"`` to bytes.

    Bare numbers are taken as bytes.  Raises :class:`ConfigError` on
    unparseable input or unknown units.
    """
    match = _SIZE_RE.match(text)
    if match is None:
        raise ConfigError(f"unparseable size: {text!r}")
    value, unit = match.groups()
    factor = _UNIT_FACTORS.get(unit.lower() or "b")
    if factor is None:
        raise ConfigError(f"unknown size unit {unit!r} in {text!r}")
    total = float(value) * factor
    return int(round(total))


def format_bytes(num_bytes: float, precision: int = 1) -> str:
    """Format a byte count with the largest binary unit that keeps it >= 1.

    >>> format_bytes(32 * GiB)
    '32.0 GiB'
    """
    if num_bytes < 0:
        raise ConfigError(f"byte count must be non-negative, got {num_bytes}")
    for unit_name, factor in (
        ("PiB", PiB),
        ("TiB", TiB),
        ("GiB", GiB),
        ("MiB", MiB),
        ("KiB", KiB),
    ):
        if num_bytes >= factor:
            return f"{num_bytes / factor:.{precision}f} {unit_name}"
    return f"{num_bytes:.0f} B"
