"""Deterministic random-number-generator management.

Every stochastic component of the simulator takes a ``numpy.random.Generator``
rather than using the global state, so a study is fully reproducible from a
single seed.  :class:`RngFactory` hands out independent child generators keyed
by a string label, so adding a new consumer never perturbs the streams of
existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np


def spawn_rng(seed: int, label: str = "") -> np.random.Generator:
    """Create a generator from ``seed`` and a stable string ``label``.

    The label is hashed into the seed sequence so distinct labels yield
    statistically independent streams.
    """
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    entropy = int.from_bytes(digest[:8], "little")
    return np.random.default_rng(np.random.SeedSequence([seed, entropy]))


class RngFactory:
    """Hands out independent, label-keyed child generators.

    Repeated requests for the same label return fresh generators seeded
    identically, which makes component-level replay possible.
    """

    def __init__(self, seed: int):
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def get(self, label: str) -> np.random.Generator:
        """Return a new generator for ``label`` (same label -> same stream)."""
        return spawn_rng(self._seed, label)

    def child(self, label: str) -> "RngFactory":
        """Derive a factory whose streams are independent of this one's."""
        digest = hashlib.sha256(label.encode("utf-8")).digest()
        entropy = int.from_bytes(digest[8:16], "little")
        return RngFactory((self._seed * 1_000_003 + entropy) % (2**63))
