"""Exception hierarchy for the repro package.

All errors raised deliberately by this package derive from
:class:`ReproError` so callers can catch package failures with one except
clause while letting programming errors (TypeError, KeyError, ...) surface.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A configuration value is missing, malformed, or out of range."""


class DatasetError(ReproError):
    """A trace or metric dataset is malformed or inconsistent."""


class SimulationError(ReproError):
    """The simulator reached an invalid state."""


class SweepError(ReproError):
    """A sweep node failed after exhausting its retry budget."""


class LiveError(ReproError):
    """The live ingestion pipeline failed or shut down uncleanly."""


class BalanceError(ReproError):
    """A balance move plan is invalid or cannot be applied."""
