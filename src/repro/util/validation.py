"""Small argument-validation helpers used across configuration dataclasses."""

from __future__ import annotations

from repro.util.errors import ConfigError


def check_positive(name: str, value: float) -> float:
    """Return ``value`` if strictly positive, else raise :class:`ConfigError`."""
    if not value > 0:
        raise ConfigError(f"{name} must be positive, got {value}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Return ``value`` if >= 0, else raise :class:`ConfigError`."""
    if value < 0:
        raise ConfigError(f"{name} must be non-negative, got {value}")
    return value


def check_fraction(name: str, value: float, inclusive: bool = True) -> float:
    """Validate that ``value`` lies in [0, 1] (or (0, 1) if not inclusive)."""
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ConfigError(f"{name} must be in [0, 1], got {value}")
    else:
        if not 0.0 < value < 1.0:
            raise ConfigError(f"{name} must be in (0, 1), got {value}")
    return value
