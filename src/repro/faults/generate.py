"""Seed-stable random fault plans for sweeps and the differential harness.

:func:`random_fault_plan` draws a plan from a label-keyed RNG stream, so
``(seed, shape)`` fully determines the schedule — the 25-plan
differential suite and the skew-vs-failure sensitivity sweep both lean
on this.  The generator is intentionally adversarial-but-bounded: it
may overlap windows, crash several BlockServers at once, stall every QP
of a VD, and schedule degrade windows on top of crashes, but it never
crashes *all* BlockServers in one window (a fleet with zero serving BSs
is a different experiment, not a balancing one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.faults.plan import (
    DEGRADE_COMPONENTS,
    FaultEvent,
    FaultKind,
    FaultPlan,
    RedirectPolicy,
)
from repro.util.errors import ConfigError
from repro.util.rng import spawn_rng


@dataclass(frozen=True)
class PlanShape:
    """Entity counts a random plan draws its targets from."""

    num_block_servers: int
    num_storage_nodes: int
    num_queue_pairs: int
    duration_seconds: int

    def __post_init__(self) -> None:
        if min(
            self.num_block_servers,
            self.num_storage_nodes,
            self.num_queue_pairs,
            self.duration_seconds,
        ) <= 0:
            raise ConfigError("plan shape dimensions must be positive")

    @classmethod
    def of_fleet(cls, fleet, duration_seconds: int) -> "PlanShape":
        """The shape of a built :class:`repro.workload.fleet.Fleet`."""
        return cls(
            num_block_servers=fleet.config.num_block_servers,
            num_storage_nodes=fleet.config.num_storage_nodes,
            num_queue_pairs=len(fleet.queue_pairs),
            duration_seconds=duration_seconds,
        )


_KIND_WEIGHTS = (
    (FaultKind.BS_CRASH, 0.35),
    (FaultKind.CS_CRASH, 0.10),
    (FaultKind.QP_STALL, 0.25),
    (FaultKind.DEGRADE, 0.20),
    (FaultKind.MIGRATION_BLACKOUT, 0.10),
)


def _draw_window(
    rng: np.random.Generator, duration: int
) -> "tuple[int, int]":
    """A window inside [0, duration]; may touch the horizon end."""
    max_len = max(2, duration // 2)
    length = int(rng.integers(1, max_len + 1))
    start = int(rng.integers(0, duration))
    return start, min(start + length, duration)


def random_fault_plan(
    seed: int,
    shape: PlanShape,
    num_events: "Optional[int]" = None,
    policy: "Optional[RedirectPolicy]" = None,
    label: str = "fault-plan",
) -> FaultPlan:
    """Draw one plan; the same ``(seed, shape, ...)`` always returns it.

    ``num_events`` defaults to a draw in [1, 6]; ``policy`` defaults to a
    coin flip between ``redirect`` and ``queue``.
    """
    rng = spawn_rng(seed, f"{label}/{shape}")
    duration = shape.duration_seconds
    if num_events is None:
        num_events = int(rng.integers(1, 7))
    if num_events < 0:
        raise ConfigError("num_events must be non-negative")
    if policy is None:
        policy = (
            RedirectPolicy.REDIRECT
            if rng.random() < 0.5
            else RedirectPolicy.QUEUE
        )

    kinds = [kind for kind, _ in _KIND_WEIGHTS]
    weights = np.array([weight for _, weight in _KIND_WEIGHTS])
    weights = weights / weights.sum()

    events = []
    # Track per-window BS crashes so at least one BS always stays up.
    crashed_bs: set = set()
    for _ in range(num_events):
        kind = kinds[int(rng.choice(len(kinds), p=weights))]
        start, end = _draw_window(rng, duration)
        if kind is FaultKind.BS_CRASH:
            target = int(rng.integers(0, shape.num_block_servers))
            if len(crashed_bs | {target}) >= shape.num_block_servers:
                continue  # never take the whole fleet down
            crashed_bs.add(target)
            events.append(
                FaultEvent(kind=kind, start_s=start, end_s=end, target=target)
            )
        elif kind is FaultKind.CS_CRASH:
            if shape.num_storage_nodes < 2:
                continue
            target = int(rng.integers(0, shape.num_storage_nodes))
            per_node = shape.num_block_servers // shape.num_storage_nodes
            node_bs = set(
                range(target * per_node, (target + 1) * per_node)
            )
            if len(crashed_bs | node_bs) >= shape.num_block_servers:
                continue
            crashed_bs |= node_bs
            events.append(
                FaultEvent(kind=kind, start_s=start, end_s=end, target=target)
            )
        elif kind is FaultKind.QP_STALL:
            target = int(rng.integers(0, shape.num_queue_pairs))
            events.append(
                FaultEvent(kind=kind, start_s=start, end_s=end, target=target)
            )
        elif kind is FaultKind.DEGRADE:
            component = DEGRADE_COMPONENTS[
                int(rng.integers(0, len(DEGRADE_COMPONENTS)))
            ]
            multiplier = float(1.5 + 6.5 * rng.random())
            events.append(
                FaultEvent(
                    kind=kind,
                    start_s=start,
                    end_s=end,
                    component=component,
                    multiplier=multiplier,
                )
            )
        else:  # MIGRATION_BLACKOUT
            events.append(FaultEvent(kind=kind, start_s=start, end_s=end))

    return FaultPlan(
        events=tuple(events),
        policy=policy,
        retry_backoff_us=float(rng.integers(100, 2000)),
        max_redirect_attempts=int(rng.integers(1, 4)),
    )
