"""Deterministic fault plans: what fails, when, and how IOs are rerouted.

A :class:`FaultPlan` is a *schedule*, not a random process: every crash,
stall, degradation window and migration blackout is an explicit
:class:`FaultEvent` with a half-open ``[start_s, end_s)`` window.  The
same plan applied to the same seeded study always produces bit-identical
datasets, which is what lets the differential test harness pin the
scalar and vectorized simulator paths against each other under churn.

Five event kinds model the failure modes of the EBS stack (§2):

- ``bs_crash`` — one BlockServer serves nothing during the window;
- ``cs_crash`` — a storage node's ChunkServers fail, taking every
  BlockServer on that node down with them;
- ``qp_stall`` — one queue pair stops draining (an RDMA QP wedged
  mid-rebind, §4.3's failure case);
- ``degrade`` — a latency-degradation window: one stack component's
  sampled latency is multiplied by ``multiplier`` (brown-out, not
  black-out);
- ``migration_blackout`` — the inter-BS balancer must not migrate
  segments during the window (control-plane freeze).

What happens to IOs aimed at failed components is the plan-wide
:class:`RedirectPolicy`: ``redirect`` re-dispatches them to a replica
BlockServer (the next active BS in id order, up to
``max_redirect_attempts`` hops, each hop costing ``retry_backoff_us``),
while ``queue`` holds them at the failed component and drains them at
the first second after recovery.  IOs that cannot be placed either way
are *dropped* and accounted — never silently lost, never double-counted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from enum import Enum
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.util.errors import ConfigError

#: Latency components a ``degrade`` event may target (matches
#: :data:`repro.cluster.latency.LatencyModel.COMPONENTS`) plus ``all``.
DEGRADE_COMPONENTS = (
    "compute",
    "frontend",
    "block_server",
    "backend",
    "chunk_server",
    "all",
)


class FaultKind(str, Enum):
    """The failure modes a plan can schedule."""

    BS_CRASH = "bs_crash"
    CS_CRASH = "cs_crash"
    QP_STALL = "qp_stall"
    DEGRADE = "degrade"
    MIGRATION_BLACKOUT = "migration_blackout"


class RedirectPolicy(str, Enum):
    """What happens to IOs whose target is down."""

    REDIRECT = "redirect"  # re-dispatch to a replica BlockServer
    QUEUE = "queue"        # hold and drain at the first post-recovery second


#: Kinds that require an integer entity target.
_TARGETED_KINDS = (FaultKind.BS_CRASH, FaultKind.CS_CRASH, FaultKind.QP_STALL)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault with a half-open ``[start_s, end_s)`` window."""

    kind: FaultKind
    start_s: int
    end_s: int
    target: Optional[int] = None
    component: Optional[str] = None
    multiplier: float = 1.0
    #: Restrict the event to one data center (None applies everywhere).
    dc: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", FaultKind(self.kind))
        if self.start_s < 0:
            raise ConfigError(
                f"{self.kind.value}: start_s must be >= 0, got {self.start_s}"
            )
        if self.end_s <= self.start_s:
            raise ConfigError(
                f"{self.kind.value}: end_s ({self.end_s}) must exceed "
                f"start_s ({self.start_s})"
            )
        if self.kind in _TARGETED_KINDS:
            if self.target is None or self.target < 0:
                raise ConfigError(
                    f"{self.kind.value} events need a non-negative target id"
                )
        elif self.kind is FaultKind.MIGRATION_BLACKOUT:
            if self.target is not None:
                raise ConfigError("migration_blackout takes no target")
        if self.kind is FaultKind.DEGRADE:
            component = self.component if self.component is not None else "all"
            if component not in DEGRADE_COMPONENTS:
                raise ConfigError(
                    f"degrade component must be one of {DEGRADE_COMPONENTS}, "
                    f"got {component!r}"
                )
            object.__setattr__(self, "component", component)
            if self.multiplier < 1.0:
                raise ConfigError(
                    f"degrade multiplier must be >= 1, got {self.multiplier}"
                )
        elif self.component is not None:
            raise ConfigError(f"{self.kind.value} takes no component")

    @property
    def duration_s(self) -> int:
        return self.end_s - self.start_s

    def active_at(self, second: int) -> bool:
        return self.start_s <= second < self.end_s

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": self.kind.value,
            "start_s": self.start_s,
            "end_s": self.end_s,
        }
        if self.target is not None:
            out["target"] = self.target
        if self.kind is FaultKind.DEGRADE:
            out["component"] = self.component
            out["multiplier"] = self.multiplier
        if self.dc is not None:
            out["dc"] = self.dc
        return out

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultEvent":
        if not isinstance(payload, dict):
            raise ConfigError(
                f"fault event must be an object, got {type(payload).__name__}"
            )
        known = {
            "kind", "start_s", "end_s", "target", "component", "multiplier",
            "dc",
        }
        extra = set(payload) - known
        if extra:
            raise ConfigError(f"unknown fault event fields: {sorted(extra)}")
        try:
            kind = FaultKind(payload["kind"])
        except KeyError:
            raise ConfigError("fault event is missing 'kind'")
        except ValueError:
            raise ConfigError(
                f"unknown fault kind {payload['kind']!r}; known: "
                f"{[k.value for k in FaultKind]}"
            )
        for required in ("start_s", "end_s"):
            if required not in payload:
                raise ConfigError(f"fault event is missing {required!r}")
        return cls(
            kind=kind,
            start_s=int(payload["start_s"]),
            end_s=int(payload["end_s"]),
            target=(
                int(payload["target"]) if payload.get("target") is not None
                else None
            ),
            component=payload.get("component"),
            multiplier=float(payload.get("multiplier", 1.0)),
            dc=int(payload["dc"]) if payload.get("dc") is not None else None,
        )


def _event_sort_key(event: FaultEvent) -> Tuple:
    return (
        event.start_s,
        event.end_s,
        event.kind.value,
        -1 if event.target is None else event.target,
        event.component or "",
        -1 if event.dc is None else event.dc,
    )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults plus the redirect policy.

    Events are normalized to a canonical sort order at construction, so
    two plans with the same events in different order compare (and hash
    their JSON) identically — plan equality is semantic.
    """

    events: Tuple[FaultEvent, ...] = ()
    policy: RedirectPolicy = RedirectPolicy.REDIRECT
    #: Added per redirect hop to an IO's observed delay.
    retry_backoff_us: float = 500.0
    #: Replica hops tried before a redirected IO is dropped.
    max_redirect_attempts: int = 3

    def __post_init__(self) -> None:
        object.__setattr__(self, "policy", RedirectPolicy(self.policy))
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise ConfigError(
                    f"events must be FaultEvent, got {type(event).__name__}"
                )
        events = tuple(sorted(self.events, key=_event_sort_key))
        object.__setattr__(self, "events", events)
        if self.retry_backoff_us < 0:
            raise ConfigError("retry_backoff_us must be non-negative")
        if self.max_redirect_attempts < 1:
            raise ConfigError("max_redirect_attempts must be >= 1")

    # -- queries -------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self.events

    def __len__(self) -> int:
        return len(self.events)

    def events_of(self, *kinds: FaultKind) -> List[FaultEvent]:
        wanted = {FaultKind(kind) for kind in kinds}
        return [event for event in self.events if event.kind in wanted]

    def for_dc(self, dc_id: int) -> "FaultPlan":
        """The sub-plan that applies to one data center."""
        return replace(
            self,
            events=tuple(
                event for event in self.events
                if event.dc is None or event.dc == dc_id
            ),
        )

    def recovery_times(self) -> List[int]:
        """Sorted recovery (window-end) seconds of all crash/stall events.

        Monotone by construction — the invariant the property suite pins.
        """
        return sorted(
            event.end_s
            for event in self.events
            if event.kind in _TARGETED_KINDS
        )

    def horizon_s(self) -> int:
        """The last second any event is active (0 for an empty plan)."""
        return max((event.end_s for event in self.events), default=0)

    # -- (de)serialization ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "policy": self.policy.value,
            "retry_backoff_us": self.retry_backoff_us,
            "max_redirect_attempts": self.max_redirect_attempts,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise ConfigError(
                f"fault plan must be an object, got {type(payload).__name__}"
            )
        known = {
            "policy", "retry_backoff_us", "max_redirect_attempts", "events",
        }
        extra = set(payload) - known
        if extra:
            raise ConfigError(f"unknown fault plan fields: {sorted(extra)}")
        events = payload.get("events", [])
        if not isinstance(events, list):
            raise ConfigError("'events' must be a list")
        try:
            policy = RedirectPolicy(payload.get("policy", "redirect"))
        except ValueError:
            raise ConfigError(
                f"unknown redirect policy {payload.get('policy')!r}; known: "
                f"{[p.value for p in RedirectPolicy]}"
            )
        return cls(
            events=tuple(FaultEvent.from_dict(entry) for entry in events),
            policy=policy,
            retry_backoff_us=float(payload.get("retry_backoff_us", 500.0)),
            max_redirect_attempts=int(
                payload.get("max_redirect_attempts", 3)
            ),
        )

    def save(self, path: "str | Path") -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: "str | Path") -> "FaultPlan":
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            raise ConfigError(f"no such fault plan file: {path}")
        except json.JSONDecodeError as error:
            raise ConfigError(f"{path} is not valid JSON: {error}")
        return cls.from_dict(payload)


def merge_plans(plans: Iterable[FaultPlan]) -> FaultPlan:
    """Union of several plans' events; policy knobs come from the first."""
    plans = list(plans)
    if not plans:
        return FaultPlan()
    head = plans[0]
    events: List[FaultEvent] = []
    for plan in plans:
        events.extend(plan.events)
    return replace(head, events=tuple(events))
