"""Deterministic fault injection for the simulated EBS stack.

The subsystem splits into four layers:

- :mod:`repro.faults.plan` — the declarative schedule
  (:class:`FaultPlan` / :class:`FaultEvent`), JSON (de)serialization,
  and the redirect policy;
- :mod:`repro.faults.generate` — seed-stable random plans for sweeps
  and the differential harness;
- :mod:`repro.faults.timeline` — a plan compiled against one fleet:
  epoch masks, redirect maps, drain lookups, and the shared traffic
  adjustment both pass-1 implementations consume;
- :mod:`repro.faults.outcome` — failure-attributed results
  (:class:`FaultOutcome`) hanging off ``SimulationResult.faults``.
"""

from repro.faults.generate import PlanShape, random_fault_plan
from repro.faults.outcome import (
    FaultOutcome,
    FaultWindowStat,
    compute_window_stats,
)
from repro.faults.plan import (
    DEGRADE_COMPONENTS,
    FaultEvent,
    FaultKind,
    FaultPlan,
    RedirectPolicy,
    merge_plans,
)
from repro.faults.timeline import (
    FaultAccounting,
    FaultAdjustedInputs,
    FaultTimeline,
)

__all__ = [
    "DEGRADE_COMPONENTS",
    "FaultAccounting",
    "FaultAdjustedInputs",
    "FaultEvent",
    "FaultKind",
    "FaultOutcome",
    "FaultPlan",
    "FaultTimeline",
    "FaultWindowStat",
    "PlanShape",
    "RedirectPolicy",
    "compute_window_stats",
    "merge_plans",
    "random_fault_plan",
]
