"""Compiling a :class:`FaultPlan` against one fleet into fast lookups.

The simulator never walks the event list at IO time.  A
:class:`FaultTimeline` compiles the plan once into:

- **epochs** — maximal intervals over which the set of crashed
  BlockServers and stalled QPs is constant (cut at every crash/stall
  boundary), with per-epoch ``(entity, epoch)`` masks;
- a per-epoch **redirect map** (``redirect`` policy): for every down BS,
  the first serving BS within ``max_redirect_attempts`` id-order hops,
  or ``-1`` when the IO must be dropped;
- per-second **drain lookups** (``queue`` policy): for every down
  second, the first second the component serves again, or ``-1`` when
  it never recovers inside the horizon;
- per-second **latency multipliers** per stack component (``degrade``
  windows) and the **migration-blackout** mask for the balancer.

:meth:`FaultTimeline.adjust` then applies the storage/compute churn to
the stacked per-entity traffic series *once*, in plain elementwise
numpy, producing :class:`FaultAdjustedInputs` that both the scalar and
the vectorized pass 1 consume verbatim — which is how the two paths
stay bit-identical under any plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.faults.plan import (
    FaultEvent,
    FaultKind,
    FaultPlan,
    RedirectPolicy,
)
from repro.util.errors import ConfigError


@dataclass
class FaultAccounting:
    """Aggregate failure attribution over the metric-series domain.

    IO figures are per-second IOPS mass summed over affected cells (the
    same units pass 1 aggregates); byte figures likewise.  The
    conservation invariant — pinned by the property suite — is::

        delivered + dropped == offered        (per domain, to float eps)

    and no IO is ever both delivered and dropped.
    """

    # storage domain (segment -> BlockServer)
    offered_storage_ios: float = 0.0
    delivered_storage_ios: float = 0.0
    redirected_ios: float = 0.0
    retried_ios: float = 0.0          # redirect hops summed over IOs
    queued_ios: float = 0.0
    dropped_storage_ios: float = 0.0
    redirected_bytes: float = 0.0
    queued_bytes: float = 0.0
    dropped_storage_bytes: float = 0.0
    # compute domain (QP -> worker thread)
    offered_compute_ios: float = 0.0
    delivered_compute_ios: float = 0.0
    stalled_ios: float = 0.0          # IOs whose QP was stalled at issue
    dropped_compute_ios: float = 0.0

    def as_rows(self) -> List[List[object]]:
        """(metric, value) rows for report tables."""
        return [
            ["redirected_ios", round(self.redirected_ios, 1)],
            ["retried_ios", round(self.retried_ios, 1)],
            ["queued_ios", round(self.queued_ios, 1)],
            ["dropped_storage_ios", round(self.dropped_storage_ios, 1)],
            ["stalled_ios", round(self.stalled_ios, 1)],
            ["dropped_compute_ios", round(self.dropped_compute_ios, 1)],
        ]


@dataclass
class FaultAdjustedInputs:
    """Per-entity traffic series and targets after fault application.

    ``qp_*`` series are (num_qps, T); ``seg_*`` series are
    (num_segments, T).  ``seg_bs_ep[s, e]`` is the BlockServer serving
    segment ``s`` during epoch ``e`` (always a valid BS id — dropped
    traffic is zeroed in the series instead).  Both pass-1
    implementations consume these arrays read-only.
    """

    qp_rb: np.ndarray
    qp_wb: np.ndarray
    qp_ri: np.ndarray
    qp_wi: np.ndarray
    seg_rb: np.ndarray
    seg_wb: np.ndarray
    seg_ri: np.ndarray
    seg_wi: np.ndarray
    seg_bs_ep: np.ndarray       # (num_segments, num_epochs) int64
    epoch_index: np.ndarray     # (T,) int64
    accounting: FaultAccounting = field(default_factory=FaultAccounting)


class FaultTimeline:
    """A plan compiled against one fleet and simulation horizon."""

    def __init__(self, plan: FaultPlan, fleet, duration_seconds: int):
        if duration_seconds <= 0:
            raise ConfigError("duration_seconds must be positive")
        self.plan = plan
        self.fleet = fleet
        self.duration_seconds = int(duration_seconds)
        cfg = fleet.config
        self.num_bs = cfg.num_block_servers
        self.num_qps = len(fleet.queue_pairs)
        t = self.duration_seconds

        #: Events that overlap [0, T), with end clipped to T.
        self.events: List[FaultEvent] = []
        for event in plan.events:
            self._validate_target(event)
            if event.start_s >= t:
                continue
            self.events.append(event)

        # -- per-second masks ------------------------------------------------
        self._bs_down_sec = np.zeros((self.num_bs, t), dtype=bool)
        self._qp_stalled_sec = np.zeros((self.num_qps, t), dtype=bool)
        self.blackout_sec = np.zeros(t, dtype=bool)
        self._multipliers: Dict[str, np.ndarray] = {}
        boundaries = {0, t}
        for event in self.events:
            start, end = event.start_s, min(event.end_s, t)
            if event.kind is FaultKind.BS_CRASH:
                self._bs_down_sec[event.target, start:end] = True
                boundaries.update((start, end))
            elif event.kind is FaultKind.CS_CRASH:
                per_node = cfg.block_servers_per_node
                first = event.target * per_node
                self._bs_down_sec[first:first + per_node, start:end] = True
                boundaries.update((start, end))
            elif event.kind is FaultKind.QP_STALL:
                self._qp_stalled_sec[event.target, start:end] = True
                boundaries.update((start, end))
            elif event.kind is FaultKind.DEGRADE:
                targets = (
                    ("compute", "frontend", "block_server", "backend",
                     "chunk_server")
                    if event.component == "all"
                    else (event.component,)
                )
                for component in targets:
                    series = self._multipliers.setdefault(
                        component, np.ones(t)
                    )
                    series[start:end] *= event.multiplier
            else:  # MIGRATION_BLACKOUT
                self.blackout_sec[start:end] = True

        # -- epochs (constant crash/stall state within each) ------------------
        self.epoch_starts = np.array(sorted(boundaries), dtype=np.int64)
        #: epoch_index[second] -> epoch id
        self.epoch_index = (
            np.searchsorted(self.epoch_starts, np.arange(t), side="right") - 1
        ).astype(np.int64)
        self.num_epochs = len(self.epoch_starts) - 1
        starts = self.epoch_starts[:-1]
        self.bs_down_ep = self._bs_down_sec[:, starts]          # (bs, ep)
        self.qp_stalled_ep = self._qp_stalled_sec[:, starts]    # (qp, ep)

        # -- redirect map per epoch ------------------------------------------
        max_hops = min(plan.max_redirect_attempts, self.num_bs - 1)
        self.redirect_map = np.tile(
            np.arange(self.num_bs, dtype=np.int64)[:, None],
            (1, self.num_epochs),
        )
        self.redirect_attempts = np.zeros(
            (self.num_bs, self.num_epochs), dtype=np.int64
        )
        for epoch in range(self.num_epochs):
            down = self.bs_down_ep[:, epoch]
            if not down.any():
                continue
            for bs in np.nonzero(down)[0]:
                target, attempts = -1, max_hops
                for hop in range(1, max_hops + 1):
                    candidate = (bs + hop) % self.num_bs
                    if not down[candidate]:
                        target, attempts = int(candidate), hop
                        break
                self.redirect_map[bs, epoch] = target
                self.redirect_attempts[bs, epoch] = attempts

        self._bs_drain: Dict[int, np.ndarray] = {}
        self._qp_drain: Dict[int, np.ndarray] = {}

    # -- validation ----------------------------------------------------------

    def _validate_target(self, event: FaultEvent) -> None:
        cfg = self.fleet.config
        if event.kind is FaultKind.BS_CRASH and not (
            0 <= event.target < cfg.num_block_servers
        ):
            raise ConfigError(
                f"bs_crash target {event.target} out of range "
                f"[0, {cfg.num_block_servers})"
            )
        if event.kind is FaultKind.CS_CRASH and not (
            0 <= event.target < cfg.num_storage_nodes
        ):
            raise ConfigError(
                f"cs_crash target {event.target} out of range "
                f"[0, {cfg.num_storage_nodes})"
            )
        if event.kind is FaultKind.QP_STALL and not (
            0 <= event.target < self.num_qps
        ):
            raise ConfigError(
                f"qp_stall target {event.target} out of range "
                f"[0, {self.num_qps})"
            )

    # -- simple queries -------------------------------------------------------

    @property
    def has_churn(self) -> bool:
        """Whether any crash/stall affects the horizon (pass-1 relevant)."""
        return bool(self._bs_down_sec.any() or self._qp_stalled_sec.any())

    @property
    def has_degrade(self) -> bool:
        return bool(self._multipliers)

    @property
    def has_any_effect(self) -> bool:
        return bool(
            self.has_churn or self.has_degrade or self.blackout_sec.any()
        )

    def multiplier_series(self, component: str) -> Optional[np.ndarray]:
        """(T,) latency multiplier for a component; None when always 1."""
        return self._multipliers.get(component)

    def bs_down_at(self, bs_id: int, second: int) -> bool:
        return bool(self._bs_down_sec[bs_id, second])

    def qp_stalled_at(self, qp_id: int, second: int) -> bool:
        return bool(self._qp_stalled_sec[qp_id, second])

    def blackout_periods(self, period_seconds: int, num_periods: int) -> np.ndarray:
        """Per-period bool: any blackout second overlaps the period."""
        if period_seconds <= 0:
            raise ConfigError("period_seconds must be positive")
        out = np.zeros(num_periods, dtype=bool)
        for period in range(num_periods):
            lo = period * period_seconds
            hi = min(lo + period_seconds, self.duration_seconds)
            if lo < self.duration_seconds:
                out[period] = bool(self.blackout_sec[lo:hi].any())
        return out

    def bs_drain_seconds(self, bs_id: int) -> np.ndarray:
        """(T,) drain second per second for one BS (queue policy).

        ``drain[t]`` is ``t`` when the BS serves at ``t``; otherwise the
        first serving second after ``t`` (-1 if it never recovers).
        """
        if bs_id not in self._bs_drain:
            self._bs_drain[bs_id] = self._drain_of(self._bs_down_sec[bs_id])
        return self._bs_drain[bs_id]

    def qp_drain_seconds(self, qp_id: int) -> np.ndarray:
        """(T,) drain second per second for one QP (queue policy)."""
        if qp_id not in self._qp_drain:
            self._qp_drain[qp_id] = self._drain_of(
                self._qp_stalled_sec[qp_id]
            )
        return self._qp_drain[qp_id]

    @staticmethod
    def _drain_of(down: np.ndarray) -> np.ndarray:
        t = down.size
        drain = np.arange(t, dtype=np.int64)
        nxt = -1
        for second in range(t - 1, -1, -1):
            if not down[second]:
                nxt = second
            else:
                drain[second] = nxt
        return drain

    # -- carry-over state (streamed shard execution) --------------------------

    def epoch_cursor(self, second: int) -> int:
        """Epoch id active at ``second`` — the shard boundary cursor.

        The streaming engine records this per shard so a resumed worker
        re-enters the epoch grid at exactly the row a monolithic pass
        would be reading.
        """
        if not 0 <= second < self.duration_seconds:
            raise ConfigError(
                f"second {second} outside horizon "
                f"[0, {self.duration_seconds})"
            )
        return int(self.epoch_index[second])

    def save_state(self) -> "Dict[str, Dict[int, np.ndarray]]":
        """Snapshot the lazily-built drain-queue memo tables.

        Drain vectors are pure functions of the compiled timeline, but
        they are built on first use — a worker resuming mid-run would
        otherwise pay the O(T) backward scans again.  The snapshot
        copies each vector, so later memo growth can't alias it.
        """
        return {
            "bs_drain": {k: v.copy() for k, v in self._bs_drain.items()},
            "qp_drain": {k: v.copy() for k, v in self._qp_drain.items()},
        }

    def restore_state(self, state: "Dict[str, Dict[int, np.ndarray]]") -> None:
        """Restore a :meth:`save_state` snapshot (exact round-trip)."""
        for key in ("bs_drain", "qp_drain"):
            if key not in state:
                raise ConfigError(f"drain state missing {key!r}")
            for vector in state[key].values():
                if np.asarray(vector).shape != (self.duration_seconds,):
                    raise ConfigError(
                        f"{key} vector shape {np.asarray(vector).shape} != "
                        f"({self.duration_seconds},)"
                    )
        self._bs_drain = {
            int(k): np.asarray(v, dtype=np.int64).copy()
            for k, v in state["bs_drain"].items()
        }
        self._qp_drain = {
            int(k): np.asarray(v, dtype=np.int64).copy()
            for k, v in state["qp_drain"].items()
        }

    def failure_schedule(self) -> List["tuple[int, str, int, int]"]:
        """Chronological (second, action, kind_ordinal, target) bookkeeping.

        ``action`` is ``"fail"`` or ``"recover"``; used to replay crash
        windows onto the stateful cluster objects.
        """
        schedule: List[Tuple[int, str, int, int]] = []
        t = self.duration_seconds
        for event in self.events:
            if event.kind not in (FaultKind.BS_CRASH, FaultKind.CS_CRASH):
                continue
            schedule.append((event.start_s, "fail", 0, event.target))
            if event.end_s < t:
                schedule.append((event.end_s, "recover", 1, event.target))
        schedule.sort()
        return schedule

    # -- pass-2 (sampled trace) fault application ------------------------------

    def trace_compute_faults(
        self,
        vd,
        tr,
        frng: np.random.Generator,
        seconds: np.ndarray,
        qp_index: np.ndarray,
        is_write: np.ndarray,
    ) -> "tuple[np.ndarray, np.ndarray, Optional[np.ndarray], Dict[str, int]]":
        """Apply QP stalls to one VD's sampled IOs.

        Returns ``(seconds, qp_index, keep, stats)``; arrays are copied
        only when a stall actually touches this VD.  All randomness (the
        redirect-policy QP re-draw) comes from ``frng`` — a stream keyed
        by the VD id, so the base trace streams never shift and results
        stay identical for any worker partitioning.
        """
        stats = {"stall_redirected_ios": 0, "queued_ios": 0, "dropped_ios": 0}
        qp_ids = vd.first_qp_id + qp_index
        stalled = self._qp_stalled_sec[qp_ids, seconds]
        if not stalled.any():
            return seconds, qp_index, None, stats
        seconds = seconds.copy()
        qp_index = qp_index.copy()
        keep = np.ones(seconds.size, dtype=bool)
        idx = np.nonzero(stalled)[0]
        qids = np.arange(vd.first_qp_id, vd.first_qp_id + vd.num_queue_pairs)
        if self.plan.policy is RedirectPolicy.REDIRECT:
            eps = self.epoch_index[seconds[idx]]
            for epoch in np.unique(eps):  # ascending: deterministic draws
                sel = idx[eps == epoch]
                active_local = ~self.qp_stalled_ep[qids, epoch]
                if not active_local.any():
                    keep[sel] = False
                    stats["dropped_ios"] += int(sel.size)
                    continue
                active_indices = np.nonzero(active_local)[0]
                for op, weights in (
                    (False, tr.qp_read_weights),
                    (True, tr.qp_write_weights),
                ):
                    sub = sel[is_write[sel] == op]
                    if not sub.size:
                        continue
                    w = np.asarray(weights, dtype=np.float64)[active_local]
                    total = float(w.sum())
                    p = (
                        w / total
                        if total > 0.0
                        else np.full(w.size, 1.0 / w.size)
                    )
                    draws = frng.choice(w.size, size=sub.size, p=p)
                    qp_index[sub] = active_indices[draws]
                    stats["stall_redirected_ios"] += int(sub.size)
        else:  # QUEUE
            for qp in np.unique(qp_ids[idx]):
                sel = idx[qp_ids[idx] == qp]
                drains = self.qp_drain_seconds(int(qp))[seconds[sel]]
                bad = drains < 0
                seconds[sel[~bad]] = drains[~bad]
                keep[sel[bad]] = False
                stats["queued_ios"] += int((~bad).sum())
                stats["dropped_ios"] += int(bad.sum())
        return seconds, qp_index, keep, stats

    def trace_storage_faults(
        self,
        bs_ids: np.ndarray,
        seconds: np.ndarray,
        alive: "Optional[np.ndarray]" = None,
    ) -> "tuple[np.ndarray, np.ndarray, Optional[np.ndarray], Optional[np.ndarray], Dict[str, int]]":
        """Apply BS crashes to sampled IOs aimed at down BlockServers.

        Returns ``(bs_ids, seconds, keep, retries, stats)``.  ``alive``
        masks out IOs already dropped by the compute stage so no IO is
        double-dropped.  Redirection is deterministic (the per-epoch
        replica chain) — no randomness on the storage side.
        """
        stats = {
            "redirected_ios": 0, "retries": 0,
            "queued_ios": 0, "dropped_ios": 0,
        }
        down = self._bs_down_sec[bs_ids, seconds]
        if alive is not None:
            down &= alive
        if not down.any():
            return bs_ids, seconds, None, None, stats
        bs_ids = bs_ids.copy()
        seconds = seconds.copy()
        keep = np.ones(bs_ids.size, dtype=bool)
        retries: Optional[np.ndarray] = None
        idx = np.nonzero(down)[0]
        if self.plan.policy is RedirectPolicy.REDIRECT:
            retries = np.zeros(bs_ids.size, dtype=np.int64)
            eps = self.epoch_index[seconds[idx]]
            targets = self.redirect_map[bs_ids[idx], eps]
            attempts = self.redirect_attempts[bs_ids[idx], eps]
            ok = targets >= 0
            bs_ids[idx[ok]] = targets[ok]
            retries[idx[ok]] = attempts[ok]
            keep[idx[~ok]] = False
            stats["redirected_ios"] = int(ok.sum())
            stats["retries"] = int(attempts[ok].sum())
            stats["dropped_ios"] = int((~ok).sum())
        else:  # QUEUE
            for bs in np.unique(bs_ids[idx]):
                sel = idx[bs_ids[idx] == bs]
                drains = self.bs_drain_seconds(int(bs))[seconds[sel]]
                bad = drains < 0
                seconds[sel[~bad]] = drains[~bad]
                keep[sel[bad]] = False
                stats["queued_ios"] += int((~bad).sum())
                stats["dropped_ios"] += int(bad.sum())
        return bs_ids, seconds, keep, retries, stats

    # -- the traffic adjustment (shared by both pass-1 paths) -----------------

    def adjust(
        self,
        traffic,
        qp_to_wt: np.ndarray,
        seg_to_bs: np.ndarray,
        stacked_series: "Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]",
        stacked_weights: "Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]",
    ) -> FaultAdjustedInputs:
        """Apply crash/stall churn to the stacked per-entity series.

        ``stacked_series`` are the (num_vds, T) read/write byte/IOPS
        matrices; ``stacked_weights`` the per-entity weight vectors —
        exactly what :meth:`EBSSimulator._stacked_series` /
        ``_stacked_weights`` produce.  The multiplication into
        per-entity series uses the same elementwise operations as the
        fast pass, so unaffected entities keep bit-identical values.
        """
        fleet = self.fleet
        read_b, write_b, read_i, write_i = stacked_series
        qp_rw, qp_ww, seg_rw, seg_ww = stacked_weights
        ent_qp_vd = np.fromiter(
            (qp.vd_id for qp in fleet.queue_pairs), dtype=np.int64,
            count=self.num_qps,
        )

        # Per-entity base series (same operand order as the fast pass).
        qp_rb = read_b[ent_qp_vd] * qp_rw[:, None]
        qp_wb = write_b[ent_qp_vd] * qp_ww[:, None]
        qp_ri = read_i[ent_qp_vd] * qp_rw[:, None]
        qp_wi = write_i[ent_qp_vd] * qp_ww[:, None]
        ent_seg_vd = np.fromiter(
            (seg.vd_id for seg in fleet.segments), dtype=np.int64,
            count=len(fleet.segments),
        )
        seg_rb = read_b[ent_seg_vd] * seg_rw[:, None]
        seg_wb = write_b[ent_seg_vd] * seg_ww[:, None]
        seg_ri = read_i[ent_seg_vd] * seg_rw[:, None]
        seg_wi = write_i[ent_seg_vd] * seg_ww[:, None]

        acct = FaultAccounting(
            offered_compute_ios=float(qp_ri.sum() + qp_wi.sum()),
            offered_storage_ios=float(seg_ri.sum() + seg_wi.sum()),
        )

        by_vd = {tr.vd_id: tr for tr in traffic}
        self._adjust_stalls(
            by_vd, qp_rb, qp_wb, qp_ri, qp_wi,
            seg_rb, seg_wb, seg_ri, seg_wi, acct,
        )
        seg_bs_ep = self._adjust_crashes(
            seg_to_bs, seg_rb, seg_wb, seg_ri, seg_wi, acct
        )

        acct.delivered_compute_ios = float(qp_ri.sum() + qp_wi.sum())
        acct.delivered_storage_ios = float(seg_ri.sum() + seg_wi.sum())
        return FaultAdjustedInputs(
            qp_rb=qp_rb, qp_wb=qp_wb, qp_ri=qp_ri, qp_wi=qp_wi,
            seg_rb=seg_rb, seg_wb=seg_wb, seg_ri=seg_ri, seg_wi=seg_wi,
            seg_bs_ep=seg_bs_ep,
            epoch_index=self.epoch_index,
            accounting=acct,
        )

    # -- internals ------------------------------------------------------------

    def _adjust_stalls(
        self, by_vd, qp_rb, qp_wb, qp_ri, qp_wi,
        seg_rb, seg_wb, seg_ri, seg_wi, acct: FaultAccounting,
    ) -> None:
        """Compute-domain churn: redistribute / queue / drop stalled QPs."""
        fleet = self.fleet
        plan = self.plan
        for epoch in range(self.num_epochs):
            stalled = np.nonzero(self.qp_stalled_ep[:, epoch])[0]
            if not stalled.size:
                continue
            lo = int(self.epoch_starts[epoch])
            hi = int(self.epoch_starts[epoch + 1])
            sl = slice(lo, hi)
            vd_ids = sorted(
                {int(fleet.queue_pairs[qp].vd_id) for qp in stalled}
            )
            for vd_id in vd_ids:
                vd = fleet.vds[vd_id]
                tr = by_vd.get(vd_id)
                if tr is None:
                    continue
                qids = np.arange(
                    vd.first_qp_id, vd.first_qp_id + vd.num_queue_pairs
                )
                stall_local = self.qp_stalled_ep[qids, epoch]
                stalled_ids = qids[stall_local]
                active_ids = qids[~stall_local]
                stalled_mass = float(
                    qp_ri[stalled_ids, sl].sum()
                    + qp_wi[stalled_ids, sl].sum()
                )
                acct.stalled_ios += stalled_mass
                if plan.policy is RedirectPolicy.REDIRECT:
                    if active_ids.size:
                        self._redistribute_stall(
                            tr, vd, sl, stall_local,
                            qp_rb, qp_wb, qp_ri, qp_wi,
                        )
                    else:
                        # Every QP of the VD is stalled: nothing reaches
                        # the stack at all during the window.
                        acct.dropped_compute_ios += stalled_mass
                        self._drop_vd_storage(
                            vd, sl, 1.0, 1.0,
                            seg_rb, seg_wb, seg_ri, seg_wi, acct,
                        )
                        for arr in (qp_rb, qp_wb, qp_ri, qp_wi):
                            arr[stalled_ids, sl] = 0.0
                else:  # QUEUE
                    self._queue_stall(
                        tr, vd, sl, hi, stalled_ids,
                        qp_rb, qp_wb, qp_ri, qp_wi,
                        seg_rb, seg_wb, seg_ri, seg_wi, acct,
                    )

    def _redistribute_stall(
        self, tr, vd, sl, stall_local,
        qp_rb, qp_wb, qp_ri, qp_wi,
    ) -> None:
        """Redirect policy: stalled QPs' share moves to the active QPs.

        Each active QP's window series is recomputed directly as
        ``vd_series * renormalized_weight`` (the same operand order the
        base series used), so entities outside the window — and QPs of
        other VDs — keep bit-identical values.
        """
        qids = np.arange(vd.first_qp_id, vd.first_qp_id + vd.num_queue_pairs)
        active_local = ~stall_local
        num_active = int(active_local.sum())
        for weights, pairs in (
            (
                tr.qp_read_weights,
                ((qp_rb, tr.read_bytes), (qp_ri, tr.read_iops)),
            ),
            (
                tr.qp_write_weights,
                ((qp_wb, tr.write_bytes), (qp_wi, tr.write_iops)),
            ),
        ):
            active_sum = float(weights[active_local].sum())
            for index in range(vd.num_queue_pairs):
                qp = int(qids[index])
                if stall_local[index]:
                    for arr, _series in pairs:
                        arr[qp, sl] = 0.0
                    continue
                new_weight = (
                    float(weights[index]) / active_sum
                    if active_sum > 0.0
                    else 1.0 / num_active
                )
                for arr, series in pairs:
                    arr[qp, sl] = series[sl] * new_weight

    def _queue_stall(
        self, tr, vd, sl, epoch_end, stalled_ids,
        qp_rb, qp_wb, qp_ri, qp_wi,
        seg_rb, seg_wb, seg_ri, seg_wi, acct: FaultAccounting,
    ) -> None:
        """Queue policy: stalled traffic drains at the first unstalled second."""
        t = self.duration_seconds
        seg_ids = np.arange(
            vd.first_segment_id, vd.first_segment_id + vd.num_segments
        )
        for qp in stalled_ids:
            qp = int(qp)
            index = qp - vd.first_qp_id
            drain = (
                int(self.qp_drain_seconds(qp)[epoch_end - 1])
                if epoch_end - 1 < t
                else -1
            )
            held_r = float(tr.qp_read_weights[index])
            held_w = float(tr.qp_write_weights[index])
            moved_compute = 0.0
            for arr in (qp_rb, qp_wb, qp_ri, qp_wi):
                mass = float(arr[qp, sl].sum())
                if arr is qp_ri or arr is qp_wi:
                    moved_compute += mass
                if drain >= 0:
                    arr[qp, drain] += mass
                arr[qp, sl] = 0.0
            # The storage-side share held behind this QP moves (or drops)
            # with it, split over the VD's segments by their weights.
            for held, arrays in (
                (held_r, (seg_rb, seg_ri)),
                (held_w, (seg_wb, seg_wi)),
            ):
                if held <= 0.0:
                    continue
                for arr in arrays:
                    moved = arr[seg_ids, sl] * held
                    if drain >= 0:
                        arr[seg_ids, drain] += moved.sum(axis=1)
                    else:
                        if arr is seg_ri or arr is seg_wi:
                            acct.dropped_storage_ios += float(moved.sum())
                        else:
                            acct.dropped_storage_bytes += float(moved.sum())
                    arr[seg_ids, sl] = arr[seg_ids, sl] - moved
            if drain >= 0:
                acct.queued_ios += moved_compute
            else:
                acct.dropped_compute_ios += moved_compute

    def _drop_vd_storage(
        self, vd, sl, frac_r, frac_w,
        seg_rb, seg_wb, seg_ri, seg_wi, acct: FaultAccounting,
    ) -> None:
        seg_ids = np.arange(
            vd.first_segment_id, vd.first_segment_id + vd.num_segments
        )
        for frac, arrays in ((frac_r, (seg_rb, seg_ri)), (frac_w, (seg_wb, seg_wi))):
            if frac <= 0.0:
                continue
            for arr in arrays:
                dropped = arr[seg_ids, sl] * frac
                if arr is seg_ri or arr is seg_wi:
                    acct.dropped_storage_ios += float(dropped.sum())
                else:
                    acct.dropped_storage_bytes += float(dropped.sum())
                arr[seg_ids, sl] = arr[seg_ids, sl] - dropped

    def _adjust_crashes(
        self, seg_to_bs, seg_rb, seg_wb, seg_ri, seg_wi,
        acct: FaultAccounting,
    ) -> np.ndarray:
        """Storage-domain churn: redirect / queue / drop failed-BS traffic."""
        plan = self.plan
        t = self.duration_seconds
        seg_bs_ep = np.tile(
            np.asarray(seg_to_bs, dtype=np.int64)[:, None],
            (1, self.num_epochs),
        )
        if not self.bs_down_ep.any():
            return seg_bs_ep

        for epoch in range(self.num_epochs):
            down = self.bs_down_ep[:, epoch]
            if not down.any():
                continue
            lo = int(self.epoch_starts[epoch])
            hi = int(self.epoch_starts[epoch + 1])
            sl = slice(lo, hi)
            affected = np.nonzero(down[seg_to_bs])[0]
            for seg in affected:
                seg = int(seg)
                bs = int(seg_to_bs[seg])
                io_mass = float(
                    seg_ri[seg, sl].sum() + seg_wi[seg, sl].sum()
                )
                byte_mass = float(
                    seg_rb[seg, sl].sum() + seg_wb[seg, sl].sum()
                )
                if plan.policy is RedirectPolicy.REDIRECT:
                    target = int(self.redirect_map[bs, epoch])
                    if target >= 0:
                        seg_bs_ep[seg, epoch] = target
                        acct.redirected_ios += io_mass
                        acct.redirected_bytes += byte_mass
                        acct.retried_ios += io_mass * int(
                            self.redirect_attempts[bs, epoch]
                        )
                    else:
                        acct.dropped_storage_ios += io_mass
                        acct.dropped_storage_bytes += byte_mass
                        for arr in (seg_rb, seg_wb, seg_ri, seg_wi):
                            arr[seg, sl] = 0.0
                else:  # QUEUE
                    drain = (
                        int(self.bs_drain_seconds(bs)[hi - 1])
                        if hi - 1 < t
                        else -1
                    )
                    if drain >= 0:
                        for arr in (seg_rb, seg_wb, seg_ri, seg_wi):
                            arr[seg, drain] += float(arr[seg, sl].sum())
                            arr[seg, sl] = 0.0
                        acct.queued_ios += io_mass
                        acct.queued_bytes += byte_mass
                    else:
                        acct.dropped_storage_ios += io_mass
                        acct.dropped_storage_bytes += byte_mass
                        for arr in (seg_rb, seg_wb, seg_ri, seg_wi):
                            arr[seg, sl] = 0.0
        return seg_bs_ep
