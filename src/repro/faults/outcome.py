"""Failure-attributed results: what the faults did to one simulation.

A :class:`FaultOutcome` rides on :class:`SimulationResult.faults` (``None``
for failure-free runs, so every existing dataset and digest is untouched).
It carries three layers of attribution:

- the metric-domain :class:`~repro.faults.timeline.FaultAccounting`
  (per-second IOPS/byte mass redirected, queued, retried, or dropped by
  pass 1) and its conservation check;
- trace-domain counters from pass 2 (sampled IOs redirected / queued /
  dropped / latency-degraded, redirect retries, and the degraded-latency
  fraction);
- per-fault-window latency stats: for every scheduled event, the P99 of
  end-to-end sampled latency *inside* the window next to the all-run P99
  — the "what did this failure cost" column of the sensitivity sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.faults.plan import FaultPlan
from repro.faults.timeline import FaultAccounting

#: Keys of the pass-2 (trace-domain) counter dict; kept in one place so the
#: simulator, the merge, and the tests agree on the vocabulary.
TRACE_STAT_KEYS = (
    "total_ios",
    "redirected_ios",
    "retries",
    "queued_ios",
    "dropped_ios",
    "stall_redirected_ios",
    "degraded_ios",
)


def empty_trace_stats() -> Dict[str, int]:
    return {key: 0 for key in TRACE_STAT_KEYS}


def merge_trace_stats(
    into: Dict[str, int], other: Optional[Dict[str, int]]
) -> Dict[str, int]:
    """Accumulate one per-VD stat dict into the run-level aggregate."""
    if other:
        for key in TRACE_STAT_KEYS:
            into[key] += int(other.get(key, 0))
    return into


@dataclass(frozen=True)
class FaultWindowStat:
    """Latency attribution for one scheduled fault window."""

    kind: str
    start_s: int
    end_s: int
    target: Optional[int]
    component: Optional[str]
    ios_in_window: int
    p99_in_window_us: float      # NaN when no IO falls inside the window
    p99_overall_us: float

    @property
    def p99_inflation(self) -> float:
        """In-window P99 / overall P99 (NaN when either is undefined)."""
        if self.p99_overall_us > 0 and self.p99_in_window_us == self.p99_in_window_us:
            return self.p99_in_window_us / self.p99_overall_us
        return float("nan")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "target": self.target,
            "component": self.component,
            "ios_in_window": self.ios_in_window,
            "p99_in_window_us": self.p99_in_window_us,
            "p99_overall_us": self.p99_overall_us,
        }


@dataclass
class FaultOutcome:
    """Everything one simulation knows about its injected faults."""

    plan: FaultPlan
    accounting: FaultAccounting = field(default_factory=FaultAccounting)
    trace_stats: Dict[str, int] = field(default_factory=empty_trace_stats)
    windows: List[FaultWindowStat] = field(default_factory=list)

    @property
    def degraded_latency_fraction(self) -> float:
        """Share of sampled IOs whose latency hit a degrade window."""
        total = self.trace_stats.get("total_ios", 0)
        if total <= 0:
            return 0.0
        return self.trace_stats.get("degraded_ios", 0) / total

    @property
    def dropped_fraction(self) -> float:
        """Share of offered metric-domain storage IOs that were dropped."""
        offered = self.accounting.offered_storage_ios
        if offered <= 0.0:
            return 0.0
        return self.accounting.dropped_storage_ios / offered

    def conservation_residual(self) -> "tuple[float, float]":
        """(storage, compute) |delivered + dropped - offered| residuals.

        Both are ~0 up to float accumulation error; the property suite
        asserts them against a relative tolerance.
        """
        acct = self.accounting
        storage = abs(
            acct.delivered_storage_ios
            + acct.dropped_storage_ios
            - acct.offered_storage_ios
        )
        compute = abs(
            acct.delivered_compute_ios
            + acct.dropped_compute_ios
            - acct.offered_compute_ios
        )
        return storage, compute

    def summary_rows(self) -> List[List[Any]]:
        """(metric, value) rows for report tables."""
        stats = self.trace_stats
        rows: List[List[Any]] = [
            ["fault_events", len(self.plan)],
            ["policy", self.plan.policy.value],
        ]
        rows.extend(self.accounting.as_rows())
        rows.extend(
            [
                ["trace_redirected_ios", stats["redirected_ios"]],
                ["trace_retries", stats["retries"]],
                ["trace_queued_ios", stats["queued_ios"]],
                ["trace_dropped_ios", stats["dropped_ios"]],
                ["degraded_latency_fraction",
                 round(self.degraded_latency_fraction, 4)],
            ]
        )
        return rows

    def to_dict(self) -> Dict[str, Any]:
        return {
            "plan": self.plan.to_dict(),
            "accounting": dict(self.accounting.__dict__),
            "trace_stats": dict(self.trace_stats),
            "windows": [window.to_dict() for window in self.windows],
        }


def compute_window_stats(plan: FaultPlan, traces) -> List[FaultWindowStat]:
    """Per-fault-window P99 of end-to-end sampled latency.

    ``traces`` is a :class:`repro.trace.dataset.TraceDataset`; end-to-end
    latency is the sum of the five per-component columns.  Windows with no
    sampled IO get a NaN P99 (rendered as ``-`` in tables).
    """
    if not len(plan):
        return []
    seconds = np.floor(np.asarray(traces.timestamp)).astype(np.int64)
    total_us = (
        np.asarray(traces.lat_compute_us)
        + np.asarray(traces.lat_frontend_us)
        + np.asarray(traces.lat_block_server_us)
        + np.asarray(traces.lat_backend_us)
        + np.asarray(traces.lat_chunk_server_us)
    )
    overall = (
        float(np.percentile(total_us, 99)) if total_us.size else float("nan")
    )
    windows: List[FaultWindowStat] = []
    for event in plan.events:
        mask = (seconds >= event.start_s) & (seconds < event.end_s)
        count = int(mask.sum())
        p99 = (
            float(np.percentile(total_us[mask], 99))
            if count
            else float("nan")
        )
        windows.append(
            FaultWindowStat(
                kind=event.kind.value,
                start_s=event.start_s,
                end_s=event.end_s,
                target=event.target,
                component=event.component,
                ios_in_window=count,
                p99_in_window_us=p99,
                p99_overall_us=overall,
            )
        )
    return windows
