"""Synthetic EBS workload: fleet hierarchy and skewed traffic generation.

The paper's datasets come from ~10k users / 60k VMs / 140k VDs of Alibaba
production traffic.  Offline we regenerate statistically similar traffic:

- :mod:`repro.workload.samplers` — heavy-tailed building blocks (Zipf,
  bounded Pareto, lognormal, skewed Dirichlet weights).
- :mod:`repro.workload.apps` — per-application traffic profiles for the six
  categories of Table 5 (BigData, WebApp, Middleware, FileSystem, Database,
  Docker), each with its own intensity tail, read/write mix, burstiness and
  LBA locality.
- :mod:`repro.workload.burst` — ON/OFF burst processes with diurnal
  modulation producing the paper's extreme peak-to-average ratios.
- :mod:`repro.workload.lba` — LBA-level access models with a persistent
  hottest block (§7) plus sequential and uniform background traffic.
- :mod:`repro.workload.fleet` — the user -> VM -> VD -> QP hierarchy with
  compute-node placement and segment -> BlockServer mapping.
- :mod:`repro.workload.generator` — per-VD second-granularity traffic
  series and per-IO draws (sizes, offsets, opcodes).
"""

from repro.workload.apps import (
    APPLICATION_PROFILES,
    ApplicationProfile,
    application_names,
    profile_for,
)
from repro.workload.burst import BurstConfig, OnOffBurstModel, diurnal_profile
from repro.workload.calibration import (
    CalibrationReport,
    CalibrationTargets,
    calibrate,
)
from repro.workload.fleet import (
    Fleet,
    FleetConfig,
    QueuePairInfo,
    SegmentInfo,
    VdInfo,
    VmInfo,
    build_fleet,
)
from repro.workload.generator import (
    VdTraffic,
    WorkloadGenerator,
)
from repro.workload.lba import HotspotLbaModel, LbaModelConfig
from repro.workload.samplers import (
    bounded_pareto,
    lognormal_heavy,
    skewed_weights,
    zipf_weights,
)

__all__ = [
    "APPLICATION_PROFILES",
    "ApplicationProfile",
    "application_names",
    "profile_for",
    "BurstConfig",
    "OnOffBurstModel",
    "diurnal_profile",
    "CalibrationReport",
    "CalibrationTargets",
    "calibrate",
    "Fleet",
    "FleetConfig",
    "QueuePairInfo",
    "SegmentInfo",
    "VdInfo",
    "VmInfo",
    "build_fleet",
    "VdTraffic",
    "WorkloadGenerator",
    "HotspotLbaModel",
    "LbaModelConfig",
    "bounded_pareto",
    "lognormal_heavy",
    "skewed_weights",
    "zipf_weights",
]
