"""Workload calibration report: does a generated fleet look like the paper's?

The synthetic generator substitutes for the Alibaba traces, so its output
must keep the paper's headline statistical shapes.  This module computes
those shapes for a generated fleet and checks them against target ranges —
the regression guard that keeps future generator changes honest, and a
diagnostic for users who re-tune the application profiles.

Checked shapes (each maps to a paper observation):

- write-dominant total traffic (Table 2);
- VM-level 20%-CCR far above uniform, for both directions (Table 3);
- read temporal skew (median per-VM P2A) at or above write (Observation 2);
- extreme VM-to-VD concentration (Fig 2(b), CoV_vm2vd ~ 0.97);
- hottest-block persistence: mean hot-fraction near the profile means (§7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.stats.skewness import ccr, normalized_cov, p2a
from repro.util.errors import ConfigError
from repro.workload.fleet import Fleet
from repro.workload.generator import VdTraffic


@dataclass(frozen=True)
class CalibrationTargets:
    """Acceptable ranges for the headline shapes."""

    min_write_to_read_ratio: float = 0.8
    min_vm_ccr20: float = 0.4
    min_read_p2a_ratio: float = 0.8   # median read P2A / write P2A
    min_vm2vd_cov: float = 0.5
    hot_fraction_band: "tuple[float, float]" = (0.1, 0.7)

    def __post_init__(self) -> None:
        if self.min_write_to_read_ratio <= 0:
            raise ConfigError("min_write_to_read_ratio must be positive")
        lo, hi = self.hot_fraction_band
        if not 0.0 <= lo < hi <= 1.0:
            raise ConfigError("hot_fraction_band must be a sub-interval of [0,1]")


@dataclass
class CalibrationReport:
    """Measured shapes plus pass/fail against the targets."""

    write_to_read_ratio: float
    vm_ccr20_read: float
    vm_ccr20_write: float
    read_p2a_median: float
    write_p2a_median: float
    vm2vd_cov_median: float
    hot_fraction_mean: float
    failures: List[str]

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [
            f"write/read traffic ratio : {self.write_to_read_ratio:.2f}",
            f"VM 20%-CCR read / write  : {self.vm_ccr20_read:.2f} / "
            f"{self.vm_ccr20_write:.2f}",
            f"median VM P2A read/write : {self.read_p2a_median:.1f} / "
            f"{self.write_p2a_median:.1f}",
            f"median CoV vm->vd        : {self.vm2vd_cov_median:.2f}",
            f"mean hot fraction        : {self.hot_fraction_mean:.2f}",
        ]
        if self.failures:
            lines.append("FAILURES:")
            lines.extend(f"  - {failure}" for failure in self.failures)
        else:
            lines.append("all calibration shapes hold")
        return "\n".join(lines)


def calibrate(
    fleet: Fleet,
    traffic: Sequence[VdTraffic],
    targets: CalibrationTargets = CalibrationTargets(),
) -> CalibrationReport:
    """Measure the fleet's headline shapes and check the targets."""
    if not traffic:
        raise ConfigError("traffic must be non-empty")

    vm_read: Dict[int, float] = {}
    vm_write: Dict[int, float] = {}
    duration = traffic[0].read_bytes.size
    vm_read_series: Dict[int, np.ndarray] = {}
    vm_write_series: Dict[int, np.ndarray] = {}
    vm_vd_read: Dict[int, List[float]] = {}
    hot_fractions: List[float] = []

    for vd_traffic in traffic:
        vm_id = fleet.vds[vd_traffic.vd_id].vm_id
        read_total = float(vd_traffic.read_bytes.sum())
        write_total = float(vd_traffic.write_bytes.sum())
        vm_read[vm_id] = vm_read.get(vm_id, 0.0) + read_total
        vm_write[vm_id] = vm_write.get(vm_id, 0.0) + write_total
        vm_read_series[vm_id] = (
            vm_read_series.get(vm_id, np.zeros(duration)) + vd_traffic.read_bytes
        )
        vm_write_series[vm_id] = (
            vm_write_series.get(vm_id, np.zeros(duration))
            + vd_traffic.write_bytes
        )
        vm_vd_read.setdefault(vm_id, []).append(read_total)
        hot_fractions.append(float(vd_traffic.hot_fraction_series.mean()))

    total_read = sum(vm_read.values())
    total_write = sum(vm_write.values())
    ratio = total_write / total_read if total_read > 0 else float("inf")

    ccr20_read = ccr(list(vm_read.values()), 0.2)
    ccr20_write = ccr(list(vm_write.values()), 0.2)
    read_p2a = float(
        np.median([p2a(s) for s in vm_read_series.values() if s.sum() > 0])
    )
    write_p2a = float(
        np.median([p2a(s) for s in vm_write_series.values() if s.sum() > 0])
    )
    vm2vd = float(
        np.median(
            [
                normalized_cov(values)
                for values in vm_vd_read.values()
                if len(values) > 1 and sum(values) > 0
            ]
        )
    )
    hot_mean = float(np.mean(hot_fractions))

    failures: List[str] = []
    if ratio < targets.min_write_to_read_ratio:
        failures.append(
            f"fleet is read-dominant (write/read={ratio:.2f} < "
            f"{targets.min_write_to_read_ratio})"
        )
    if ccr20_read < targets.min_vm_ccr20:
        failures.append(f"read VM CCR20 too flat ({ccr20_read:.2f})")
    if ccr20_write < targets.min_vm_ccr20:
        failures.append(f"write VM CCR20 too flat ({ccr20_write:.2f})")
    if write_p2a > 0 and read_p2a / write_p2a < targets.min_read_p2a_ratio:
        failures.append(
            f"read P2A not keeping up with write "
            f"({read_p2a:.1f} vs {write_p2a:.1f})"
        )
    if vm2vd < targets.min_vm2vd_cov:
        failures.append(f"VM->VD split too even (CoV {vm2vd:.2f})")
    lo, hi = targets.hot_fraction_band
    if not lo <= hot_mean <= hi:
        failures.append(
            f"hot fraction {hot_mean:.2f} outside [{lo}, {hi}]"
        )

    return CalibrationReport(
        write_to_read_ratio=ratio,
        vm_ccr20_read=ccr20_read,
        vm_ccr20_write=ccr20_write,
        read_p2a_median=read_p2a,
        write_p2a_median=write_p2a,
        vm2vd_cov_median=vm2vd,
        hot_fraction_mean=hot_mean,
        failures=failures,
    )
