"""LBA-level access models with a persistent hottest block (§7).

The paper finds each VD's IO concentrates on one "hottest block": a 64 MiB
block covering ~3% of the LBA can take ~18% of accesses, the hottest block is
write-dominant (Fig 6(c)), temporally persistent with a hot rate around 50%
(Fig 6(d)), and written mostly sequentially (which is why FIFO and LRU tie in
Fig 7(a)).  :class:`HotspotLbaModel` reproduces exactly those properties:

- a contiguous hot region placed at a page-aligned offset;
- per-IO mixture: hot (with a write bias) vs background (sequential run or
  uniform random);
- hot writes are a wrapping sequential cursor (log-structured append);
- the instantaneous hot fraction follows a mean-reverting AR(1) around its
  configured mean, producing a roughly Gaussian hot-rate distribution;
- Zipf-weighted background segment usage so segment-level CCR is skewed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ConfigError
from repro.util.units import KiB
from repro.workload.samplers import zipf_weights

PAGE_BYTES = 4 * KiB


@dataclass(frozen=True)
class LbaModelConfig:
    """Parameters of one VD's LBA access model."""

    capacity_bytes: int
    hot_block_bytes: int
    hot_access_fraction: float
    hot_write_bias: float
    sequential_fraction: float
    background_zipf_alpha: float = 0.9

    def __post_init__(self) -> None:
        if self.capacity_bytes < PAGE_BYTES:
            raise ConfigError(
                f"capacity ({self.capacity_bytes}) below one page"
            )
        if not PAGE_BYTES <= self.hot_block_bytes <= self.capacity_bytes:
            raise ConfigError(
                f"hot block ({self.hot_block_bytes}) must fit in the "
                f"capacity ({self.capacity_bytes}) and hold >= 1 page"
            )
        if not 0.0 < self.hot_access_fraction < 1.0:
            raise ConfigError("hot_access_fraction must be in (0, 1)")
        if not 0.0 <= self.hot_write_bias < 1.0:
            raise ConfigError("hot_write_bias must be in [0, 1)")
        if not 0.0 <= self.sequential_fraction <= 1.0:
            raise ConfigError("sequential_fraction must be in [0, 1]")
        if self.background_zipf_alpha < 0:
            raise ConfigError("background_zipf_alpha must be non-negative")


class HotspotLbaModel:
    """Stateful per-VD offset generator (page-aligned offsets in bytes)."""

    #: Share of hot writes that advance the log (the rest re-write the hot
    #: region's popular pages).  Appends plus popularity re-writes make
    #: FIFO and LRU behave near-identically on the hottest block (§7.3.1):
    #: neither policy can do better than holding the popular set.
    HOT_WRITE_APPEND_FRACTION = 0.4
    #: Share of non-sequential background IOs drawn from the stable
    #: popularity distribution rather than uniformly.
    BACKGROUND_POPULAR_FRACTION = 0.5
    #: Pages the append cursor advances per append (a multi-page write
    #: covers several 4 KiB pages); larger steps sweep the hot region in
    #: several passes per run instead of parking in one corner.
    APPEND_STEP_PAGES = 8

    def __init__(self, config: LbaModelConfig, rng: np.random.Generator):
        self.config = config
        total_pages = config.capacity_bytes // PAGE_BYTES
        hot_pages = max(1, config.hot_block_bytes // PAGE_BYTES)
        if hot_pages > total_pages:
            hot_pages = total_pages
        self._total_pages = int(total_pages)
        self._hot_pages = int(hot_pages)
        start_limit = max(1, total_pages - hot_pages + 1)
        self._hot_start_page = int(rng.integers(start_limit))
        self._hot_cursor = 0  # page offset within the hot block
        self._seq_cursor = int(rng.integers(total_pages))
        # Popularity rank -> page pseudo-permutations (multiplicative hash):
        # popular pages are stable over time, so even sampled traces
        # exhibit reuse on them.
        self._hot_hash_a = int(rng.integers(1, 1 << 30)) * 2 + 1
        self._hot_hash_b = int(rng.integers(self._hot_pages))
        self._bg_hash_a = int(rng.integers(1, 1 << 30)) * 2 + 1
        self._bg_hash_b = int(rng.integers(self._total_pages))

    def _popular_pages(
        self,
        rng: np.random.Generator,
        count: int,
        num_pages: int,
        hash_a: int,
        hash_b: int,
    ) -> np.ndarray:
        """Zipf(s~1) popularity page draws, stable across calls.

        Ranks are sampled log-uniformly (``rank = N^u``), the inverse CDF
        of a Zipf with exponent ~1: the hottest page carries only
        ``1/ln(N)`` of the mass, so reuse is spread over many pages — an
        adaptive cache collects them wherever they live while a static
        frozen window holds only its own slice.
        """
        ranks = np.floor(
            float(num_pages) ** rng.random(count)
        ).astype(np.int64)
        ranks = np.minimum(ranks, num_pages - 1)
        return (hash_a * ranks + hash_b) % num_pages

    def _popular_hot_pages(
        self, rng: np.random.Generator, count: int
    ) -> np.ndarray:
        """Stable popular pages scattered over the hot region.

        Pages accessed often enough to survive trace downsampling are what
        give FIFO/LRU their hits; scattering them over the whole hot
        region is what keeps a small static frozen window from catching
        them.
        """
        return self._popular_pages(
            rng, count, self._hot_pages, self._hot_hash_a, self._hot_hash_b
        )

    @property
    def hot_range_bytes(self) -> "tuple[int, int]":
        """The hot block as a half-open byte range [start, end)."""
        start = self._hot_start_page * PAGE_BYTES
        return start, start + self._hot_pages * PAGE_BYTES

    def hot_fraction_series(
        self, rng: np.random.Generator, total_seconds: int
    ) -> np.ndarray:
        """Per-second hot access fraction: AR(1) around the configured mean.

        Mean reversion keeps the hot block persistently warm while letting
        the instantaneous fraction wander, which is what yields a hot rate
        (share of windows hotter than the long-run average) centered near
        50% in Fig 6(d).
        """
        if total_seconds <= 0:
            raise ConfigError("total_seconds must be positive")
        mean = self.config.hot_access_fraction
        phi = 0.995
        noise_scale = mean * 0.35 * np.sqrt(1 - phi**2)
        series = np.empty(total_seconds)
        level = mean
        shocks = rng.normal(0.0, noise_scale, size=total_seconds)
        for t in range(total_seconds):
            level = mean + phi * (level - mean) + shocks[t]
            series[t] = level
        return np.clip(series, 0.0, 1.0)

    def hot_probability(self, is_write: np.ndarray, hot_fraction: float) -> np.ndarray:
        """Per-IO probability of landing in the hot block.

        Writes get a boost and reads a discount of ``hot_write_bias`` so the
        hot block ends up write-dominant even for read-heavy VDs.
        """
        is_write = np.asarray(is_write, dtype=bool)
        bias = self.config.hot_write_bias
        probs = np.where(
            is_write, hot_fraction * (1.0 + bias), hot_fraction * (1.0 - bias)
        )
        return np.clip(probs, 0.0, 1.0)

    def draw_offsets(
        self,
        rng: np.random.Generator,
        is_write: np.ndarray,
        hot_fraction: "float | None" = None,
    ) -> np.ndarray:
        """Page-aligned byte offsets for a batch of IOs.

        ``is_write`` is a boolean array, one entry per IO; ``hot_fraction``
        overrides the configured mean (callers pass the per-second value
        from :meth:`hot_fraction_series`).
        """
        is_write = np.asarray(is_write, dtype=bool)
        n = is_write.size
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        if hot_fraction is None:
            hot_fraction = self.config.hot_access_fraction
        in_hot = rng.random(n) < self.hot_probability(is_write, hot_fraction)
        pages = np.empty(n, dtype=np.int64)

        hot_write = in_hot & is_write
        hot_read = in_hot & ~is_write
        background = ~in_hot

        count = int(hot_write.sum())
        if count:
            # Mixture: log-structured appends (consecutive pages, wrapping)
            # and re-writes of the recent tail behind the cursor.
            append = rng.random(count) < self.HOT_WRITE_APPEND_FRACTION
            hw = np.empty(count, dtype=np.int64)
            rewrite_count = count - int(append.sum())
            if rewrite_count:
                hw[~append] = self._popular_hot_pages(rng, rewrite_count)
            append_count = int(append.sum())
            if append_count:
                step = self.APPEND_STEP_PAGES
                steps = self._hot_cursor + step * np.arange(append_count)
                hw[append] = steps % self._hot_pages
                self._hot_cursor = int(
                    (self._hot_cursor + step * append_count) % self._hot_pages
                )
            pages[hot_write] = self._hot_start_page + hw

        count = int(hot_read.sum())
        if count:
            # Reads follow the same popularity ranking as the re-writes.
            pages[hot_read] = self._hot_start_page + self._popular_hot_pages(
                rng, count
            )

        count = int(background.sum())
        if count:
            sequential = rng.random(count) < self.config.sequential_fraction
            bg = np.empty(count, dtype=np.int64)
            seq_count = int(sequential.sum())
            if seq_count:
                steps = self._seq_cursor + np.arange(seq_count)
                bg[sequential] = steps % self._total_pages
                self._seq_cursor = int(
                    (self._seq_cursor + seq_count) % self._total_pages
                )
            rand_count = count - seq_count
            if rand_count:
                popular = (
                    rng.random(rand_count) < self.BACKGROUND_POPULAR_FRACTION
                )
                rand_pages = np.empty(rand_count, dtype=np.int64)
                pop_count = int(popular.sum())
                if pop_count:
                    rand_pages[popular] = self._popular_pages(
                        rng, pop_count, self._total_pages,
                        self._bg_hash_a, self._bg_hash_b,
                    )
                uni_count = rand_count - pop_count
                if uni_count:
                    rand_pages[~popular] = rng.integers(
                        self._total_pages, size=uni_count
                    )
                bg[~sequential] = rand_pages
            pages[background] = bg

        return pages * PAGE_BYTES

    def segment_weights(
        self, segment_bytes: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Expected per-segment traffic shares (sums to 1).

        The hot block's share lands on the segment(s) it overlaps; the
        background share is Zipf-distributed over a random permutation of
        segments, giving the skewed segment CCR of Table 3 without drawing
        per-IO offsets.
        """
        if segment_bytes <= 0:
            raise ConfigError("segment_bytes must be positive")
        capacity = self._total_pages * PAGE_BYTES
        num_segments = max(1, -(-capacity // segment_bytes))  # ceil division
        weights = np.zeros(num_segments)

        hot_share = self.config.hot_access_fraction
        hot_start, hot_end = self.hot_range_bytes
        first_seg = hot_start // segment_bytes
        last_seg = (hot_end - 1) // segment_bytes
        for seg in range(first_seg, last_seg + 1):
            seg_lo = seg * segment_bytes
            seg_hi = seg_lo + segment_bytes
            overlap = min(hot_end, seg_hi) - max(hot_start, seg_lo)
            weights[seg] += hot_share * overlap / (hot_end - hot_start)

        background = zipf_weights(num_segments, self.config.background_zipf_alpha)
        weights += (1.0 - hot_share) * rng.permutation(background)
        return weights / weights.sum()
