"""Heavy-tailed sampling primitives used by the workload generator.

Cloud block-store traffic is heavy-tailed at every level the paper measures
(users own up to 59k VDs, 1% of VMs can carry 75% of reads).  These helpers
produce the tails: Zipf rank weights, bounded Pareto draws, heavy lognormal
draws, and skewed Dirichlet weight vectors.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ConfigError


def zipf_weights(n: int, alpha: float) -> np.ndarray:
    """Normalized Zipf weights ``w_k ∝ 1 / k^alpha`` for ranks 1..n.

    ``alpha = 0`` is uniform; larger alpha concentrates mass on low ranks.
    """
    if n <= 0:
        raise ConfigError(f"n must be positive, got {n}")
    if alpha < 0:
        raise ConfigError(f"alpha must be non-negative, got {alpha}")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks**-alpha
    return weights / weights.sum()


def bounded_pareto(
    rng: np.random.Generator,
    alpha: float,
    lower: float,
    upper: float,
    size: "int | None" = None,
) -> "float | np.ndarray":
    """Draw from a Pareto truncated to ``[lower, upper]`` via inverse CDF.

    Small ``alpha`` (< 1) gives an extremely heavy tail; the bound keeps
    single draws from dwarfing the whole fleet.
    """
    if alpha <= 0:
        raise ConfigError(f"alpha must be positive, got {alpha}")
    if not 0 < lower < upper:
        raise ConfigError(
            f"need 0 < lower < upper, got lower={lower} upper={upper}"
        )
    u = rng.random(size)
    la, ha = lower**alpha, upper**alpha
    return (-(u * (ha - la) - ha) / (ha * la)) ** (-1.0 / alpha)


def lognormal_heavy(
    rng: np.random.Generator,
    median: float,
    sigma: float,
    size: "int | None" = None,
) -> "float | np.ndarray":
    """Lognormal draws parameterized by their median and log-space sigma."""
    if median <= 0:
        raise ConfigError(f"median must be positive, got {median}")
    if sigma < 0:
        raise ConfigError(f"sigma must be non-negative, got {sigma}")
    return rng.lognormal(mean=np.log(median), sigma=sigma, size=size)


def skewed_weights(
    rng: np.random.Generator, n: int, concentration: float
) -> np.ndarray:
    """A random weight vector summing to 1 with tunable skew.

    Drawn from a symmetric Dirichlet: ``concentration`` >> 1 gives nearly
    uniform weights, << 1 concentrates almost all mass on one element —
    which is exactly how VM traffic concentrates on one VD/QP (§4.2).
    """
    if n <= 0:
        raise ConfigError(f"n must be positive, got {n}")
    if concentration <= 0:
        raise ConfigError(
            f"concentration must be positive, got {concentration}"
        )
    if n == 1:
        return np.ones(1)
    weights = rng.dirichlet(np.full(n, concentration))
    # Dirichlet can underflow to an all-zero vector for tiny concentrations;
    # fall back to a deterministic single-spike vector in that case.
    total = weights.sum()
    if not np.isfinite(total) or total <= 0:
        weights = np.zeros(n)
        weights[rng.integers(n)] = 1.0
        return weights
    return weights / total
