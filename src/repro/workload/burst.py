"""Temporal traffic models: ON/OFF bursts with diurnal modulation.

The paper's headline temporal statistic is the Peak-to-Average ratio (P2A):
the 50%ile P2A of per-VM read traffic reaches tens of thousands, meaning most
VMs are almost always idle and occasionally burst violently.  An ON/OFF
renewal process with heavy-tailed burst amplitude reproduces this: the duty
cycle sets how rare activity is, the amplitude tail sets how violent it is.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ConfigError
from repro.workload.samplers import bounded_pareto


@dataclass(frozen=True)
class BurstConfig:
    """Parameters of an ON/OFF burst process.

    ``duty_cycle``       — long-run fraction of time spent in the ON state.
    ``mean_on_seconds``  — mean duration of an ON episode (geometric).
    ``amplitude_alpha``  — Pareto tail index of the per-burst amplitude;
                           smaller means heavier bursts.
    ``amplitude_max``    — truncation of the amplitude distribution.
    ``base_fraction``    — OFF-state traffic level relative to the mean ON
                           amplitude (0 gives a strictly intermittent source).
    """

    duty_cycle: float = 0.2
    mean_on_seconds: float = 30.0
    amplitude_alpha: float = 1.2
    amplitude_max: float = 200.0
    base_fraction: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ConfigError(
                f"duty_cycle must be in (0, 1], got {self.duty_cycle}"
            )
        if self.mean_on_seconds < 1.0:
            raise ConfigError(
                f"mean_on_seconds must be >= 1, got {self.mean_on_seconds}"
            )
        if self.amplitude_alpha <= 0:
            raise ConfigError(
                f"amplitude_alpha must be positive, got {self.amplitude_alpha}"
            )
        if self.amplitude_max <= 1.0:
            raise ConfigError(
                f"amplitude_max must exceed 1, got {self.amplitude_max}"
            )
        if not 0.0 <= self.base_fraction <= 1.0:
            raise ConfigError(
                f"base_fraction must be in [0, 1], got {self.base_fraction}"
            )

    @property
    def mean_off_seconds(self) -> float:
        """Mean OFF duration implied by the duty cycle."""
        if self.duty_cycle >= 1.0:
            return 0.0
        return self.mean_on_seconds * (1.0 - self.duty_cycle) / self.duty_cycle


class OnOffBurstModel:
    """Generates per-second traffic multiplier series with mean ~1.

    Each ON episode carries a single amplitude drawn from a bounded Pareto,
    which gives episode-level (not just second-level) bursts — matching the
    sub-10ms to multi-minute burst durations observed in Fig 2(e)/(f).
    """

    def __init__(self, config: BurstConfig):
        self.config = config

    def series(self, rng: np.random.Generator, total_seconds: int) -> np.ndarray:
        """A multiplier series of length ``total_seconds``, normalized to mean 1
        (all-zero series are returned as-is)."""
        if total_seconds <= 0:
            raise ConfigError(
                f"total_seconds must be positive, got {total_seconds}"
            )
        cfg = self.config
        out = np.full(total_seconds, cfg.base_fraction, dtype=float)
        if cfg.duty_cycle >= 1.0:
            out[:] = 1.0
            return out
        # Start in ON with probability equal to the duty cycle.
        t = 0
        state_on = bool(rng.random() < cfg.duty_cycle)
        while t < total_seconds:
            if state_on:
                duration = 1 + rng.geometric(1.0 / cfg.mean_on_seconds)
                amplitude = float(
                    bounded_pareto(rng, cfg.amplitude_alpha, 1.0, cfg.amplitude_max)
                )
                out[t : t + duration] = amplitude
            else:
                mean_off = max(1.0, cfg.mean_off_seconds)
                duration = 1 + rng.geometric(1.0 / mean_off)
            t += duration
            state_on = not state_on
        mean = out.mean()
        if mean > 0:
            out /= mean
        return out


def diurnal_profile(
    total_seconds: int,
    peak_at_fraction: float = 0.5,
    amplitude: float = 0.3,
) -> np.ndarray:
    """A smooth day-shape multiplier (mean 1) over the observation window.

    The paper's 12-hour daytime window has a mild diurnal swing on top of
    which the bursts ride; ``amplitude`` = 0.3 means +/-30% around the mean.
    """
    if total_seconds <= 0:
        raise ConfigError(f"total_seconds must be positive, got {total_seconds}")
    if not 0.0 <= amplitude < 1.0:
        raise ConfigError(f"amplitude must be in [0, 1), got {amplitude}")
    if not 0.0 <= peak_at_fraction <= 1.0:
        raise ConfigError(
            f"peak_at_fraction must be in [0, 1], got {peak_at_fraction}"
        )
    phase = np.arange(total_seconds) / total_seconds - peak_at_fraction
    return 1.0 + amplitude * np.cos(2.0 * np.pi * phase)
