"""Per-VD traffic generation: second-granularity series and per-IO draws.

The generator works at VM granularity first — a VM's read and write
intensities are independent heavy-tailed draws from its application profile
(read heavier-tailed than write, reproducing Observation 2) — then splits
each VM's traffic over its VDs with a skewed Dirichlet (the paper's
CoV_vm2vd ~ 0.97), each VD's traffic over its QPs (CoV_vd2qp, writes more
skewed than reads), and each VD's traffic over its segments via the LBA
hotspot model.  Temporal structure comes from per-direction ON/OFF burst
processes riding a diurnal profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.obs.runtime import get_telemetry
from repro.util.errors import ConfigError
from repro.util.rng import RngFactory
from repro.util.units import MiB
from repro.workload.apps import APPLICATION_PROFILES, ApplicationProfile
from repro.workload.burst import OnOffBurstModel, diurnal_profile
from repro.workload.fleet import Fleet, VdInfo
from repro.workload.lba import HotspotLbaModel, LbaModelConfig, PAGE_BYTES
from repro.workload.samplers import lognormal_heavy, skewed_weights

_MIN_IO_BYTES = 512
_MAX_IO_BYTES = 4 * MiB


@dataclass
class VdTraffic:
    """Everything the simulator needs about one VD's offered load.

    Time series are bytes/s and IO/s at one-second granularity; weight
    vectors sum to 1 over the VD's QPs / segments per direction.
    """

    vd_id: int
    read_bytes: np.ndarray
    write_bytes: np.ndarray
    read_iops: np.ndarray
    write_iops: np.ndarray
    qp_read_weights: np.ndarray
    qp_write_weights: np.ndarray
    segment_read_weights: np.ndarray
    segment_write_weights: np.ndarray
    lba_model: HotspotLbaModel
    hot_fraction_series: np.ndarray
    mean_read_size_bytes: float
    mean_write_size_bytes: float

    @property
    def total_bytes(self) -> float:
        return float(self.read_bytes.sum() + self.write_bytes.sum())

    def ios_at(self, t: int) -> float:
        return float(self.read_iops[t] + self.write_iops[t])


class WorkloadGenerator:
    """Generates :class:`VdTraffic` for every VD of a fleet, deterministically.

    All VDs of one VM share the VM-level intensity draw, so per-VM skew
    statistics are meaningful.  Results are cached; ``generate_all`` is
    idempotent.
    """

    def __init__(
        self,
        fleet: Fleet,
        duration_seconds: int,
        rngs: RngFactory,
        diurnal_amplitude: float = 0.3,
    ):
        if duration_seconds <= 0:
            raise ConfigError(
                f"duration_seconds must be positive, got {duration_seconds}"
            )
        self.fleet = fleet
        self.duration_seconds = int(duration_seconds)
        self._rngs = rngs.child(f"workload/dc{fleet.config.dc_id}")
        self._diurnal = diurnal_profile(
            self.duration_seconds, amplitude=diurnal_amplitude
        )
        self._cache: Dict[int, VdTraffic] = {}
        self._vm_splits: Dict[int, "tuple[np.ndarray, np.ndarray, float, float]"] = {}

    # -- VM-level draws ------------------------------------------------------

    def _vm_split(self, vm_id: int) -> "tuple[np.ndarray, np.ndarray, float, float]":
        """(read weights over VDs, write weights, read bps, write bps)."""
        if vm_id in self._vm_splits:
            return self._vm_splits[vm_id]
        vm = self.fleet.vms[vm_id]
        profile = APPLICATION_PROFILES[vm.application]
        rng = self._rngs.get(f"vm/{vm_id}")
        vds = self.fleet.vds_of_vm(vm_id)
        write_bps = float(
            lognormal_heavy(rng, profile.intensity_median_bps, profile.intensity_sigma)
        )
        # The read draw has a heavier tail (sigma + extra); compensate the
        # median by the lognormal mean factor exp(sigma^2 / 2) difference so
        # the *mean* read/write ratio still matches the profile's
        # read_fraction — the fleet stays write-dominant in total (Table 2)
        # while reads stay more skewed (Observation 2).
        sigma_w = profile.intensity_sigma
        sigma_r = profile.intensity_sigma + profile.read_sigma_extra
        mix = max(profile.read_fraction / max(1e-9, 1.0 - profile.read_fraction), 1e-3)
        read_median = (
            profile.intensity_median_bps
            * mix
            * float(np.exp((sigma_w**2 - sigma_r**2) / 2.0))
        )
        read_bps = float(lognormal_heavy(rng, read_median, sigma_r))
        n = max(1, len(vds))
        # Read traffic concentrates on fewer VDs than write traffic (the
        # paper's WT-CoV and CoV_vm2vd are worse for reads), so the read
        # split uses a tighter Dirichlet.
        read_weights = skewed_weights(rng, n, profile.vd_concentration * 0.35)
        write_weights = skewed_weights(rng, n, profile.vd_concentration)
        result = (read_weights, write_weights, read_bps, write_bps)
        self._vm_splits[vm_id] = result
        return result

    # -- VD-level generation ---------------------------------------------------

    def _lba_model(
        self, vd: VdInfo, profile: ApplicationProfile, rng: np.random.Generator
    ) -> HotspotLbaModel:
        hot_bytes = min(
            max(profile.hot_block_mib * MiB, PAGE_BYTES), vd.capacity_bytes
        )
        config = LbaModelConfig(
            capacity_bytes=vd.capacity_bytes,
            hot_block_bytes=hot_bytes,
            hot_access_fraction=profile.hot_access_fraction,
            hot_write_bias=profile.hot_write_bias,
            sequential_fraction=profile.sequential_fraction,
        )
        return HotspotLbaModel(config, rng)

    def generate_vd(self, vd_id: int) -> VdTraffic:
        """Build (or return the cached) traffic description for one VD."""
        if vd_id in self._cache:
            return self._cache[vd_id]
        vd = self.fleet.vds[vd_id]
        profile = self.fleet.profile_of_vd(vd_id)
        rng = self._rngs.get(f"vd/{vd_id}")

        read_weights, write_weights, vm_read_bps, vm_write_bps = self._vm_split(
            vd.vm_id
        )
        siblings = self.fleet.vds_of_vm(vd.vm_id)
        index_in_vm = next(
            i for i, sib in enumerate(siblings) if sib.vd_id == vd_id
        )
        read_bps = vm_read_bps * float(read_weights[index_in_vm])
        write_bps = vm_write_bps * float(write_weights[index_in_vm])

        t = self.duration_seconds
        read_mult = OnOffBurstModel(profile.read_burst).series(rng, t)
        write_mult = OnOffBurstModel(profile.write_burst).series(rng, t)
        read_bytes = read_bps * read_mult * self._diurnal
        write_bytes = write_bps * write_mult * self._diurnal

        read_size = float(
            np.clip(
                lognormal_heavy(rng, *profile.read_size_bytes),
                _MIN_IO_BYTES,
                _MAX_IO_BYTES,
            )
        )
        write_size = float(
            np.clip(
                lognormal_heavy(rng, *profile.write_size_bytes),
                _MIN_IO_BYTES,
                _MAX_IO_BYTES,
            )
        )
        read_iops = read_bytes / read_size
        write_iops = write_bytes / write_size

        # Writes concentrate on fewer QPs than reads (§4.2: the blk-mq
        # "none" policy pins an IO thread to one queue; write threads are
        # fewer), so the write split uses a smaller concentration.
        nq = vd.num_queue_pairs
        qp_read = skewed_weights(rng, nq, profile.qp_concentration * 2.0)
        qp_write = skewed_weights(rng, nq, profile.qp_concentration)

        lba = self._lba_model(vd, profile, rng)
        seg_rng = self._rngs.get(f"vd/{vd_id}/segments")
        base_weights = lba.segment_weights(
            self.fleet.config.segment_bytes, seg_rng
        )
        seg_read, seg_write = _direction_segment_weights(
            base_weights, lba, self.fleet.config.segment_bytes, profile
        )
        if base_weights.size != vd.num_segments:
            raise ConfigError(
                f"segment weight count {base_weights.size} != "
                f"fleet segment count {vd.num_segments} for vd {vd_id}"
            )

        traffic = VdTraffic(
            vd_id=vd_id,
            read_bytes=read_bytes,
            write_bytes=write_bytes,
            read_iops=read_iops,
            write_iops=write_iops,
            qp_read_weights=qp_read,
            qp_write_weights=qp_write,
            segment_read_weights=seg_read,
            segment_write_weights=seg_write,
            lba_model=lba,
            hot_fraction_series=lba.hot_fraction_series(rng, t),
            mean_read_size_bytes=read_size,
            mean_write_size_bytes=write_size,
        )
        telemetry = get_telemetry()
        if telemetry.enabled:
            # First-build only (the cache write below makes repeat calls
            # no-ops), so draw counters stay exact per VD.  All values are
            # integers: counts and series lengths, never float traffic.
            dc = self.fleet.config.dc_id
            app = self.fleet.vms[vd.vm_id].application
            telemetry.counter("workload.vds_generated", dc=dc, app=app).inc()
            telemetry.counter(
                "workload.series_seconds", dc=dc, app=app
            ).inc(2 * t)  # one read + one write series per VD
            telemetry.counter(
                "workload.weight_draws", dc=dc, app=app
            ).inc(nq * 2 + base_weights.size * 2)
        self._cache[vd_id] = traffic
        return traffic

    def iter_batches(self, batch_size: int):
        """Yield ``(start_index, [VdTraffic, ...])`` batches in fleet order,
        releasing each batch's series from the cache before the next one.

        The out-of-core engine spills every yielded batch to its shard
        store, so nothing keeps a reference and peak residency stays at
        one batch of full-duration series.  Every draw comes from the
        same label-keyed streams :meth:`generate_vd` uses, so batched
        generation is bit-identical to :meth:`generate_all` for any
        ``batch_size``.
        """
        if batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {batch_size}")
        vds = self.fleet.vds
        for start in range(0, len(vds), batch_size):
            batch = [
                self.generate_vd(vd.vd_id)
                for vd in vds[start:start + batch_size]
            ]
            yield start, batch
            # Drop the series (the caller has spilled them); keep the
            # small per-VM split tuples so sibling VDs in later batches
            # reuse them without recomputation.
            for tr in batch:
                self._cache.pop(tr.vd_id, None)

    def generate_all(self) -> List[VdTraffic]:
        """Traffic for every VD in the fleet (cached)."""
        telemetry = get_telemetry()
        with telemetry.span(
            "workload.generate_all",
            dc=self.fleet.config.dc_id,
            vds=len(self.fleet.vds),
        ):
            traffic = [self.generate_vd(vd.vd_id) for vd in self.fleet.vds]
        return traffic


#: Segment-weight sharpening exponents per direction.  Reads hit specific
#: hot data and so concentrate on fewer segments than writes, which are
#: smeared by appends and garbage collection; this is what makes the
#: inter-BS read CoV exceed the write CoV (Fig 5(a)) while the balancer
#: only migrates on writes.
_READ_SEGMENT_SHARPEN = 2.0
_WRITE_SEGMENT_SHARPEN = 0.8


def _direction_segment_weights(
    base_weights: np.ndarray,
    lba: HotspotLbaModel,
    segment_bytes: int,
    profile: ApplicationProfile,
) -> "tuple[np.ndarray, np.ndarray]":
    """Split segment weights by direction.

    Reads are a sharpened (more concentrated) version of the base weights
    and writes a flattened one; the hot segment additionally gets a
    boosted share of writes and a discounted share of reads (Fig 6(c):
    hottest blocks are write-dominant).  Both vectors stay normalized.
    """
    read = base_weights**_READ_SEGMENT_SHARPEN
    write = base_weights**_WRITE_SEGMENT_SHARPEN
    read /= read.sum()
    write /= write.sum()
    hot_start, hot_end = lba.hot_range_bytes
    hot_seg = hot_start // segment_bytes
    bias = profile.hot_write_bias
    if hot_seg < base_weights.size and bias > 0:
        write[hot_seg] *= 1.0 + bias
        read[hot_seg] *= 1.0 - bias
    return read / read.sum(), write / write.sum()
