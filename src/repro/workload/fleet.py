"""The EBS entity hierarchy: users -> VMs -> VDs -> QPs, and segments -> BSs.

A :class:`Fleet` describes one data center (the paper's Table 3 compares
three DCs; each gets its own fleet built with its own config/seed):

- users own heavy-tailed numbers of VMs (the paper's largest tenant owns
  ~10k VMs), assigned via Zipf weights;
- VMs run one of the six application categories and are placed on compute
  nodes, a fraction of which are bare-metal (single-VM) nodes — the paper's
  Type I skewness source;
- VDs get a capacity from the category's menu, 1-8 queue pairs tied to the
  subscription size, and throughput/IOPS caps derived from capacity;
- each VD's address space is striped into fixed-size segments assigned
  round-robin (with a random start) across the BlockServers, so segments of
  one VD land on different BSs as the paper requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.trace.records import VdSpec, VmSpec
from repro.util.errors import ConfigError
from repro.util.rng import RngFactory
from repro.util.units import GiB, MiB
from repro.workload.apps import APPLICATION_PROFILES, ApplicationProfile
from repro.workload.samplers import zipf_weights


@dataclass(frozen=True)
class FleetConfig:
    """Sizing and skew knobs for one data center's fleet."""

    dc_id: int = 0
    num_users: int = 20
    num_vms: int = 60
    num_compute_nodes: int = 16
    workers_per_node: int = 4
    bare_metal_fraction: float = 0.15
    num_storage_nodes: int = 12
    block_servers_per_node: int = 1
    segment_bytes: int = 32 * GiB
    user_zipf_alpha: float = 1.4
    app_weights: "Dict[str, float] | None" = None

    def __post_init__(self) -> None:
        if self.num_users <= 0 or self.num_vms <= 0:
            raise ConfigError("num_users and num_vms must be positive")
        if self.num_compute_nodes <= 0 or self.num_storage_nodes <= 0:
            raise ConfigError("node counts must be positive")
        if self.workers_per_node <= 0 or self.block_servers_per_node <= 0:
            raise ConfigError("per-node worker/BS counts must be positive")
        if not 0.0 <= self.bare_metal_fraction <= 1.0:
            raise ConfigError("bare_metal_fraction must be in [0, 1]")
        if self.segment_bytes < MiB:
            raise ConfigError("segment_bytes must be at least 1 MiB")
        if self.user_zipf_alpha < 0:
            raise ConfigError("user_zipf_alpha must be non-negative")
        if self.app_weights is not None:
            unknown = set(self.app_weights) - set(APPLICATION_PROFILES)
            if unknown:
                raise ConfigError(f"unknown applications: {sorted(unknown)}")
            if not all(w >= 0 for w in self.app_weights.values()):
                raise ConfigError("app weights must be non-negative")
            if sum(self.app_weights.values()) <= 0:
                raise ConfigError("app weights must not all be zero")

    @property
    def num_block_servers(self) -> int:
        return self.num_storage_nodes * self.block_servers_per_node


@dataclass(frozen=True)
class VmInfo:
    vm_id: int
    user_id: int
    compute_node_id: int
    application: str


@dataclass(frozen=True)
class VdInfo:
    vd_id: int
    vm_id: int
    user_id: int
    capacity_bytes: int
    num_queue_pairs: int
    throughput_cap_bps: float
    iops_cap: float
    first_qp_id: int
    first_segment_id: int
    num_segments: int

    @property
    def qp_ids(self) -> "range":
        return range(self.first_qp_id, self.first_qp_id + self.num_queue_pairs)

    @property
    def segment_ids(self) -> "range":
        return range(
            self.first_segment_id, self.first_segment_id + self.num_segments
        )


@dataclass(frozen=True)
class QueuePairInfo:
    qp_id: int
    vd_id: int
    vm_id: int
    compute_node_id: int
    index_in_vd: int


@dataclass(frozen=True)
class SegmentInfo:
    segment_id: int
    vd_id: int
    index_in_vd: int
    block_server_id: int
    storage_node_id: int


def _caps_for_capacity(capacity_gib: int) -> Tuple[float, float]:
    """Throughput/IOPS caps from capacity, shaped like cloud tier tables."""
    throughput = min(120.0 + 0.5 * capacity_gib, 350.0) * MiB
    iops = min(1800.0 + 50.0 * capacity_gib, 50_000.0)
    return throughput, iops


def _queue_pairs_for_capacity(capacity_gib: int) -> int:
    """Bigger subscriptions come with more queue pairs (1..8)."""
    if capacity_gib <= 64:
        return 1
    if capacity_gib <= 256:
        return 2
    if capacity_gib <= 1024:
        return 4
    return 8


@dataclass
class _FleetIndexes:
    """Lazy grouping indexes over a built fleet.

    ``counts`` pins the entity list lengths the index was built from, so
    a fleet still under construction (``build_fleet`` appends in place)
    never serves a stale grouping: lookups rebuild when the lists grew.
    """

    counts: Tuple[int, int, int]
    vds_by_vm: Dict[int, List[VdInfo]]
    vms_by_node: Dict[int, List[VmInfo]]
    qps_by_node: Dict[int, List[QueuePairInfo]]


@dataclass
class Fleet:
    """The built hierarchy for one data center."""

    config: FleetConfig
    vms: List[VmInfo] = field(default_factory=list)
    vds: List[VdInfo] = field(default_factory=list)
    queue_pairs: List[QueuePairInfo] = field(default_factory=list)
    segments: List[SegmentInfo] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._indexes: Optional[_FleetIndexes] = None

    def __getstate__(self) -> dict:
        # The grouping index is derived state; shipping it to worker
        # processes would only bloat the pickled payload.
        state = dict(self.__dict__)
        state["_indexes"] = None
        return state

    def _grouped(self) -> _FleetIndexes:
        """Per-VM / per-node groupings, built once in list order.

        The entity lists are already sorted by id, so every grouped list
        preserves ascending id order — lookups are order-identical to
        the linear scans they replace, just O(group) instead of O(N).
        """
        counts = (len(self.vms), len(self.vds), len(self.queue_pairs))
        cached = self._indexes
        if cached is not None and cached.counts == counts:
            return cached
        vds_by_vm: Dict[int, List[VdInfo]] = {}
        for vd in self.vds:
            vds_by_vm.setdefault(vd.vm_id, []).append(vd)
        vms_by_node: Dict[int, List[VmInfo]] = {}
        for vm in self.vms:
            vms_by_node.setdefault(vm.compute_node_id, []).append(vm)
        qps_by_node: Dict[int, List[QueuePairInfo]] = {}
        for qp in self.queue_pairs:
            qps_by_node.setdefault(qp.compute_node_id, []).append(qp)
        built = _FleetIndexes(
            counts=counts,
            vds_by_vm=vds_by_vm,
            vms_by_node=vms_by_node,
            qps_by_node=qps_by_node,
        )
        self._indexes = built
        return built

    @property
    def num_users(self) -> int:
        return self.config.num_users

    @property
    def num_wts(self) -> int:
        return self.config.num_compute_nodes * self.config.workers_per_node

    def wt_ids_of_node(self, node_id: int) -> "range":
        per = self.config.workers_per_node
        return range(node_id * per, (node_id + 1) * per)

    def node_of_wt(self, wt_id: int) -> int:
        return wt_id // self.config.workers_per_node

    def vds_of_vm(self, vm_id: int) -> List[VdInfo]:
        return list(self._grouped().vds_by_vm.get(vm_id, ()))

    def vms_of_node(self, node_id: int) -> List[VmInfo]:
        return list(self._grouped().vms_by_node.get(node_id, ()))

    def qps_of_node(self, node_id: int) -> List[QueuePairInfo]:
        """All queue pairs attached to one compute node, by ascending id."""
        return list(self._grouped().qps_by_node.get(node_id, ()))

    def vm_spec(self, vm_id: int) -> VmSpec:
        vm = self.vms[vm_id]
        return VmSpec(
            vm_id=vm.vm_id,
            user_id=vm.user_id,
            compute_node_id=vm.compute_node_id,
            application=vm.application,
        )

    def vd_spec(self, vd_id: int) -> VdSpec:
        vd = self.vds[vd_id]
        return VdSpec(
            vd_id=vd.vd_id,
            vm_id=vd.vm_id,
            user_id=vd.user_id,
            capacity_bytes=vd.capacity_bytes,
            num_queue_pairs=vd.num_queue_pairs,
            throughput_cap_bps=vd.throughput_cap_bps,
            iops_cap=vd.iops_cap,
        )

    def profile_of_vd(self, vd_id: int) -> ApplicationProfile:
        vm = self.vms[self.vds[vd_id].vm_id]
        return APPLICATION_PROFILES[vm.application]


def build_fleet(config: FleetConfig, rngs: RngFactory) -> Fleet:
    """Build a fleet deterministically from the config and RNG factory."""
    rng = rngs.get(f"fleet/dc{config.dc_id}")
    fleet = Fleet(config=config)

    # --- applications and ownership ------------------------------------
    app_names = sorted(APPLICATION_PROFILES)
    if config.app_weights is not None:
        weights = np.array(
            [config.app_weights.get(name, 0.0) for name in app_names]
        )
    else:
        weights = np.array(
            [APPLICATION_PROFILES[name].population_weight for name in app_names]
        )
    weights = weights / weights.sum()

    user_weights = rng.permutation(
        zipf_weights(config.num_users, config.user_zipf_alpha)
    )
    vm_users = rng.choice(config.num_users, size=config.num_vms, p=user_weights)
    vm_apps = rng.choice(len(app_names), size=config.num_vms, p=weights)

    # --- placement: bare-metal nodes host exactly one VM ----------------
    num_bare = int(round(config.bare_metal_fraction * config.num_compute_nodes))
    num_bare = min(num_bare, config.num_vms, config.num_compute_nodes)
    node_order = rng.permutation(config.num_compute_nodes)
    bare_nodes = set(int(n) for n in node_order[:num_bare])
    shared_nodes = [int(n) for n in node_order[num_bare:]]
    if not shared_nodes and config.num_vms > num_bare:
        raise ConfigError(
            "no shared compute nodes left to host the remaining VMs; "
            "lower bare_metal_fraction or add nodes"
        )

    placements: List[int] = []
    bare_iter = iter(sorted(bare_nodes))
    for vm_index in range(config.num_vms):
        bare_node = next(bare_iter, None)
        if bare_node is not None:
            placements.append(bare_node)
        else:
            placements.append(int(rng.choice(shared_nodes)))

    next_qp = 0
    next_segment = 0
    next_vd = 0
    for vm_id in range(config.num_vms):
        app = app_names[int(vm_apps[vm_id])]
        profile = APPLICATION_PROFILES[app]
        fleet.vms.append(
            VmInfo(
                vm_id=vm_id,
                user_id=int(vm_users[vm_id]),
                compute_node_id=placements[vm_id],
                application=app,
            )
        )
        lo, hi = profile.vd_count_range
        # Geometric-ish preference for few VDs within the allowed range.
        span = hi - lo + 1
        vd_count = lo + int(min(rng.geometric(0.45) - 1, span - 1))
        for __ in range(vd_count):
            capacity_gib = int(rng.choice(profile.capacity_gib_choices))
            capacity_bytes = capacity_gib * GiB
            throughput_cap, iops_cap = _caps_for_capacity(capacity_gib)
            num_qps = _queue_pairs_for_capacity(capacity_gib)
            num_segments = max(
                1, -(-capacity_bytes // config.segment_bytes)
            )  # ceil
            fleet.vds.append(
                VdInfo(
                    vd_id=next_vd,
                    vm_id=vm_id,
                    user_id=int(vm_users[vm_id]),
                    capacity_bytes=capacity_bytes,
                    num_queue_pairs=num_qps,
                    throughput_cap_bps=throughput_cap,
                    iops_cap=iops_cap,
                    first_qp_id=next_qp,
                    first_segment_id=next_segment,
                    num_segments=num_segments,
                )
            )
            for index in range(num_qps):
                fleet.queue_pairs.append(
                    QueuePairInfo(
                        qp_id=next_qp + index,
                        vd_id=next_vd,
                        vm_id=vm_id,
                        compute_node_id=placements[vm_id],
                        index_in_vd=index,
                    )
                )
            # Segments round-robin over BlockServers from a random start so
            # one VD's segments land on distinct BSs.
            start_bs = int(rng.integers(config.num_block_servers))
            for index in range(num_segments):
                bs_id = (start_bs + index) % config.num_block_servers
                fleet.segments.append(
                    SegmentInfo(
                        segment_id=next_segment + index,
                        vd_id=next_vd,
                        index_in_vd=index,
                        block_server_id=bs_id,
                        storage_node_id=bs_id // config.block_servers_per_node,
                    )
                )
            next_qp += num_qps
            next_segment += num_segments
            next_vd += 1

    return fleet
