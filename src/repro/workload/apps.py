"""Per-application traffic profiles (the six categories of Table 5).

The paper infers each VM's application and finds skewness varies strongly by
category (Table 4): BigData carries the most traffic but is the least skewed;
Dockerized apps are the most skewed.  Each profile below fixes the knobs the
generator needs: how heavy the per-VM intensity tail is, the read/write mix,
burstiness of each direction, IO sizes, and LBA locality.

Intensities are in bytes/second of *mean* traffic while a VM is active; the
burst model redistributes that mean over time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.util.errors import ConfigError
from repro.util.units import KiB, MiB
from repro.workload.burst import BurstConfig


@dataclass(frozen=True)
class ApplicationProfile:
    """Generator parameters for one application category.

    ``population_weight``   — relative share of VMs running this category.
    ``intensity_median_bps``— median per-VM mean write throughput.
    ``intensity_sigma``     — lognormal sigma of per-VM intensity; larger
                              values give higher 1%-CCR for the category.
    ``read_sigma_extra``    — added to ``intensity_sigma`` for the read
                              direction (read skew exceeds write skew, Obs. 2).
    ``read_fraction``       — mean share of traffic that is read.
    ``read_burst``/``write_burst`` — temporal models per direction.
    ``read_size_bytes``/``write_size_bytes`` — (median, sigma) of IO size.
    ``vd_count_range``      — min/max VDs mounted per VM (inclusive).
    ``capacity_gib_choices``— VD capacity menu in GiB.
    ``vd_concentration``    — Dirichlet concentration of VM->VD traffic split
                              (small = one VD dominates, §4.2).
    ``qp_concentration``    — Dirichlet concentration of VD->QP traffic split.
    ``hot_block_mib``       — characteristic hottest-block size (§7).
    ``hot_access_fraction`` — share of a VD's IOs landing in its hottest block.
    ``hot_write_bias``      — extra write-fraction inside the hottest block
                              (hot blocks are write-dominant, Fig 6(c)).
    ``sequential_fraction`` — share of IOs that continue the previous offset.
    """

    name: str
    population_weight: float
    intensity_median_bps: float
    intensity_sigma: float
    read_sigma_extra: float
    read_fraction: float
    read_burst: BurstConfig
    write_burst: BurstConfig
    read_size_bytes: Tuple[int, float]
    write_size_bytes: Tuple[int, float]
    vd_count_range: Tuple[int, int]
    capacity_gib_choices: Tuple[int, ...]
    vd_concentration: float
    qp_concentration: float
    hot_block_mib: int
    hot_access_fraction: float
    hot_write_bias: float
    sequential_fraction: float

    def __post_init__(self) -> None:
        if self.population_weight <= 0:
            raise ConfigError(f"{self.name}: population_weight must be positive")
        if self.intensity_median_bps <= 0:
            raise ConfigError(f"{self.name}: intensity must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigError(f"{self.name}: read_fraction must be in [0, 1]")
        lo, hi = self.vd_count_range
        if not 1 <= lo <= hi:
            raise ConfigError(f"{self.name}: bad vd_count_range {self.vd_count_range}")
        if not 0.0 < self.hot_access_fraction < 1.0:
            raise ConfigError(
                f"{self.name}: hot_access_fraction must be in (0, 1)"
            )
        if not 0.0 <= self.sequential_fraction <= 1.0:
            raise ConfigError(
                f"{self.name}: sequential_fraction must be in [0, 1]"
            )


def _profiles() -> Dict[str, ApplicationProfile]:
    bigdata = ApplicationProfile(
        name="BigData",
        population_weight=0.12,
        intensity_median_bps=6.0 * MiB,
        intensity_sigma=1.1,  # broad base of busy VMs -> low CCR
        read_sigma_extra=0.2,
        read_fraction=0.45,
        read_burst=BurstConfig(
            duty_cycle=0.5, mean_on_seconds=120.0, amplitude_alpha=1.6,
            amplitude_max=40.0, base_fraction=0.1,
        ),
        write_burst=BurstConfig(
            duty_cycle=0.6, mean_on_seconds=180.0, amplitude_alpha=1.8,
            amplitude_max=25.0, base_fraction=0.15,
        ),
        read_size_bytes=(256 * KiB, 0.6),
        write_size_bytes=(256 * KiB, 0.5),
        vd_count_range=(2, 12),
        capacity_gib_choices=(128, 256, 512, 1024, 2048),
        vd_concentration=0.5,
        qp_concentration=0.8,
        hot_block_mib=1024,
        hot_access_fraction=0.25,
        hot_write_bias=0.15,
        sequential_fraction=0.7,
    )
    webapp = ApplicationProfile(
        name="WebApp",
        population_weight=0.30,
        intensity_median_bps=60.0 * KiB,
        intensity_sigma=1.9,
        read_sigma_extra=0.9,
        read_fraction=0.12,
        read_burst=BurstConfig(
            duty_cycle=0.03, mean_on_seconds=10.0, amplitude_alpha=0.9,
            amplitude_max=500.0, base_fraction=0.0,
        ),
        write_burst=BurstConfig(
            duty_cycle=0.3, mean_on_seconds=20.0, amplitude_alpha=1.4,
            amplitude_max=80.0, base_fraction=0.05,
        ),
        read_size_bytes=(16 * KiB, 0.8),
        write_size_bytes=(8 * KiB, 0.7),
        vd_count_range=(1, 3),
        capacity_gib_choices=(40, 64, 128),
        vd_concentration=0.15,
        qp_concentration=0.2,
        hot_block_mib=256,
        hot_access_fraction=0.4,
        hot_write_bias=0.3,
        sequential_fraction=0.2,
    )
    middleware = ApplicationProfile(
        name="Middleware",
        population_weight=0.18,
        intensity_median_bps=1.5 * MiB,
        intensity_sigma=1.7,
        read_sigma_extra=0.7,
        read_fraction=0.35,
        read_burst=BurstConfig(
            duty_cycle=0.08, mean_on_seconds=15.0, amplitude_alpha=1.0,
            amplitude_max=300.0, base_fraction=0.02,
        ),
        write_burst=BurstConfig(
            duty_cycle=0.45, mean_on_seconds=60.0, amplitude_alpha=1.5,
            amplitude_max=60.0, base_fraction=0.1,
        ),
        read_size_bytes=(64 * KiB, 0.7),
        write_size_bytes=(32 * KiB, 0.6),
        vd_count_range=(1, 6),
        capacity_gib_choices=(64, 128, 256, 512),
        vd_concentration=0.25,
        qp_concentration=0.3,
        hot_block_mib=512,
        hot_access_fraction=0.35,
        hot_write_bias=0.25,
        sequential_fraction=0.4,
    )
    filesystem = ApplicationProfile(
        name="FileSystem",
        population_weight=0.06,
        intensity_median_bps=150.0 * KiB,
        intensity_sigma=2.1,
        read_sigma_extra=0.4,
        read_fraction=0.65,
        read_burst=BurstConfig(
            duty_cycle=0.05, mean_on_seconds=60.0, amplitude_alpha=1.0,
            amplitude_max=400.0, base_fraction=0.0,
        ),
        write_burst=BurstConfig(
            duty_cycle=0.04, mean_on_seconds=45.0, amplitude_alpha=0.9,
            amplitude_max=400.0, base_fraction=0.0,
        ),
        read_size_bytes=(512 * KiB, 0.8),
        write_size_bytes=(512 * KiB, 0.8),
        vd_count_range=(1, 4),
        capacity_gib_choices=(256, 512, 1024, 4096),
        vd_concentration=0.2,
        qp_concentration=0.25,
        hot_block_mib=512,
        hot_access_fraction=0.3,
        hot_write_bias=0.1,
        sequential_fraction=0.85,
    )
    database = ApplicationProfile(
        name="Database",
        population_weight=0.22,
        intensity_median_bps=800.0 * KiB,
        intensity_sigma=1.9,
        read_sigma_extra=0.8,
        read_fraction=0.30,
        read_burst=BurstConfig(
            duty_cycle=0.06, mean_on_seconds=20.0, amplitude_alpha=0.9,
            amplitude_max=600.0, base_fraction=0.01,
        ),
        write_burst=BurstConfig(
            duty_cycle=0.55, mean_on_seconds=90.0, amplitude_alpha=1.4,
            amplitude_max=100.0, base_fraction=0.2,
        ),
        read_size_bytes=(16 * KiB, 0.7),
        write_size_bytes=(16 * KiB, 0.5),
        vd_count_range=(2, 8),
        capacity_gib_choices=(128, 256, 512, 1024),
        vd_concentration=0.2,
        qp_concentration=0.25,
        hot_block_mib=512,
        hot_access_fraction=0.45,
        hot_write_bias=0.35,
        sequential_fraction=0.3,
    )
    docker = ApplicationProfile(
        name="Docker",
        population_weight=0.12,
        intensity_median_bps=300.0 * KiB,
        intensity_sigma=2.4,  # heaviest tail -> highest 1%-CCR (Table 4)
        read_sigma_extra=1.0,
        read_fraction=0.40,
        read_burst=BurstConfig(
            duty_cycle=0.02, mean_on_seconds=8.0, amplitude_alpha=0.8,
            amplitude_max=1000.0, base_fraction=0.0,
        ),
        write_burst=BurstConfig(
            duty_cycle=0.15, mean_on_seconds=25.0, amplitude_alpha=1.1,
            amplitude_max=300.0, base_fraction=0.02,
        ),
        read_size_bytes=(64 * KiB, 0.9),
        write_size_bytes=(32 * KiB, 0.8),
        vd_count_range=(1, 5),
        capacity_gib_choices=(40, 64, 128, 256),
        vd_concentration=0.12,
        qp_concentration=0.15,
        hot_block_mib=256,
        hot_access_fraction=0.5,
        hot_write_bias=0.2,
        sequential_fraction=0.25,
    )
    return {
        profile.name: profile
        for profile in (bigdata, webapp, middleware, filesystem, database, docker)
    }


#: The six category profiles, keyed by name.
APPLICATION_PROFILES: Dict[str, ApplicationProfile] = _profiles()


def application_names() -> Tuple[str, ...]:
    """Category names in a stable order."""
    return tuple(sorted(APPLICATION_PROFILES))


def profile_for(name: str) -> ApplicationProfile:
    """Look up a category profile by name."""
    if name not in APPLICATION_PROFILES:
        raise ConfigError(
            f"unknown application {name!r}; known: {sorted(APPLICATION_PROFILES)}"
        )
    return APPLICATION_PROFILES[name]
