"""Traffic throttling in the hypervisor (§5).

Every VD carries a throughput cap and an IOPS cap; exceeding either queues
IOs in the hypervisor.  This package reproduces §5's measurements and the
"limited lending" mitigation (Algorithm 2):

- :mod:`repro.throttle.caps` — per-VD caps from the specification data, or
  calibrated against offered load (a subscription sized like a real user
  would size it);
- :mod:`repro.throttle.metrics` — throttle detection, Available Resource
  (AR) and the Resource Available Rate (RAR, Eq. 1), the write-to-read
  ratio under throttle (Fig 3(c)), and the theoretical Reduction Rate
  (Eq. 3);
- :mod:`repro.throttle.lending` — the Algorithm 2 limited-lending
  simulation and the lending-gain metric (Fig 3(f)/(g)).
"""

from repro.throttle.caps import CapSet, calibrated_caps, caps_from_specs
from repro.throttle.lending import (
    LendingConfig,
    LendingOutcome,
    lending_gain,
    simulate_lending,
)
from repro.throttle.predictive import (
    PredictiveLendingConfig,
    simulate_predictive_lending,
)
from repro.throttle.tokenbucket import (
    ShapedTraffic,
    TokenBucket,
    TokenBucketConfig,
    shape_vd_traffic,
)
from repro.throttle.metrics import (
    ThrottleGroup,
    build_node_groups,
    build_vm_groups,
    rar_during_throttle,
    reduction_rates,
    throttle_seconds,
    wr_ratio_under_throttle,
)

__all__ = [
    "CapSet",
    "calibrated_caps",
    "caps_from_specs",
    "LendingConfig",
    "LendingOutcome",
    "lending_gain",
    "simulate_lending",
    "PredictiveLendingConfig",
    "simulate_predictive_lending",
    "ShapedTraffic",
    "TokenBucket",
    "TokenBucketConfig",
    "shape_vd_traffic",
    "ThrottleGroup",
    "build_node_groups",
    "build_vm_groups",
    "rar_during_throttle",
    "reduction_rates",
    "throttle_seconds",
    "wr_ratio_under_throttle",
]
