"""Per-VD throughput and IOPS caps.

Caps can come from the specification data (the subscription tier the fleet
builder derived from capacity) or be *calibrated*: sized at a configurable
multiple of the VD's mean offered load, the way a tenant provisions a disk
for its workload.  Calibrated caps are what make the §5 experiments
meaningful on synthetic traffic — bursts overshoot the cap while the mean
stays comfortably below it, exactly the regime of Fig 3(a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.util.errors import ConfigError
from repro.util.rng import RngFactory
from repro.util.units import MiB
from repro.workload.fleet import Fleet
from repro.workload.generator import VdTraffic


@dataclass(frozen=True)
class CapSet:
    """Aligned arrays of per-VD caps, indexed by dense vd_id."""

    throughput_bps: np.ndarray
    iops: np.ndarray

    def __post_init__(self) -> None:
        if self.throughput_bps.shape != self.iops.shape:
            raise ConfigError("cap arrays must be aligned")
        if np.any(self.throughput_bps <= 0) or np.any(self.iops <= 0):
            raise ConfigError("caps must be positive")

    @property
    def num_vds(self) -> int:
        return int(self.throughput_bps.size)

    def for_vd(self, vd_id: int) -> "tuple[float, float]":
        return float(self.throughput_bps[vd_id]), float(self.iops[vd_id])


def caps_from_specs(fleet: Fleet) -> CapSet:
    """Caps straight from the fleet's subscription tiers."""
    return CapSet(
        throughput_bps=np.array(
            [vd.throughput_cap_bps for vd in fleet.vds], dtype=float
        ),
        iops=np.array([vd.iops_cap for vd in fleet.vds], dtype=float),
    )


def calibrated_caps(
    traffic: Sequence[VdTraffic],
    rngs: RngFactory,
    headroom_median: float = 4.0,
    headroom_sigma: float = 0.5,
    floor_bps: float = 16.0 * MiB,
    floor_iops: float = 500.0,
) -> CapSet:
    """Caps sized as a lognormal multiple of each VD's mean offered load.

    ``headroom_median`` = 4 means a typical tenant buys 4x their mean
    traffic — bursty VDs (P2A >> 4) still hit the cap regularly.  The
    floors model the smallest subscription tier: even a near-idle VD
    carries a real cap, which is exactly where the lendable headroom of
    §5 comes from.
    """
    if headroom_median <= 1.0:
        raise ConfigError("headroom_median must exceed 1")
    if headroom_sigma < 0:
        raise ConfigError("headroom_sigma must be non-negative")
    rng = rngs.get("throttle/caps")
    throughput: List[float] = []
    iops: List[float] = []
    for vd_traffic in traffic:
        mean_bps = float(
            (vd_traffic.read_bytes + vd_traffic.write_bytes).mean()
        )
        mean_iops = float(
            (vd_traffic.read_iops + vd_traffic.write_iops).mean()
        )
        h_tp = float(rng.lognormal(np.log(headroom_median), headroom_sigma))
        h_io = float(rng.lognormal(np.log(headroom_median), headroom_sigma))
        throughput.append(max(mean_bps * h_tp, floor_bps))
        iops.append(max(mean_iops * h_io, floor_iops))
    return CapSet(
        throughput_bps=np.asarray(throughput), iops=np.asarray(iops)
    )
