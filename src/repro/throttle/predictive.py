"""Prediction-guarded lending (§5.3's "practical lending" direction).

Plain limited lending can backfire: a member that lent capacity away may
burst into its reduced cap (the negative gains of Fig 3(f)/(g)).  The paper
argues a practical lender needs traffic prediction to size each member's
contribution.  This module implements that guard: before reclaiming
headroom from an unthrottled member, forecast its traffic over the rest of
the period and only reclaim capacity above the forecast (plus a safety
margin), so the lender should not hit its reduced cap unless the forecast
was wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

import numpy as np

from repro.prediction.base import Predictor
from repro.prediction.linear import LinearFitPredictor
from repro.throttle.lending import LendingConfig, LendingOutcome
from repro.throttle.metrics import ThrottleGroup, _check_resource
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class PredictiveLendingConfig:
    """Plain lending parameters plus the forecast guard."""

    base: LendingConfig = field(default_factory=LendingConfig)
    #: Safety margin multiplied onto each lender's forecast before
    #: computing its reclaimable headroom (1.0 = trust the forecast).
    forecast_margin: float = 1.25
    #: History (seconds) fed to each member's predictor.
    history_seconds: int = 120

    def __post_init__(self) -> None:
        if self.forecast_margin < 1.0:
            raise ConfigError("forecast_margin must be >= 1")
        if self.history_seconds < 4:
            raise ConfigError("history_seconds must be >= 4")


def simulate_predictive_lending(
    group: ThrottleGroup,
    resource: str,
    config: PredictiveLendingConfig = PredictiveLendingConfig(),
    predictor_factory: "Callable[[], Predictor]" = LinearFitPredictor,
) -> LendingOutcome:
    """Algorithm 2 with forecast-bounded reclamation.

    Identical control flow to :func:`repro.throttle.lending.simulate_lending`
    except that each unthrottled member's contribution is capped at
    ``cap - margin * forecast`` (never negative), so well-predicted lenders
    keep room for their own upcoming traffic.
    """
    _check_resource(resource)
    usage = group.usage(resource)
    base_caps = group.caps(resource).astype(float)
    num_members, duration = usage.shape
    lending = config.base

    without = int((usage >= base_caps[:, None]).sum())

    predictors: List[Predictor] = [
        predictor_factory() for __ in range(num_members)
    ]

    caps = base_caps.copy()
    lent_this_period = False
    throttled_with = 0
    for t in range(duration):
        if t % lending.period_seconds == 0:
            caps = base_caps.copy()
            lent_this_period = False
        over = usage[:, t] >= caps
        throttled_with += int(over.sum())
        if lent_this_period or not over.any():
            continue
        measured = np.minimum(usage[:, t], caps)
        ar = float(base_caps.sum() - measured.sum())
        if ar <= 0:
            lent_this_period = True
            continue

        # Forecast each potential lender's near-future traffic.
        start = max(0, t - config.history_seconds)
        forecasts = np.zeros(num_members)
        for member in range(num_members):
            history = usage[member, start : t + 1]
            predictors[member].fit(history)
            forecasts[member] = predictors[member].predict(history)

        # Reclaimable headroom: capacity above the margin-inflated forecast.
        guarded = np.clip(
            caps - config.forecast_margin * forecasts, 0.0, None
        )
        reclaim = np.where(~over, lending.lending_rate * guarded, 0.0)
        lendable = float(reclaim.sum())
        if lendable <= 0:
            lent_this_period = True
            continue
        overshoot = np.clip(usage[:, t] - caps, 0.0, None)
        overshoot_total = overshoot[over].sum()
        if overshoot_total > 0:
            boost = lendable * overshoot / overshoot_total
            boost = np.where(over, boost, 0.0)
        else:
            boost = np.where(over, lendable / max(1, over.sum()), 0.0)
        caps = caps + boost - reclaim
        caps = np.maximum(caps, 1e-9)
        lent_this_period = True

    return LendingOutcome(
        label=group.label,
        resource=resource,
        throttled_seconds_without=without,
        throttled_seconds_with=throttled_with,
    )
