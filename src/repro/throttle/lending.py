"""The limited-lending mechanism (§5.3, Algorithm 2) and its evaluation.

Lending runs in periods.  Caps start each period at their subscribed
values; at the first second of the period where some member is throttled,
the available resource ``AR(t) = sum(Cap) - sum(usage(t))`` is computed and
a ``p`` fraction of it is lent to the throttled members (split by their
overshoot), while the unthrottled members' caps shrink by ``p`` times their
individual headroom — total lent equals total reclaimed.  Adjusted caps
hold until the period ends, then reset ("Init {Cap_i}" in Algorithm 2).

The crucial realism, and the source of the negative gains in Fig 3(f)/(g):
a member that lent capacity away may burst later in the same period and hit
its *reduced* cap, throttling where it would not have throttled before.

Audit note — the lend step conserves cap mass exactly.  A suspected bug
was that returned tokens get double-counted when a lender is itself
throttled in the lend tick; the audit shows this cannot happen:

- A period lends at most once, and at that moment the caps still equal
  the subscribed caps, so every throttled member is clipped to its cap in
  ``measured`` and contributes *zero* to ``AR``.  ``AR`` is therefore
  exactly the summed headroom of the unthrottled members, and the total
  boost ``p * AR`` equals the total reclaimed mass ``p * headroom_i``
  summed over lenders — lent == reclaimed, token for token.
- The ``over`` / ``~over`` masks are complementary: a member throttled in
  the lend tick is a borrower, never a lender, even when its post-boost
  cap leaves it with positive headroom.  No member both receives and
  returns tokens in the same tick.
- The ``1e-9`` floor never binds: a lender's adjusted cap is
  ``(1 - p) * cap + p * usage > 0`` for any valid ``p``.

These invariants are pinned behaviorally by ``TestLendingConservation``
in ``tests/throttle/test_lending.py``; if a change creates or destroys
cap mass at the lend, those probes flip their throttle verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.throttle.metrics import ThrottleGroup, _check_resource
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class LendingConfig:
    """Parameters of the limited-lending simulation."""

    lending_rate: float = 0.8
    period_seconds: int = 60

    def __post_init__(self) -> None:
        if not 0.0 < self.lending_rate < 1.0:
            raise ConfigError(
                f"lending_rate must be in (0, 1), got {self.lending_rate}"
            )
        if self.period_seconds <= 0:
            raise ConfigError("period_seconds must be positive")


@dataclass(frozen=True)
class LendingOutcome:
    """Throttle durations with and without lending for one group."""

    label: str
    resource: str
    throttled_seconds_without: int
    throttled_seconds_with: int

    @property
    def gain(self) -> float:
        """Lending gain in (-1, 1); > 0 means lending reduced throttling."""
        return lending_gain(
            self.throttled_seconds_without, self.throttled_seconds_with
        )


def lending_gain(seconds_without: int, seconds_with: int) -> float:
    """(t_without - t_with) / (t_without + t_with); 0.0 if neither throttles."""
    if seconds_without < 0 or seconds_with < 0:
        raise ConfigError("throttle durations must be non-negative")
    total = seconds_without + seconds_with
    if total == 0:
        return 0.0
    return (seconds_without - seconds_with) / total


def simulate_lending(
    group: ThrottleGroup,
    resource: str,
    config: LendingConfig = LendingConfig(),
) -> LendingOutcome:
    """Replay Algorithm 2 over one group's traffic.

    Returns the group's total throttled member-seconds with and without
    lending.  The without-lending baseline uses the static caps.
    """
    _check_resource(resource)
    usage = group.usage(resource)
    base_caps = group.caps(resource).astype(float)
    num_members, duration = usage.shape

    without = int((usage >= base_caps[:, None]).sum())

    caps = base_caps.copy()
    lent_this_period = False
    throttled_with = 0
    for t in range(duration):
        if t % config.period_seconds == 0:
            caps = base_caps.copy()
            lent_this_period = False
        over = usage[:, t] >= caps
        throttled_with += int(over.sum())
        if lent_this_period or not over.any():
            continue
        # First throttle of this period: perform the lending adjustment.
        # AR is computed on *measured* traffic (clipped at the caps) like
        # the production hypervisor would observe it.
        measured = np.minimum(usage[:, t], caps)
        ar = float(base_caps.sum() - measured.sum())
        if ar <= 0:
            lent_this_period = True
            continue
        lendable = config.lending_rate * ar
        overshoot = np.clip(usage[:, t] - caps, 0.0, None)
        overshoot_total = overshoot[over].sum()
        if overshoot_total > 0:
            boost = lendable * overshoot / overshoot_total
        else:
            boost = np.where(over, lendable / max(1, over.sum()), 0.0)
        caps = caps + np.where(over, boost, 0.0)
        # Unthrottled members give up p x their individual headroom.
        headroom = np.clip(caps - usage[:, t], 0.0, None)
        caps = caps - np.where(~over, config.lending_rate * headroom, 0.0)
        caps = np.maximum(caps, 1e-9)
        lent_this_period = True

    return LendingOutcome(
        label=group.label,
        resource=resource,
        throttled_seconds_without=without,
        throttled_seconds_with=throttled_with,
    )
