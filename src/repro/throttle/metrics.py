"""Throttle detection and the §5 measurement metrics.

A :class:`ThrottleGroup` is the unit over which resources could be shared:
the VDs of one multi-VD VM, or the VMs of one tenant co-located on a
compute node (each VM then acts as one member).  All §5 statistics are
computed per group: throttled seconds, the Resource Available Rate (Eq. 1),
the write-to-read ratio at throttled seconds (Fig 3(c)), and the
theoretical Reduction Rate of throttle duration under lending (Eq. 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.stats.ratios import wr_ratio_arrays
from repro.throttle.caps import CapSet
from repro.util.errors import ConfigError
from repro.workload.fleet import Fleet
from repro.workload.generator import VdTraffic

_RESOURCES = ("throughput", "iops")


def _check_resource(resource: str) -> None:
    if resource not in _RESOURCES:
        raise ConfigError(
            f"resource must be one of {_RESOURCES}, got {resource!r}"
        )


@dataclass
class ThrottleGroup:
    """Aligned traffic/cap matrices for one lending group.

    Matrices are (num_members, duration); ``members`` are labels (vd or vm
    ids) used only for reporting.
    """

    label: str
    members: List[int]
    read_bytes: np.ndarray
    write_bytes: np.ndarray
    read_iops: np.ndarray
    write_iops: np.ndarray
    cap_bps: np.ndarray
    cap_iops: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.members)
        for name in ("read_bytes", "write_bytes", "read_iops", "write_iops"):
            matrix = getattr(self, name)
            if matrix.ndim != 2 or matrix.shape[0] != n:
                raise ConfigError(
                    f"{name} must be (num_members, duration), got {matrix.shape}"
                )
        if self.cap_bps.shape != (n,) or self.cap_iops.shape != (n,):
            raise ConfigError("cap arrays must have one entry per member")

    @property
    def num_members(self) -> int:
        return len(self.members)

    @property
    def duration(self) -> int:
        return int(self.read_bytes.shape[1])

    def usage(self, resource: str) -> np.ndarray:
        """(num_members, duration) usage of the capped resource."""
        _check_resource(resource)
        if resource == "throughput":
            return self.read_bytes + self.write_bytes
        return self.read_iops + self.write_iops

    def caps(self, resource: str) -> np.ndarray:
        _check_resource(resource)
        return self.cap_bps if resource == "throughput" else self.cap_iops

    def throttled(self, resource: str) -> np.ndarray:
        """Boolean (num_members, duration): usage at/over the member's cap."""
        return self.usage(resource) >= self.caps(resource)[:, None]

    def measured_usage(self, resource: str) -> np.ndarray:
        """Usage as the hypervisor *measures* it: clipped at the cap.

        The generator produces offered load, but a throttled VD's actual
        traffic never exceeds its cap — excess IOs queue.  All the §5
        availability statistics are computed on measured traffic, like
        the paper's metric data.
        """
        return np.minimum(self.usage(resource), self.caps(resource)[:, None])


def build_vm_groups(
    fleet: Fleet, traffic: Sequence[VdTraffic], caps: CapSet
) -> List[ThrottleGroup]:
    """One group per multi-VD VM (VMs with a single VD cannot lend)."""
    by_vm: Dict[int, List[VdTraffic]] = {}
    for vd_traffic in traffic:
        vm_id = fleet.vds[vd_traffic.vd_id].vm_id
        by_vm.setdefault(vm_id, []).append(vd_traffic)
    groups: List[ThrottleGroup] = []
    for vm_id, vd_traffics in sorted(by_vm.items()):
        if len(vd_traffics) < 2:
            continue
        vd_ids = [t.vd_id for t in vd_traffics]
        groups.append(
            ThrottleGroup(
                label=f"vm{vm_id}",
                members=vd_ids,
                read_bytes=np.stack([t.read_bytes for t in vd_traffics]),
                write_bytes=np.stack([t.write_bytes for t in vd_traffics]),
                read_iops=np.stack([t.read_iops for t in vd_traffics]),
                write_iops=np.stack([t.write_iops for t in vd_traffics]),
                cap_bps=caps.throughput_bps[vd_ids],
                cap_iops=caps.iops[vd_ids],
            )
        )
    return groups


def build_node_groups(
    fleet: Fleet, traffic: Sequence[VdTraffic], caps: CapSet
) -> List[ThrottleGroup]:
    """One group per (compute node, tenant) hosting >= 2 of the tenant's VMs.

    Each member is a whole VM: its VDs' traffic and caps are summed.
    """
    by_vm: Dict[int, List[VdTraffic]] = {}
    for vd_traffic in traffic:
        vm_id = fleet.vds[vd_traffic.vd_id].vm_id
        by_vm.setdefault(vm_id, []).append(vd_traffic)

    by_node_user: Dict["tuple[int, int]", List[int]] = {}
    for vm in fleet.vms:
        key = (vm.compute_node_id, vm.user_id)
        by_node_user.setdefault(key, []).append(vm.vm_id)

    groups: List[ThrottleGroup] = []
    for (node_id, user_id), vm_ids in sorted(by_node_user.items()):
        vm_ids = [vm for vm in vm_ids if vm in by_vm]
        if len(vm_ids) < 2:
            continue
        read_b, write_b, read_i, write_i = [], [], [], []
        cap_b, cap_i = [], []
        for vm_id in vm_ids:
            vd_traffics = by_vm[vm_id]
            vd_ids = [t.vd_id for t in vd_traffics]
            read_b.append(sum(t.read_bytes for t in vd_traffics))
            write_b.append(sum(t.write_bytes for t in vd_traffics))
            read_i.append(sum(t.read_iops for t in vd_traffics))
            write_i.append(sum(t.write_iops for t in vd_traffics))
            cap_b.append(float(caps.throughput_bps[vd_ids].sum()))
            cap_i.append(float(caps.iops[vd_ids].sum()))
        groups.append(
            ThrottleGroup(
                label=f"node{node_id}/user{user_id}",
                members=vm_ids,
                read_bytes=np.stack(read_b),
                write_bytes=np.stack(write_b),
                read_iops=np.stack(read_i),
                write_iops=np.stack(write_i),
                cap_bps=np.asarray(cap_b),
                cap_iops=np.asarray(cap_i),
            )
        )
    return groups


# ---------------------------------------------------------------------------
# §5.1: throttled time and the Resource Available Rate
# ---------------------------------------------------------------------------

def throttle_seconds(group: ThrottleGroup, resource: str) -> int:
    """Total member-seconds spent at/over the cap."""
    return int(group.throttled(resource).sum())


def rar_during_throttle(
    group: ThrottleGroup, resource: str
) -> List[float]:
    """RAR(t) = (Cap - group(t)) / Cap at every throttled second (Eq. 1).

    Cap is the summed member cap; one sample per second where at least one
    member is throttled.  Negative availability clamps to 0.
    """
    throttled_any = group.throttled(resource).any(axis=0)
    if not throttled_any.any():
        return []
    cap_total = float(group.caps(resource).sum())
    usage_total = group.measured_usage(resource).sum(axis=0)
    rar = (cap_total - usage_total[throttled_any]) / cap_total
    return np.clip(rar, 0.0, 1.0).tolist()


# ---------------------------------------------------------------------------
# §5.2: write-to-read ratio at throttled seconds (Fig 3(c))
# ---------------------------------------------------------------------------

def wr_ratio_under_throttle(
    group: ThrottleGroup, resource: str
) -> List[float]:
    """wr_ratio of each member's traffic at each of its throttled seconds."""
    throttled = group.throttled(resource)
    if resource == "throughput":
        write, read = group.write_bytes, group.read_bytes
    else:
        write, read = group.write_iops, group.read_iops
    ratios: List[float] = []
    for member in range(group.num_members):
        mask = throttled[member]
        if mask.any():
            ratios.extend(
                wr_ratio_arrays(write[member][mask], read[member][mask]).tolist()
            )
    return ratios


# ---------------------------------------------------------------------------
# §5.3: theoretical Reduction Rate (Eq. 3, Fig 3(d)/(e))
# ---------------------------------------------------------------------------

def reduction_rates(
    group: ThrottleGroup, resource: str, lending_rate: float
) -> List[float]:
    """RR = VD(t) / (VD(t) + p*AR(t)) at each throttled (member, second).

    Lower is better: the lent capacity shortens the backlog drain time by
    this factor.  AR(t) is clamped at 0 when the group is fully saturated.
    """
    if not 0.0 < lending_rate < 1.0:
        raise ConfigError(f"lending rate must be in (0, 1), got {lending_rate}")
    throttled = group.throttled(resource)
    measured = group.measured_usage(resource)
    cap_total = float(group.caps(resource).sum())
    ar = np.clip(cap_total - measured.sum(axis=0), 0.0, None)
    rates: List[float] = []
    for member in range(group.num_members):
        mask = throttled[member]
        if not mask.any():
            continue
        vd_usage = measured[member][mask]
        lent = lending_rate * ar[mask]
        rates.extend((vd_usage / (vd_usage + lent + 1e-12)).tolist())
    return rates
