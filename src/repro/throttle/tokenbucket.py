"""Token-bucket enforcement of VD caps (§5's mechanism, not just its math).

The hypervisor enforces each VD's throughput and IOPS caps by queueing
excess IOs.  The §5 analyses clip offered traffic at the cap; this module
models the *mechanism*: a token bucket replenished at the cap rate with a
bounded burst allowance, producing the delivered traffic series, the
backlog, and the queueing delay — the latency spikes of the Calcspar
observation the paper cites (LSM stores hurt by IOPS throttling).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.runtime import get_telemetry
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class TokenBucketConfig:
    """Rate and burst allowance of one cap."""

    rate_per_second: float
    #: Bucket depth in seconds of rate: 1.0 allows a one-second burst at
    #: 2x the rate before queueing starts.
    burst_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.rate_per_second <= 0:
            raise ConfigError("rate_per_second must be positive")
        if self.burst_seconds < 0:
            raise ConfigError("burst_seconds must be non-negative")

    @property
    def depth(self) -> float:
        return self.rate_per_second * self.burst_seconds


@dataclass(frozen=True)
class TokenBucketState:
    """A bucket's carry-over state at a chunk boundary.

    Captured by :meth:`TokenBucket.save_state` and threaded across time
    shards by the streaming engine: restoring it and shaping the next
    chunk with ``fresh=False`` continues the exact token/backlog
    trajectory of an unchunked :meth:`TokenBucket.shape` call.
    """

    tokens: float
    backlog: float


@dataclass
class ShapedTraffic:
    """Result of shaping an offered series through a token bucket."""

    delivered: np.ndarray     # units/s actually served each second
    backlog: np.ndarray       # units queued at the end of each second
    #: bool: queueing occurred during this second — either work was still
    #: queued at the end of it, or a carried-in backlog drained within it
    #: (those IOs waited, so the second counts as throttled).
    throttled: np.ndarray

    @property
    def throttled_seconds(self) -> int:
        return int(self.throttled.sum())

    @property
    def max_backlog(self) -> float:
        return float(self.backlog.max()) if self.backlog.size else 0.0

    def queue_delay_seconds(self, rate_per_second: float) -> np.ndarray:
        """Per-second drain-time estimate of the queued work (Little-ish)."""
        if rate_per_second <= 0:
            raise ConfigError("rate_per_second must be positive")
        return self.backlog / rate_per_second


class TokenBucket:
    """Discrete-time token bucket over one-second steps."""

    def __init__(self, config: TokenBucketConfig):
        self.config = config
        self._tokens = config.depth
        self._backlog = 0.0

    @property
    def tokens(self) -> float:
        return self._tokens

    @property
    def backlog(self) -> float:
        return self._backlog

    def reset(self) -> None:
        """Restore the fresh-bucket state: full tokens, empty queue."""
        self._tokens = self.config.depth
        self._backlog = 0.0

    def save_state(self) -> TokenBucketState:
        """Snapshot the carry-over state (tokens + queued backlog)."""
        return TokenBucketState(tokens=self._tokens, backlog=self._backlog)

    def restore_state(self, state: TokenBucketState) -> None:
        """Restore a snapshot taken by :meth:`save_state`.

        Round-trips exactly: the floats are stored verbatim, so a
        save/restore at any chunk boundary cannot perturb the stream.
        """
        if state.tokens < 0 or state.backlog < 0:
            raise ConfigError("token-bucket state must be non-negative")
        if state.tokens > self.config.depth:
            raise ConfigError(
                f"restored tokens {state.tokens} exceed depth "
                f"{self.config.depth}"
            )
        self._tokens = float(state.tokens)
        self._backlog = float(state.backlog)

    def step(self, offered: float) -> "tuple[float, float]":
        """Advance one second; returns (delivered, backlog).

        Over a one-second step the bucket can serve at most
        ``burst depth + rate`` (the carried-over tokens plus this second's
        refill); leftover tokens carry over only up to the depth.
        """
        if offered < 0:
            raise ConfigError("offered traffic must be non-negative")
        cfg = self.config
        available = min(
            self._tokens + cfg.rate_per_second, cfg.depth + cfg.rate_per_second
        )
        demand = self._backlog + offered
        delivered = min(demand, available)
        self._tokens = min(available - delivered, cfg.depth)
        self._backlog = demand - delivered
        return delivered, self._backlog

    def shape(
        self, offered: np.ndarray, *, fresh: bool = True
    ) -> ShapedTraffic:
        """Shape a whole offered series (units/s, one entry per second).

        By default the bucket is :meth:`reset` first, so ``shape`` always
        describes a fresh bucket: calling it twice (or after
        :meth:`step`) yields the same result as on a new instance
        (regression: it used to silently continue from whatever
        token/backlog state was left behind).  The streaming engine
        passes ``fresh=False`` to continue from carried-over state when
        shaping a run chunk by chunk (see
        :func:`repro.engine.state.shape_streamed`).
        """
        offered = np.asarray(offered, dtype=float)
        if offered.ndim != 1:
            raise ConfigError("offered series must be 1-D")
        if np.any(offered < 0):
            raise ConfigError("offered traffic must be non-negative")
        if fresh:
            self.reset()
        delivered = np.empty_like(offered)
        backlog = np.empty_like(offered)
        throttled = np.empty(offered.size, dtype=bool)
        for t, value in enumerate(offered):
            carried_in = self._backlog > 1e-9
            delivered[t], backlog[t] = self.step(float(value))
            # A second is throttled if queueing occurred during it: work is
            # still queued at its end, or a carried-in backlog (whose IOs
            # waited into this second) drained within it.
            throttled[t] = carried_in or backlog[t] > 1e-9
        telemetry = get_telemetry()
        if telemetry.enabled:
            # Integer amounts accumulated from array totals, so the merged
            # fleet view is deterministic for any worker partitioning.
            telemetry.counter("throttle.shape_calls").inc()
            telemetry.counter("throttle.seconds_shaped").inc(
                int(offered.size)
            )
            telemetry.counter("throttle.throttled_seconds").inc(
                int(throttled.sum())
            )
        return ShapedTraffic(
            delivered=delivered, backlog=backlog, throttled=throttled
        )


def shape_vd_traffic(
    offered_bps: np.ndarray,
    cap_bps: float,
    burst_seconds: float = 1.0,
) -> ShapedTraffic:
    """Convenience wrapper: shape one VD's throughput series at its cap."""
    bucket = TokenBucket(
        TokenBucketConfig(rate_per_second=cap_bps, burst_seconds=burst_seconds)
    )
    return bucket.shape(offered_bps)
