"""The process-global telemetry handle threaded through the pipeline.

Hot layers fetch the current handle with :func:`get_telemetry` and record
through it; by default the handle is a shared **disabled** singleton
whose spans and metrics are no-ops (a handful of attribute reads per
*pass*, never per element — the disabled-mode overhead budget on the
perf benchmarks is <= 2%).  A run that wants telemetry installs an
enabled :class:`Telemetry` (usually via :func:`telemetry_session` or the
CLI's ``--telemetry PATH`` flag) for its duration.

Worker processes (``Study.build(workers=N)``, the pass-2 trace fan-out)
each install a fresh enabled handle, run their chunk, and ship a
:meth:`Telemetry.snapshot` back to the parent, which merges them with
:meth:`Telemetry.merge_snapshot`.  Metrics merge deterministically
(counters add, gauges max, histogram buckets add — all integer-valued by
convention), so the merged fleet view is byte-identical for any worker
count; spans merge by concatenation and carry their worker's pid.
"""

from __future__ import annotations

import json
import sys
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import Tracer

#: Version of the ``telemetry.json`` artifact layout.  Additive changes
#: (new keys, new metric names) do not bump this; breaking ones do.
TELEMETRY_SCHEMA_VERSION = 1


class _NullSpan:
    """Reusable no-op span: one shared instance serves every disabled call."""

    __slots__ = ()
    name = ""
    labels: Dict[str, Any] = {}

    def set(self, **labels: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class _NullCounter:
    __slots__ = ()
    value = 0

    def inc(self, amount: "int | float" = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    value = None

    def set(self, value: "int | float") -> None:
        pass

    def set_max(self, value: "int | float") -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: "int | float", count: int = 1) -> None:
        pass

    def observe_many(self, values: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


def peak_rss_bytes() -> Optional[int]:
    """Peak resident-set size of this process, or None if unavailable.

    Prefers ``/proc/self/status`` ``VmHWM`` where available: Linux's
    ``ru_maxrss`` survives ``execve()``, so a process spawned from a
    large parent would otherwise report the *parent's* high-water mark
    (which broke the streamed-vs-monolithic RSS comparison when driven
    from pytest).  ``VmHWM`` tracks the post-exec address space only.
    """
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024  # value is in kB
    except (OSError, ValueError, IndexError):  # pragma: no cover
        pass
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS reports bytes.
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


class Telemetry:
    """One run's observability state: a metrics registry plus a tracer.

    ``enabled=False`` yields a null object: every accessor returns a
    shared no-op, so instrumented code needs no branching (though hot
    call sites may still guard expensive *amount computations* behind
    ``if telemetry.enabled``).
    """

    def __init__(
        self,
        enabled: bool = True,
        sample_every: Optional[int] = None,
        sample_rate: Optional[float] = None,
        seed: int = 0,
    ):
        self.enabled = bool(enabled)
        self.registry = MetricsRegistry()
        self.tracer = Tracer(
            sample_every=sample_every, sample_rate=sample_rate, seed=seed
        )
        self.meta: Dict[str, Any] = {}
        self._sections: Dict[str, Any] = {}
        self._created_unix = time.time()

    # -- recording API (null-safe) -------------------------------------------

    def span(self, name: str, **labels: Any):
        if not self.enabled:
            return _NULL_SPAN
        return self.tracer.span(name, **labels)

    def counter(self, name: str, **labels: Any) -> "Counter | _NullCounter":
        if not self.enabled:
            return _NULL_COUNTER
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels: Any) -> "Gauge | _NullGauge":
        if not self.enabled:
            return _NULL_GAUGE
        return self.registry.gauge(name, **labels)

    def histogram(
        self, name: str, **labels: Any
    ) -> "Histogram | _NullHistogram":
        if not self.enabled:
            return _NULL_HISTOGRAM
        return self.registry.histogram(name, **labels)

    # -- extra artifact sections ---------------------------------------------

    def attach_section(self, name: str, payload: Any) -> None:
        """Attach a named artifact section (the ``recorder`` / ``slo`` slots).

        ``payload`` is either a JSON-able value or a zero-argument
        callable resolved at *snapshot time* — so a live ``/snapshot``
        serves the section's current state and the final ``write`` gets
        its terminal state, with one registration.
        """
        if name in ("schema_version", "meta", "metrics", "spans"):
            raise ValueError(f"section name {name!r} is reserved")
        self._sections[name] = payload

    # -- snapshot / merge / persist ------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The full telemetry artifact (the ``telemetry.json`` payload)."""
        payload = {
            "schema_version": TELEMETRY_SCHEMA_VERSION,
            "meta": dict(self.meta, created_unix=self._created_unix),
            "metrics": self.registry.snapshot(),
            "spans": self.tracer.snapshot(),
        }
        for name, section in self._sections.items():
            payload[name] = section() if callable(section) else section
        return payload

    def merge_snapshot(self, snapshot: Optional[Dict[str, Any]]) -> None:
        """Fold a worker's :meth:`snapshot` into this handle (None: no-op)."""
        if snapshot is None or not self.enabled:
            return
        self.registry.merge_snapshot(snapshot.get("metrics", {}))
        self.tracer.merge_snapshot(snapshot.get("spans", ()))

    def write(self, path: "str | Path") -> Path:
        """Write the artifact to ``path`` as pretty-printed JSON."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.snapshot(), indent=2) + "\n")
        return path

    # -- serving ---------------------------------------------------------------

    def serve(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        recorder=None,
        slo=None,
        health=None,
    ):
        """Start a scrape server for this handle; returns the ObsServer.

        A convenience over :class:`repro.obs.server.ObsServer` (imported
        lazily so the no-telemetry fast path never pays for http.server).
        The caller owns the returned server and must ``stop()`` it.
        """
        from repro.obs.server import ObsServer

        return ObsServer(
            self, host=host, port=port, recorder=recorder, slo=slo,
            health=health,
        ).start()


#: The shared disabled singleton installed by default.
_DISABLED = Telemetry(enabled=False)
_current: Telemetry = _DISABLED


def get_telemetry() -> Telemetry:
    """The currently installed telemetry handle (disabled by default)."""
    return _current


def set_telemetry(telemetry: Optional[Telemetry]) -> Telemetry:
    """Install ``telemetry`` (None: the disabled default); returns the old."""
    global _current
    previous = _current
    _current = telemetry if telemetry is not None else _DISABLED
    return previous


@contextmanager
def telemetry_session(
    enabled: bool = True,
    sample_every: Optional[int] = None,
    sample_rate: Optional[float] = None,
    seed: int = 0,
) -> Iterator[Telemetry]:
    """Install a fresh handle for the duration of a ``with`` block."""
    telemetry = Telemetry(
        enabled=enabled,
        sample_every=sample_every,
        sample_rate=sample_rate,
        seed=seed,
    )
    previous = set_telemetry(telemetry)
    try:
        yield telemetry
    finally:
        set_telemetry(previous)
