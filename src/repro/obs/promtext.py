"""Prometheus text exposition format: a strict in-repo parser + validator.

The scrape endpoint's output is a *contract* with external collectors,
so the repo carries its own checker instead of trusting the exporter:
:func:`validate_promtext` enforces the line grammar (metric names, label
escaping, float values), uniqueness of ``(name, labelset)`` series, and
the histogram invariants — ``le`` bucket upper bounds strictly
increasing, cumulative bucket counts monotone non-decreasing, a ``+Inf``
bucket present and equal to ``_count``, and ``_sum`` present.  CI runs
it against every mid-run ``/metrics`` scrape, and the exporter tests run
it against every :func:`repro.obs.export.export_prometheus` output.

:func:`parse_promtext` is the shared tokenizer; ``ebs-repro top`` uses
it to consume ``/metrics`` the way a real collector would.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.util.errors import ConfigError

_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_TYPE_RE = re.compile(rf"^# TYPE ({_NAME}) ([a-z]+)$")
_HELP_RE = re.compile(rf"^# HELP ({_NAME}) .*$")
_SAMPLE_RE = re.compile(
    rf"^(?P<name>{_NAME})"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)"
    r"(?: (?P<ts>-?[0-9]+))?$"
)
_LABEL_RE = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\\n]|\\["\\n])*)"\s*'
)


@dataclass(frozen=True)
class Sample:
    """One parsed sample line."""

    name: str
    labels: Tuple[Tuple[str, str], ...]
    value: float
    line: int

    @property
    def labels_dict(self) -> Dict[str, str]:
        return dict(self.labels)


def _parse_value(text: str) -> float:
    lowered = text.lower()
    if lowered in ("+inf", "inf"):
        return float("inf")
    if lowered == "-inf":
        return float("-inf")
    return float(text)  # 'nan' parses; garbage raises ValueError


def _unescape(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _parse_labels(body: str, line_no: int) -> Tuple[Tuple[str, str], ...]:
    """The ``k="v",...`` body between braces, strictly tokenized."""
    labels: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(body):
        match = _LABEL_RE.match(body, pos)
        if match is None:
            raise ConfigError(
                f"line {line_no}: malformed label at {body[pos:]!r}"
            )
        labels.append((match.group("key"), _unescape(match.group("value"))))
        pos = match.end()
        if pos < len(body):
            if body[pos] != ",":
                raise ConfigError(
                    f"line {line_no}: expected ',' between labels, got "
                    f"{body[pos:]!r}"
                )
            pos += 1
    keys = [k for k, _ in labels]
    if len(set(keys)) != len(keys):
        raise ConfigError(f"line {line_no}: duplicate label name in {body!r}")
    return tuple(labels)


def parse_promtext(text: str) -> List[Sample]:
    """Parse exposition text into samples; raises ConfigError on bad lines.

    Comment lines (``# TYPE`` / ``# HELP`` / ``# EOF``) are validated
    structurally and skipped; every other non-blank line must be a
    sample.
    """
    samples: List[Sample] = []
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if line == "# EOF":
                continue
            type_match = _TYPE_RE.match(line)
            if type_match:
                if type_match.group(2) not in _TYPES:
                    raise ConfigError(
                        f"line {line_no}: unknown metric type "
                        f"{type_match.group(2)!r}"
                    )
                continue
            if _HELP_RE.match(line):
                continue
            raise ConfigError(f"line {line_no}: malformed comment {line!r}")
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ConfigError(f"line {line_no}: malformed sample {line!r}")
        labels_body = match.group("labels")
        labels = (
            _parse_labels(labels_body, line_no) if labels_body else ()
        )
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            raise ConfigError(
                f"line {line_no}: bad sample value {match.group('value')!r}"
            )
        samples.append(
            Sample(
                name=match.group("name"),
                labels=labels,
                value=value,
                line=line_no,
            )
        )
    return samples


def _histogram_problems(samples: List[Sample]) -> List[str]:
    """Bucket monotonicity and ``_count`` / ``_sum`` consistency."""
    problems: List[str] = []
    buckets: Dict[Tuple[str, tuple], List[Tuple[float, float, int]]] = {}
    counts: Dict[Tuple[str, tuple], float] = {}
    sums: set = set()
    for sample in samples:
        if sample.name.endswith("_bucket"):
            base = sample.name[: -len("_bucket")]
            labels = dict(sample.labels)
            le_text = labels.pop("le", None)
            key = (base, tuple(sorted(labels.items())))
            if le_text is None:
                problems.append(
                    f"line {sample.line}: {sample.name} bucket without an "
                    "'le' label"
                )
                continue
            try:
                le = _parse_value(le_text)
            except ValueError:
                problems.append(
                    f"line {sample.line}: {sample.name} has unparseable "
                    f"le={le_text!r}"
                )
                continue
            buckets.setdefault(key, []).append((le, sample.value, sample.line))
        elif sample.name.endswith("_count"):
            key = (sample.name[: -len("_count")], tuple(sorted(sample.labels)))
            counts[key] = sample.value
        elif sample.name.endswith("_sum"):
            sums.add((sample.name[: -len("_sum")], tuple(sorted(sample.labels))))
    for (base, labels), series in buckets.items():
        ordered = sorted(series, key=lambda entry: entry[0])
        les = [entry[0] for entry in ordered]
        if len(set(les)) != len(les):
            problems.append(f"{base}: duplicate le bucket bounds {les}")
        values = [entry[1] for entry in ordered]
        if any(b < a for a, b in zip(values, values[1:])):
            problems.append(
                f"{base}: cumulative bucket counts not monotone: {values}"
            )
        if any(value < 0 for value in values):
            problems.append(f"{base}: negative bucket count in {values}")
        if not les or les[-1] != float("inf"):
            problems.append(f"{base}: missing le=\"+Inf\" bucket")
        else:
            inf_count = values[-1]
            declared = counts.get((base, labels))
            if declared is None:
                problems.append(f"{base}: histogram without a _count sample")
            elif declared != inf_count:
                problems.append(
                    f"{base}: _count {declared:g} != +Inf bucket "
                    f"{inf_count:g}"
                )
        if (base, labels) not in sums:
            problems.append(f"{base}: histogram without a _sum sample")
    return problems


def validate_promtext(text: str) -> List[str]:
    """Validate one exposition document; [] means valid.

    Checks the line grammar, duplicate ``(name, labels)`` series,
    negative ``_total`` counters, and every histogram's bucket/count/sum
    invariants.
    """
    try:
        samples = parse_promtext(text)
    except ConfigError as error:
        return [str(error)]
    problems: List[str] = []
    seen: Dict[Tuple[str, tuple], int] = {}
    for sample in samples:
        key = (sample.name, sample.labels)
        if key in seen:
            problems.append(
                f"line {sample.line}: duplicate series {sample.name} "
                f"(first at line {seen[key]})"
            )
        else:
            seen[key] = sample.line
        if sample.name.endswith("_total") and sample.value < 0:
            problems.append(
                f"line {sample.line}: counter {sample.name} is negative "
                f"({sample.value:g})"
            )
    problems.extend(_histogram_problems(samples))
    return problems
