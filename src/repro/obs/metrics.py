"""Metrics primitives: counters, gauges, log-bucketed histograms, a registry.

Dogfooding the paper's DiTing philosophy onto the reproduction pipeline
itself: every run can emit full-volume counters describing what the
analysis stack did (records emitted, fast-path vs fallback decisions,
throttled seconds, sampled IOs) next to the results it produced.

Design rules, enforced by convention and pinned by tests:

- **Metrics are functions of the data, never of the clock.**  Everything
  recorded through this module must be deterministic given the study
  seed — wall-clock and RSS belong in spans (:mod:`repro.obs.spans`) or
  run metadata, not here.  That is what makes the merged metrics of an
  ``N``-worker run byte-identical to a 1-worker run.
- **Integer-valued observations.**  Counter increments and histogram
  observations are integer quantities (bytes, IOs, rows, seconds), so
  float accumulation is exact (up to 2**53) in any merge order.
- **Vectorization-friendly.**  Hot paths accumulate from array *sizes*
  and array *sums*, never via per-element callbacks;
  :meth:`Histogram.observe_many` buckets a whole array in one pass.

The module is dependency-free: numpy is used opportunistically for
``observe_many`` but everything works without it.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.util.errors import ConfigError

try:  # pragma: no cover - numpy is a core dependency of the repo, but the
    import numpy as _np  # obs subsystem stays importable without it.
except ImportError:  # pragma: no cover
    _np = None

#: Label key/value pairs, canonicalized to a sorted tuple of string pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    if not labels:
        return ()
    if len(labels) == 1:  # the common hot-path shape: one label
        ((k, v),) = labels.items()
        return ((str(k), str(v)),)
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing counter (merge: sum)."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: "int | float" = 1) -> None:
        if amount < 0:
            raise ConfigError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def to_dict(self) -> Dict[str, Any]:
        return {"value": self.value}

    def merge_dict(self, payload: Dict[str, Any]) -> None:
        self.value += payload["value"]


class Gauge:
    """A point-in-time value (merge: max, so merges are order-free)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value: Optional[float] = None

    def set(self, value: "int | float") -> None:
        self.value = value

    def set_max(self, value: "int | float") -> None:
        if self.value is None or value > self.value:
            self.value = value

    def to_dict(self) -> Dict[str, Any]:
        return {"value": self.value}

    def merge_dict(self, payload: Dict[str, Any]) -> None:
        value = payload["value"]
        if value is not None:
            self.set_max(value)


class Histogram:
    """Log-bucketed histogram (base 2), sparse over bucket exponents.

    Bucket ``e`` covers ``(2**(e-1), 2**e]``; exact powers of two land on
    their own upper edge (computed exactly via ``frexp``, no log/ceil
    rounding hazards).  Zero observations are counted separately in
    ``zeros``; negative observations are rejected.  Merging adds bucket
    counts, counts, and sums, and takes min/max of the extrema — all
    order-free for integer-valued observations.
    """

    __slots__ = ("buckets", "count", "sum", "zeros", "min", "max")
    kind = "histogram"

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        self.count: int = 0
        self.sum: float = 0
        self.zeros: int = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    @staticmethod
    def bucket_of(value: "int | float") -> int:
        """Bucket exponent of one positive value: smallest e with 2**e >= v."""
        mantissa, exponent = math.frexp(value)  # value = mantissa * 2**exp
        if mantissa == 0.5:  # exact power of two: its own upper edge
            return exponent - 1
        return exponent

    @staticmethod
    def bucket_edges(exponent: int) -> "Tuple[float, float]":
        """(exclusive lower, inclusive upper) edge of bucket ``exponent``."""
        return (2.0 ** (exponent - 1), 2.0 ** exponent)

    def observe(self, value: "int | float", count: int = 1) -> None:
        """Record ``count`` observations of ``value``."""
        if count <= 0:
            return
        value = float(value)
        if value < 0:
            raise ConfigError(f"histogram values must be >= 0, got {value}")
        self.count += count
        self.sum += value * count
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value == 0.0:
            self.zeros += count
            return
        e = self.bucket_of(value)
        self.buckets[e] = self.buckets.get(e, 0) + count

    def observe_many(self, values: Iterable["int | float"]) -> None:
        """Vectorized :meth:`observe` over an array of observations."""
        if _np is not None:
            arr = _np.asarray(values, dtype=_np.float64).ravel()
            if arr.size == 0:
                return
            if bool(_np.any(arr < 0)):
                raise ConfigError("histogram values must be >= 0")
            self.count += int(arr.size)
            self.sum += float(arr.sum())
            lo = float(arr.min())
            hi = float(arr.max())
            if self.min is None or lo < self.min:
                self.min = lo
            if self.max is None or hi > self.max:
                self.max = hi
            zero = arr == 0.0
            nz = int(zero.sum())
            if nz:
                self.zeros += nz
                arr = arr[~zero]
            if arr.size:
                mantissa, exponent = _np.frexp(arr)
                exponent = _np.where(mantissa == 0.5, exponent - 1, exponent)
                exps, counts = _np.unique(exponent, return_counts=True)
                for e, c in zip(exps.tolist(), counts.tolist()):
                    self.buckets[int(e)] = self.buckets.get(int(e), 0) + int(c)
            return
        for value in values:  # pragma: no cover - numpy-less fallback
            self.observe(value)

    def to_dict(self) -> Dict[str, Any]:
        # dict() is a C-level copy, atomic under the GIL: a scrape can
        # snapshot while a pipeline thread inserts new buckets.
        buckets = dict(self.buckets)
        return {
            "count": self.count,
            "sum": self.sum,
            "zeros": self.zeros,
            "min": self.min,
            "max": self.max,
            "buckets": [[e, buckets[e]] for e in sorted(buckets)],
        }

    def merge_dict(self, payload: Dict[str, Any]) -> None:
        self.count += payload["count"]
        self.sum += payload["sum"]
        self.zeros += payload["zeros"]
        for bound in ("min", "max"):
            value = payload[bound]
            if value is None:
                continue
            current = getattr(self, bound)
            if (
                current is None
                or (bound == "min" and value < current)
                or (bound == "max" and value > current)
            ):
                setattr(self, bound, value)
        for e, count in payload["buckets"]:
            e = int(e)
            self.buckets[e] = self.buckets.get(e, 0) + int(count)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Labeled metric series with deterministic snapshot/merge semantics.

    One series is ``(kind, name, sorted labels)``; requesting the same
    series twice returns the same object, and requesting an existing name
    under a different *kind* raises (label collisions across kinds are
    almost always instrumentation bugs).  Snapshots are sorted by
    ``(name, labels)``, so their JSON form is independent of creation
    order — a prerequisite for the byte-identity guarantee across worker
    counts.

    Series lookup and snapshot/merge hold an internal lock, so a scrape
    thread (:mod:`repro.obs.server`) can snapshot while pipeline threads
    register new series — the snapshot is a *consistent point-in-time
    view* of the series table.  Recording through an already-fetched
    series object stays lock-free (hot paths cache their handles).
    """

    def __init__(self) -> None:
        self._series: Dict[Tuple[str, LabelKey], Any] = {}
        self._kinds: Dict[str, str] = {}
        # RLock: merge_snapshot calls _get while already holding it.
        self._lock = threading.RLock()

    def _get(self, kind: str, name: str, labels: Dict[str, Any]):
        if not name:
            raise ConfigError("metric name must be non-empty")
        with self._lock:
            known = self._kinds.get(name)
            if known is None:
                self._kinds[name] = kind
            elif known != kind:
                raise ConfigError(
                    f"metric {name!r} already registered as a {known}, "
                    f"cannot re-register as a {kind}"
                )
            key = (name, _label_key(labels))
            series = self._series.get(key)
            if series is None:
                series = _KINDS[kind]()
                self._series[key] = series
            return series

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get("histogram", name, labels)

    def __len__(self) -> int:
        return len(self._series)

    # -- snapshot / merge ----------------------------------------------------

    def snapshot(self) -> Dict[str, List[Dict[str, Any]]]:
        """JSON-friendly, deterministically ordered view of every series."""
        out: Dict[str, List[Dict[str, Any]]] = {
            "counters": [],
            "gauges": [],
            "histograms": [],
        }
        with self._lock:
            for (name, labels) in sorted(self._series):
                series = self._series[(name, labels)]
                entry = {"name": name, "labels": dict(labels)}
                entry.update(series.to_dict())
                out[series.kind + "s"].append(entry)
        return out

    def merge_snapshot(self, snapshot: Dict[str, List[Dict[str, Any]]]) -> None:
        """Fold one :meth:`snapshot` payload into this registry.

        Counters add, gauges keep their maximum, histograms add bucket
        counts — so merging per-worker snapshots in any order yields the
        same registry as a single-process run recording the same events.
        """
        with self._lock:
            for kind in ("counter", "gauge", "histogram"):
                for entry in snapshot.get(kind + "s", ()):
                    series = self._get(kind, entry["name"], entry["labels"])
                    series.merge_dict(entry)

    def merge(self, other: "MetricsRegistry") -> None:
        self.merge_snapshot(other.snapshot())


def merge_snapshots(
    snapshots: Iterable[Dict[str, List[Dict[str, Any]]]],
) -> Dict[str, List[Dict[str, Any]]]:
    """Merge many registry snapshots into one (order-free for our metrics)."""
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.merge_snapshot(snapshot)
    return registry.snapshot()
