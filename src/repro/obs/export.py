"""Telemetry artifact exporters: Chrome trace, Prometheus text, JSONL.

All exporters consume the ``telemetry.json`` payload produced by
:meth:`repro.obs.runtime.Telemetry.snapshot` (or loaded back from disk)
and return strings, so the CLI can write them anywhere.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List

from repro.obs.metrics import Histogram
from repro.obs.spans import to_chrome_trace
from repro.util.errors import ConfigError

EXPORT_FORMATS = ("chrome-trace", "prometheus", "jsonl")

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_RE = re.compile(r"[^a-zA-Z0-9_]")


def export_chrome_trace(payload: Dict[str, Any]) -> str:
    """The spans section as a Chrome ``trace_event`` JSON document."""
    return json.dumps(to_chrome_trace(payload.get("spans", [])), indent=1)


def _prom_name(name: str) -> str:
    return _NAME_RE.sub("_", "repro_" + name)


def _escape_label_value(value: Any) -> str:
    """Escape a label value per the exposition-format spec.

    Inside double quotes, backslash, the double quote itself, and
    line feeds must be escaped — anything else (``{``, ``,``, UTF-8)
    passes through verbatim.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(labels: Dict[str, Any]) -> str:
    if not labels:
        return ""
    parts: List[str] = []
    used: set = set()
    for key, value in sorted((str(k), v) for k, v in labels.items()):
        name = _LABEL_RE.sub("_", key) or "_"
        if name[0].isdigit():
            name = "_" + name
        # Distinct source keys can collapse onto one sanitized name
        # (e.g. "a.b" and "a:b" both become "a_b"); duplicate label
        # names are invalid exposition text, so suffix the later ones.
        if name in used:
            n = 2
            while f"{name}_{n}" in used:
                n += 1
            name = f"{name}_{n}"
        used.add(name)
        parts.append(f'{name}="{_escape_label_value(value)}"')
    return "{" + ",".join(parts) + "}"


def export_prometheus(payload: Dict[str, Any]) -> str:
    """The metrics section in the Prometheus text exposition format.

    Counters get a ``_total`` suffix; histograms expose cumulative
    ``_bucket{le=...}`` series plus ``_sum`` / ``_count``, with bucket
    upper edges taken from the log-bucket exponents.
    """
    metrics = payload.get("metrics", {})
    lines: List[str] = []
    seen_types: Dict[str, str] = {}

    def header(name: str, kind: str) -> None:
        if seen_types.get(name) != kind:
            lines.append(f"# TYPE {name} {kind}")
            seen_types[name] = kind

    for entry in metrics.get("counters", []):
        name = _prom_name(entry["name"]) + "_total"
        header(name, "counter")
        lines.append(f"{name}{_prom_labels(entry['labels'])} {entry['value']}")
    for entry in metrics.get("gauges", []):
        if entry["value"] is None:
            continue
        name = _prom_name(entry["name"])
        header(name, "gauge")
        lines.append(f"{name}{_prom_labels(entry['labels'])} {entry['value']}")
    for entry in metrics.get("histograms", []):
        name = _prom_name(entry["name"])
        header(name, "histogram")
        labels = entry["labels"]
        cumulative = int(entry.get("zeros", 0))
        if cumulative:
            le = dict(labels, le="0")
            lines.append(f"{name}_bucket{_prom_labels(le)} {cumulative}")
        for exponent, count in entry.get("buckets", []):
            cumulative += int(count)
            upper = Histogram.bucket_edges(int(exponent))[1]
            le = dict(labels, le=f"{upper:g}")
            lines.append(f"{name}_bucket{_prom_labels(le)} {cumulative}")
        le = dict(labels, le="+Inf")
        lines.append(f"{name}_bucket{_prom_labels(le)} {entry['count']}")
        lines.append(f"{name}_sum{_prom_labels(labels)} {entry['sum']}")
        lines.append(f"{name}_count{_prom_labels(labels)} {entry['count']}")
    return "\n".join(lines) + "\n"


def export_jsonl(payload: Dict[str, Any]) -> str:
    """Flat JSONL: one typed record per metric series and span."""
    records: List[Dict[str, Any]] = []
    meta = payload.get("meta", {})
    records.append(
        {
            "type": "meta",
            "schema_version": payload.get("schema_version"),
            **meta,
        }
    )
    metrics = payload.get("metrics", {})
    for kind in ("counters", "gauges", "histograms"):
        for entry in metrics.get(kind, []):
            records.append({"type": kind[:-1], **entry})
    for span in payload.get("spans", []):
        records.append({"type": "span", **span})
    return "\n".join(json.dumps(record) for record in records) + "\n"


def export_telemetry(payload: Dict[str, Any], fmt: str) -> str:
    """Dispatch to one of :data:`EXPORT_FORMATS`."""
    if fmt == "chrome-trace":
        return export_chrome_trace(payload)
    if fmt == "prometheus":
        return export_prometheus(payload)
    if fmt == "jsonl":
        return export_jsonl(payload)
    raise ConfigError(
        f"unknown export format {fmt!r}; known: {', '.join(EXPORT_FORMATS)}"
    )
