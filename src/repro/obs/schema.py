"""Dependency-free validation of the ``telemetry.json`` artifact.

Not a jsonschema engine — a hand-rolled structural check that CI (and
downstream consumers) can run without extra packages.  Returns a list of
human-readable problems; an empty list means the payload is valid.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.obs.runtime import TELEMETRY_SCHEMA_VERSION

_METRIC_KINDS = ("counters", "gauges", "histograms")
#: Public alias: the list-valued series kinds a ``metrics`` object may
#: carry.  Consumers (the CLI report, the parity digest) iterate these
#: instead of every key, so a stray scalar can never crash them.
METRIC_KINDS = _METRIC_KINDS


def _check_entry(kind: str, index: int, entry: Any, errors: List[str]) -> None:
    where = f"metrics.{kind}[{index}]"
    if not isinstance(entry, dict):
        errors.append(f"{where}: expected an object, got {type(entry).__name__}")
        return
    if not isinstance(entry.get("name"), str) or not entry.get("name"):
        errors.append(f"{where}: missing or empty 'name'")
    if not isinstance(entry.get("labels"), dict):
        errors.append(f"{where}: 'labels' must be an object")
    if kind in ("counters", "gauges"):
        if "value" not in entry:
            errors.append(f"{where}: missing 'value'")
        elif kind == "counters" and not isinstance(
            entry["value"], (int, float)
        ):
            errors.append(f"{where}: counter 'value' must be a number")
    else:  # histograms
        for field in ("count", "sum", "zeros", "buckets"):
            if field not in entry:
                errors.append(f"{where}: missing {field!r}")
        buckets = entry.get("buckets")
        if isinstance(buckets, list):
            for j, pair in enumerate(buckets):
                if (
                    not isinstance(pair, (list, tuple))
                    or len(pair) != 2
                    or not all(isinstance(x, (int, float)) for x in pair)
                ):
                    errors.append(
                        f"{where}: bucket [{j}] must be a [exponent, count] pair"
                    )
        elif buckets is not None:
            errors.append(f"{where}: 'buckets' must be a list")


def _check_span(index: int, span: Any, errors: List[str]) -> None:
    where = f"spans[{index}]"
    if not isinstance(span, dict):
        errors.append(f"{where}: expected an object, got {type(span).__name__}")
        return
    if not isinstance(span.get("name"), str) or not span.get("name"):
        errors.append(f"{where}: missing or empty 'name'")
    for field in ("start_us", "dur_us"):
        if not isinstance(span.get(field), (int, float)):
            errors.append(f"{where}: {field!r} must be a number")
    if not isinstance(span.get("labels", {}), dict):
        errors.append(f"{where}: 'labels' must be an object")


def _check_recorder(recorder: Any, errors: List[str]) -> None:
    """The optional ``recorder`` section (the flight-recorder ring dump)."""
    if not isinstance(recorder, dict):
        errors.append("'recorder' must be an object")
        return
    for field, kinds in (
        ("interval_seconds", (int, float)),
        ("capacity", (int,)),
        ("samples_taken", (int,)),
        ("totals", (dict,)),
        ("intervals", (list,)),
    ):
        if not isinstance(recorder.get(field), kinds):
            errors.append(f"recorder.{field}: missing or wrong type")
    intervals = recorder.get("intervals")
    if not isinstance(intervals, list):
        return
    last_index = None
    for i, record in enumerate(intervals):
        where = f"recorder.intervals[{i}]"
        if not isinstance(record, dict):
            errors.append(f"{where}: expected an object")
            continue
        for field in ("index", "t_wall", "dt"):
            if not isinstance(record.get(field), (int, float)):
                errors.append(f"{where}: {field!r} must be a number")
        for field in ("counters", "rates", "gauges", "probes", "hist_delta"):
            if not isinstance(record.get(field), dict):
                errors.append(f"{where}: {field!r} must be an object")
        index = record.get("index")
        if isinstance(index, int):
            if last_index is not None and index <= last_index:
                errors.append(
                    f"{where}: interval index {index} not increasing "
                    f"(previous {last_index})"
                )
            last_index = index


def _check_slo(slo: Any, errors: List[str]) -> None:
    """The optional ``slo`` section (objective scoreboard)."""
    if not isinstance(slo, dict):
        errors.append("'slo' must be an object")
        return
    if not isinstance(slo.get("budget"), (int, float)):
        errors.append("slo.budget: missing or wrong type")
    objectives = slo.get("objectives")
    if not isinstance(objectives, list):
        errors.append("slo.objectives must be a list")
        return
    for i, entry in enumerate(objectives):
        where = f"slo.objectives[{i}]"
        if not isinstance(entry, dict):
            errors.append(f"{where}: expected an object")
            continue
        if not isinstance(entry.get("slo"), str) or not entry.get("slo"):
            errors.append(f"{where}: missing or empty 'slo'")
        for field in ("intervals", "violations"):
            if not isinstance(entry.get(field), int):
                errors.append(f"{where}: {field!r} must be an integer")
        for field in ("threshold", "burn_rate"):
            if not isinstance(entry.get(field), (int, float)):
                errors.append(f"{where}: {field!r} must be a number")
        if not isinstance(entry.get("events", []), list):
            errors.append(f"{where}: 'events' must be a list")


def validate_telemetry(payload: Any) -> List[str]:
    """Structural validation of one telemetry artifact; [] means valid."""
    errors: List[str] = []
    if not isinstance(payload, dict):
        return [f"telemetry must be a JSON object, got {type(payload).__name__}"]
    version = payload.get("schema_version")
    if not isinstance(version, int):
        errors.append("missing integer 'schema_version'")
    elif version > TELEMETRY_SCHEMA_VERSION:
        errors.append(
            f"schema_version {version} is newer than supported "
            f"{TELEMETRY_SCHEMA_VERSION}"
        )
    if not isinstance(payload.get("meta", {}), dict):
        errors.append("'meta' must be an object")
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        errors.append("missing 'metrics' object")
    else:
        for kind in _METRIC_KINDS:
            entries = metrics.get(kind, [])
            if not isinstance(entries, list):
                errors.append(f"metrics.{kind} must be a list")
                continue
            for index, entry in enumerate(entries):
                _check_entry(kind, index, entry, errors)
        # Unknown keys must still be list-valued series: a scalar here
        # used to pass validation and then crash the CLI report path
        # (regression: ``{"metrics": {"total": 7}}``).
        for kind, entries in metrics.items():
            if kind not in _METRIC_KINDS and not isinstance(entries, list):
                errors.append(
                    f"metrics.{kind}: unknown metric kind must be a list, "
                    f"got {type(entries).__name__}"
                )
    spans = payload.get("spans")
    if spans is None:
        errors.append("missing 'spans' list")
    elif not isinstance(spans, list):
        errors.append("'spans' must be a list")
    else:
        for index, span in enumerate(spans):
            _check_span(index, span, errors)
    # Optional sections attached by the live observability plane.
    if "recorder" in payload:
        _check_recorder(payload["recorder"], errors)
    if "slo" in payload:
        _check_slo(payload["slo"], errors)
    return errors
