"""Span tracing: nested, monotonic-timed sections with sampling and export.

A :class:`Tracer` hands out ``span("sim.pass1", dc=0)`` context managers
that record wall-aligned monotonic timings with nesting depth — the
Dapper/DiTing shape: one record per (component, occurrence) with a name,
a start, a duration, and labels.  Spans are *not* part of the
deterministic metrics contract (they measure the clock, which is exactly
what they are for); they live in their own section of the telemetry
artifact and power the per-stage latency breakdown and the Chrome
``trace_event`` export (load the file at ``chrome://tracing`` or
https://ui.perfetto.dev).

The tracer is thread-aware: every finished span carries the recording
thread's id and name, the nesting stack is thread-local (the threaded
live pipeline records spans from several stages at once without
corrupting each other's depth), and the Chrome export emits one track
per (process, thread) with ``thread_name`` metadata.

Sampling mirrors :mod:`repro.trace.sampling`: either *exact-count*
(``sample_every=N`` keeps every N-th span, DiTing's deterministic
decimation) or *probabilistic* (``sample_rate=1/3200`` keeps each span
with fixed probability, seeded so runs are reproducible).  Unsampled
spans still participate in nesting (depth stays truthful) but are
dropped at finish time.

Span naming convention: dotted ``layer.stage[.substage]`` paths, e.g.
``study.build``, ``sim.pass1``, ``cache.replay`` — see
``docs/observability.md`` for the catalogue.
"""

from __future__ import annotations

import math
import os
import random
import threading
import time
from typing import Any, Dict, Iterable, List, Optional

from repro.util.errors import ConfigError


class SpanHandle:
    """One in-flight (then finished) span; returned by ``Tracer.span()``."""

    __slots__ = (
        "_tracer", "name", "labels", "depth", "_start_ns", "_keep",
        "tid", "thread_name",
    )

    def __init__(
        self, tracer: "Tracer", name: str, labels: Dict[str, Any], keep: bool
    ):
        self._tracer = tracer
        self.name = name
        self.labels = labels
        self.depth = 0
        self._start_ns = 0
        self._keep = keep
        self.tid = 0
        self.thread_name = ""

    def set(self, **labels: Any) -> "SpanHandle":
        """Attach labels after the span started (e.g. sizes known later)."""
        self.labels.update(labels)
        return self

    def __enter__(self) -> "SpanHandle":
        tracer = self._tracer
        thread = threading.current_thread()
        self.tid = thread.ident or 0
        self.thread_name = thread.name
        stack = tracer._stack
        self.depth = len(stack)
        stack.append(self)
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end_ns = time.perf_counter_ns()
        tracer = self._tracer
        stack = tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        if self._keep:
            tracer._finish(self, end_ns - self._start_ns)
        return False


class Tracer:
    """Collects spans with monotonic timing aligned to the wall clock.

    Start timestamps are ``perf_counter_ns`` offsets mapped onto a wall
    epoch captured at construction, so spans from different processes
    (per-worker tracers) land on one roughly shared timeline when merged
    into a single Chrome trace.  The nesting stack is **thread-local**
    and the finished-span list is lock-guarded, so several threads can
    record through one tracer concurrently (the live pipeline's stage
    threads do).
    """

    def __init__(
        self,
        sample_every: Optional[int] = None,
        sample_rate: Optional[float] = None,
        seed: int = 0,
    ):
        if sample_every is not None and sample_rate is not None:
            raise ConfigError("choose sample_every or sample_rate, not both")
        if sample_every is not None and sample_every < 1:
            raise ConfigError(f"sample_every must be >= 1, got {sample_every}")
        if sample_rate is not None and not 0.0 < sample_rate <= 1.0:
            raise ConfigError(
                f"sample_rate must be in (0, 1], got {sample_rate}"
            )
        self.sample_every = sample_every
        self.sample_rate = sample_rate
        self._rng = random.Random(seed)
        self._seen = 0
        self._local = threading.local()
        self._lock = threading.Lock()
        self._spans: List[Dict[str, Any]] = []
        self._epoch_wall_ns = time.time_ns()
        self._epoch_perf_ns = time.perf_counter_ns()
        self._pid = os.getpid()

    @property
    def _stack(self) -> "List[SpanHandle]":
        """This thread's nesting stack (created on first use)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- recording -----------------------------------------------------------

    def _sampled(self) -> bool:
        with self._lock:
            self._seen += 1
            if self.sample_every is not None:
                return (self._seen - 1) % self.sample_every == 0
            if self.sample_rate is not None:
                return self._rng.random() < self.sample_rate
            return True

    def span(self, name: str, **labels: Any) -> SpanHandle:
        """A context manager timing one named section (cheap, nestable)."""
        return SpanHandle(self, name, labels, self._sampled())

    def _finish(self, handle: SpanHandle, dur_ns: int) -> None:
        start_us = (
            self._epoch_wall_ns + (handle._start_ns - self._epoch_perf_ns)
        ) // 1000
        record = {
            "name": handle.name,
            "start_us": int(start_us),
            "dur_us": dur_ns / 1000.0,
            "depth": handle.depth,
            "pid": self._pid,
            "tid": int(handle.tid),
            "thread": handle.thread_name,
            "labels": {str(k): v for k, v in handle.labels.items()},
        }
        with self._lock:
            self._spans.append(record)

    # -- snapshot / merge ----------------------------------------------------

    @property
    def spans(self) -> List[Dict[str, Any]]:
        return self._spans

    def snapshot(self) -> List[Dict[str, Any]]:
        """Finished spans as JSON-friendly dicts (recording order)."""
        with self._lock:
            return [dict(span) for span in self._spans]

    def merge_snapshot(self, spans: Iterable[Dict[str, Any]]) -> None:
        """Append spans recorded elsewhere (e.g. a worker process)."""
        merged = [dict(span) for span in spans]
        with self._lock:
            self._spans.extend(merged)


# -- aggregation / export ----------------------------------------------------


def _percentile(sorted_us: List[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]) of an ascending list."""
    if not sorted_us:
        return 0.0
    rank = max(0, math.ceil(q * len(sorted_us)) - 1)
    return sorted_us[rank]


def stage_summary(spans: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Per-stage latency breakdown: aggregate spans by name.

    Returns one row per span name with count / total / mean / p50 / p95 /
    p99 / max milliseconds, sorted by descending total — the
    ``repro obs report`` table and the benchmarks' self-describing
    timing section.  The percentiles are nearest-rank over the recorded
    (possibly sampled) spans, so decision-latency tails are visible
    without exporting to Chrome tracing.
    """
    durations: Dict[str, List[float]] = {}
    for span in spans:
        durations.setdefault(span["name"], []).append(float(span["dur_us"]))
    rows = []
    for name, durs in durations.items():
        durs.sort()
        total_us = sum(durs)
        rows.append(
            {
                "name": name,
                "count": len(durs),
                "total_ms": round(total_us / 1000.0, 3),
                "mean_ms": round(total_us / len(durs) / 1000.0, 3),
                "p50_ms": round(_percentile(durs, 0.50) / 1000.0, 3),
                "p95_ms": round(_percentile(durs, 0.95) / 1000.0, 3),
                "p99_ms": round(_percentile(durs, 0.99) / 1000.0, 3),
                "max_ms": round(durs[-1] / 1000.0, 3),
            }
        )
    rows.sort(key=lambda row: (-row["total_ms"], row["name"]))
    return rows


def to_chrome_trace(spans: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Spans as a Chrome ``trace_event`` JSON object.

    Complete (``ph: "X"``) events with microsecond timestamps; one track
    per (process, thread) — nested spans render as stacked slices, and
    the threaded live pipeline's stages land on separate named tracks
    instead of collapsing onto one.  Load the dumped file at
    chrome://tracing or https://ui.perfetto.dev.
    """
    events: List[Dict[str, Any]] = []
    pids = set()
    threads: Dict[tuple, str] = {}
    for span in spans:
        pid = int(span.get("pid", 0))
        tid = int(span.get("tid", 0))
        pids.add(pid)
        # First span on a track names it (pre-tid artifacts fall back
        # to a synthetic name so old telemetry still renders).
        threads.setdefault((pid, tid), span.get("thread") or f"thread {tid}")
        events.append(
            {
                "name": span["name"],
                "ph": "X",
                "ts": span["start_us"],
                "dur": span["dur_us"],
                "pid": pid,
                "tid": tid,
                "cat": span["name"].split(".", 1)[0],
                "args": dict(span.get("labels", {})),
            }
        )
    for pid in sorted(pids):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro worker {pid}"},
            }
        )
    for (pid, tid) in sorted(threads):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": threads[(pid, tid)]},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}
