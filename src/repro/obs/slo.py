"""Declarative SLOs over the live telemetry stream: budgets and burn rates.

An objective is one line of mini-language:

- ``live.decision_latency_us:p99<500`` — a quantile of a histogram,
  estimated per recorder interval from that interval's bucket *deltas*
  (so it is the p99 of *recent* decisions, not of the whole run);
- ``live.events_dropped/live.events_total<0.01`` — a ratio of counter
  deltas over the interval (a drop *rate*, not a cumulative fraction).

The tracker consumes the flight recorder's interval records
(:meth:`SloTracker.observe_interval`), marks each interval as ok /
violating / idle per objective, and keeps the bookkeeping an SRE would
want: a violation count, an error-budget consumption fraction, a
burn-rate gauge (consumption relative to the allowed budget — burn > 1
means the objective will exhaust its budget before the horizon), and a
bounded log of threshold-crossing events (ok→violating edges and back).
``/healthz`` folds :meth:`healthy` into its verdict and the final
telemetry artifact carries :meth:`snapshot` as the ``slo`` section.

Quantiles come from the log2 histogram via linear interpolation inside
the bucket that contains the target rank — coarse (buckets are powers of
two) but monotone, cheap, and honest about its resolution; the same
scheme DiTing-style collectors use for full-volume latency SLOs.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.util.errors import ConfigError

#: Default error budget: fraction of intervals allowed to violate.
DEFAULT_BUDGET = 0.01
#: Threshold-crossing events kept per objective.
_MAX_EVENTS = 64

_QUANTILE_RE = re.compile(
    r"^(?P<metric>[^:<>]+):p(?P<q>[0-9]{1,2}(?:\.[0-9]+)?)"
    r"<(?P<threshold>[0-9.eE+-]+)$"
)
_RATIO_RE = re.compile(
    r"^(?P<num>[^:<>/]+)/(?P<den>[^:<>/]+)<(?P<threshold>[0-9.eE+-]+)$"
)


def quantile_from_buckets(
    buckets: Sequence[Sequence[float]], zeros: int, count: int, q: float
) -> Optional[float]:
    """Estimate quantile ``q`` from log2 bucket (exponent, count) pairs.

    Linear interpolation within the bucket holding the target rank;
    bucket ``e`` spans ``(2**(e-1), 2**e]``, zeros sit at 0.  Returns
    None when ``count`` is 0.
    """
    if count <= 0:
        return None
    target = q * count
    seen = float(zeros)
    if target <= seen:
        return 0.0
    for exponent, bucket_count in sorted(
        (int(e), int(c)) for e, c in buckets
    ):
        if bucket_count <= 0:
            continue
        if target <= seen + bucket_count:
            lo = 2.0 ** (exponent - 1)
            hi = 2.0 ** exponent
            frac = (target - seen) / bucket_count
            return lo + (hi - lo) * frac
        seen += bucket_count
    # rank beyond the last bucket (float slop): the max edge
    exponents = [int(e) for e, c in buckets if int(c) > 0]
    return 2.0 ** max(exponents) if exponents else 0.0


@dataclass(frozen=True)
class SloObjective:
    """One parsed objective; ``kind`` is ``quantile`` or ``ratio``."""

    spec: str
    kind: str
    threshold: float
    metric: str = ""
    q: float = 0.0
    numerator: str = ""
    denominator: str = ""

    @property
    def name(self) -> str:
        return self.spec


def parse_slo(spec: str) -> SloObjective:
    """Parse one objective spec; raises :class:`ConfigError` on nonsense."""
    text = spec.strip().replace(" ", "")
    match = _QUANTILE_RE.match(text)
    if match:
        q = float(match.group("q")) / 100.0
        if not 0.0 < q < 1.0:
            raise ConfigError(f"slo {spec!r}: quantile must be in (0, 100)")
        try:
            threshold = float(match.group("threshold"))
        except ValueError:
            raise ConfigError(f"slo {spec!r}: bad threshold")
        return SloObjective(
            spec=text,
            kind="quantile",
            metric=match.group("metric"),
            q=q,
            threshold=threshold,
        )
    match = _RATIO_RE.match(text)
    if match:
        try:
            threshold = float(match.group("threshold"))
        except ValueError:
            raise ConfigError(f"slo {spec!r}: bad threshold")
        return SloObjective(
            spec=text,
            kind="ratio",
            numerator=match.group("num"),
            denominator=match.group("den"),
            threshold=threshold,
        )
    raise ConfigError(
        f"cannot parse slo {spec!r}; expected 'metric:pQQ<threshold' or "
        "'numerator/denominator<threshold'"
    )


class _ObjectiveState:
    __slots__ = (
        "objective", "intervals", "violations", "idle",
        "violating", "last_value", "events",
    )

    def __init__(self, objective: SloObjective):
        self.objective = objective
        self.intervals = 0
        self.violations = 0
        self.idle = 0
        self.violating = False
        self.last_value: Optional[float] = None
        self.events: List[Dict[str, Any]] = []


class SloTracker:
    """Evaluates objectives against recorder intervals; thread-safe.

    ``budget`` is the error budget: the fraction of (non-idle) intervals
    allowed to violate.  ``burn_rate = violation_fraction / budget`` —
    the standard multi-window burn framing collapsed to one window (the
    recorder ring *is* the window).
    """

    def __init__(
        self,
        objectives: "Sequence[str | SloObjective]",
        budget: float = DEFAULT_BUDGET,
    ):
        if not 0.0 < budget <= 1.0:
            raise ConfigError(f"slo budget must be in (0, 1], got {budget}")
        self.budget = float(budget)
        self._lock = threading.Lock()
        self._states = [
            _ObjectiveState(
                obj if isinstance(obj, SloObjective) else parse_slo(obj)
            )
            for obj in objectives
        ]
        if not self._states:
            raise ConfigError("SloTracker needs at least one objective")

    # -- evaluation ----------------------------------------------------------

    @staticmethod
    def _evaluate(
        objective: SloObjective, record: Dict[str, Any]
    ) -> Optional[float]:
        """The objective's value over one interval; None when idle."""
        if objective.kind == "quantile":
            delta = record.get("hist_delta", {}).get(objective.metric)
            if not delta or delta.get("count", 0) <= 0:
                return None
            return quantile_from_buckets(
                delta.get("buckets", ()),
                int(delta.get("zeros", 0)),
                int(delta.get("count", 0)),
                objective.q,
            )
        # ratio: counter deltas over the interval, via rates (both share dt)
        rates = record.get("rates", {})
        denominator = rates.get(objective.denominator)
        if denominator is None or denominator <= 0:
            return None
        return rates.get(objective.numerator, 0.0) / denominator

    def observe_interval(self, record: Dict[str, Any]) -> None:
        """Score one flight-recorder interval record against every SLO."""
        with self._lock:
            for state in self._states:
                value = self._evaluate(state.objective, record)
                if value is None:
                    state.idle += 1
                    continue
                state.intervals += 1
                state.last_value = value
                violating = value >= state.objective.threshold
                if violating:
                    state.violations += 1
                if violating != state.violating:
                    state.violating = violating
                    state.events.append(
                        {
                            "slo": state.objective.name,
                            "at": record.get("t_wall"),
                            "interval": record.get("index"),
                            "crossed": "violating" if violating else "ok",
                            "value": value,
                            "threshold": state.objective.threshold,
                        }
                    )
                    del state.events[:-_MAX_EVENTS]

    # -- views ---------------------------------------------------------------

    def healthy(self) -> bool:
        """False while any objective is currently in violation."""
        with self._lock:
            return not any(state.violating for state in self._states)

    def snapshot(self) -> Dict[str, Any]:
        """The ``slo`` telemetry section / the ``/healthz`` detail."""
        objectives = []
        with self._lock:
            for state in self._states:
                fraction = (
                    state.violations / state.intervals
                    if state.intervals
                    else 0.0
                )
                objectives.append(
                    {
                        "slo": state.objective.name,
                        "kind": state.objective.kind,
                        "threshold": state.objective.threshold,
                        "intervals": state.intervals,
                        "idle_intervals": state.idle,
                        "violations": state.violations,
                        "violating_now": state.violating,
                        "last_value": state.last_value,
                        "violation_fraction": fraction,
                        "burn_rate": fraction / self.budget,
                        "events": list(state.events),
                    }
                )
        return {"budget": self.budget, "objectives": objectives}
