"""The observability exposition server: /metrics, /snapshot, /healthz, /recorder.

A tiny stdlib-only HTTP daemon (``http.server.ThreadingHTTPServer`` on a
daemon thread) that makes a live run scrapeable:

- ``GET /metrics`` — the Prometheus text exposition of the current
  registry (the same bytes ``obs export --format prometheus`` would
  produce for the final artifact, but mid-run);
- ``GET /snapshot`` — the full telemetry payload as JSON, including any
  attached sections (recorder, slo) resolved live;
- ``GET /healthz`` — liveness verdict: 200 with a JSON body while the
  health callback and every SLO are happy, 503 otherwise (so a real
  orchestrator can point a probe at it);
- ``GET /recorder`` — the flight recorder ring as JSON (404 when no
  recorder is attached).

The server only ever *reads* lock-consistent snapshots — it cannot
perturb the deterministic metrics, only observe them.  Bind to port 0 to
let the OS pick (the bound address is in :attr:`ObsServer.address`).
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Tuple

from repro.obs.export import export_prometheus
from repro.util.errors import ConfigError

log = logging.getLogger(__name__)

#: The content type Prometheus scrapers expect for text exposition.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ObsServer:
    """Serve one telemetry handle over HTTP from a daemon thread.

    ``health`` is an optional callable returning a JSON-able dict with at
    least ``{"healthy": bool}`` (the live pipeline provides per-stage
    liveness); ``recorder`` / ``slo`` are optional
    :class:`~repro.obs.recorder.FlightRecorder` /
    :class:`~repro.obs.slo.SloTracker` instances.
    """

    def __init__(
        self,
        telemetry,
        host: str = "127.0.0.1",
        port: int = 0,
        recorder=None,
        slo=None,
        health: "Optional[Callable[[], Dict[str, Any]]]" = None,
    ):
        self.telemetry = telemetry
        self.recorder = recorder
        self.slo = slo
        self.health = health
        self._httpd: "Optional[ThreadingHTTPServer]" = None
        self._thread: "Optional[threading.Thread]" = None
        self._host = host
        self._port = port

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> "Tuple[str, int]":
        """The bound (host, port); raises until :meth:`start` ran."""
        if self._httpd is None:
            raise ConfigError("server not started")
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ObsServer":
        if self._httpd is not None:
            raise ConfigError("server already started")
        handler = _make_handler(self)
        try:
            self._httpd = ThreadingHTTPServer(
                (self._host, self._port), handler
            )
        except OSError as error:
            raise ConfigError(
                f"cannot bind obs server to {self._host}:{self._port}: "
                f"{error}"
            ) from error
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="obs-server",
            daemon=True,
        )
        self._thread.start()
        log.debug("obs server listening on %s", self.url)
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self._httpd = None

    # -- endpoint payloads (also used directly by tests) ---------------------

    def metrics_text(self) -> str:
        return export_prometheus({"metrics": self.telemetry.registry.snapshot()})

    def snapshot_payload(self) -> Dict[str, Any]:
        return self.telemetry.snapshot()

    def health_payload(self) -> "Tuple[int, Dict[str, Any]]":
        """(http status, body) for ``/healthz``."""
        body: Dict[str, Any] = {"healthy": True}
        if self.health is not None:
            try:
                body = dict(self.health())
            except Exception as error:  # noqa: BLE001 - a probe must answer
                body = {"healthy": False, "error": str(error)}
            body.setdefault("healthy", True)
        if self.slo is not None:
            slo_ok = self.slo.healthy()
            body["slo_healthy"] = slo_ok
            body["slo"] = self.slo.snapshot()
            body["healthy"] = bool(body["healthy"]) and slo_ok
        status = 200 if body["healthy"] else 503
        return status, body


def _make_handler(server: ObsServer):
    class _Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def _send(
            self, status: int, content_type: str, body: bytes
        ) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_json(self, status: int, payload: Any) -> None:
            body = json.dumps(payload).encode("utf-8")
            self._send(status, "application/json; charset=utf-8", body)

        def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            try:
                if path == "/metrics":
                    self._send(
                        200,
                        PROM_CONTENT_TYPE,
                        server.metrics_text().encode("utf-8"),
                    )
                elif path == "/snapshot":
                    self._send_json(200, server.snapshot_payload())
                elif path == "/healthz":
                    status, body = server.health_payload()
                    self._send_json(status, body)
                elif path == "/recorder":
                    if server.recorder is None:
                        self._send_json(
                            404, {"error": "no flight recorder attached"}
                        )
                    else:
                        self._send_json(200, server.recorder.snapshot())
                else:
                    self._send_json(404, {"error": f"unknown path {path}"})
            except BrokenPipeError:  # pragma: no cover - client went away
                pass
            except Exception as error:  # noqa: BLE001 - keep serving
                log.warning("obs server error on %s: %s", path, error)
                try:
                    self._send_json(500, {"error": str(error)})
                except OSError:  # pragma: no cover
                    pass

        def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
            log.debug("obs server: " + format, *args)

    return _Handler
