"""``repro.obs`` — DiTing-style run telemetry for the reproduction pipeline.

The paper's measurement methodology rests on DiTing, a Dapper-like
tracer recording per-IO component latencies and full-volume
second-granularity metrics.  This package dogfoods that philosophy onto
the *analysis stack itself*: every study run can emit an auditable
telemetry artifact (``telemetry.json``) describing what the pipeline did
— records emitted, fast-path vs fallback decisions, per-stage wall
clock, peak RSS — next to the results it produced.

Three pieces:

- :mod:`repro.obs.metrics` — ``Counter`` / ``Gauge`` / ``Histogram``
  (log-bucketed) series in a :class:`MetricsRegistry` with deterministic
  snapshot/merge semantics (an N-worker run merges byte-identically to a
  1-worker run).
- :mod:`repro.obs.spans` — nested monotonic spans with exact-count or
  probabilistic sampling (mirroring :mod:`repro.trace.sampling`) and a
  Chrome ``trace_event`` export for chrome://tracing / Perfetto.
- :mod:`repro.obs.runtime` — the process-global :class:`Telemetry`
  handle: disabled by default (no-op nulls, <= 2% overhead budget on the
  perf benchmarks), installed per run via :func:`telemetry_session` or
  the CLI's ``--telemetry PATH``.

The live observability plane layers on top:

- :mod:`repro.obs.server` — an stdlib-only scrape endpoint
  (``/metrics`` Prometheus text, ``/snapshot`` JSON, ``/healthz``
  liveness, ``/recorder``), attached via ``Telemetry.serve()`` or
  ``ebs-repro live --serve``;
- :mod:`repro.obs.recorder` — the flight recorder: a bounded ring of
  per-interval counter/rate/queue-depth snapshots dumped into the
  artifact's ``recorder`` section;
- :mod:`repro.obs.slo` — declarative objectives
  (``metric:p99<X``, ``drops/total<Y``) with error-budget burn rates;
- :mod:`repro.obs.promtext` — a strict parser/validator for the text
  exposition format, run by CI against every scrape.

See ``docs/observability.md`` for the metric-name catalogue and the span
naming convention, and ``repro obs report/export/validate/promcheck``
for the CLI.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.runtime import (
    TELEMETRY_SCHEMA_VERSION,
    Telemetry,
    get_telemetry,
    peak_rss_bytes,
    set_telemetry,
    telemetry_session,
)
from repro.obs.schema import validate_telemetry
from repro.obs.spans import Tracer, stage_summary, to_chrome_trace
from repro.obs.export import EXPORT_FORMATS, export_telemetry
from repro.obs.promtext import parse_promtext, validate_promtext
from repro.obs.recorder import FlightRecorder
from repro.obs.slo import SloObjective, SloTracker, parse_slo
from repro.obs.server import ObsServer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "TELEMETRY_SCHEMA_VERSION",
    "Telemetry",
    "get_telemetry",
    "peak_rss_bytes",
    "set_telemetry",
    "telemetry_session",
    "validate_telemetry",
    "Tracer",
    "stage_summary",
    "to_chrome_trace",
    "EXPORT_FORMATS",
    "export_telemetry",
    "parse_promtext",
    "validate_promtext",
    "FlightRecorder",
    "SloObjective",
    "SloTracker",
    "parse_slo",
    "ObsServer",
]
