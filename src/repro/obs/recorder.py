"""The telemetry flight recorder: a bounded ring of interval snapshots.

A long-running serving loop needs more than cumulative counters: the
operator's questions are *rates* ("events/sec right now?", "did drops
spike when the queue filled?").  :class:`FlightRecorder` samples the
telemetry registry on a fixed wall-clock interval and keeps the last
``capacity`` interval records in a ring — each record carrying the
cumulative counter values, the per-second rates over the interval,
gauge values, registered probe readings (queue depths), and per-interval
histogram *deltas* (which feed the SLO tracker's quantile evaluation).

Like an aircraft flight recorder, the ring is dumped into the telemetry
artifact on exit (the ``recorder`` section), so a crash leaves a
black-box record of the last N intervals; while the run is alive the
same payload is served at ``GET /recorder``.

Everything in here measures the wall clock and is therefore — like
spans — exempt from the deterministic-metrics contract; it lives in its
own artifact section.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional

from repro.util.errors import ConfigError

#: Default sampling interval, seconds.
DEFAULT_INTERVAL_SECONDS = 1.0
#: Default ring capacity, intervals.
DEFAULT_CAPACITY = 512


def series_key(name: str, labels: Dict[str, Any]) -> str:
    """Flatten one labeled series to a stable string key.

    ``live.queue_depth_max{ring=live.events}`` — the same shape the
    Prometheus exposition uses, so recorder keys and scrape series
    correlate by eye.
    """
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class FlightRecorder:
    """Periodic registry snapshots with rates, bounded to the last N.

    ``telemetry`` is a :class:`repro.obs.runtime.Telemetry` handle;
    sampling reads its registry through the registry's own lock, so each
    interval is a consistent cut.  ``slo`` (optional) is a
    :class:`repro.obs.slo.SloTracker` notified once per interval with
    the interval record.
    """

    def __init__(
        self,
        telemetry,
        interval_seconds: float = DEFAULT_INTERVAL_SECONDS,
        capacity: int = DEFAULT_CAPACITY,
        slo=None,
        clock: "Callable[[], float]" = time.time,
    ):
        if interval_seconds <= 0:
            raise ConfigError(
                f"interval_seconds must be > 0, got {interval_seconds}"
            )
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        self.telemetry = telemetry
        self.interval_seconds = float(interval_seconds)
        self.capacity = int(capacity)
        self.slo = slo
        self._clock = clock
        self._probes: "Dict[str, Callable[[], float]]" = {}
        self._lock = threading.Lock()
        self._intervals: "deque[Dict[str, Any]]" = deque(maxlen=capacity)
        self._prev: "Optional[Dict[str, Any]]" = None
        self._base: "Optional[Dict[str, Any]]" = None
        self._samples_taken = 0
        self._stop = threading.Event()
        self._thread: "Optional[threading.Thread]" = None

    # -- probes --------------------------------------------------------------

    def add_probe(self, name: str, fn: "Callable[[], float]") -> None:
        """Register a per-interval reading (e.g. a ring's current depth)."""
        if not name:
            raise ConfigError("probe name must be non-empty")
        self._probes[name] = fn

    # -- sampling ------------------------------------------------------------

    def _cut(self) -> Dict[str, Any]:
        """One consistent cut of the registry, flattened to series keys."""
        metrics = self.telemetry.registry.snapshot()
        counters = {
            series_key(e["name"], e["labels"]): float(e["value"])
            for e in metrics["counters"]
        }
        gauges = {
            series_key(e["name"], e["labels"]): e["value"]
            for e in metrics["gauges"]
            if e["value"] is not None
        }
        histograms = {
            series_key(e["name"], e["labels"]): {
                "count": int(e["count"]),
                "sum": float(e["sum"]),
                "zeros": int(e["zeros"]),
                "buckets": [[int(b), int(c)] for b, c in e["buckets"]],
            }
            for e in metrics["histograms"]
        }
        probes: Dict[str, float] = {}
        for name, fn in self._probes.items():
            try:
                probes[name] = float(fn())
            except Exception:  # noqa: BLE001 - a dead probe must not kill sampling
                probes[name] = float("nan")
        return {
            "t_wall": self._clock(),
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "probes": probes,
        }

    @staticmethod
    def _hist_delta(
        current: Dict[str, Any], previous: "Optional[Dict[str, Any]]"
    ) -> Dict[str, Any]:
        if previous is None:
            previous = {"count": 0, "sum": 0.0, "zeros": 0, "buckets": []}
        prev_buckets = dict(
            (int(e), int(c)) for e, c in previous["buckets"]
        )
        buckets = [
            [e, c - prev_buckets.get(e, 0)]
            for e, c in ((int(e), int(c)) for e, c in current["buckets"])
            if c - prev_buckets.get(e, 0) > 0
        ]
        return {
            "count": current["count"] - previous["count"],
            "sum": current["sum"] - previous["sum"],
            "zeros": current["zeros"] - previous["zeros"],
            "buckets": buckets,
        }

    def sample(self) -> Dict[str, Any]:
        """Take one interval snapshot now; returns the interval record."""
        cut = self._cut()
        with self._lock:
            if self._base is None:
                self._base = cut
            prev = self._prev
            if prev is None:
                # First-ever sample with no base cut taken at start():
                # everything observed so far counts as this interval.
                prev = {
                    "t_wall": cut["t_wall"],
                    "counters": {},
                    "histograms": {},
                }
            dt = cut["t_wall"] - prev["t_wall"]
            rates = {}
            if dt > 0:
                for key, value in cut["counters"].items():
                    delta = value - prev["counters"].get(key, 0.0)
                    rates[key] = delta / dt
            hist_delta = {
                key: self._hist_delta(entry, prev["histograms"].get(key))
                for key, entry in cut["histograms"].items()
            }
            record = {
                "index": self._samples_taken,
                "t_wall": cut["t_wall"],
                "dt": dt,
                "counters": cut["counters"],
                "rates": rates,
                "gauges": cut["gauges"],
                "probes": cut["probes"],
                "hist_delta": hist_delta,
            }
            self._samples_taken += 1
            self._intervals.append(record)
            self._prev = cut
            slo = self.slo
        if slo is not None:
            slo.observe_interval(record)
        return record

    # -- background thread ---------------------------------------------------

    def start(self) -> "FlightRecorder":
        """Begin periodic sampling on a daemon thread (base cut now)."""
        if self._thread is not None:
            raise ConfigError("recorder already started")
        with self._lock:
            if self._base is None:
                self._base = self._cut()
                self._prev = self._base
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="obs-recorder", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            self.sample()

    def stop(self) -> None:
        """Stop the thread and take one final sample (totals are exact)."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join()
            self._thread = None
        self.sample()

    # -- payload -------------------------------------------------------------

    @property
    def intervals(self) -> "List[Dict[str, Any]]":
        with self._lock:
            return list(self._intervals)

    def totals(self) -> Dict[str, float]:
        """Cumulative counter values as of the most recent sample.

        After :meth:`stop` these equal the final telemetry counters
        *exactly* — the recorder reads the same registry, and the final
        sample happens after every pipeline stage joined.
        """
        with self._lock:
            if self._prev is None:
                return {}
            return dict(self._prev["counters"])

    def snapshot(self) -> Dict[str, Any]:
        """The ``recorder`` telemetry section / ``GET /recorder`` payload."""
        with self._lock:
            intervals = list(self._intervals)
            samples_taken = self._samples_taken
            base = self._base
            totals = (
                dict(self._prev["counters"]) if self._prev is not None else {}
            )
        return {
            "interval_seconds": self.interval_seconds,
            "capacity": self.capacity,
            "samples_taken": samples_taken,
            "evicted": max(0, samples_taken - len(intervals)),
            "base_t_wall": base["t_wall"] if base else None,
            "totals": totals,
            "intervals": intervals,
        }
