"""Command-line interface: run any experiment and print its table.

Usage::

    ebs-repro list
    ebs-repro run table3 --scale small --seed 7
    ebs-repro run all --scale medium --telemetry out/telemetry.json
    ebs-repro export-dataset out/ --scale small
    ebs-repro obs report out/telemetry.json
    ebs-repro obs export out/telemetry.json --format chrome-trace -o trace.json
    ebs-repro obs validate out/telemetry.json

Result tables and exported artifacts go to stdout; status and error
reporting goes to stderr through :mod:`logging` (``-v`` for debug,
``-q`` for errors only).
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from pathlib import Path
from typing import List, Optional

from repro._version import __version__
from repro.core import Study, StudyConfig, experiment_ids
from repro.core.report import ExperimentResult
from repro.obs.export import EXPORT_FORMATS, export_telemetry
from repro.obs.runtime import (
    Telemetry,
    peak_rss_bytes,
    set_telemetry,
)
from repro.obs.schema import validate_telemetry
from repro.obs.spans import stage_summary
from repro.trace.io import write_metric_csv, write_trace_jsonl
from repro.util.errors import ReproError

_SCALES = ("small", "medium", "large")

_LOG = logging.getLogger("repro.cli")


class _LowercaseLevelFormatter(logging.Formatter):
    """``error: message`` rather than ``ERROR: message``."""

    def format(self, record: logging.LogRecord) -> str:
        record.levelname = record.levelname.lower()
        return super().format(record)


def _configure_logging(verbose: int, quiet: bool) -> None:
    """(Re)install the CLI's stderr handler on the ``repro`` logger."""
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_cli", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    handler._repro_cli = True  # type: ignore[attr-defined]
    handler.setFormatter(_LowercaseLevelFormatter("%(levelname)s: %(message)s"))
    logger.addHandler(handler)
    logger.propagate = False
    if quiet:
        logger.setLevel(logging.ERROR)
    elif verbose:
        logger.setLevel(logging.DEBUG)
    else:
        logger.setLevel(logging.INFO)


def _study(args: argparse.Namespace) -> Study:
    factory = getattr(StudyConfig, args.scale)
    config = factory(seed=args.seed)
    plan_path = getattr(args, "fault_plan", None)
    if plan_path:
        from dataclasses import replace

        from repro.faults.plan import FaultPlan

        plan = FaultPlan.load(plan_path)
        _LOG.info(
            "loaded fault plan %s (%d event(s), policy=%s)",
            plan_path, len(plan), plan.policy.value,
        )
        config = replace(config, fault_plan=plan)
    return Study(config)


# -- telemetry lifecycle -----------------------------------------------------


def _start_telemetry(args: argparse.Namespace) -> Optional[Telemetry]:
    """Install an enabled telemetry handle when ``--telemetry`` was given."""
    if not getattr(args, "telemetry", None):
        return None
    telemetry = Telemetry(enabled=True, seed=args.seed)
    set_telemetry(telemetry)
    return telemetry


def _finish_telemetry(
    telemetry: Optional[Telemetry], args: argparse.Namespace
) -> None:
    """Write ``telemetry.json`` (even after a mid-study failure)."""
    if telemetry is None:
        return
    set_telemetry(None)
    telemetry.meta.update(
        {
            "command": args.command,
            "scale": args.scale,
            "seed": args.seed,
            "workers": getattr(args, "workers", 1),
            "experiment": getattr(args, "experiment", None),
            "fault_plan": getattr(args, "fault_plan", None),
            "version": __version__,
            "peak_rss_bytes": peak_rss_bytes(),
        }
    )
    path = telemetry.write(args.telemetry)
    _LOG.info("wrote telemetry to %s", path)


# -- commands ----------------------------------------------------------------


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.core.experiments import EXPERIMENTS

    for experiment_id in experiment_ids():
        title = getattr(EXPERIMENTS[experiment_id], "title", "")
        print(f"{experiment_id:12s} {title}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    telemetry = _start_telemetry(args)
    results: List[ExperimentResult] = []
    failure: "Optional[tuple[str, BaseException]]" = None
    try:
        study = _study(args)
        study.build(workers=args.workers)
        targets = (
            experiment_ids() if args.experiment == "all"
            else [args.experiment]
        )
        for experiment_id in targets:
            try:
                result = study.run(experiment_id)
            except Exception as error:  # flush partial results below
                failure = (experiment_id, error)
                break
            results.append(result)
            print(result.render())
            print()
        if args.json and (results or failure):
            payload = {
                "scale": args.scale,
                "seed": args.seed,
                "results": [result.to_dict() for result in results],
            }
            if failure is not None:
                payload["failed_experiment"] = failure[0]
            Path(args.json).write_text(json.dumps(payload, indent=2))
            _LOG.info("wrote %d result(s) to %s", len(results), args.json)
    finally:
        _finish_telemetry(telemetry, args)
    if failure is not None:
        experiment_id, error = failure
        if not isinstance(error, ReproError):
            raise error
        raise ReproError(
            f"experiment {experiment_id!r} failed after "
            f"{len(results)} completed result(s): {error}"
        ) from error
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    telemetry = _start_telemetry(args)
    written = 0
    try:
        study = _study(args)
        study.build(workers=args.workers)
        out = Path(args.directory)
        out.mkdir(parents=True, exist_ok=True)
        for result in study.results:
            dc = result.fleet.config.dc_id
            try:
                write_trace_jsonl(result.traces, out / f"dc{dc}_traces.jsonl")
                write_metric_csv(
                    result.metrics.compute, out / f"dc{dc}_compute.csv"
                )
                write_metric_csv(
                    result.metrics.storage, out / f"dc{dc}_storage.csv"
                )
            except Exception as error:
                raise ReproError(
                    f"export failed at DC-{dc + 1} after {written} DC(s) "
                    f"were written to {out}: {error}"
                ) from error
            written += 1
            _LOG.info(
                "DC-%d: %d traces, %d compute rows, %d storage rows",
                dc + 1,
                len(result.traces),
                len(result.metrics.compute),
                len(result.metrics.storage),
            )
    finally:
        _finish_telemetry(telemetry, args)
    return 0


def _load_telemetry_file(path: str) -> dict:
    try:
        return json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise ReproError(f"no such telemetry file: {path}")
    except json.JSONDecodeError as error:
        raise ReproError(f"{path} is not valid JSON: {error}")


def _format_labels(labels: dict) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items())) or "-"


def _cmd_obs(args: argparse.Namespace) -> int:
    payload = _load_telemetry_file(args.telemetry_file)

    if args.obs_command == "validate":
        errors = validate_telemetry(payload)
        if errors:
            for problem in errors:
                _LOG.error("%s: %s", args.telemetry_file, problem)
            return 1
        metrics = payload.get("metrics", {})
        series = sum(len(metrics.get(k, [])) for k in metrics)
        print(
            f"ok: schema_version {payload.get('schema_version')}, "
            f"{series} metric series, {len(payload.get('spans', []))} spans"
        )
        return 0

    if args.obs_command == "export":
        text = export_telemetry(payload, args.format)
        if args.output in (None, "-"):
            sys.stdout.write(text)
        else:
            Path(args.output).write_text(text)
            _LOG.info("wrote %s export to %s", args.format, args.output)
        return 0

    # report
    meta = payload.get("meta", {})
    if meta:
        known = (
            "command", "scale", "seed", "workers", "experiment", "version",
        )
        summary = ", ".join(
            f"{key}={meta[key]}" for key in known if meta.get(key) is not None
        )
        if summary:
            print(f"run: {summary}")
        rss = meta.get("peak_rss_bytes")
        if rss:
            print(f"peak rss: {rss / 2**20:.1f} MiB")
        print()

    stages = stage_summary(payload.get("spans", []))
    if stages:
        table = ExperimentResult(
            experiment_id="obs",
            title="per-stage latency breakdown",
            headers=["stage", "count", "total_ms", "mean_ms", "max_ms"],
            rows=[
                [s["name"], s["count"], s["total_ms"], s["mean_ms"],
                 s["max_ms"]]
                for s in stages
            ],
        )
        print(table.render())
        print()

    metrics = payload.get("metrics", {})
    counters = metrics.get("counters", [])
    gauges = [g for g in metrics.get("gauges", []) if g["value"] is not None]
    if counters or gauges:
        table = ExperimentResult(
            experiment_id="obs",
            title="counters and gauges",
            headers=["metric", "labels", "value"],
            rows=[
                [c["name"], _format_labels(c["labels"]), c["value"]]
                for c in counters
            ] + [
                [g["name"], _format_labels(g["labels"]), g["value"]]
                for g in gauges
            ],
        )
        print(table.render())
        print()

    histograms = metrics.get("histograms", [])
    if histograms:
        table = ExperimentResult(
            experiment_id="obs",
            title="histograms (log-bucketed)",
            headers=["metric", "labels", "count", "sum", "min", "max",
                     "buckets"],
            rows=[
                [
                    h["name"],
                    _format_labels(h["labels"]),
                    h["count"],
                    h["sum"],
                    h["min"],
                    h["max"],
                    len(h["buckets"]),
                ]
                for h in histograms
            ],
        )
        print(table.render())
    return 0


# -- parser ------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ebs-repro",
        description="Reproduce the EuroSys '25 EBS traffic-skewness study "
        "on a synthetic fleet.",
    )
    parser.add_argument("--version", action="version", version=__version__)
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="debug logging on stderr",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="errors only on stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all experiment ids")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id, e.g. table3, or 'all'")
    run.add_argument("--scale", choices=_SCALES, default="small")
    run.add_argument("--seed", type=int, default=7)
    run.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="also write the results as JSON (for plotting pipelines)",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process fan-out for the simulation build (across DCs, or "
        "across VDs for a single-DC study); results are identical for "
        "any worker count",
    )
    run.add_argument(
        "--telemetry",
        metavar="FILE",
        default=None,
        help="record run telemetry (metrics + spans) and write it here; "
        "inspect with 'ebs-repro obs report FILE'",
    )
    run.add_argument(
        "--fault-plan",
        metavar="FILE",
        default=None,
        dest="fault_plan",
        help="inject a deterministic fault schedule (JSON, see "
        "docs/fault-injection.md) into every simulated DC",
    )

    export = sub.add_parser(
        "export-dataset", help="simulate and write the datasets to disk"
    )
    export.add_argument("directory")
    export.add_argument("--scale", choices=_SCALES, default="small")
    export.add_argument("--seed", type=int, default=7)
    export.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process fan-out for the simulation build (seed-stable)",
    )
    export.add_argument(
        "--telemetry",
        metavar="FILE",
        default=None,
        help="record run telemetry (metrics + spans) and write it here",
    )
    export.add_argument(
        "--fault-plan",
        metavar="FILE",
        default=None,
        dest="fault_plan",
        help="inject a deterministic fault schedule into the exported build",
    )

    obs = sub.add_parser(
        "obs", help="inspect, export, or validate a telemetry artifact"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    report = obs_sub.add_parser(
        "report", help="render a run summary (stages, counters, histograms)"
    )
    report.add_argument("telemetry_file")

    obs_export = obs_sub.add_parser(
        "export", help="convert the artifact to another format"
    )
    obs_export.add_argument("telemetry_file")
    obs_export.add_argument(
        "--format", choices=EXPORT_FORMATS, default="chrome-trace",
        help="chrome-trace loads at chrome://tracing or ui.perfetto.dev",
    )
    obs_export.add_argument(
        "-o", "--output", default=None,
        help="output file (default: stdout)",
    )

    validate = obs_sub.add_parser(
        "validate", help="check an artifact against the telemetry schema"
    )
    validate.add_argument("telemetry_file")

    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    _configure_logging(args.verbose, args.quiet)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "export-dataset": _cmd_export,
        "obs": _cmd_obs,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        _LOG.error(str(error))
        return 1


if __name__ == "__main__":
    sys.exit(main())
