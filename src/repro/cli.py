"""Command-line interface: run any experiment and print its table.

Usage::

    ebs-repro list
    ebs-repro run table3 --scale small --seed 7
    ebs-repro run all --scale medium
    ebs-repro export-dataset out/ --scale small
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro._version import __version__
from repro.core import Study, StudyConfig, experiment_ids
from repro.trace.io import write_metric_csv, write_trace_jsonl
from repro.util.errors import ReproError

_SCALES = ("small", "medium", "large")


def _study(args: argparse.Namespace) -> Study:
    factory = getattr(StudyConfig, args.scale)
    return Study(factory(seed=args.seed))


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.core.experiments import EXPERIMENTS

    for experiment_id in experiment_ids():
        title = getattr(EXPERIMENTS[experiment_id], "title", "")
        print(f"{experiment_id:12s} {title}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    study = _study(args)
    study.build(workers=args.workers)
    targets = experiment_ids() if args.experiment == "all" else [args.experiment]
    results = []
    for experiment_id in targets:
        result = study.run(experiment_id)
        results.append(result)
        print(result.render())
        print()
    if args.json:
        import json

        payload = {
            "scale": args.scale,
            "seed": args.seed,
            "results": [result.to_dict() for result in results],
        }
        Path(args.json).write_text(json.dumps(payload, indent=2))
        print(f"wrote {len(results)} results to {args.json}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    study = _study(args)
    study.build(workers=args.workers)
    out = Path(args.directory)
    out.mkdir(parents=True, exist_ok=True)
    for result in study.results:
        dc = result.fleet.config.dc_id
        write_trace_jsonl(result.traces, out / f"dc{dc}_traces.jsonl")
        write_metric_csv(result.metrics.compute, out / f"dc{dc}_compute.csv")
        write_metric_csv(result.metrics.storage, out / f"dc{dc}_storage.csv")
        print(f"DC-{dc + 1}: {len(result.traces)} traces, "
              f"{len(result.metrics.compute)} compute rows, "
              f"{len(result.metrics.storage)} storage rows")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ebs-repro",
        description="Reproduce the EuroSys '25 EBS traffic-skewness study "
        "on a synthetic fleet.",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all experiment ids")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id, e.g. table3, or 'all'")
    run.add_argument("--scale", choices=_SCALES, default="small")
    run.add_argument("--seed", type=int, default=7)
    run.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="also write the results as JSON (for plotting pipelines)",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process fan-out for the simulation build (across DCs, or "
        "across VDs for a single-DC study); results are identical for "
        "any worker count",
    )

    export = sub.add_parser(
        "export-dataset", help="simulate and write the datasets to disk"
    )
    export.add_argument("directory")
    export.add_argument("--scale", choices=_SCALES, default="small")
    export.add_argument("--seed", type=int, default=7)
    export.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process fan-out for the simulation build (seed-stable)",
    )

    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "export-dataset": _cmd_export,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
