"""Command-line interface: run any experiment and print its table.

Usage::

    ebs-repro list
    ebs-repro run table3 --scale small --seed 7
    ebs-repro run all --scale medium --telemetry out/telemetry.json
    ebs-repro run table3 -o results.json        # versioned result payload
    ebs-repro balance plan --scale small -o plan.json --save-state state.json
    ebs-repro balance apply --state state.json --plan plan.json
    ebs-repro balance score --state state.json
    ebs-repro live --duration 10 --rate 100x --telemetry out/live.json
    ebs-repro live --rate 4x --serve 127.0.0.1:9377 \
        --slo 'live.decision_latency_us:p99<500'
    ebs-repro top --connect 127.0.0.1:9377
    ebs-repro export-dataset -o out/ --scale small
    ebs-repro sweep fig7a --axis cache_min_traces=300,500 --store out/cache
    ebs-repro obs report out/telemetry.json
    ebs-repro obs export out/telemetry.json --format chrome-trace -o trace.json
    ebs-repro obs validate out/telemetry.json   # also validates result JSON
    ebs-repro obs promcheck scrape.prom         # check a /metrics scrape

Result tables and exported artifacts go to stdout; status and error
reporting goes to stderr through :mod:`logging` (``-v`` for debug,
``-q`` for errors only).
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from pathlib import Path
from typing import List, Optional

from repro._version import __version__
from repro.core import (
    SCALE_NAMES,
    Study,
    StudyConfig,
    experiment_ids,
    results_payload,
    validate_result_payload,
)
from repro.cluster.redundancy import READ_POLICY_NAMES
from repro.core.report import ExperimentResult
from repro.obs.export import EXPORT_FORMATS, export_telemetry
from repro.obs.runtime import (
    Telemetry,
    peak_rss_bytes,
    set_telemetry,
)
from repro.obs.schema import validate_telemetry
from repro.obs.spans import stage_summary
from repro.trace.io import write_metric_csv, write_trace_jsonl
from repro.util.errors import ReproError

_SCALES = SCALE_NAMES
_READ_POLICIES = READ_POLICY_NAMES

#: ``--scale large``/``xlarge`` only run streamed (their working sets
#: defeat a monolithic build); this is the shard size they default to.
_LARGE_DEFAULT_CHUNK_EPOCHS = 4
_STREAMED_ONLY_SCALES = ("large", "xlarge")

_LOG = logging.getLogger("repro.cli")


class _LowercaseLevelFormatter(logging.Formatter):
    """``error: message`` rather than ``ERROR: message``."""

    def format(self, record: logging.LogRecord) -> str:
        record.levelname = record.levelname.lower()
        return super().format(record)


def _configure_logging(verbose: int, quiet: bool) -> None:
    """(Re)install the CLI's stderr handler on the ``repro`` logger."""
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_cli", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    handler._repro_cli = True  # type: ignore[attr-defined]
    handler.setFormatter(_LowercaseLevelFormatter("%(levelname)s: %(message)s"))
    logger.addHandler(handler)
    logger.propagate = False
    if quiet:
        logger.setLevel(logging.ERROR)
    elif verbose:
        logger.setLevel(logging.DEBUG)
    else:
        logger.setLevel(logging.INFO)


def _streaming_options(
    args: argparse.Namespace,
) -> "tuple[Optional[int], Optional[str], Optional[int]]":
    """Resolve ``(chunk_epochs, shard_dir, max_rss_mb)`` for this run.

    Streaming engages when ``--chunk-epochs N`` (N >= 1) is given, when
    ``--shard-dir`` / ``--max-rss-mb`` imply it, or by default at
    ``--scale large``/``xlarge`` (which only work streamed).
    ``--chunk-epochs 0`` explicitly forces the monolithic path.
    """
    chunk = getattr(args, "chunk_epochs", None)
    shard_dir = getattr(args, "shard_dir", None)
    max_rss = getattr(args, "max_rss_mb", None)
    if chunk is not None and chunk < 0:
        raise ReproError(f"--chunk-epochs must be >= 0, got {chunk}")
    if chunk == 0:
        if args.scale in _STREAMED_ONLY_SCALES:
            raise ReproError(
                f"--scale {args.scale} only runs streamed; use a positive "
                "--chunk-epochs (or omit the flag for the default of "
                f"{_LARGE_DEFAULT_CHUNK_EPOCHS})"
            )
        if shard_dir is not None or max_rss is not None:
            raise ReproError(
                "--shard-dir/--max-rss-mb require the streaming engine; "
                "drop --chunk-epochs 0 or pick a positive chunk size"
            )
        return None, None, None
    if chunk is None:
        if (
            args.scale in _STREAMED_ONLY_SCALES
            or shard_dir is not None
            or max_rss is not None
        ):
            chunk = _LARGE_DEFAULT_CHUNK_EPOCHS
        else:
            return None, None, None
    return chunk, shard_dir, max_rss


def _config(args: argparse.Namespace) -> StudyConfig:
    overrides = {}
    duration = getattr(args, "duration_seconds", None)
    if duration is not None:
        if duration <= 0:
            raise ReproError(
                f"--duration-seconds must be positive, got {duration}"
            )
        overrides["duration_seconds"] = duration
    redundancy = getattr(args, "redundancy", None)
    if redundancy is not None:
        overrides["redundancy"] = redundancy
    read_policy = getattr(args, "read_policy", None)
    if read_policy is not None:
        overrides["read_policy"] = read_policy
    config = StudyConfig.scale(args.scale, seed=args.seed, **overrides)
    plan_path = getattr(args, "fault_plan", None)
    if plan_path:
        from dataclasses import replace

        from repro.faults.plan import FaultPlan

        plan = FaultPlan.load(plan_path)
        _LOG.info(
            "loaded fault plan %s (%d event(s), policy=%s)",
            plan_path, len(plan), plan.policy.value,
        )
        config = replace(config, fault_plan=plan)
    return config


def _study(args: argparse.Namespace) -> Study:
    config = _config(args)
    chunk_epochs, shard_dir, max_rss_mb = _streaming_options(args)
    series_format = getattr(args, "series_format", None) or "raw"
    series_dtype = getattr(args, "series_dtype", None) or "float64"
    if chunk_epochs is not None:
        _LOG.info(
            "streaming engine on: chunk_epochs=%d shard_dir=%s "
            "max_rss_mb=%s series=%s/%s (results identical to a "
            "monolithic run at float64)",
            chunk_epochs, shard_dir or "<temp>", max_rss_mb,
            series_format, series_dtype,
        )
    if series_dtype == "float32":
        _LOG.warning(
            "float32 series storage halves shard bytes but changes "
            "result digests; do not compare against float64 baselines"
        )
    return Study(
        config,
        chunk_epochs=chunk_epochs,
        shard_dir=shard_dir,
        max_rss_mb=max_rss_mb,
        series_format=series_format,
        series_dtype=series_dtype,
    )


def _write_digest(study: Study, args: argparse.Namespace) -> None:
    """Write per-DC result digests (the nightly parity job's artifact)."""
    import hashlib

    from repro.engine.digest import result_digest

    per_dc = {
        f"dc{result.fleet.config.dc_id}": result_digest(result)
        for result in study.results
    }
    combined = hashlib.sha256(
        "".join(per_dc[key] for key in sorted(per_dc)).encode()
    ).hexdigest()
    payload = {
        "scale": args.scale,
        "seed": args.seed,
        "chunk_epochs": study.chunk_epochs,
        "series_format": study.series_format,
        "series_dtype": study.series_dtype,
        "per_dc": per_dc,
        "combined": combined,
    }
    Path(args.digest).write_text(json.dumps(payload, indent=2) + "\n")
    _LOG.info("wrote result digest %s to %s", combined[:12], args.digest)


def _results_output_path(args: argparse.Namespace) -> Optional[str]:
    """Resolve ``-o/--output`` with the deprecated ``--json`` alias."""
    output = getattr(args, "output", None)
    legacy = getattr(args, "json", None)
    if output and legacy:
        raise ReproError(
            "--json is a deprecated alias for -o/--output; pass only one"
        )
    if legacy:
        _LOG.warning(
            "--json FILE is deprecated; use -o/--output FILE "
            "(same versioned payload)"
        )
        return legacy
    return output


# -- telemetry lifecycle -----------------------------------------------------


def _start_telemetry(args: argparse.Namespace) -> Optional[Telemetry]:
    """Install an enabled telemetry handle when ``--telemetry`` was given."""
    if not getattr(args, "telemetry", None):
        return None
    telemetry = Telemetry(enabled=True, seed=args.seed)
    set_telemetry(telemetry)
    return telemetry


def _finish_telemetry(
    telemetry: Optional[Telemetry], args: argparse.Namespace
) -> None:
    """Write ``telemetry.json`` (even after a mid-study failure).

    This runs from ``finally`` blocks, so a failing write must never
    mask an in-flight exception: with a failure already propagating the
    write error is logged (naming the artifact that was NOT written)
    and swallowed; on the clean path it raises, chained, so the exit
    code goes non-zero.

    A handle installed without ``--telemetry`` (``live --serve`` enables
    one in memory so the scrape endpoint has metrics to expose) is
    uninstalled but never written.
    """
    if telemetry is None:
        return
    in_flight = sys.exc_info()[1]
    set_telemetry(None)
    if not getattr(args, "telemetry", None):
        return
    telemetry.meta.update(
        {
            "command": args.command,
            "scale": args.scale,
            "seed": args.seed,
            "workers": getattr(args, "workers", 1),
            "experiment": getattr(args, "experiment", None),
            "fault_plan": getattr(args, "fault_plan", None),
            "chunk_epochs": getattr(args, "chunk_epochs", None),
            "series_format": getattr(args, "series_format", None),
            "series_dtype": getattr(args, "series_dtype", None),
            "version": __version__,
            "peak_rss_bytes": peak_rss_bytes(),
        }
    )
    try:
        path = telemetry.write(args.telemetry)
    except OSError as error:
        if in_flight is not None:
            _LOG.error(
                "telemetry was NOT written to %s: %s (keeping the "
                "original failure below)",
                args.telemetry, error,
            )
            return
        raise ReproError(
            f"telemetry was not written to {args.telemetry}: {error}"
        ) from error
    _LOG.info("wrote telemetry to %s", path)


# -- commands ----------------------------------------------------------------


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.core.experiments import EXPERIMENTS

    for experiment_id in experiment_ids():
        title = getattr(EXPERIMENTS[experiment_id], "title", "")
        print(f"{experiment_id:12s} {title}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    output = _results_output_path(args)
    telemetry = _start_telemetry(args)
    results: List[ExperimentResult] = []
    failure: "Optional[tuple[str, BaseException]]" = None
    study: Optional[Study] = None
    try:
        study = _study(args)
        study.build(workers=args.workers)
        if getattr(args, "digest", None):
            _write_digest(study, args)
        targets = (
            experiment_ids() if args.experiment == "all"
            else [args.experiment]
        )
        for experiment_id in targets:
            try:
                result = study.run(experiment_id)
            except Exception as error:  # flush partial results below
                failure = (experiment_id, error)
                break
            results.append(result)
            print(result.render())
            print()
        if output and (results or failure):
            payload = results_payload(
                results,
                scale=args.scale,
                seed=args.seed,
                redundancy=getattr(args, "redundancy", None),
                read_policy=getattr(args, "read_policy", None),
                failed_experiment=failure[0] if failure else None,
            )
            try:
                Path(output).write_text(json.dumps(payload, indent=2))
            except OSError as flush_error:
                # A failed flush must not swallow the experiment failure
                # that got us here: chain the new error onto the original
                # so both tracebacks survive to main().
                if failure is not None:
                    experiment_id, error = failure
                    raise ReproError(
                        f"results were NOT written to {output} "
                        f"({flush_error}) while flushing "
                        f"{len(results)} partial result(s) after "
                        f"experiment {experiment_id!r} failed: {error}"
                    ) from error
                raise ReproError(
                    f"results were NOT written to {output}: {flush_error}"
                ) from flush_error
            _LOG.info("wrote %d result(s) to %s", len(results), output)
    finally:
        if study is not None:
            study.cleanup()
        _finish_telemetry(telemetry, args)
    if failure is not None:
        experiment_id, error = failure
        if not isinstance(error, ReproError):
            raise error
        raise ReproError(
            f"experiment {experiment_id!r} failed after "
            f"{len(results)} completed result(s): {error}"
        ) from error
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    if args.directory and args.output:
        raise ReproError(
            "pass the dataset directory once: either positionally "
            "(deprecated) or via -o/--output"
        )
    directory = args.output or args.directory
    if not directory:
        raise ReproError("export-dataset needs -o/--output DIR")
    if args.directory:
        _LOG.warning(
            "positional DIRECTORY is deprecated; use -o/--output DIR"
        )
    telemetry = _start_telemetry(args)
    written = 0
    study: Optional[Study] = None
    try:
        study = _study(args)
        study.build(workers=args.workers)
        out = Path(directory)
        out.mkdir(parents=True, exist_ok=True)
        for result in study.results:
            dc = result.fleet.config.dc_id
            target = out / f"dc{dc}_traces.jsonl"
            try:
                write_trace_jsonl(result.traces, target)
                target = out / f"dc{dc}_compute.csv"
                write_metric_csv(result.metrics.compute, target)
                target = out / f"dc{dc}_storage.csv"
                write_metric_csv(result.metrics.storage, target)
            except Exception as error:
                # Name the exact artifact that failed; everything before
                # it (this DC included) is already on disk and stays.
                raise ReproError(
                    f"export failed writing {target} (DC-{dc + 1}; "
                    f"{written} DC(s) fully written to {out}): {error}"
                ) from error
            written += 1
            _LOG.info(
                "DC-%d: %d traces, %d compute rows, %d storage rows",
                dc + 1,
                len(result.traces),
                len(result.metrics.compute),
                len(result.metrics.storage),
            )
    finally:
        if study is not None:
            study.cleanup()
        _finish_telemetry(telemetry, args)
    return 0


def _parse_balance_weights(text: str):
    """``--weights NODE:WT:BS`` → :class:`repro.balance.ScoreWeights`."""
    from repro.balance import ScoreWeights

    parts = text.split(":")
    if len(parts) != 3:
        raise ReproError(
            f"--weights takes NODE:WT:BS (e.g. 1:1:2), got {text!r}"
        )
    try:
        node, wt, bs = (float(part) for part in parts)
    except ValueError as error:
        raise ReproError(
            f"--weights components must be numbers: {text!r}"
        ) from error
    return ScoreWeights(node=node, wt=wt, bs=bs)


def _parse_id_csv(text: Optional[str], flag: str) -> "frozenset[int]":
    """A comma-separated id list flag → frozenset of ints."""
    if not text:
        return frozenset()
    try:
        return frozenset(
            int(part) for part in text.split(",") if part.strip()
        )
    except ValueError as error:
        raise ReproError(
            f"{flag} takes comma-separated integer ids, got {text!r}"
        ) from error


def _balance_state(args: argparse.Namespace):
    """Load (``--state``) or simulate (``--scale/--seed/--dc``) a state."""
    from repro.balance import ClusterState

    if args.state:
        try:
            state = ClusterState.load(args.state)
        except OSError as error:
            raise ReproError(
                f"cannot read cluster state {args.state}: {error}"
            ) from error
        _LOG.info(
            "loaded cluster state from %s (%d QPs, %d segments)",
            args.state, state.num_qps, state.num_segments,
        )
    else:
        study = _study(args)
        try:
            study.build(workers=args.workers)
            results = study.results
            if not 0 <= args.dc < len(results):
                raise ReproError(
                    f"--dc must be in [0, {len(results) - 1}] for this "
                    f"study, got {args.dc}"
                )
            state = ClusterState.from_simulation(
                results[args.dc], direction=args.direction
            )
        finally:
            study.cleanup()
    if args.save_state:
        try:
            state.save(args.save_state)
        except OSError as error:
            raise ReproError(
                f"cluster state was NOT written to {args.save_state}: "
                f"{error}"
            ) from error
        _LOG.info("wrote cluster state to %s", args.save_state)
    return state


def _blackout_suppresses_moves(args: argparse.Namespace) -> bool:
    """``--fault-plan`` with a migration blackout implies no segment moves.

    A plan is an *intent to migrate*: emitting segment moves while the
    operator has declared a migration blackout would schedule exactly the
    traffic the blackout forbids, so those moves are suppressed (the
    compute-side families are unaffected — rebinds are node-local).
    """
    if not getattr(args, "fault_plan", None):
        return False
    from repro.faults.plan import FaultKind, FaultPlan

    plan = FaultPlan.load(args.fault_plan)
    blackouts = plan.events_of(FaultKind.MIGRATION_BLACKOUT)
    if not blackouts:
        return False
    _LOG.info(
        "fault plan %s declares %d migration blackout(s); suppressing "
        "segment moves for this plan (implied --no-segment-moves)",
        args.fault_plan, len(blackouts),
    )
    return True


def _print_plan_summary(plan) -> None:
    by_kind = plan.moves_by_kind()
    kinds = ", ".join(
        f"{count} {kind}" for kind, count in sorted(by_kind.items()) if count
    )
    print(
        f"planner {plan.planner}: {plan.num_moves} move(s)"
        + (f" ({kinds})" if kinds else "")
    )
    print(
        f"badness {plan.initial_score:.6f} -> {plan.final_score:.6f} "
        f"(gain {plan.initial_score - plan.final_score:+.6f})"
    )


def _cmd_balance(args: argparse.Namespace) -> int:
    from repro.balance import (
        DEFAULT_MIN_GAIN,
        BalanceConfig,
        MovePlan,
        ScoreWeights,
        TriggerConfig,
        badness,
        dimension_covs,
        fixed_trigger_plan,
        plan_moves,
        state_summary,
    )

    telemetry = _start_telemetry(args)
    try:
        state = _balance_state(args)
        weights = (
            _parse_balance_weights(args.weights)
            if args.weights
            else ScoreWeights()
        )

        if args.mode == "score":
            covs = dimension_covs(state)
            summary = state_summary(state)
            print(
                f"state: {summary['num_qps']} QPs over "
                f"{summary['num_compute_nodes']} nodes x "
                f"{state.workers_per_node} WTs/node, "
                f"{summary['num_segments']} segments over "
                f"{summary['num_block_servers']} BS"
            )
            print(
                f"badness {badness(state, weights):.6f} "
                f"(node {covs['node']:.6f}, wt {covs['wt']:.6f}, "
                f"bs {covs['bs']:.6f})"
            )
            if args.output:
                payload = {
                    "badness": badness(state, weights),
                    "dimension_covs": covs,
                    "weights": weights.to_dict(),
                    "state_digest": state.digest(),
                    "summary": summary,
                }
                Path(args.output).write_text(
                    json.dumps(payload, sort_keys=True, indent=2) + "\n"
                )
                _LOG.info("wrote score report to %s", args.output)
            return 0

        no_segment_moves = (
            args.no_segment_moves or _blackout_suppresses_moves(args)
        )

        if args.mode == "plan":
            exclusions = {
                "exclude_qps": _parse_id_csv(args.exclude_qps, "--exclude-qps"),
                "exclude_vds": _parse_id_csv(args.exclude_vds, "--exclude-vds"),
                "exclude_segments": _parse_id_csv(
                    args.exclude_segments, "--exclude-segments"
                ),
            }
            if args.planner == "fixed-trigger":
                if any(exclusions.values()) or args.no_vd_rehomes:
                    raise ReproError(
                        "--exclude-* and --no-vd-rehomes configure the "
                        "greedy planner; the fixed-trigger planner has "
                        "no pinning (that asymmetry is the point of the "
                        "head-to-head)"
                    )
                plan = fixed_trigger_plan(
                    state,
                    TriggerConfig(
                        trigger_ratio=args.trigger_ratio,
                        weights=weights,
                        no_qp_rebinds=args.no_qp_rebinds,
                        no_segment_moves=no_segment_moves,
                    ),
                )
            else:
                plan = plan_moves(
                    state,
                    BalanceConfig(
                        weights=weights,
                        min_gain=(
                            args.min_gain
                            if args.min_gain is not None
                            else DEFAULT_MIN_GAIN
                        ),
                        max_moves=args.max_moves,
                        no_qp_rebinds=args.no_qp_rebinds,
                        no_vd_rehomes=args.no_vd_rehomes,
                        no_segment_moves=no_segment_moves,
                        **exclusions,
                    ),
                )
            _print_plan_summary(plan)
            if args.output:
                try:
                    plan.save(args.output)
                except OSError as error:
                    raise ReproError(
                        f"move plan was NOT written to {args.output}: "
                        f"{error}"
                    ) from error
                _LOG.info("wrote move plan to %s", args.output)
            return 0

        # apply
        if not args.plan_file:
            raise ReproError(
                "balance apply needs --plan FILE "
                "(produce one with 'ebs-repro balance plan -o FILE')"
            )
        try:
            plan = MovePlan.load(args.plan_file)
        except OSError as error:
            raise ReproError(
                f"cannot read move plan {args.plan_file}: {error}"
            ) from error
        applied = plan.apply_to(state.copy())
        print(
            f"applied {plan.num_moves} move(s) from {args.plan_file}: "
            f"badness {plan.initial_score:.6f} -> {plan.final_score:.6f}"
        )
        # Replan against the applied state with the plan's own embedded
        # config: a full greedy plan must leave nothing on the table
        # (the idempotence contract the property suite pins).
        if plan.planner == "greedy":
            remaining = plan_moves(
                applied, BalanceConfig.from_dict(plan.config)
            )
        elif plan.planner == "fixed_trigger":
            remaining = fixed_trigger_plan(
                applied, TriggerConfig.from_dict(plan.config)
            )
        else:
            raise ReproError(f"unknown planner {plan.planner!r} in plan")
        print(f"replan with embedded config: {remaining.num_moves} move(s)")
        if args.output:
            try:
                applied.save(args.output)
            except OSError as error:
                raise ReproError(
                    f"applied state was NOT written to {args.output}: "
                    f"{error}"
                ) from error
            _LOG.info("wrote applied cluster state to %s", args.output)
        return 0
    finally:
        _finish_telemetry(telemetry, args)


def _parse_rate(text: str) -> Optional[float]:
    """``--rate`` accepts a number, an ``NNNx`` multiplier, or ``max``."""
    if text.lower() in ("max", "none"):
        return None
    raw = text[:-1] if text.lower().endswith("x") else text
    try:
        rate = float(raw)
    except ValueError:
        raise ReproError(
            f"--rate must be a number, 'NNNx', or 'max'; got {text!r}"
        )
    if rate <= 0:
        raise ReproError(f"--rate must be > 0, got {text!r}")
    return rate


def _parse_serve(text: str) -> "tuple[str, int]":
    """``--serve`` accepts ``HOST:PORT``, ``:PORT``, or bare ``PORT``."""
    host, _, port_text = text.rpartition(":")
    host = host or "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise ReproError(
            f"--serve must be HOST:PORT, :PORT, or PORT; got {text!r}"
        )
    if not 0 <= port <= 65535:
        raise ReproError(f"--serve port out of range: {text!r}")
    return host, port


def _cmd_live(args: argparse.Namespace) -> int:
    from repro.live import LiveConfig, report_to_dict, run_live

    rate = _parse_rate(args.rate)
    serve = _parse_serve(args.serve) if args.serve else None
    telemetry = _start_telemetry(args)
    if serve is not None and telemetry is None:
        # The scrape endpoint needs live metrics even when no artifact
        # was requested: install an in-memory handle (never written).
        telemetry = Telemetry(enabled=True, seed=args.seed)
        set_telemetry(telemetry)
        _LOG.info(
            "--serve without --telemetry: metrics kept in memory only"
        )
    slo_section = None
    try:
        config = LiveConfig(
            scale=args.scale,
            seed=args.seed,
            duration_seconds=args.duration,
            rate=rate,
            window_seconds=args.window_seconds,
            batch_events=args.batch_events,
            ring_capacity=args.ring_capacity,
            overflow=args.overflow,
            loops=args.loops,
            serve=serve,
            recorder_interval=args.recorder_interval,
            slos=tuple(args.slo),
            slo_budget=args.slo_budget,
        )
        report = run_live(
            config,
            on_server=lambda server: _LOG.info(
                "obs server listening on %s "
                "(GET /metrics /snapshot /healthz /recorder)",
                server.url,
            ),
        )
        if telemetry is not None and config.slos:
            slo_section = telemetry.snapshot().get("slo")
    finally:
        _finish_telemetry(telemetry, args)
    _LOG.info(
        "live: %d event(s) in %.2fs wall (%.0f events/sec), %d window(s), "
        "%d decision(s), %d dropped, max decision latency %dus",
        report.events,
        report.wall_seconds,
        report.events_per_sec,
        len(report.windows),
        len(report.decisions),
        report.events_dropped,
        report.decision_latency_max_us,
    )
    table = ExperimentResult(
        experiment_id="live",
        title="rolling windowed skew (online)",
        headers=["window", "events", "GiB", "ccr-hot", "p2a", "cov", "w/r"],
        rows=[
            [
                f"[{w.window.start},{w.window.end})",
                w.events,
                round(w.total_bytes / 2**30, 3),
                round(w.ccr_hot, 4),
                round(w.p2a, 4),
                round(w.cov, 4),
                round(w.wr_ratio, 4),
            ]
            for w in report.windows
        ],
    )
    print(table.render())
    print()
    if report.top_segments:
        hot = ExperimentResult(
            experiment_id="live",
            title="hot segments (Space-Saving top-K)",
            headers=["segment", "bytes", "error_bound"],
            rows=[
                [entry["key"], round(entry["count"]), round(entry["error"])]
                for entry in report.top_segments
            ],
        )
        print(hot.render())
    if slo_section and slo_section.get("objectives"):
        print()
        slo_table = ExperimentResult(
            experiment_id="live",
            title="SLO objectives (per recorder interval)",
            headers=["slo", "intervals", "violations", "burn_rate", "status"],
            rows=[
                [
                    o["slo"],
                    o["intervals"],
                    o["violations"],
                    round(o["burn_rate"], 3),
                    "VIOLATING" if o["violating_now"] else "ok",
                ]
                for o in slo_section["objectives"]
            ],
        )
        print(slo_table.render())
        for objective in slo_section["objectives"]:
            for event in objective.get("events", []):
                _LOG.warning(
                    "slo %s crossed to %s at interval %s (value %.4g, "
                    "threshold %g)",
                    event["slo"], event["crossed"], event["interval"],
                    event["value"], event["threshold"],
                )
    if args.output:
        try:
            Path(args.output).write_text(
                json.dumps(report_to_dict(config, report), indent=2) + "\n"
            )
        except OSError as error:
            raise ReproError(
                f"live report was NOT written to {args.output}: {error}"
            ) from error
        _LOG.info("wrote live report to %s", args.output)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import shutil
    import tempfile

    from repro.sweep import SweepRunner, SweepSpec, parse_axes

    if args.chunk_epochs is not None and args.chunk_epochs < 0:
        raise ReproError(
            f"--chunk-epochs must be >= 0, got {args.chunk_epochs}"
        )
    experiments = (
        experiment_ids()
        if args.experiments == ["all"]
        else args.experiments
    )
    spec = SweepSpec(
        base=_config(args),
        axes=parse_axes(args.axis),
        experiments=tuple(experiments),
    )
    store_dir = args.store
    temp_store: Optional[str] = None
    if store_dir is None:
        temp_store = tempfile.mkdtemp(prefix="ebs-repro-sweep-")
        store_dir = temp_store
        _LOG.info(
            "no --store given; using throwaway cache %s (pass --store DIR "
            "to share work across sweeps and resume after interrupts)",
            store_dir,
        )
    telemetry = _start_telemetry(args)
    try:
        runner = SweepRunner(
            spec,
            store_dir,
            workers=args.workers,
            retries=args.retries,
            chunk_epochs=args.chunk_epochs or None,
        )
        outcome = runner.run()
    finally:
        _finish_telemetry(telemetry, args)
        if temp_store is not None:
            shutil.rmtree(temp_store, ignore_errors=True)
    for table in outcome.tables():
        print(table.render())
        print()
    stats = outcome.stats
    _LOG.info(
        "sweep: %d point(s), %d node(s) (%d hit, %d executed, %d skipped, "
        "%d retried), hit rate %.0f%%, %.2fs, digest %s",
        len(outcome.points),
        stats.total,
        stats.hits,
        stats.executed,
        stats.skipped,
        stats.retries,
        100.0 * stats.hit_rate,
        outcome.elapsed_seconds,
        outcome.combined_digest[:12],
    )
    if args.output:
        Path(args.output).write_text(
            json.dumps(outcome.to_dict(), indent=2) + "\n"
        )
        _LOG.info("wrote sweep outcome to %s", args.output)
    return 0


def _load_telemetry_file(path: str) -> dict:
    try:
        return json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise ReproError(f"no such telemetry file: {path}")
    except json.JSONDecodeError as error:
        raise ReproError(f"{path} is not valid JSON: {error}")


def _format_labels(labels: dict) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items())) or "-"


def _metric_list(metrics: dict, kind: str) -> list:
    """A metric kind's series, or [] when absent / not a list.

    The report path renders whatever it can from an artifact even when
    validation would flag it; malformed kinds degrade to empty tables
    instead of tracebacks.
    """
    entries = metrics.get(kind, [])
    return entries if isinstance(entries, list) else []


def _cmd_obs_promcheck(args: argparse.Namespace) -> int:
    """Validate a Prometheus text-exposition document (file or stdin)."""
    from repro.obs.promtext import parse_promtext, validate_promtext

    if args.promtext_file == "-":
        text = sys.stdin.read()
    else:
        try:
            text = Path(args.promtext_file).read_text()
        except OSError as error:
            raise ReproError(
                f"cannot read {args.promtext_file}: {error}"
            ) from error
    problems = validate_promtext(text)
    if problems:
        for problem in problems:
            _LOG.error("%s: %s", args.promtext_file, problem)
        return 1
    print(f"ok: {len(parse_promtext(text))} sample(s)")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    if args.obs_command == "promcheck":
        return _cmd_obs_promcheck(args)
    payload = _load_telemetry_file(args.telemetry_file)

    if args.obs_command == "validate":
        if (
            isinstance(payload, dict)
            and "result_schema_version" in payload
        ):
            # ``ebs-repro run -o results.json`` artifact, not telemetry.
            errors = validate_result_payload(payload)
            if errors:
                for problem in errors:
                    _LOG.error("%s: %s", args.telemetry_file, problem)
                return 1
            print(
                f"ok: result_schema_version "
                f"{payload['result_schema_version']}, "
                f"{len(payload.get('results', []))} result(s)"
            )
            return 0
        errors = validate_telemetry(payload)
        if errors:
            for problem in errors:
                _LOG.error("%s: %s", args.telemetry_file, problem)
            return 1
        metrics = payload.get("metrics", {})
        # Count only list-valued series: a stray scalar under 'metrics'
        # is already reported by validate_telemetry above, and a payload
        # with zero spans / missing kinds must not crash the summary
        # (regression: this used to call len() on non-list values).
        series = sum(
            len(entries)
            for entries in metrics.values()
            if isinstance(entries, list)
        )
        spans = payload.get("spans") or []
        print(
            f"ok: schema_version {payload.get('schema_version')}, "
            f"{series} metric series, {len(spans)} spans"
        )
        return 0

    if args.obs_command == "export":
        text = export_telemetry(payload, args.format)
        if args.output in (None, "-"):
            sys.stdout.write(text)
        else:
            Path(args.output).write_text(text)
            _LOG.info("wrote %s export to %s", args.format, args.output)
        return 0

    # report
    meta = payload.get("meta", {})
    if meta:
        known = (
            "command", "scale", "seed", "workers", "experiment", "version",
        )
        summary = ", ".join(
            f"{key}={meta[key]}" for key in known if meta.get(key) is not None
        )
        if summary:
            print(f"run: {summary}")
        rss = meta.get("peak_rss_bytes")
        if rss:
            print(f"peak rss: {rss / 2**20:.1f} MiB")
        print()

    stages = stage_summary(payload.get("spans") or [])
    if stages:
        table = ExperimentResult(
            experiment_id="obs",
            title="per-stage latency breakdown",
            headers=["stage", "count", "total_ms", "mean_ms", "p50_ms",
                     "p95_ms", "p99_ms", "max_ms"],
            rows=[
                [s["name"], s["count"], s["total_ms"], s["mean_ms"],
                 s["p50_ms"], s["p95_ms"], s["p99_ms"], s["max_ms"]]
                for s in stages
            ],
        )
        print(table.render())
        print()

    metrics = payload.get("metrics", {})
    if not isinstance(metrics, dict):
        metrics = {}
    counters = _metric_list(metrics, "counters")
    gauges = [
        g for g in _metric_list(metrics, "gauges")
        if g.get("value") is not None
    ]
    if counters or gauges:
        table = ExperimentResult(
            experiment_id="obs",
            title="counters and gauges",
            headers=["metric", "labels", "value"],
            rows=[
                [c["name"], _format_labels(c["labels"]), c["value"]]
                for c in counters
            ] + [
                [g["name"], _format_labels(g["labels"]), g["value"]]
                for g in gauges
            ],
        )
        print(table.render())
        print()

    histograms = _metric_list(metrics, "histograms")
    if histograms:
        table = ExperimentResult(
            experiment_id="obs",
            title="histograms (log-bucketed)",
            headers=["metric", "labels", "count", "sum", "min", "max",
                     "buckets"],
            rows=[
                [
                    h["name"],
                    _format_labels(h["labels"]),
                    h["count"],
                    h["sum"],
                    h["min"],
                    h["max"],
                    len(h["buckets"]),
                ]
                for h in histograms
            ],
        )
        print(table.render())

    recorder = payload.get("recorder")
    if isinstance(recorder, dict):
        intervals = recorder.get("intervals") or []
        print()
        print(
            f"flight recorder: {recorder.get('samples_taken', 0)} sample(s) "
            f"at {recorder.get('interval_seconds')}s "
            f"({recorder.get('evicted', 0)} evicted, "
            f"capacity {recorder.get('capacity')})"
        )
        if intervals:
            last = intervals[-1]
            rates = ", ".join(
                f"{key}={value:.0f}/s"
                for key, value in sorted(last.get("rates", {}).items())
                if value
            )
            if rates:
                print(f"last interval rates: {rates}")

    slo = payload.get("slo")
    if isinstance(slo, dict) and slo.get("objectives"):
        print()
        table = ExperimentResult(
            experiment_id="obs",
            title="SLO objectives",
            headers=["slo", "intervals", "violations", "burn_rate",
                     "status"],
            rows=[
                [
                    o.get("slo"),
                    o.get("intervals"),
                    o.get("violations"),
                    round(o.get("burn_rate", 0.0), 3),
                    "VIOLATING" if o.get("violating_now") else "ok",
                ]
                for o in slo["objectives"]
            ],
        )
        print(table.render())
    return 0


def _http_get(url: str, timeout: float = 5.0) -> "tuple[int, bytes]":
    """GET ``url``; returns (status, body) — non-2xx is not an exception."""
    import urllib.error
    import urllib.request

    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def _render_top_frame(
    base: str, iteration: int, interval: float
) -> "list[str]":
    """One ``ebs-repro top`` frame, as lines (fetches all endpoints)."""
    from repro.obs.promtext import parse_promtext

    lines: List[str] = [
        f"ebs-repro top — {base} — every {interval:g}s — frame {iteration}",
        "",
    ]
    status, body = _http_get(base + "/healthz")
    health = json.loads(body)
    verdict = "HEALTHY" if health.get("healthy") else "UNHEALTHY"
    running = "running" if health.get("running") else "not running"
    lines.append(f"health: {verdict} ({status}) — pipeline {running}")
    for name, stage in sorted((health.get("stages") or {}).items()):
        age = stage.get("last_beat_age_s")
        lines.append(
            f"  stage {name:8s} {'alive' if stage.get('alive') else 'done ':5s}"
            f" last beat {age if age is not None else '-'}s ago"
        )
    for name, ring in sorted((health.get("rings") or {}).items()):
        state = "closed" if ring.get("closed") else "open"
        lines.append(f"  ring  {name:16s} depth {ring.get('depth')} ({state})")
    for error in health.get("errors") or []:
        lines.append(f"  error: {error}")

    status, body = _http_get(base + "/recorder")
    if status == 200:
        recorder = json.loads(body)
        intervals = recorder.get("intervals") or []
        lines.append("")
        lines.append(
            f"recorder: {recorder.get('samples_taken', 0)} sample(s), "
            f"{len(intervals)} kept"
        )
        if intervals:
            last = intervals[-1]
            for key, value in sorted(last.get("rates", {}).items()):
                lines.append(f"  {key:44s} {value:12.1f}/s")
            for key, value in sorted(last.get("probes", {}).items()):
                lines.append(f"  {key:44s} {value:12.0f}")

    slo = health.get("slo")
    if slo and slo.get("objectives"):
        lines.append("")
        lines.append("slo:")
        for objective in slo["objectives"]:
            state = "VIOLATING" if objective.get("violating_now") else "ok"
            lines.append(
                f"  {objective.get('slo'):44s} burn "
                f"{objective.get('burn_rate', 0.0):8.3f}  {state}"
            )

    status, body = _http_get(base + "/metrics")
    samples = parse_promtext(body.decode("utf-8"))
    counters = [s for s in samples if s.name.endswith("_total")]
    if counters:
        lines.append("")
        lines.append("counters:")
        for sample in counters[:12]:
            labels = ",".join(f"{k}={v}" for k, v in sample.labels)
            label_text = f"{{{labels}}}" if labels else ""
            lines.append(
                f"  {sample.name + label_text:44s} {sample.value:12.0f}"
            )
    return lines


def _cmd_top(args: argparse.Namespace) -> int:
    """Live dashboard: poll a ``--serve`` endpoint and render a view."""
    import time as _time
    import urllib.error

    host, port = _parse_serve(args.connect)
    base = f"http://{host}:{port}"
    interval = args.interval
    if interval <= 0:
        raise ReproError(f"--interval must be > 0, got {interval}")
    iteration = 0
    connected = False
    try:
        while True:
            iteration += 1
            try:
                lines = _render_top_frame(base, iteration, interval)
            except (urllib.error.URLError, ConnectionError, OSError) as error:
                if not connected:
                    raise ReproError(
                        f"cannot connect to {base}: {error} — is "
                        "'ebs-repro live --serve' running?"
                    ) from error
                print(f"server at {base} went away (run finished?)")
                return 0
            connected = True
            if not args.no_clear:
                sys.stdout.write("\x1b[2J\x1b[H")
            print("\n".join(lines))
            sys.stdout.flush()
            if args.iterations and iteration >= args.iterations:
                return 0
            _time.sleep(interval)
    except KeyboardInterrupt:
        print()
        return 0


# -- parser ------------------------------------------------------------------


def _add_redundancy_flags(command: argparse.ArgumentParser) -> None:
    """Redundancy flags shared by the study-building subcommands."""
    command.add_argument(
        "--redundancy",
        metavar="SPEC",
        default=None,
        help="place every segment redundantly: 'r=N' for N-way "
        "replication or 'ec=K+M' for a (K, M) erasure code; 'r=1' with "
        "the primary policy reproduces the single-copy study bit-for-bit",
    )
    command.add_argument(
        "--read-policy",
        choices=_READ_POLICIES,
        default=None,
        dest="read_policy",
        help="how reads spread over a segment's copies (default: "
        "primary; ignored without --redundancy r>1 / ec)",
    )


def _add_streaming_flags(command: argparse.ArgumentParser) -> None:
    """Out-of-core execution flags shared by ``run`` and ``export-dataset``."""
    command.add_argument(
        "--chunk-epochs",
        type=int,
        default=None,
        metavar="K",
        dest="chunk_epochs",
        help="stream the simulation in time shards of K epochs "
        "(1 epoch = 60 simulated seconds); results are byte-identical "
        "to a monolithic run for any K.  0 forces the monolithic path; "
        f"--scale large defaults to {_LARGE_DEFAULT_CHUNK_EPOCHS}",
    )
    command.add_argument(
        "--max-rss-mb",
        type=int,
        default=None,
        metavar="MB",
        dest="max_rss_mb",
        help="advisory memory ceiling for the streaming engine: VD "
        "batches are sized so one batch of series stays well inside it "
        "(implies streaming; never changes results)",
    )
    command.add_argument(
        "--shard-dir",
        metavar="DIR",
        default=None,
        dest="shard_dir",
        help="directory for the on-disk shard store (implies streaming; "
        "default: a per-run temp dir, purged after the run)",
    )
    command.add_argument(
        "--series-format",
        choices=("raw", "npz"),
        default="raw",
        dest="series_format",
        help="shard-store series format: 'raw' (one .npy block per "
        "shard/batch, memory-mapped zero-copy reads; the default) or "
        "'npz' (the legacy zip-framed format).  Digest-identical at "
        "float64",
    )
    command.add_argument(
        "--series-dtype",
        choices=("float64", "float32"),
        default="float64",
        dest="series_dtype",
        help="on-disk series dtype for raw stores; float32 halves shard "
        "bytes but is lossy: results stay deterministic, digests differ "
        "from float64 runs (re-pin any golden digest before relying on "
        "them)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ebs-repro",
        description="Reproduce the EuroSys '25 EBS traffic-skewness study "
        "on a synthetic fleet.",
    )
    parser.add_argument("--version", action="version", version=__version__)
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="debug logging on stderr",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="errors only on stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all experiment ids")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id, e.g. table3, or 'all'")
    run.add_argument("--scale", choices=_SCALES, default="small")
    run.add_argument("--seed", type=int, default=7)
    run.add_argument(
        "--duration-seconds",
        type=int,
        default=None,
        metavar="SECONDS",
        dest="duration_seconds",
        help="override the scale preset's simulated duration (e.g. a "
        "tiny-duration xlarge smoke run); same fleet, shorter horizon",
    )
    run.add_argument(
        "-o",
        "--output",
        metavar="FILE",
        default=None,
        help="write the results as a versioned JSON payload "
        "(result_schema_version; check with 'ebs-repro obs validate')",
    )
    run.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="deprecated alias for -o/--output",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process fan-out for the simulation build (across DCs, or "
        "across VDs for a single-DC study); results are identical for "
        "any worker count",
    )
    run.add_argument(
        "--telemetry",
        metavar="FILE",
        default=None,
        help="record run telemetry (metrics + spans) and write it here; "
        "inspect with 'ebs-repro obs report FILE'",
    )
    run.add_argument(
        "--fault-plan",
        metavar="FILE",
        default=None,
        dest="fault_plan",
        help="inject a deterministic fault schedule (JSON, see "
        "docs/fault-injection.md) into every simulated DC",
    )
    _add_redundancy_flags(run)
    _add_streaming_flags(run)
    run.add_argument(
        "--digest",
        metavar="FILE",
        default=None,
        help="write per-DC SHA-256 result digests as JSON; two runs with "
        "the same seed must produce identical digests regardless of "
        "--chunk-epochs/--workers (the nightly parity job diffs these)",
    )

    live = sub.add_parser(
        "live",
        help="run the live ingestion service on a bounded synthetic replay",
    )
    live.add_argument("--scale", choices=_SCALES, default="small")
    live.add_argument("--seed", type=int, default=7)
    live.add_argument(
        "--duration",
        type=int,
        default=60,
        metavar="SECONDS",
        help="trace seconds to synthesize and replay (per loop)",
    )
    live.add_argument(
        "--rate",
        default="max",
        metavar="MULT",
        help="replay speed over trace time: a number, 'NNNx', or 'max' "
        "(as fast as the pipeline accepts; default)",
    )
    live.add_argument(
        "--window",
        type=int,
        default=10,
        dest="window_seconds",
        metavar="SECONDS",
        help="rolling-statistics window, in trace seconds",
    )
    live.add_argument(
        "--batch-events",
        type=int,
        default=2048,
        dest="batch_events",
        metavar="N",
        help="events per injected batch (the pipeline's unit of transfer)",
    )
    live.add_argument(
        "--ring-capacity",
        type=int,
        default=64,
        dest="ring_capacity",
        metavar="N",
        help="event ring capacity, in batches (the backpressure bound)",
    )
    live.add_argument(
        "--overflow",
        choices=("block", "drop"),
        default="block",
        help="full-ring policy: block the injector (lossless) or drop "
        "batches with accounting",
    )
    live.add_argument(
        "--loops",
        type=int,
        default=1,
        help="replay the trace N times back to back (benchmark mode)",
    )
    live.add_argument(
        "-o",
        "--output",
        metavar="FILE",
        default=None,
        help="write the live report (windows, decisions, top segments) "
        "as JSON",
    )
    live.add_argument(
        "--telemetry",
        metavar="FILE",
        default=None,
        help="record live.* metrics (queue depth, decision latency, "
        "events/sec) and write them here",
    )
    live.add_argument(
        "--serve",
        metavar="HOST:PORT",
        default=None,
        help="expose GET /metrics (Prometheus text), /snapshot, /healthz "
        "and /recorder over HTTP while the replay runs; port 0 picks a "
        "free port (logged).  Watch it with 'ebs-repro top --connect'",
    )
    live.add_argument(
        "--recorder-interval",
        type=float,
        default=1.0,
        dest="recorder_interval",
        metavar="SECONDS",
        help="flight-recorder sampling interval (rates and queue depths "
        "per interval, kept in a bounded ring in the telemetry artifact)",
    )
    live.add_argument(
        "--slo",
        action="append",
        default=[],
        metavar="SPEC",
        help="declare an SLO, evaluated per recorder interval: "
        "'live.decision_latency_us:p99<500' (histogram quantile) or "
        "'live.events_dropped/live.events_total<0.01' (rate ratio); "
        "repeatable",
    )
    live.add_argument(
        "--slo-budget",
        type=float,
        default=0.01,
        dest="slo_budget",
        metavar="FRACTION",
        help="error budget: fraction of intervals allowed to violate "
        "before burn_rate exceeds 1",
    )

    top = sub.add_parser(
        "top",
        help="live dashboard: poll a --serve endpoint and render the "
        "pipeline's health, rates, and SLO burn in the terminal",
    )
    top.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="address of a running 'ebs-repro live --serve HOST:PORT'",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="poll/refresh interval",
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=0,
        metavar="N",
        help="stop after N frames (default: until interrupted or the "
        "server goes away)",
    )
    top.add_argument(
        "--no-clear",
        action="store_true",
        dest="no_clear",
        help="append frames instead of clearing the screen (script/CI "
        "friendly)",
    )

    balance = sub.add_parser(
        "balance",
        help="hbal-style global balancing: plan, apply, or score a "
        "cluster snapshot",
    )
    balance.add_argument(
        "mode",
        choices=("plan", "apply", "score"),
        help="plan: compute a move plan; apply: replay a saved plan "
        "onto the state (verified); score: report badness only "
        "(dry run)",
    )
    balance.add_argument("--scale", choices=_SCALES, default="small")
    balance.add_argument("--seed", type=int, default=7)
    balance.add_argument(
        "--dc",
        type=int,
        default=0,
        help="which simulated DC to snapshot (0-based)",
    )
    balance.add_argument(
        "--direction",
        choices=("read", "write", "total"),
        default="total",
        help="traffic direction the utilizations aggregate",
    )
    balance.add_argument(
        "--state",
        metavar="FILE",
        default=None,
        help="load the ClusterState snapshot from FILE instead of "
        "simulating one (fast path; see --save-state)",
    )
    balance.add_argument(
        "--save-state",
        metavar="FILE",
        default=None,
        dest="save_state",
        help="write the (loaded or simulated) snapshot as canonical JSON",
    )
    balance.add_argument(
        "--plan",
        metavar="FILE",
        default=None,
        dest="plan_file",
        help="(apply) the move plan to replay; its pinned state digest "
        "and every per-move score are re-verified exactly",
    )
    balance.add_argument(
        "--planner",
        choices=("greedy", "fixed-trigger"),
        default="greedy",
        help="greedy: hbal-style descent to the min-gain floor; "
        "fixed-trigger: the paper's threshold mechanisms (§4.3/§6)",
    )
    balance.add_argument(
        "--min-gain",
        type=float,
        default=None,
        dest="min_gain",
        metavar="GAIN",
        help="stop when the best move's badness gain drops below GAIN",
    )
    balance.add_argument(
        "--max-moves",
        type=int,
        default=128,
        dest="max_moves",
        metavar="N",
        help="plan at most N moves",
    )
    balance.add_argument(
        "--weights",
        metavar="NODE:WT:BS",
        default=None,
        help="badness dimension weights (default 1:1:1)",
    )
    balance.add_argument(
        "--trigger-ratio",
        type=float,
        default=1.2,
        dest="trigger_ratio",
        metavar="RATIO",
        help="(fixed-trigger) hot/cold ratio that fires a trigger",
    )
    balance.add_argument(
        "--no-qp-rebinds",
        action="store_true",
        dest="no_qp_rebinds",
        help="exclude the QP->WT rebind move family",
    )
    balance.add_argument(
        "--no-vd-rehomes",
        action="store_true",
        dest="no_vd_rehomes",
        help="exclude the VD re-home move family (greedy only)",
    )
    balance.add_argument(
        "--no-segment-moves",
        action="store_true",
        dest="no_segment_moves",
        help="exclude the segment-migration move family",
    )
    balance.add_argument(
        "--exclude-qps",
        metavar="IDS",
        default=None,
        dest="exclude_qps",
        help="comma-separated QP ids pinned in place (greedy only)",
    )
    balance.add_argument(
        "--exclude-vds",
        metavar="IDS",
        default=None,
        dest="exclude_vds",
        help="comma-separated VD ids pinned in place, QPs included "
        "(greedy only)",
    )
    balance.add_argument(
        "--exclude-segments",
        metavar="IDS",
        default=None,
        dest="exclude_segments",
        help="comma-separated segment ids pinned in place (greedy only)",
    )
    balance.add_argument(
        "--fault-plan",
        metavar="FILE",
        default=None,
        dest="fault_plan",
        help="fold a fault schedule into the simulated build; a "
        "migration_blackout event also suppresses segment moves "
        "(see docs/fault-injection.md)",
    )
    balance.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process fan-out for the simulation build (seed-stable)",
    )
    balance.add_argument(
        "--telemetry",
        metavar="FILE",
        default=None,
        help="record balance.* telemetry (spans, counters, gain "
        "histogram) and write it here",
    )
    balance.add_argument(
        "-o",
        "--output",
        metavar="FILE",
        default=None,
        help="plan: write the move plan JSON; apply: write the applied "
        "state; score: write the score report",
    )
    _add_redundancy_flags(balance)
    _add_streaming_flags(balance)

    export = sub.add_parser(
        "export-dataset", help="simulate and write the datasets to disk"
    )
    export.add_argument(
        "directory",
        nargs="?",
        default=None,
        help="deprecated positional form of -o/--output",
    )
    export.add_argument(
        "-o",
        "--output",
        metavar="DIR",
        default=None,
        help="output directory for the exported datasets",
    )
    export.add_argument("--scale", choices=_SCALES, default="small")
    export.add_argument("--seed", type=int, default=7)
    export.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process fan-out for the simulation build (seed-stable)",
    )
    export.add_argument(
        "--telemetry",
        metavar="FILE",
        default=None,
        help="record run telemetry (metrics + spans) and write it here",
    )
    export.add_argument(
        "--fault-plan",
        metavar="FILE",
        default=None,
        dest="fault_plan",
        help="inject a deterministic fault schedule into the exported build",
    )
    _add_redundancy_flags(export)
    _add_streaming_flags(export)

    sweep = sub.add_parser(
        "sweep",
        help="run a parameter sweep through the content-addressed cache",
    )
    sweep.add_argument(
        "experiments",
        nargs="+",
        metavar="EXPERIMENT",
        help="experiment id(s) to run at every sweep point, or 'all'",
    )
    sweep.add_argument(
        "--axis",
        action="append",
        default=[],
        metavar="FIELD=V1,V2",
        help="sweep one StudyConfig field over comma-separated values "
        "(repeatable; ':' builds tuples, KiB/MiB/GiB suffixes allowed), "
        "e.g. --axis cache_min_traces=300,500 "
        "--axis lending_rates=0.1:0.3,0.2:0.5",
    )
    sweep.add_argument("--scale", choices=_SCALES, default="small")
    sweep.add_argument("--seed", type=int, default=7)
    sweep.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="artifact-store directory; reuse it across sweeps so "
        "overlapping points share work and interrupted runs resume "
        "(default: throwaway temp dir)",
    )
    sweep.add_argument(
        "-o",
        "--output",
        metavar="FILE",
        default=None,
        help="write the sweep outcome (grids + cache stats) as JSON",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process fan-out across ready DAG nodes; results are "
        "identical for any worker count",
    )
    sweep.add_argument(
        "--retries",
        type=int,
        default=1,
        help="per-node retry budget for transient failures",
    )
    sweep.add_argument(
        "--chunk-epochs",
        type=int,
        default=None,
        metavar="K",
        dest="chunk_epochs",
        help="run build nodes through the streaming engine in K-epoch "
        "shards (cache keys and results are unchanged)",
    )
    sweep.add_argument(
        "--telemetry",
        metavar="FILE",
        default=None,
        help="record sweep telemetry (sweep.* metrics + spans) here",
    )
    sweep.add_argument(
        "--fault-plan",
        metavar="FILE",
        default=None,
        dest="fault_plan",
        help="inject a deterministic fault schedule into every point's "
        "simulated DCs (folded into the cache keys)",
    )

    obs = sub.add_parser(
        "obs", help="inspect, export, or validate a telemetry artifact"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    report = obs_sub.add_parser(
        "report", help="render a run summary (stages, counters, histograms)"
    )
    report.add_argument("telemetry_file")

    obs_export = obs_sub.add_parser(
        "export", help="convert the artifact to another format"
    )
    obs_export.add_argument("telemetry_file")
    obs_export.add_argument(
        "--format", choices=EXPORT_FORMATS, default="chrome-trace",
        help="chrome-trace loads at chrome://tracing or ui.perfetto.dev",
    )
    obs_export.add_argument(
        "-o", "--output", default=None,
        help="output file (default: stdout)",
    )

    validate = obs_sub.add_parser(
        "validate", help="check an artifact against the telemetry schema"
    )
    validate.add_argument("telemetry_file")

    promcheck = obs_sub.add_parser(
        "promcheck",
        help="validate a Prometheus text-exposition document (e.g. a "
        "saved /metrics scrape); '-' reads stdin",
    )
    promcheck.add_argument("promtext_file")

    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    _configure_logging(args.verbose, args.quiet)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "balance": _cmd_balance,
        "live": _cmd_live,
        "top": _cmd_top,
        "export-dataset": _cmd_export,
        "sweep": _cmd_sweep,
        "obs": _cmd_obs,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        cause = error.__cause__
        if cause is not None and cause is not error:
            # Surface the chained root cause; -v gets its full traceback.
            _LOG.error(
                "%s (caused by %s: %s)", error, type(cause).__name__, cause
            )
            _LOG.debug("original traceback:", exc_info=cause)
        else:
            _LOG.error(str(error))
        return 1


if __name__ == "__main__":
    sys.exit(main())
