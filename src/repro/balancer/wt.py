"""Hypervisor load-balancing analyses (§4).

All functions consume the simulator's datasets:

- the *metric* dataset (per QP-second aggregates) drives the WT-CoV
  distributions of Fig 2(a), the VM-VD-QP CoV decomposition of Fig 2(b),
  the hottest-QP shares of Fig 2(c), and the Type I/II/III classification;
- the *trace* dataset (per-IO, sub-second timestamps) drives the 10 ms
  rebinding simulation of Fig 2(d) and the hottest-WT burst series of
  Fig 2(e)/(f).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.balance.policies import wt_swap_decision
from repro.cluster.hypervisor import Hypervisor
from repro.stats.skewness import normalized_cov, p2a, top_share
from repro.trace.dataset import ComputeMetricTable, TraceDataset
from repro.util.errors import ConfigError
from repro.workload.fleet import Fleet


def _direction_column(table: ComputeMetricTable, direction: str) -> np.ndarray:
    if direction == "read":
        return table.read_bytes
    if direction == "write":
        return table.write_bytes
    if direction == "total":
        return table.read_bytes + table.write_bytes
    raise ConfigError(
        f"direction must be 'read', 'write' or 'total', got {direction!r}"
    )


# ---------------------------------------------------------------------------
# Fig 2(a): WT-CoV at multiple time scales
# ---------------------------------------------------------------------------

def wt_cov_samples(
    table: ComputeMetricTable,
    fleet: Fleet,
    window_seconds: int,
    direction: str,
    sample_fraction: float = 1.0,
    rng: "np.random.Generator | None" = None,
) -> List[float]:
    """Normalized WT-CoV per (node, window) sample.

    For every compute node and every time window, traffic is summed per
    worker thread (idle WTs count as zeros — they are what makes Type I
    skewness visible) and the normalized CoV across the node's WTs is one
    sample.  Windows with no traffic at all are skipped.  Set
    ``sample_fraction`` < 1 to subsample windows like the paper's 10%
    draw at the 1-minute scale.
    """
    if window_seconds <= 0:
        raise ConfigError("window_seconds must be positive")
    if not 0.0 < sample_fraction <= 1.0:
        raise ConfigError("sample_fraction must be in (0, 1]")
    values = _direction_column(table, direction)
    windows = table.timestamp // window_seconds
    num_windows = int(windows.max()) + 1 if len(table) else 0
    per_node = fleet.config.workers_per_node

    covs: List[float] = []
    for node_id in range(fleet.config.num_compute_nodes):
        node_mask = table.compute_node_id == node_id
        if not node_mask.any():
            continue
        wt_local = table.wt_id[node_mask] - node_id * per_node
        win = windows[node_mask]
        vals = values[node_mask]
        grid = np.zeros((num_windows, per_node))
        np.add.at(grid, (win, wt_local), vals)
        active = grid.sum(axis=1) > 0
        indices = np.nonzero(active)[0]
        if sample_fraction < 1.0 and indices.size:
            if rng is None:
                rng = np.random.default_rng(0)
            keep = max(1, int(round(sample_fraction * indices.size)))
            indices = rng.choice(indices, size=keep, replace=False)
        for index in indices:
            covs.append(normalized_cov(grid[index]))
    return covs


# ---------------------------------------------------------------------------
# Fig 2(b): the VM-VD-QP decomposition on the hottest VM of each node
# ---------------------------------------------------------------------------

def vm_vd_qp_covs(
    table: ComputeMetricTable, fleet: Fleet, direction: str
) -> Dict[str, List[float]]:
    """CoV_vm2qp, CoV_vm2vd and CoV_vd2qp for each node's hottest VM.

    Returns ``{"vm2qp": [...], "vm2vd": [...], "vd2qp": [...]}`` with one
    entry per compute node that carried traffic in ``direction``.
    CoV_vd2qp is measured on the hottest VD of the hottest VM.
    """
    values = _direction_column(table, direction)
    out: Dict[str, List[float]] = {"vm2qp": [], "vm2vd": [], "vd2qp": []}
    for node_id in range(fleet.config.num_compute_nodes):
        node_mask = table.compute_node_id == node_id
        if not values[node_mask].sum() > 0:
            continue
        vm_totals: Dict[int, float] = {}
        vm_ids = table.vm_id[node_mask]
        vals = values[node_mask]
        for vm, v in zip(vm_ids, vals):
            vm_totals[int(vm)] = vm_totals.get(int(vm), 0.0) + float(v)
        hottest_vm = max(vm_totals, key=vm_totals.get)

        vm_mask = node_mask & (table.vm_id == hottest_vm)
        # vm2qp: traffic split over all QPs of the hottest VM.
        qp_totals: Dict[int, float] = {}
        for qp, v in zip(table.qp_id[vm_mask], values[vm_mask]):
            qp_totals[int(qp)] = qp_totals.get(int(qp), 0.0) + float(v)
        vm_vds = fleet.vds_of_vm(hottest_vm)
        all_qps = [qp_id for vd in vm_vds for qp_id in vd.qp_ids]
        qp_vector = [qp_totals.get(qp, 0.0) for qp in all_qps]
        if len(qp_vector) > 1:
            out["vm2qp"].append(normalized_cov(qp_vector))

        # vm2vd: split over all VDs of the hottest VM (idle VDs count).
        vd_totals: Dict[int, float] = {}
        for vd, v in zip(table.vd_id[vm_mask], values[vm_mask]):
            vd_totals[int(vd)] = vd_totals.get(int(vd), 0.0) + float(v)
        vd_vector = [vd_totals.get(vd.vd_id, 0.0) for vd in vm_vds]
        if len(vd_vector) > 1:
            out["vm2vd"].append(normalized_cov(vd_vector))

        # vd2qp: split over the QPs of the hottest VD.
        if vd_totals:
            hottest_vd = max(vd_totals, key=vd_totals.get)
            vd_info = fleet.vds[hottest_vd]
            vd_qp_vector = [
                qp_totals.get(qp, 0.0) for qp in vd_info.qp_ids
            ]
            if len(vd_qp_vector) > 1:
                out["vd2qp"].append(normalized_cov(vd_qp_vector))
    return out


# ---------------------------------------------------------------------------
# Fig 2(c): hottest-QP traffic share per node
# ---------------------------------------------------------------------------

def hottest_qp_shares(
    table: ComputeMetricTable, fleet: Fleet, direction: str
) -> List[float]:
    """The traffic share of the hottest QP within each compute node."""
    values = _direction_column(table, direction)
    shares: List[float] = []
    for node_id in range(fleet.config.num_compute_nodes):
        node_mask = table.compute_node_id == node_id
        if not values[node_mask].sum() > 0:
            continue
        qp_totals: Dict[int, float] = {}
        for qp, v in zip(table.qp_id[node_mask], values[node_mask]):
            qp_totals[int(qp)] = qp_totals.get(int(qp), 0.0) + float(v)
        shares.append(top_share(list(qp_totals.values())))
    return shares


# ---------------------------------------------------------------------------
# Type I/II/III classification (§4.2)
# ---------------------------------------------------------------------------

class NodeType(enum.Enum):
    """Root-cause category of a compute node's WT skewness."""

    IDLE_WTS = "Type I"           # fewer QPs than WTs -> idle workers
    SINGLE_QP_HOTSPOT = "Type II"  # hottest VM has exactly one QP
    MULTI_QP_HOTSPOT = "Type III"  # hottest VM has several, skewed QPs


def classify_node(
    table: ComputeMetricTable, fleet: Fleet, node_id: int
) -> Optional[NodeType]:
    """Classify one node; None if the node carried no traffic."""
    per_node = fleet.config.workers_per_node
    node_qps = [
        qp for qp in fleet.queue_pairs if qp.compute_node_id == node_id
    ]
    if len(node_qps) < per_node:
        return NodeType.IDLE_WTS
    node_mask = table.compute_node_id == node_id
    totals = table.read_bytes[node_mask] + table.write_bytes[node_mask]
    if not totals.sum() > 0:
        return None
    vm_totals: Dict[int, float] = {}
    for vm, v in zip(table.vm_id[node_mask], totals):
        vm_totals[int(vm)] = vm_totals.get(int(vm), 0.0) + float(v)
    hottest_vm = max(vm_totals, key=vm_totals.get)
    hottest_vm_qps = sum(
        vd.num_queue_pairs for vd in fleet.vds_of_vm(hottest_vm)
    )
    if hottest_vm_qps == 1:
        return NodeType.SINGLE_QP_HOTSPOT
    return NodeType.MULTI_QP_HOTSPOT


def classify_nodes(
    table: ComputeMetricTable, fleet: Fleet
) -> Dict[NodeType, float]:
    """Fraction of (traffic-carrying) nodes in each type."""
    counts: Dict[NodeType, int] = {t: 0 for t in NodeType}
    total = 0
    for node_id in range(fleet.config.num_compute_nodes):
        node_type = classify_node(table, fleet, node_id)
        if node_type is None:
            continue
        counts[node_type] += 1
        total += 1
    if total == 0:
        return {t: 0.0 for t in NodeType}
    return {t: counts[t] / total for t in NodeType}


# ---------------------------------------------------------------------------
# Fig 2(d)-(f): 10 ms rebinding simulation on the trace data
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RebindingConfig:
    """Parameters of the §4.3 rebinding simulation."""

    period_seconds: float = 0.010
    trigger_ratio: float = 1.2

    def __post_init__(self) -> None:
        if self.period_seconds <= 0:
            raise ConfigError("period_seconds must be positive")
        if self.trigger_ratio <= 1.0:
            raise ConfigError("trigger_ratio must exceed 1")


@dataclass(frozen=True)
class RebindingOutcome:
    """Result of simulating rebinding on one compute node."""

    node_id: int
    rebinding_ratio: float   # fraction of periods that triggered a swap
    rebinding_gain: float    # CoV after / CoV before (< 1 is better)
    cov_before: float
    cov_after: float

    @property
    def improved(self) -> bool:
        return self.rebinding_gain < 1.0


def _qp_period_matrix(
    traces: TraceDataset, qp_ids: List[int], period_seconds: float
) -> "tuple[np.ndarray, np.ndarray]":
    """(QP x period traffic matrix, qp index array) for one node's traces."""
    qp_index = {qp: i for i, qp in enumerate(qp_ids)}
    num_periods = (
        int(np.floor(traces.timestamp.max() / period_seconds)) + 1
        if len(traces)
        else 1
    )
    matrix = np.zeros((len(qp_ids), num_periods))
    periods = np.floor(traces.timestamp / period_seconds).astype(np.int64)
    rows = np.array([qp_index[int(qp)] for qp in traces.qp_id])
    np.add.at(matrix, (rows, periods), traces.size_bytes.astype(float))
    return matrix, periods


def simulate_rebinding(
    traces: TraceDataset,
    hypervisor: Hypervisor,
    config: RebindingConfig = RebindingConfig(),
) -> Optional[RebindingOutcome]:
    """Replay one node's traces through the periodic rebinding balancer.

    Every ``period_seconds``, if the hottest WT carries more than
    ``trigger_ratio`` times the coldest WT's traffic, the two WTs swap
    their QP sets (the FinNVMe/LPNS-style rebinding the paper evaluates).

    Returns None when the node has no traced IOs.  Note the paper's prose
    defines gain as before/after but reads "gain of 1%" as a large
    improvement; we use after/before so that < 1 consistently means the
    rebinding helped (the figure's semantics).
    """
    node_traces = traces.where(
        traces.compute_node_id == hypervisor.node_id
    )
    if len(node_traces) == 0:
        return None
    qp_ids = hypervisor.qp_ids
    matrix, __ = _qp_period_matrix(node_traces, qp_ids, config.period_seconds)
    num_periods = matrix.shape[1]
    workers = hypervisor.worker_ids
    wt_index = {wt: i for i, wt in enumerate(workers)}

    # binding[q] = worker index currently hosting QP q.
    binding = np.array(
        [wt_index[hypervisor.wt_of(qp)] for qp in qp_ids], dtype=np.int64
    )
    static_binding = binding.copy()
    num_wts = len(workers)

    static_totals = np.zeros(num_wts)
    dynamic_totals = np.zeros(num_wts)
    swaps = 0
    for period in range(num_periods):
        loads = np.zeros(num_wts)
        np.add.at(loads, binding, matrix[:, period])
        dynamic_totals += loads
        static_loads = np.zeros(num_wts)
        np.add.at(static_loads, static_binding, matrix[:, period])
        static_totals += static_loads
        decision = wt_swap_decision(loads, config.trigger_ratio)
        if decision is not None:
            hot, cold = decision
            swaps += 1
            hot_qps = binding == hot
            cold_qps = binding == cold
            binding[hot_qps] = cold
            binding[cold_qps] = hot

    cov_before = normalized_cov(static_totals) if static_totals.sum() else 0.0
    cov_after = normalized_cov(dynamic_totals) if dynamic_totals.sum() else 0.0
    if cov_before == 0.0:
        gain = 1.0
    else:
        gain = cov_after / cov_before
    return RebindingOutcome(
        node_id=hypervisor.node_id,
        rebinding_ratio=swaps / num_periods if num_periods else 0.0,
        rebinding_gain=gain,
        cov_before=cov_before,
        cov_after=cov_after,
    )


def hottest_wt_series(
    traces: TraceDataset,
    hypervisor: Hypervisor,
    period_seconds: float = 0.010,
) -> "tuple[np.ndarray, float]":
    """The hottest WT's traffic series at ``period_seconds`` and its P2A.

    This is Fig 2(e)/(f): the node whose hottest WT has the highest P2A is
    the "node-b" (bursty) exemplar; the lowest is "node-r".
    """
    if period_seconds <= 0:
        raise ConfigError("period_seconds must be positive")
    node_traces = traces.where(
        traces.compute_node_id == hypervisor.node_id
    )
    if len(node_traces) == 0:
        return np.zeros(1), 0.0
    qp_ids = hypervisor.qp_ids
    matrix, __ = _qp_period_matrix(node_traces, qp_ids, period_seconds)
    workers = hypervisor.worker_ids
    wt_index = {wt: i for i, wt in enumerate(workers)}
    wt_series = np.zeros((len(workers), matrix.shape[1]))
    for row, qp in enumerate(qp_ids):
        wt_series[wt_index[hypervisor.wt_of(qp)]] += matrix[row]
    hottest = int(np.argmax(wt_series.sum(axis=1)))
    series = wt_series[hottest]
    return series, p2a(series) if series.sum() else 0.0
