"""Multi-WT hosting: the per-IO dispatch model proposed in §4.4.

The paper concludes that single-WT hosting (each QP statically bound to one
worker thread) cannot be balanced by rebinding, because hot QPs carry most
of a node's traffic and bursts are shorter than any affordable rebinding
period.  The proposed fix is a *dispatch model*: IOs are distributed across
worker threads per IO, ideally by a hardware queue (FPGA/ASIC) to avoid
software locking.

This module simulates three dispatch disciplines over a node's trace and
compares the resulting WT balance against single-WT hosting:

- ``round_robin`` — each IO goes to the next WT in turn (the hardware FIFO
  fan-out; perfect count balance, byte balance up to IO-size variance);
- ``join_shortest_queue`` — each IO goes to the WT with the least
  outstanding bytes (what a work-stealing software dispatcher approaches);
- ``hash_qp`` — IOs are hashed by QP to a WT, i.e. single-WT hosting
  re-labelled; included as the control.

It also models the dispatch *cost*: multi-WT hosting pays a per-IO
synchronization overhead (lock or hardware queue), so the comparison
reports both the balance gain and the added per-IO cost, the trade-off
§4.4 discusses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.hypervisor import Hypervisor
from repro.stats.skewness import normalized_cov
from repro.trace.dataset import TraceDataset
from repro.util.errors import ConfigError


class DispatchPolicy(enum.Enum):
    """How IOs are spread over a node's worker threads."""

    ROUND_ROBIN = "round_robin"
    JOIN_SHORTEST_QUEUE = "join_shortest_queue"
    HASH_QP = "hash_qp"


@dataclass(frozen=True)
class DispatchConfig:
    """Cost model of the dispatcher."""

    #: Per-IO synchronization cost (microseconds) of handing an IO to a WT
    #: other than the QP's poller.  ~0.1 us for a hardware queue, ~1 us for
    #: an uncontended software lock, several us under contention.
    sync_cost_us: float = 1.0
    #: Window for the balance statistic.
    window_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.sync_cost_us < 0:
            raise ConfigError("sync_cost_us must be non-negative")
        if self.window_seconds <= 0:
            raise ConfigError("window_seconds must be positive")


@dataclass(frozen=True)
class DispatchOutcome:
    """Balance and cost of one dispatch policy on one node."""

    node_id: int
    policy: DispatchPolicy
    mean_window_cov: float     # mean normalized WT-CoV over active windows
    total_cov: float           # CoV of total per-WT bytes
    dispatched_fraction: float  # share of IOs that left their home WT
    added_cost_us_per_io: float

    @property
    def balanced(self) -> bool:
        return self.total_cov < 0.1


def simulate_dispatch(
    traces: TraceDataset,
    hypervisor: Hypervisor,
    policy: DispatchPolicy,
    config: DispatchConfig = DispatchConfig(),
) -> Optional[DispatchOutcome]:
    """Replay one node's traced IOs through a dispatch discipline.

    Returns None when the node has no traced IOs.  The replay is
    time-ordered; JSQ tracks outstanding bytes with a drain rate equal to
    the node's mean throughput per WT (a fluid approximation — adequate
    because we only need the *assignment*, not precise latencies).
    """
    node_traces = traces.where(traces.compute_node_id == hypervisor.node_id)
    n = len(node_traces)
    if n == 0:
        return None
    order = np.argsort(node_traces.timestamp, kind="stable")
    timestamps = node_traces.timestamp[order]
    sizes = node_traces.size_bytes[order].astype(float)
    qp_ids = node_traces.qp_id[order]

    workers = hypervisor.worker_ids
    num_wts = len(workers)
    wt_index = {wt: i for i, wt in enumerate(workers)}
    home = np.array(
        [wt_index[hypervisor.wt_of(int(qp))] for qp in qp_ids],
        dtype=np.int64,
    )

    if policy is DispatchPolicy.HASH_QP:
        assigned = home
    elif policy is DispatchPolicy.ROUND_ROBIN:
        assigned = np.arange(n, dtype=np.int64) % num_wts
    elif policy is DispatchPolicy.JOIN_SHORTEST_QUEUE:
        assigned = _join_shortest_queue(timestamps, sizes, num_wts)
    else:  # pragma: no cover - exhaustive enum
        raise ConfigError(f"unknown policy {policy}")

    dispatched = assigned != home
    windows = np.floor(timestamps / config.window_seconds).astype(np.int64)
    num_windows = int(windows.max()) + 1
    grid = np.zeros((num_windows, num_wts))
    np.add.at(grid, (windows, assigned), sizes)
    active = grid.sum(axis=1) > 0
    window_covs = [normalized_cov(row) for row in grid[active]]
    totals = grid.sum(axis=0)

    return DispatchOutcome(
        node_id=hypervisor.node_id,
        policy=policy,
        mean_window_cov=float(np.mean(window_covs)) if window_covs else 0.0,
        total_cov=normalized_cov(totals) if totals.sum() > 0 else 0.0,
        dispatched_fraction=float(dispatched.mean()),
        added_cost_us_per_io=float(dispatched.mean() * config.sync_cost_us),
    )


def _join_shortest_queue(
    timestamps: np.ndarray, sizes: np.ndarray, num_wts: int
) -> np.ndarray:
    """Assign each IO to the WT with the least outstanding bytes.

    Queues drain at the node's average byte rate divided evenly across
    WTs; the fluid model keeps the replay O(n * num_wts).
    """
    duration = max(float(timestamps[-1] - timestamps[0]), 1e-9)
    drain_rate = sizes.sum() / duration / num_wts  # bytes/s per WT
    backlog = np.zeros(num_wts)
    last_time = float(timestamps[0])
    assigned = np.empty(timestamps.size, dtype=np.int64)
    for index in range(timestamps.size):
        now = float(timestamps[index])
        backlog = np.maximum(backlog - drain_rate * (now - last_time), 0.0)
        last_time = now
        target = int(np.argmin(backlog))
        assigned[index] = target
        backlog[target] += sizes[index]
    return assigned


def compare_policies(
    traces: TraceDataset,
    hypervisors,
    config: DispatchConfig = DispatchConfig(),
) -> "Dict[DispatchPolicy, List[DispatchOutcome]]":
    """Run all three policies on every node; returns outcomes per policy."""
    out: Dict[DispatchPolicy, List[DispatchOutcome]] = {
        policy: [] for policy in DispatchPolicy
    }
    for hypervisor in hypervisors:
        for policy in DispatchPolicy:
            outcome = simulate_dispatch(traces, hypervisor, policy, config)
            if outcome is not None:
                out[policy].append(outcome)
    return out
