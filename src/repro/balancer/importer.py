"""Importer-selection strategies for the inter-BS balancer (§6.1.2).

The balancer must pick, for each exporter, the BlockServer that will absorb
the migrated segments.  The paper compares five selectors (Fig 4(b)):

- **S1 Random** — any BS other than the exporter;
- **S2 MinTraffic** — the BS with the lowest traffic in the current period
  (the production heuristic);
- **S3 MinVariance** — the BS whose recent traffic has the lowest variance;
- **S4 Lunule** — linear fit over recent periods predicting next-period
  traffic, pick the lowest prediction (Lunule's CephFS-MDS approach);
- **S5 Ideal** — an oracle that reads the actual next-period traffic.

Each strategy receives the per-BS traffic history up to and including the
current period, plus (for the oracle) the true next-period loads.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional

import numpy as np

from repro.util.errors import ConfigError


class ImporterStrategy(abc.ABC):
    """Interface: pick the importer BS for one migration decision."""

    #: Stable key used by configs and figure legends.
    name: str = ""

    @abc.abstractmethod
    def select(
        self,
        history: np.ndarray,
        period: int,
        exporter: int,
        future: "Optional[np.ndarray]" = None,
        rng: "Optional[np.random.Generator]" = None,
    ) -> int:
        """Return the importer's BS index.

        ``history`` is the (num_bs, num_periods) per-period traffic matrix;
        entries after ``period`` must not be read except via ``future``
        (only the Ideal oracle uses it).  The exporter is never returned.
        """

    @staticmethod
    def _candidates(num_bs: int, exporter: int) -> np.ndarray:
        if num_bs < 2:
            raise ConfigError("need at least two BlockServers to migrate")
        return np.array([bs for bs in range(num_bs) if bs != exporter])


class RandomImporter(ImporterStrategy):
    """S1: uniformly random importer."""

    name = "random"

    def select(self, history, period, exporter, future=None, rng=None):
        if rng is None:
            raise ConfigError("RandomImporter needs an rng")
        candidates = self._candidates(history.shape[0], exporter)
        return int(rng.choice(candidates))


class MinTrafficImporter(ImporterStrategy):
    """S2 (production): lowest traffic in the current period."""

    name = "min_traffic"

    def select(self, history, period, exporter, future=None, rng=None):
        candidates = self._candidates(history.shape[0], exporter)
        current = history[candidates, period]
        return int(candidates[np.argmin(current)])


class MinVarianceImporter(ImporterStrategy):
    """S3: lowest traffic variance over the recent window."""

    name = "min_variance"

    def __init__(self, window: int = 8):
        if window < 2:
            raise ConfigError("variance window must be >= 2")
        self.window = window

    def select(self, history, period, exporter, future=None, rng=None):
        candidates = self._candidates(history.shape[0], exporter)
        start = max(0, period + 1 - self.window)
        recent = history[candidates, start : period + 1]
        if recent.shape[1] < 2:
            return int(candidates[np.argmin(history[candidates, period])])
        return int(candidates[np.argmin(recent.var(axis=1))])


class LunuleImporter(ImporterStrategy):
    """S4: linear fit over recent periods; pick the lowest prediction."""

    name = "lunule"

    def __init__(self, window: int = 4):
        if window < 2:
            raise ConfigError("linear-fit window must be >= 2")
        self.window = window

    def select(self, history, period, exporter, future=None, rng=None):
        candidates = self._candidates(history.shape[0], exporter)
        start = max(0, period + 1 - self.window)
        recent = history[candidates, start : period + 1]
        k = recent.shape[1]
        if k < 2:
            return int(candidates[np.argmin(history[candidates, period])])
        x = np.arange(k, dtype=float)
        x_mean = x.mean()
        denom = ((x - x_mean) ** 2).sum()
        y_mean = recent.mean(axis=1)
        slope = ((recent - y_mean[:, None]) * (x - x_mean)).sum(axis=1) / denom
        predictions = y_mean + slope * (k - x_mean)  # extrapolate one step
        return int(candidates[np.argmin(predictions)])


class IdealImporter(ImporterStrategy):
    """S5: oracle — lowest *actual* next-period traffic."""

    name = "ideal"

    def select(self, history, period, exporter, future=None, rng=None):
        candidates = self._candidates(history.shape[0], exporter)
        if future is None:
            # Last period of the run: the oracle degrades to MinTraffic.
            return int(candidates[np.argmin(history[candidates, period])])
        return int(candidates[np.argmin(future[candidates])])


#: All strategies keyed by name, in the paper's S1..S5 order.
IMPORTER_STRATEGIES: "Dict[str, type]" = {
    RandomImporter.name: RandomImporter,
    MinTrafficImporter.name: MinTrafficImporter,
    MinVarianceImporter.name: MinVarianceImporter,
    LunuleImporter.name: LunuleImporter,
    IdealImporter.name: IdealImporter,
}


def make_importer(name: str, **kwargs) -> ImporterStrategy:
    """Instantiate a strategy by its name."""
    if name not in IMPORTER_STRATEGIES:
        raise ConfigError(
            f"unknown importer strategy {name!r}; "
            f"known: {sorted(IMPORTER_STRATEGIES)}"
        )
    return IMPORTER_STRATEGIES[name](**kwargs)
