"""Load-balancing analyses and mechanisms.

- :mod:`repro.balancer.wt` — the hypervisor-side analyses of §4: WT-CoV at
  multiple time scales, the VM-VD-QP traffic decomposition, node-type
  classification (Type I/II/III), hottest-QP shares, and the 10 ms
  QP-to-WT rebinding simulation of Fig 2(d)-(f).
- :mod:`repro.balancer.interbs` — the storage-side inter-BlockServer
  segment balancer of §6 (Algorithm 1), its importer-selection strategies
  (Random / MinTraffic / MinVariance / Lunule / Ideal), frequent-migration
  detection, migration intervals, and the Write-then-Read experiment.
- :mod:`repro.balancer.dispatch` — the §4.4 proposal: per-IO multi-WT
  dispatch (round-robin / join-shortest-queue) with a synchronization cost
  model, compared against single-WT hosting.
- :mod:`repro.balancer.predictive` — the §6.1.3 proposal: importer
  selection driven by a traffic predictor instead of the historical
  minimum.

Both period-replay balancers are built on the shared snapshot/decision
primitives of :mod:`repro.balance`: per-period loads come from
:meth:`repro.balance.ClusterState.from_storage` and the fixed-trigger
rules live in :mod:`repro.balance.policies`, so the global planner
(``ebs-repro balance``) and these replays provably apply the same math.
"""

from repro.balancer.interbs import (
    BalancerConfig,
    BalancerRun,
    InterBsBalancer,
    frequent_migration_proportion,
    normalized_migration_intervals,
    per_bs_cov,
    segment_period_matrix,
)
from repro.balancer.dispatch import (
    DispatchConfig,
    DispatchOutcome,
    DispatchPolicy,
    compare_policies,
    simulate_dispatch,
)
from repro.balancer.predictive import PredictorImporter
from repro.balancer.importer import (
    IMPORTER_STRATEGIES,
    IdealImporter,
    ImporterStrategy,
    LunuleImporter,
    MinTrafficImporter,
    MinVarianceImporter,
    RandomImporter,
    make_importer,
)
from repro.balancer.wt import (
    NodeType,
    RebindingConfig,
    RebindingOutcome,
    classify_node,
    classify_nodes,
    hottest_qp_shares,
    hottest_wt_series,
    simulate_rebinding,
    vm_vd_qp_covs,
    wt_cov_samples,
)

__all__ = [
    "DispatchConfig",
    "DispatchOutcome",
    "DispatchPolicy",
    "compare_policies",
    "simulate_dispatch",
    "PredictorImporter",
    "BalancerConfig",
    "BalancerRun",
    "InterBsBalancer",
    "frequent_migration_proportion",
    "normalized_migration_intervals",
    "per_bs_cov",
    "segment_period_matrix",
    "IMPORTER_STRATEGIES",
    "IdealImporter",
    "ImporterStrategy",
    "LunuleImporter",
    "MinTrafficImporter",
    "MinVarianceImporter",
    "RandomImporter",
    "make_importer",
    "NodeType",
    "RebindingConfig",
    "RebindingOutcome",
    "classify_node",
    "classify_nodes",
    "hottest_qp_shares",
    "hottest_wt_series",
    "simulate_rebinding",
    "vm_vd_qp_covs",
    "wt_cov_samples",
]
