"""The inter-BlockServer segment balancer (§6, Algorithm 1) and its analyses.

The balancer operates in periods (30 s in the paper's Appendix C).  Each
period it computes the cluster's average BS traffic; every BS above
``trigger_ratio`` x average is an exporter and sheds its hottest segments
(until their summed traffic exceeds ``shed_fraction`` x average) to an
importer chosen by a pluggable strategy.  Following the production design,
balancing is driven by *write* traffic by default; the Write-then-Read mode
of §6.2.2 runs a second balancing pass on read traffic.

Analyses: frequent-migration detection (Fig 4(a)), normalized migration
intervals per importer strategy (Fig 4(b)), and per-period read/write CoV
under Write-Only vs Write-then-Read migration (Fig 5(c)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.balance.policies import choose_shed_segments
from repro.balance.state import ClusterState
from repro.balancer.importer import ImporterStrategy, MinTrafficImporter
from repro.cluster.storage import MigrationEvent, StorageCluster
from repro.stats.skewness import normalized_cov
from repro.trace.dataset import StorageMetricTable
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class BalancerConfig:
    """Parameters of Algorithm 1.

    ``max_segment_traffic_ratio`` is the migration admission constraint of
    §6.1.3: a segment whose current traffic exceeds this multiple of the
    cluster-average BS load is never migrated — dumping a hotter-than-a-
    whole-BS segment on any importer just moves the hotspot.  Set to None
    to disable (the literal Algorithm 1).
    """

    period_seconds: int = 30
    trigger_ratio: float = 1.2
    shed_fraction: float = 0.2
    max_segments_per_migration: int = 8
    max_segment_traffic_ratio: "float | None" = 1.0
    #: §6.1.3 reliability constraint: a BS may hold at most this many
    #: segments (None = unlimited).  An importer at the limit is skipped.
    max_segments_per_bs: "int | None" = None
    #: §6.1.3 anti-affinity: never migrate a segment onto a BS already
    #: holding another segment of the same VD.
    vd_anti_affinity: bool = False

    def __post_init__(self) -> None:
        if self.period_seconds <= 0:
            raise ConfigError("period_seconds must be positive")
        if self.trigger_ratio <= 1.0:
            raise ConfigError("trigger_ratio must exceed 1")
        if not 0.0 < self.shed_fraction <= 1.0:
            raise ConfigError("shed_fraction must be in (0, 1]")
        if self.max_segments_per_migration < 1:
            raise ConfigError("max_segments_per_migration must be >= 1")
        if (
            self.max_segment_traffic_ratio is not None
            and self.max_segment_traffic_ratio <= 0
        ):
            raise ConfigError("max_segment_traffic_ratio must be positive")
        if self.max_segments_per_bs is not None and self.max_segments_per_bs < 1:
            raise ConfigError("max_segments_per_bs must be >= 1")


def segment_period_matrix(
    table: StorageMetricTable,
    num_segments: int,
    duration_seconds: int,
    period_seconds: int,
    direction: str,
) -> np.ndarray:
    """(num_segments, num_periods) traffic matrix from the storage metrics."""
    if direction == "read":
        values = table.read_bytes
    elif direction == "write":
        values = table.write_bytes
    elif direction == "total":
        values = table.read_bytes + table.write_bytes
    else:
        raise ConfigError(f"bad direction {direction!r}")
    if period_seconds <= 0 or duration_seconds <= 0:
        raise ConfigError("periods and duration must be positive")
    num_periods = -(-duration_seconds // period_seconds)
    matrix = np.zeros((num_segments, num_periods))
    periods = table.timestamp // period_seconds
    np.add.at(matrix, (table.segment_id, periods), values)
    return matrix


@dataclass
class BalancerRun:
    """Outcome of replaying the balancer over a metric dataset."""

    config: BalancerConfig
    num_periods: int
    migrations: List[MigrationEvent]
    bs_loads: np.ndarray          # (num_bs, num_periods) under live placement
    placement_history: List[Dict[int, int]] = field(default_factory=list)

    @property
    def num_migrations(self) -> int:
        return len(self.migrations)


class InterBsBalancer:
    """Algorithm 1 with a pluggable importer strategy."""

    def __init__(
        self,
        storage: StorageCluster,
        config: BalancerConfig = BalancerConfig(),
        importer: "Optional[ImporterStrategy]" = None,
        rng: "Optional[np.random.Generator]" = None,
    ):
        self.storage = storage
        self.config = config
        self.importer = importer if importer is not None else MinTrafficImporter()
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def run(
        self,
        segment_traffic: np.ndarray,
        secondary_traffic: "Optional[np.ndarray]" = None,
        blackout_periods: "Optional[Sequence[int]]" = None,
    ) -> BalancerRun:
        """Replay the balancer; returns migrations and the live BS loads.

        ``segment_traffic`` is the (num_segments, num_periods) matrix the
        balancer acts on (write traffic in production).  If
        ``secondary_traffic`` is given (Write-then-Read), a second
        balancing pass per period migrates on it after the primary pass.

        ``blackout_periods`` (from a fault plan's migration-blackout
        windows, :meth:`repro.faults.timeline.FaultTimeline.blackout_periods`)
        lists period indices where the control plane is frozen: per-BS
        loads are still recorded, but no balance pass runs and no
        segment moves.
        """
        num_segments, num_periods = segment_traffic.shape
        if num_segments != self.storage.num_segments:
            raise ConfigError(
                f"traffic matrix has {num_segments} segments, storage has "
                f"{self.storage.num_segments}"
            )
        if secondary_traffic is not None and (
            secondary_traffic.shape != segment_traffic.shape
        ):
            raise ConfigError("secondary traffic shape mismatch")

        num_bs = self.storage.num_block_servers
        blackout = (
            frozenset(int(p) for p in blackout_periods)
            if blackout_periods is not None
            else frozenset()
        )
        bs_loads = np.zeros((num_bs, num_periods))
        migrations: List[MigrationEvent] = []
        placement_history: List[Dict[int, int]] = []

        # History of *primary* per-BS loads under the live placement; the
        # importer strategies consume this matrix.
        history = np.zeros((num_bs, num_periods))

        for period in range(num_periods):
            placement_history.append(self.storage.placement.primary_mapping())
            # The snapshot state accumulates in ascending-segment-id order,
            # exactly reproducing the historical per-period load path.
            state = ClusterState.from_storage(
                self.storage, segment_traffic[:, period]
            )
            loads = state.bs_utilization()
            history[:, period] = loads
            bs_loads[:, period] = loads
            if secondary_traffic is not None:
                np.add.at(
                    bs_loads[:, period],
                    state.seg_bs,
                    secondary_traffic[:, period],
                )

            if period in blackout:
                # Migration blackout: the control plane is down for this
                # period, so loads are observed but nothing moves.
                continue

            future = (
                self._future_loads(segment_traffic, period)
                if period + 1 < num_periods
                else None
            )
            migrations.extend(
                self._balance_pass(
                    segment_traffic, history, period, future
                )
            )
            if secondary_traffic is not None:
                sec_history = self._loads_under_current_placement(
                    secondary_traffic, period
                )
                sec_future = (
                    self._future_loads(secondary_traffic, period)
                    if period + 1 < num_periods
                    else None
                )
                migrations.extend(
                    self._balance_pass(
                        secondary_traffic, sec_history, period, sec_future
                    )
                )

        return BalancerRun(
            config=self.config,
            num_periods=num_periods,
            migrations=migrations,
            bs_loads=bs_loads,
            placement_history=placement_history,
        )

    # -- internals -------------------------------------------------------

    def _loads_under_current_placement(
        self, segment_traffic: np.ndarray, period: int
    ) -> np.ndarray:
        """(num_bs, period+1) history recomputed under today's placement.

        Used for the secondary (read) pass where no incremental history is
        maintained; strategies only look at a short recent window anyway.
        """
        state = ClusterState.from_storage(
            self.storage, segment_traffic[:, period]
        )
        num_bs = self.storage.num_block_servers
        history = np.zeros((num_bs, period + 1))
        for p in range(max(0, period - 8), period + 1):
            np.add.at(history[:, p], state.seg_bs, segment_traffic[:, p])
        return history

    def _future_loads(
        self, segment_traffic: np.ndarray, period: int
    ) -> np.ndarray:
        """True next-period per-BS loads under the current placement."""
        return ClusterState.from_storage(
            self.storage, segment_traffic[:, period + 1]
        ).bs_utilization()

    def _admissible(self, segment: int, importer: int) -> bool:
        """Check the §6.1.3 reliability constraints for one placement."""
        cfg = self.config
        if importer in self.storage.replicas_of(segment):
            # Width > 1: the primary must not land on a BS already
            # holding another copy of the same segment.
            return False
        resident = self.storage.primaries_on(importer)
        if (
            cfg.max_segments_per_bs is not None
            and len(resident) >= cfg.max_segments_per_bs
        ):
            return False
        if cfg.vd_anti_affinity:
            vd_id = self.storage.fleet.segments[segment].vd_id
            for other in resident:
                if self.storage.fleet.segments[other].vd_id == vd_id:
                    return False
        return True

    def _balance_pass(
        self,
        segment_traffic: np.ndarray,
        history: np.ndarray,
        period: int,
        future: "Optional[np.ndarray]",
    ) -> List[MigrationEvent]:
        cfg = self.config
        loads = history[:, period].copy()
        average = loads.mean()
        events: List[MigrationEvent] = []
        if average <= 0:
            return events
        timestamp = period * cfg.period_seconds
        exporters = np.nonzero(loads >= cfg.trigger_ratio * average)[0]
        for exporter in exporters:
            segments = sorted(self.storage.primaries_on(int(exporter)))
            if not segments:
                continue
            seg_arr = np.asarray(segments, dtype=np.int64)
            ceiling = (
                cfg.max_segment_traffic_ratio * average
                if cfg.max_segment_traffic_ratio is not None
                else float("inf")
            )
            chosen = choose_shed_segments(
                seg_arr,
                segment_traffic[seg_arr, period],
                cfg.shed_fraction * average,
                ceiling,
                cfg.max_segments_per_migration,
            )
            if not chosen:
                continue
            importer = self.importer.select(
                history, period, int(exporter), future=future, rng=self._rng
            )
            if importer == int(exporter):
                continue
            if not self.storage.is_serving(importer):
                # A decommissioned or currently-failed BS cannot import;
                # fall back to the least-loaded serving one.
                serving = [
                    bs
                    for bs in self.storage.serving_block_servers
                    if bs != int(exporter)
                ]
                if not serving:
                    continue
                importer = min(serving, key=lambda bs: history[bs, period])
            shed = 0.0
            for segment in chosen:
                if not self._admissible(segment, importer):
                    continue
                self.storage.migrate(segment, importer, timestamp=timestamp)
                events.append(self.storage.migration_log[-1])
                shed += float(segment_traffic[segment, period])
            # Algorithm 1 line 8: the importer's load is bumped so a later
            # exporter in the same period does not dump onto it again.
            history[importer, period] += shed
            if future is not None:
                future[importer] += shed
                future[int(exporter)] -= shed
        return events


# ---------------------------------------------------------------------------
# Fig 4(a): frequent-migration proportion
# ---------------------------------------------------------------------------

def frequent_migration_proportion(
    migrations: Sequence[MigrationEvent],
    window_seconds: int,
) -> float:
    """Share of migrations that are "frequent" at a window scale.

    A migration is frequent when, inside one time window, its BS has both
    an incoming and an outgoing migration — i.e. a segment enters a BS and
    (the same or another) segment leaves it shortly after (§6.1.1).
    Returns 0.0 when there are no migrations.
    """
    if window_seconds <= 0:
        raise ConfigError("window_seconds must be positive")
    if not migrations:
        return 0.0
    incoming: Dict[Tuple[int, int], int] = {}
    outgoing: Dict[Tuple[int, int], int] = {}
    for event in migrations:
        window = event.timestamp // window_seconds
        outgoing[(event.from_bs, window)] = (
            outgoing.get((event.from_bs, window), 0) + 1
        )
        incoming[(event.to_bs, window)] = (
            incoming.get((event.to_bs, window), 0) + 1
        )
    frequent = 0
    for event in migrations:
        window = event.timestamp // window_seconds
        if (
            incoming.get((event.from_bs, window), 0) > 0
            or outgoing.get((event.to_bs, window), 0) > 0
        ):
            frequent += 1
    return frequent / len(migrations)


# ---------------------------------------------------------------------------
# Fig 4(b): normalized migration intervals
# ---------------------------------------------------------------------------

def normalized_migration_intervals(
    migrations: Sequence[MigrationEvent],
    total_seconds: int,
) -> List[float]:
    """Per-BS gaps between consecutive outgoing migrations, / total time.

    Longer normalized intervals mean the balancer's placements stay valid
    for longer — the metric behind Fig 4(b).
    """
    if total_seconds <= 0:
        raise ConfigError("total_seconds must be positive")
    by_bs: Dict[int, List[int]] = {}
    for event in migrations:
        by_bs.setdefault(event.from_bs, []).append(event.timestamp)
    intervals: List[float] = []
    for timestamps in by_bs.values():
        ordered = sorted(set(timestamps))
        for a, b in zip(ordered, ordered[1:]):
            intervals.append((b - a) / total_seconds)
    return intervals


# ---------------------------------------------------------------------------
# Fig 5(a)/(c): per-BS CoV of read and write traffic
# ---------------------------------------------------------------------------

def per_bs_cov(
    bs_loads: np.ndarray, per_period: bool = False
) -> "float | List[float]":
    """Normalized CoV across BlockServers.

    With ``per_period`` False the CoV of total per-BS traffic is returned
    (Fig 5(a)); with True, one CoV per period (Fig 5(c)), skipping
    zero-traffic periods.
    """
    loads = np.asarray(bs_loads, dtype=float)
    if loads.ndim != 2:
        raise ConfigError("bs_loads must be (num_bs, num_periods)")
    if not per_period:
        totals = loads.sum(axis=1)
        return normalized_cov(totals) if totals.sum() > 0 else 0.0
    covs: List[float] = []
    for period in range(loads.shape[1]):
        column = loads[:, period]
        if column.sum() > 0:
            covs.append(normalized_cov(column))
    return covs
