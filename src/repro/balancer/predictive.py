"""Prediction-based importer selection (§6.1.3's "prophetic balancer").

The paper's takeaway for the inter-BS balancer is that the importer should
be the BS with the lowest *future* traffic, and that getting there requires
a traffic predictor.  :class:`PredictorImporter` closes that loop: it wraps
any :class:`repro.prediction.Predictor` (ARIMA, GBT, the attention
forecaster via an adapter) and selects the BS whose *predicted* next-period
traffic is lowest — the realizable approximation of the Ideal oracle of
Fig 4(b).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.balancer.importer import ImporterStrategy
from repro.prediction.base import Predictor
from repro.util.errors import ConfigError


class PredictorImporter(ImporterStrategy):
    """Selects the BS with the lowest one-step traffic forecast.

    A fresh predictor is fitted per BS from the recent history window at
    every selection (the balancer period is 30 s, so per-period refits are
    affordable for the statistical models; for heavy models raise
    ``refit_every``).
    """

    name = "predictor"

    def __init__(
        self,
        predictor_factory: "Callable[[], Predictor]",
        history_window: int = 24,
        refit_every: int = 1,
    ):
        probe = predictor_factory()
        if not isinstance(probe, Predictor):
            raise ConfigError("predictor_factory must produce Predictor instances")
        if history_window < 4:
            raise ConfigError("history_window must be >= 4")
        if refit_every < 1:
            raise ConfigError("refit_every must be >= 1")
        self._factory = predictor_factory
        self.history_window = history_window
        self.refit_every = refit_every
        self.name = f"predictor[{probe.name}]"
        self._models: Dict[int, Predictor] = {}
        self._fit_period: Dict[int, int] = {}

    def _forecast(self, series: np.ndarray, bs: int, period: int) -> float:
        model = self._models.get(bs)
        stale = (
            model is None
            or period - self._fit_period.get(bs, -10**9) >= self.refit_every
        )
        if stale:
            model = self._factory()
            model.fit(series)
            self._models[bs] = model
            self._fit_period[bs] = period
        return float(model.predict(series))

    def select(
        self,
        history: np.ndarray,
        period: int,
        exporter: int,
        future: "Optional[np.ndarray]" = None,
        rng: "Optional[np.random.Generator]" = None,
    ) -> int:
        candidates = self._candidates(history.shape[0], exporter)
        start = max(0, period + 1 - self.history_window)
        forecasts = np.array(
            [
                self._forecast(history[bs, start : period + 1], int(bs), period)
                for bs in candidates
            ]
        )
        return int(candidates[np.argmin(forecasts)])
