"""The live serving loop: injector -> rolling stats -> policy, over rings.

Three stages run on their own threads, connected by bounded
:class:`~repro.live.ring.RingBuffer` edges:

1. **inject** — the :class:`~repro.live.injector.TraceInjector` replays
   the recorded stream into the event ring at the configured rate;
2. **stats** — drains event batches, folds them into the
   :class:`~repro.live.windowing.RollingSkewTracker` and the hot-segment
   sketches, and forwards every closed window into the window ring;
3. **policy** — drains closed windows and asks the
   :class:`~repro.live.policy.OnlinePolicyEngine` for decisions, timing
   each call (the bounded-decision-latency budget is observable, not
   assumed).

Backpressure is explicit at every edge: the event ring either blocks
the injector (lossless mode) or drops whole batches with accounting;
the window ring always blocks (windows are rare — thousands of times
fewer than events — so blocking there cannot stall ingest for long).
A failing stage closes both of its rings so its neighbours unwind
instead of deadlocking, and the first failure is re-raised from
:meth:`LivePipeline.run` with its original traceback.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.live.events import EventBatch
from repro.live.injector import TraceInjector
from repro.live.policy import OnlinePolicyEngine, PolicyDecision
from repro.live.ring import RingBuffer
from repro.live.sketches import CountMinSketch, SpaceSaving
from repro.live.windowing import RollingSkewTracker, WindowStats
from repro.obs.runtime import get_telemetry
from repro.util.errors import ConfigError, LiveError

#: Default capacity (in batches) of the event ring.
DEFAULT_RING_CAPACITY = 64
#: How long a blocked stage waits before declaring the pipeline stuck.
DEFAULT_STALL_TIMEOUT = 60.0


@dataclass
class LiveReport:
    """Everything one pipeline run observed, in plain-data form."""

    wall_seconds: float
    events: int
    events_dropped: int
    batches: int
    events_per_sec: float
    windows: List[WindowStats] = field(default_factory=list)
    decisions: List[PolicyDecision] = field(default_factory=list)
    top_segments: List[Dict[str, float]] = field(default_factory=list)
    ring_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    decision_latency_max_us: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "wall_seconds": self.wall_seconds,
            "events": self.events,
            "events_dropped": self.events_dropped,
            "batches": self.batches,
            "events_per_sec": self.events_per_sec,
            "windows": [w.to_dict() for w in self.windows],
            "decisions": [d.to_dict() for d in self.decisions],
            "top_segments": self.top_segments,
            "ring_stats": self.ring_stats,
            "decision_latency_max_us": self.decision_latency_max_us,
        }


class LivePipeline:
    """Wire the stages together and run one bounded replay."""

    def __init__(
        self,
        injector: TraceInjector,
        tracker: RollingSkewTracker,
        policy: "OnlinePolicyEngine | None" = None,
        topk: "SpaceSaving | None" = None,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
        overflow: str = "block",
        stall_timeout: "Optional[float]" = DEFAULT_STALL_TIMEOUT,
        topk_report: int = 10,
    ):
        if ring_capacity < 1:
            raise ConfigError(
                f"ring_capacity must be >= 1, got {ring_capacity}"
            )
        self.injector = injector
        self.tracker = tracker
        self.policy = policy
        self.topk = topk if topk is not None else SpaceSaving(
            capacity=64, sketch=CountMinSketch()
        )
        self.topk_report = topk_report
        self.stall_timeout = stall_timeout
        self._event_ring = RingBuffer(
            ring_capacity, policy=overflow, name="live.events"
        )
        # Windows are ~3 orders of magnitude rarer than event batches; a
        # small always-blocking ring keeps the policy stage lossless.
        self._window_ring = RingBuffer(8, policy="block", name="live.windows")
        self._errors: "List[BaseException]" = []
        self._error_lock = threading.Lock()
        # Liveness bookkeeping for health(): stage threads beat once per
        # loop iteration (GIL-atomic float store; no lock needed).
        self._heartbeats: Dict[str, float] = {}
        self._threads: Dict[str, threading.Thread] = {}
        self._last_window_wall: "Optional[float]" = None

    # -- stage bodies --------------------------------------------------------

    def _record_error(self, error: BaseException) -> None:
        with self._error_lock:
            self._errors.append(error)

    def _beat(self, stage: str) -> None:
        self._heartbeats[stage] = time.time()

    def _inject_stage(self) -> None:
        self._beat("inject")
        try:
            self.injector.run(
                self._event_ring,
                put_timeout=self.stall_timeout,
                heartbeat=lambda: self._beat("inject"),
            )
        except BaseException as error:  # noqa: BLE001 - re-raised by run()
            self._record_error(error)
            self._event_ring.close()
        finally:
            self._beat("inject")

    def _stats_stage(self) -> None:
        telemetry = get_telemetry()
        events_total = telemetry.counter("live.events_total")
        batches_total = telemetry.counter("live.batches_total")
        windows_closed = telemetry.counter("live.windows_closed")
        self._beat("stats")
        try:
            while True:
                batch = self._event_ring.get(timeout=self.stall_timeout)
                self._beat("stats")
                if batch is None:
                    break
                closed = self.tracker.observe(batch)
                self.topk.update_many(batch.segment_id, batch.size_bytes)
                events_total.inc(len(batch))
                batches_total.inc()
                for window in closed:
                    windows_closed.inc()
                    self._window_ring.put(
                        window, timeout=self.stall_timeout
                    )
            for window in self.tracker.finish():
                windows_closed.inc()
                self._window_ring.put(window, timeout=self.stall_timeout)
        except BaseException as error:  # noqa: BLE001 - re-raised by run()
            self._record_error(error)
            self._event_ring.close()
        finally:
            self._window_ring.close()

    def _policy_stage(self, report: LiveReport) -> None:
        telemetry = get_telemetry()
        decisions_total = telemetry.counter("live.decisions_total")
        latency_hist = telemetry.histogram("live.decision_latency_us")
        self._beat("policy")
        try:
            while True:
                closed = self._window_ring.get(timeout=self.stall_timeout)
                self._beat("policy")
                if closed is None:
                    break
                self._last_window_wall = time.time()
                t0 = time.perf_counter()
                if self.policy is not None:
                    decisions = self.policy.on_window(closed)
                else:
                    decisions = []
                latency_us = int(
                    (time.perf_counter() - t0) * 1_000_000
                )
                latency_hist.observe(latency_us)
                if latency_us > report.decision_latency_max_us:
                    report.decision_latency_max_us = latency_us
                decisions_total.inc(len(decisions))
                report.windows.append(closed.stats)
                report.decisions.extend(decisions)
        except BaseException as error:  # noqa: BLE001 - re-raised by run()
            self._record_error(error)
            self._window_ring.close()

    # -- orchestration -------------------------------------------------------

    def run(self) -> LiveReport:
        """Execute the replay to completion and return its report.

        Raises :class:`LiveError` (chaining the stage's original
        exception) if any stage failed; a clean return implies every
        stage drained and joined.
        """
        telemetry = get_telemetry()
        report = LiveReport(
            wall_seconds=0.0,
            events=0,
            events_dropped=0,
            batches=0,
            events_per_sec=0.0,
        )
        self._threads = {
            "inject": threading.Thread(
                target=self._inject_stage, name="live-inject", daemon=True
            ),
            "stats": threading.Thread(
                target=self._stats_stage, name="live-stats", daemon=True
            ),
            "policy": threading.Thread(
                target=self._policy_stage,
                args=(report,),
                name="live-policy",
                daemon=True,
            ),
        }
        start = time.perf_counter()
        for thread in self._threads.values():
            thread.start()
        for thread in self._threads.values():
            thread.join()
        wall = time.perf_counter() - start
        if self._errors:
            first = self._errors[0]
            raise LiveError(
                f"live pipeline failed in {len(self._errors)} stage(s): "
                f"{first}"
            ) from first
        report.wall_seconds = wall
        report.events = self.injector.injected_events
        report.events_dropped = self.injector.dropped_events
        report.batches = self.injector.injected_batches
        report.events_per_sec = (
            report.events / wall if wall > 0 else float(report.events)
        )
        report.top_segments = self.topk.to_dict(self.topk_report)
        report.ring_stats = {
            ring.name: ring.stats()
            for ring in (self._event_ring, self._window_ring)
        }
        telemetry.counter("live.events_dropped").inc(report.events_dropped)
        telemetry.gauge("live.events_per_sec").set_max(
            int(report.events_per_sec)
        )
        for ring in (self._event_ring, self._window_ring):
            telemetry.gauge(
                "live.queue_depth_max", ring=ring.name
            ).set_max(ring.max_depth)
        return report

    # -- liveness ------------------------------------------------------------

    def queue_depths(self) -> Dict[str, int]:
        """Current ring depths, keyed by ring name (recorder probes)."""
        return {
            ring.name: ring.depth
            for ring in (self._event_ring, self._window_ring)
        }

    def health(self) -> Dict[str, Any]:
        """Per-stage liveness for ``/healthz``.

        ``healthy`` means: no stage has failed, and no *alive* stage's
        heartbeat is older than ``stall_timeout`` (each stage beats once
        per loop iteration; a blocked stage raises its own LiveError
        after the same timeout, so a stale beat is a genuine stall).
        Before :meth:`run` starts, and after a clean drain, the pipeline
        reports healthy with ``running=False``.
        """
        now = time.time()
        stages: Dict[str, Any] = {}
        running = False
        stalled = False
        for name, thread in self._threads.items():
            alive = thread.is_alive()
            running = running or alive
            beat = self._heartbeats.get(name)
            age = round(now - beat, 3) if beat is not None else None
            if (
                alive
                and self.stall_timeout is not None
                and age is not None
                and age > self.stall_timeout
            ):
                stalled = True
            stages[name] = {"alive": alive, "last_beat_age_s": age}
        with self._error_lock:
            errors = [str(error) for error in self._errors]
        last_window_age = (
            round(now - self._last_window_wall, 3)
            if self._last_window_wall is not None
            else None
        )
        return {
            "healthy": not errors and not stalled,
            "running": running,
            "stalled": stalled,
            "stall_timeout": self.stall_timeout,
            "stages": stages,
            "rings": {
                ring.name: {"closed": ring.closed, "depth": ring.depth}
                for ring in (self._event_ring, self._window_ring)
            },
            "last_window_age_s": last_window_age,
            "errors": errors,
        }
