"""The online policy engine: §5 throttle-lending + §4 rebinding, served.

The batch experiments evaluate limited lending
(:func:`repro.throttle.lending.simulate_lending`) and hot/cold rebinding
(:func:`repro.balancer.wt.simulate_rebinding`) *offline*, replaying a
finished dataset.  :class:`OnlinePolicyEngine` adapts the same decision
arithmetic to the serving loop: every closed window delivers per-VD
loads, and the engine emits explicit, bounded-latency decisions —

- **lend** — Algorithm 2's single lend step on the window's mean usage:
  available resource from the unthrottled members' headroom, a ``p``
  fraction of it split over the throttled members by overshoot, lenders
  reduced by ``p`` x their individual headroom (mass-conserving, same
  formulas as the batch simulation; caps re-init every window, the
  period reset of Algorithm 2);
- **rebind** — the Fig 2(d) trigger on per-node loads: when the hottest
  node carries more than ``trigger_ratio`` x the coldest node's bytes,
  the hottest VD of the hottest node re-homes to the coldest node, and
  the binding carries forward to later windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

import numpy as np

from repro.live.windowing import ClosedWindow
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class PolicyDecision:
    """One decision emitted by the online policy engine."""

    kind: str  # "lend" | "rebind"
    window_start: int
    window_end: int
    details: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "window_start": self.window_start,
            "window_end": self.window_end,
            "details": dict(self.details),
        }


class OnlinePolicyEngine:
    """Window-driven lend / rebind decisions over live per-VD loads."""

    def __init__(
        self,
        caps_bps: np.ndarray,
        vd_to_node: np.ndarray,
        num_nodes: int,
        lending_rate: float = 0.8,
        trigger_ratio: float = 1.2,
    ):
        caps = np.asarray(caps_bps, dtype=float)
        binding = np.asarray(vd_to_node, dtype=np.int64)
        if caps.ndim != 1 or caps.size == 0:
            raise ConfigError("caps_bps must be a non-empty 1-D array")
        if np.any(caps <= 0):
            raise ConfigError("caps_bps must be positive")
        if binding.shape != caps.shape:
            raise ConfigError(
                f"vd_to_node shape {binding.shape} != caps shape {caps.shape}"
            )
        if num_nodes < 1:
            raise ConfigError(f"num_nodes must be >= 1, got {num_nodes}")
        if binding.size and (
            binding.min() < 0 or binding.max() >= num_nodes
        ):
            raise ConfigError("vd_to_node entries must lie in [0, num_nodes)")
        if not 0.0 < lending_rate < 1.0:
            raise ConfigError(
                f"lending_rate must be in (0, 1), got {lending_rate}"
            )
        if trigger_ratio <= 1.0:
            raise ConfigError(
                f"trigger_ratio must exceed 1, got {trigger_ratio}"
            )
        self._caps = caps
        self._binding = binding.copy()
        self.num_nodes = int(num_nodes)
        self.lending_rate = float(lending_rate)
        self.trigger_ratio = float(trigger_ratio)
        self.throttled_vd_windows = 0

    @property
    def binding(self) -> np.ndarray:
        """The current VD -> node binding (rebinds mutate a copy)."""
        return self._binding

    # -- §5: one lend step on the window's mean usage ------------------------

    def _lend(self, usage: np.ndarray, window) -> "PolicyDecision | None":
        caps = self._caps
        over = usage >= caps
        if not over.any():
            return None
        self.throttled_vd_windows += int(over.sum())
        measured = np.minimum(usage, caps)
        available = float(caps.sum() - measured.sum())
        if available <= 0:
            return None
        lendable = self.lending_rate * available
        overshoot = np.clip(usage - caps, 0.0, None)
        overshoot_total = float(overshoot[over].sum())
        if overshoot_total > 0:
            boost = lendable * overshoot / overshoot_total
        else:
            boost = np.where(over, lendable / max(1, int(over.sum())), 0.0)
        headroom = np.clip(caps - usage, 0.0, None)
        reclaimed = np.where(~over, self.lending_rate * headroom, 0.0)
        return PolicyDecision(
            kind="lend",
            window_start=window.start,
            window_end=window.end,
            details={
                "borrowers": int(over.sum()),
                "lenders": int((~over & (headroom > 0)).sum()),
                "lent_bps": float(np.where(over, boost, 0.0).sum()),
                "reclaimed_bps": float(reclaimed.sum()),
            },
        )

    # -- §4: hot/cold rebind trigger on per-node loads -----------------------

    def _rebind(
        self, per_vd: np.ndarray, window
    ) -> "PolicyDecision | None":
        loads = np.bincount(
            self._binding, weights=per_vd, minlength=self.num_nodes
        )
        if loads.sum() <= 0:
            return None
        hot = int(np.argmax(loads))
        cold = int(np.argmin(loads))
        if not loads[hot] > self.trigger_ratio * loads[cold]:
            return None
        on_hot = np.nonzero(self._binding == hot)[0]
        if on_hot.size <= 1:
            # A single-VD node cannot shed load by re-homing its only VD
            # without inverting the imbalance; skip (matches the batch
            # simulation swapping *sets*, which is a no-op here).
            return None
        mover = int(on_hot[np.argmax(per_vd[on_hot])])
        self._binding[mover] = cold
        return PolicyDecision(
            kind="rebind",
            window_start=window.start,
            window_end=window.end,
            details={
                "vd_id": mover,
                "from_node": hot,
                "to_node": cold,
                "hot_load_bytes": float(loads[hot]),
                "cold_load_bytes": float(loads[cold]),
            },
        )

    def on_window(self, closed: ClosedWindow) -> List[PolicyDecision]:
        """Decisions for one closed window (possibly empty)."""
        window = closed.stats.window
        if closed.per_vd.shape != self._caps.shape:
            raise ConfigError(
                f"per-VD load vector shape {closed.per_vd.shape} != "
                f"caps shape {self._caps.shape}"
            )
        usage = closed.per_vd / float(window.duration)
        decisions: List[PolicyDecision] = []
        lend = self._lend(usage, window)
        if lend is not None:
            decisions.append(lend)
        rebind = self._rebind(closed.per_vd, window)
        if rebind is not None:
            decisions.append(rebind)
        return decisions
