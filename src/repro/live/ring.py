"""Bounded ring-buffer queues connecting the pipeline stages.

Every edge in the live pipeline is a :class:`RingBuffer` with a hard
capacity — the backpressure contract is *bounded queues, drop with
accounting, never unbounded growth*.  Two overflow policies:

- ``"block"`` — the producer waits for space (lossless; the mode the
  online/offline differential tests run in);
- ``"drop"`` — the newest item is rejected and counted, so an
  over-driven pipeline sheds load at ingest instead of growing queues.

The buffer is single-producer/single-consumer FIFO in this pipeline, so
with ``"block"`` the consumed order equals the produced order and the
whole run is deterministic.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Optional

from repro.util.errors import ConfigError, LiveError

#: Overflow policies accepted by :class:`RingBuffer`.
POLICIES = ("block", "drop")


class RingBuffer:
    """A bounded FIFO with explicit overflow accounting."""

    def __init__(self, capacity: int, policy: str = "block", name: str = ""):
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        if policy not in POLICIES:
            raise ConfigError(
                f"policy must be one of {POLICIES}, got {policy!r}"
            )
        self.capacity = capacity
        self.policy = policy
        self.name = name or "ring"
        self.accepted = 0
        self.dropped = 0
        self.max_depth = 0
        self._items: "deque[Any]" = deque()
        self._closed = False
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)

    # -- producer side -------------------------------------------------------

    def put(self, item: Any, timeout: "Optional[float]" = None) -> bool:
        """Enqueue ``item``; returns False when it was dropped.

        Under ``"block"`` the call waits for space (``timeout`` seconds
        at most; expiry raises :class:`LiveError` so a stuck consumer is
        an error, never silent loss).  Under ``"drop"`` a full buffer
        rejects the item immediately and counts it.
        """
        with self._lock:
            if self._closed:
                raise LiveError(f"{self.name}: put() after close()")
            if len(self._items) >= self.capacity:
                if self.policy == "drop":
                    self.dropped += 1
                    return False
                if not self._not_full.wait_for(
                    lambda: len(self._items) < self.capacity or self._closed,
                    timeout=timeout,
                ):
                    raise LiveError(
                        f"{self.name}: producer blocked for more than "
                        f"{timeout}s (consumer stalled?)"
                    )
                if self._closed:
                    raise LiveError(f"{self.name}: closed while blocked")
            self._items.append(item)
            self.accepted += 1
            if len(self._items) > self.max_depth:
                self.max_depth = len(self._items)
            self._not_empty.notify()
            return True

    def close(self) -> None:
        """Mark the stream complete; pending items still drain."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    # -- consumer side -------------------------------------------------------

    def get(self, timeout: "Optional[float]" = None) -> Any:
        """Dequeue the next item; ``None`` means closed-and-drained."""
        with self._lock:
            if not self._not_empty.wait_for(
                lambda: self._items or self._closed, timeout=timeout
            ):
                raise LiveError(
                    f"{self.name}: consumer waited more than {timeout}s "
                    "(producer stalled?)"
                )
            if not self._items:
                return None
            item = self._items.popleft()
            self._not_full.notify()
            return item

    # -- accounting ----------------------------------------------------------

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran (items may still be draining)."""
        with self._lock:
            return self._closed

    def stats(self) -> "dict[str, int]":
        with self._lock:
            return {
                "capacity": self.capacity,
                "accepted": self.accepted,
                "dropped": self.dropped,
                "max_depth": self.max_depth,
            }
