"""The trace injector: replays a recorded stream into the pipeline.

:class:`TraceInjector` is the pipeline's source stage.  It slices a
finite :class:`~repro.live.events.EventBatch` into bounded sub-batches
and pushes them into the first ring buffer, pacing against the wall
clock at a configurable *rate multiplier*: ``rate=1.0`` replays in real
time, ``rate=100.0`` a hundred-fold faster, ``rate=None`` as fast as the
downstream stages accept ("max").  ``loops > 1`` replays the trace
repeatedly with timestamps shifted forward each pass, which is how the
benchmark sustains an arbitrarily long run from a short trace.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.live.events import EventBatch
from repro.live.ring import RingBuffer
from repro.util.errors import ConfigError

#: Default number of events per injected sub-batch.
DEFAULT_BATCH_EVENTS = 2048


class TraceInjector:
    """Replay an event stream into a ring buffer at a rate multiplier."""

    def __init__(
        self,
        events: EventBatch,
        rate: "Optional[float]" = None,
        batch_events: int = DEFAULT_BATCH_EVENTS,
        loops: int = 1,
        clock: "Callable[[], float]" = time.monotonic,
        sleep: "Callable[[float], None]" = time.sleep,
    ):
        if len(events) == 0:
            raise ConfigError("cannot inject an empty event stream")
        if rate is not None and rate <= 0:
            raise ConfigError(f"rate multiplier must be > 0, got {rate}")
        if batch_events < 1:
            raise ConfigError(
                f"batch_events must be >= 1, got {batch_events}"
            )
        if loops < 1:
            raise ConfigError(f"loops must be >= 1, got {loops}")
        self.events = events
        self.rate = rate
        self.batch_events = batch_events
        self.loops = loops
        self._clock = clock
        self._sleep = sleep
        self.injected_events = 0
        self.dropped_events = 0
        self.injected_batches = 0

    def run(
        self,
        out: RingBuffer,
        put_timeout: "Optional[float]" = None,
        heartbeat: "Optional[Callable[[], None]]" = None,
    ) -> None:
        """Push the whole replay into ``out`` and close it.

        The buffer is closed even when injection fails, so downstream
        consumers always observe end-of-stream and can drain cleanly.
        ``heartbeat`` (if given) is invoked once per injected sub-batch —
        the pipeline's liveness probe watches it.
        """
        base = float(self.events.timestamp[0])
        span = float(self.events.timestamp[-1]) - base
        try:
            start = self._clock()
            for pass_index in range(self.loops):
                shift = pass_index * (span + 1.0)
                source = (
                    self.events
                    if pass_index == 0
                    else self.events.shifted(shift)
                )
                for batch in source.iter_slices(self.batch_events):
                    if heartbeat is not None:
                        heartbeat()
                    if self.rate is not None:
                        # Release each sub-batch when its first event is
                        # due: due-time = (trace time since trace start)
                        # scaled down by the rate multiplier.
                        due = start + (
                            float(batch.timestamp[0]) - base
                        ) / self.rate
                        delay = due - self._clock()
                        if delay > 0:
                            self._sleep(delay)
                    if out.put(batch, timeout=put_timeout):
                        self.injected_events += len(batch)
                        self.injected_batches += 1
                    else:
                        self.dropped_events += len(batch)
        finally:
            out.close()
