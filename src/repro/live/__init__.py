"""Live ingestion service: online rolling-skew statistics over a replay.

The batch pipeline answers "what did the traffic look like?" after the
fact; :mod:`repro.live` answers it *while the traffic flows*.  A
deterministic event stream synthesized from the workload generator is
replayed through a bounded-queue pipeline — injector, rolling skew
tracker, hot-segment sketches, online policy engine — at a configurable
rate multiplier, and the online windowed CCR/P2A/CoV are *exactly* the
numbers the offline analysis computes on the same stream (pinned by
differential tests; see :mod:`repro.live.windowing`).
"""

from repro.live.events import (
    OP_READ,
    OP_WRITE,
    EventBatch,
    concat_batches,
    synthesize_events,
)
from repro.live.injector import DEFAULT_BATCH_EVENTS, TraceInjector
from repro.live.pipeline import (
    DEFAULT_RING_CAPACITY,
    LivePipeline,
    LiveReport,
)
from repro.live.policy import OnlinePolicyEngine, PolicyDecision
from repro.live.ring import POLICIES, RingBuffer
from repro.live.service import (
    LIVE_SCHEMA_VERSION,
    LiveConfig,
    build_pipeline,
    report_to_dict,
    run_live,
)
from repro.live.sketches import CountMinSketch, SpaceSaving
from repro.live.windowing import (
    DEFAULT_CCR_FRACTION,
    ClosedWindow,
    RollingSkewTracker,
    WindowStats,
    offline_window_stats,
)

__all__ = [
    "OP_READ",
    "OP_WRITE",
    "EventBatch",
    "concat_batches",
    "synthesize_events",
    "DEFAULT_BATCH_EVENTS",
    "TraceInjector",
    "DEFAULT_RING_CAPACITY",
    "LivePipeline",
    "LiveReport",
    "OnlinePolicyEngine",
    "PolicyDecision",
    "POLICIES",
    "RingBuffer",
    "LIVE_SCHEMA_VERSION",
    "LiveConfig",
    "build_pipeline",
    "report_to_dict",
    "run_live",
    "CountMinSketch",
    "SpaceSaving",
    "DEFAULT_CCR_FRACTION",
    "ClosedWindow",
    "RollingSkewTracker",
    "WindowStats",
    "offline_window_stats",
]
