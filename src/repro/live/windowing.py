"""Rolling window accumulators for online CCR / P2A / CoV.

:class:`RollingSkewTracker` consumes the event stream batch by batch and
maintains fixed-size accumulators for the current window — per-VD byte
totals (split by direction) and per-second totals — built on the
:mod:`repro.util.timewindow` bucketing arithmetic.  When the stream
crosses a window boundary the window closes and its skew statistics are
computed by calling the *same* :mod:`repro.stats` functions the batch
analyses use.

The equivalence contract (pinned by the differential tests): feeding a
finite stream through the tracker — in any batch slicing — produces,
for every window, accumulator arrays *bitwise identical* to bucketing
the whole stream offline, because ``np.add.at`` applies increments in
element order and the tracker preserves global event order across batch
splits.  Identical arrays into identical :func:`repro.stats.skewness`
calls means the online CCR/P2A/CoV equal the offline values exactly —
not approximately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.live.events import OP_READ, EventBatch
from repro.stats.ratios import wr_ratio
from repro.stats.skewness import ccr, cov, p2a
from repro.util.errors import ConfigError
from repro.util.timewindow import TimeWindow, iter_windows

#: The paper's headline spatial-skew fraction (1%-CCR).
DEFAULT_CCR_FRACTION = 0.01


@dataclass(frozen=True)
class WindowStats:
    """Skew statistics of one closed time window."""

    window: TimeWindow
    events: int
    total_bytes: float
    read_bytes: float
    write_bytes: float
    #: Share of window traffic from the hottest ``ccr_fraction`` of VDs.
    ccr_hot: float
    #: Peak-to-average of the window's per-second traffic.
    p2a: float
    #: Coefficient of variation across per-VD totals.
    cov: float
    #: Normalized write-read ratio of the window (Equation 2).
    wr_ratio: float

    def to_dict(self) -> dict:
        return {
            "start": self.window.start,
            "end": self.window.end,
            "events": self.events,
            "total_bytes": self.total_bytes,
            "read_bytes": self.read_bytes,
            "write_bytes": self.write_bytes,
            "ccr_hot": self.ccr_hot,
            "p2a": self.p2a,
            "cov": self.cov,
            "wr_ratio": self.wr_ratio,
        }


@dataclass(frozen=True)
class ClosedWindow:
    """A closed window's statistics plus its raw per-VD accumulator.

    The per-VD vector feeds the online policy engine (lend / rebind
    decisions need entity-level loads, not just the scalar skew stats).
    """

    stats: WindowStats
    per_vd: np.ndarray


def _close_window(
    window: TimeWindow,
    events: int,
    per_vd: np.ndarray,
    per_vd_read: np.ndarray,
    per_vd_write: np.ndarray,
    per_second: np.ndarray,
    ccr_fraction: float,
) -> ClosedWindow:
    """Assemble one window's stats from its accumulators.

    Shared by the online tracker and the offline reference so both
    paths run literally the same :mod:`repro.stats` calls.
    """
    read_total = float(per_vd_read.sum())
    write_total = float(per_vd_write.sum())
    stats = WindowStats(
        window=window,
        events=events,
        total_bytes=float(per_vd.sum()),
        read_bytes=read_total,
        write_bytes=write_total,
        ccr_hot=ccr(per_vd, ccr_fraction),
        p2a=p2a(per_second),
        cov=cov(per_vd),
        wr_ratio=wr_ratio(write_total, read_total),
    )
    return ClosedWindow(stats=stats, per_vd=per_vd.copy())


class RollingSkewTracker:
    """Online windowed skew statistics over a live event stream.

    The accumulators are ring-buffer style: one window's worth of state,
    reset in place at every boundary — memory is O(num_vds +
    window_seconds) regardless of stream length.
    """

    def __init__(
        self,
        num_vds: int,
        window_seconds: int,
        total_seconds: int,
        ccr_fraction: float = DEFAULT_CCR_FRACTION,
        drop_partial: bool = False,
    ):
        if num_vds < 1:
            raise ConfigError(f"num_vds must be >= 1, got {num_vds}")
        # Window arithmetic (and its validation) delegates to the
        # timewindow helpers; materializing the bounds is fine because
        # the window count is total/window, not per event.
        self._windows = list(
            iter_windows(total_seconds, window_seconds, drop_partial)
        )
        self.window_seconds = window_seconds
        self.total_seconds = total_seconds
        self.num_vds = num_vds
        self.ccr_fraction = ccr_fraction
        self._cursor = 0
        self._events = 0
        self._last_seen = 0.0
        self._per_vd = np.zeros(num_vds)
        self._per_vd_read = np.zeros(num_vds)
        self._per_vd_write = np.zeros(num_vds)
        self._per_second = np.zeros(window_seconds)

    @property
    def windows_total(self) -> int:
        return len(self._windows)

    @property
    def windows_closed(self) -> int:
        return self._cursor

    def _current(self) -> "TimeWindow | None":
        if self._cursor >= len(self._windows):
            return None
        return self._windows[self._cursor]

    def _close_current(self) -> ClosedWindow:
        window = self._windows[self._cursor]
        closed = _close_window(
            window,
            self._events,
            self._per_vd,
            self._per_vd_read,
            self._per_vd_write,
            self._per_second[: window.duration],
            self.ccr_fraction,
        )
        self._per_vd[:] = 0.0
        self._per_vd_read[:] = 0.0
        self._per_vd_write[:] = 0.0
        self._per_second[:] = 0.0
        self._events = 0
        self._cursor += 1
        return closed

    def _accumulate(self, batch: EventBatch, lo: int, hi: int, w0: int) -> None:
        vd = batch.vd_id[lo:hi]
        size = batch.size_bytes[lo:hi]
        seconds = (
            np.floor(batch.timestamp[lo:hi]).astype(np.int64) - w0
        )
        np.add.at(self._per_vd, vd, size)
        reads = batch.op[lo:hi] == OP_READ
        np.add.at(self._per_vd_read, vd[reads], size[reads])
        np.add.at(self._per_vd_write, vd[~reads], size[~reads])
        np.add.at(self._per_second, seconds, size)
        self._events += hi - lo

    def observe(self, batch: EventBatch) -> List[ClosedWindow]:
        """Fold one batch in; returns the windows it closed (maybe [])."""
        closed: List[ClosedWindow] = []
        n = len(batch)
        if n == 0:
            return closed
        ts = batch.timestamp
        if ts[0] < self._last_seen:
            raise ConfigError(
                f"event stream went backwards: {ts[0]} after "
                f"{self._last_seen}"
            )
        self._last_seen = float(ts[-1])
        i = 0
        while i < n:
            window = self._current()
            if window is None:
                # Past the final tracked window (drop_partial tail or a
                # stream longer than declared): remaining events are out
                # of scope by construction.
                break
            if ts[i] >= window.end:
                closed.append(self._close_current())
                continue
            j = int(np.searchsorted(ts, window.end, side="left"))
            self._accumulate(batch, i, j, window.start)
            i = j
        return closed

    def finish(self) -> List[ClosedWindow]:
        """Close every remaining window (zero-traffic ones included)."""
        closed: List[ClosedWindow] = []
        while self._current() is not None:
            closed.append(self._close_current())
        return closed


def offline_window_stats(
    events: EventBatch,
    num_vds: int,
    total_seconds: int,
    window_seconds: int,
    ccr_fraction: float = DEFAULT_CCR_FRACTION,
    drop_partial: bool = False,
) -> List[ClosedWindow]:
    """The batch reference: bucket the whole stream per window, offline.

    This is the ground truth the online tracker is differentially tested
    against; it uses :func:`iter_windows` bucketing and the identical
    :func:`_close_window` statistics path.
    """
    if num_vds < 1:
        raise ConfigError(f"num_vds must be >= 1, got {num_vds}")
    ts = events.timestamp
    out: List[ClosedWindow] = []
    for window in iter_windows(total_seconds, window_seconds, drop_partial):
        lo = int(np.searchsorted(ts, window.start, side="left"))
        hi = int(np.searchsorted(ts, window.end, side="left"))
        per_vd = np.zeros(num_vds)
        per_vd_read = np.zeros(num_vds)
        per_vd_write = np.zeros(num_vds)
        per_second = np.zeros(window.duration)
        vd = events.vd_id[lo:hi]
        size = events.size_bytes[lo:hi]
        seconds = (
            np.floor(ts[lo:hi]).astype(np.int64) - window.start
        )
        np.add.at(per_vd, vd, size)
        reads = events.op[lo:hi] == OP_READ
        np.add.at(per_vd_read, vd[reads], size[reads])
        np.add.at(per_vd_write, vd[~reads], size[~reads])
        np.add.at(per_second, seconds, size)
        out.append(
            _close_window(
                window,
                hi - lo,
                per_vd,
                per_vd_read,
                per_vd_write,
                per_second,
                ccr_fraction,
            )
        )
    return out
