"""Columnar IO-event batches and deterministic event synthesis.

The live pipeline moves IO events in *batches* of parallel numpy columns
rather than per-event Python objects — the same columnar discipline the
trace datasets use — which is what lets a pure-Python serving loop
sustain hundreds of thousands of events per second.  A finite recorded
stream is one :class:`EventBatch`; the injector slices it into bounded
sub-batches for the ring-buffer stages.

:func:`synthesize_events` turns the workload generator's per-second
per-VD series into an explicit event stream (the "log-injector +
synthetic dataset" split): every (VD, second, direction) cell with
traffic becomes ``k`` equal-sized IOs spread uniformly inside the
second, with segments assigned by inverse-CDF over the VD's segment
weights.  The synthesis is deterministic — no RNG — so a replay is a
fixed, reproducible stream and the online/offline differential tests
can demand *exact* equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

import numpy as np

from repro.util.errors import ConfigError
from repro.workload.fleet import Fleet
from repro.workload.generator import VdTraffic

#: Opcode values in the ``op`` column (match :class:`repro.trace.records.OpKind`).
OP_READ = 0
OP_WRITE = 1


@dataclass(frozen=True)
class EventBatch:
    """A batch of IO events as parallel columns, sorted by timestamp.

    ``timestamp`` is in trace-time seconds (float, half-open in
    ``[0, duration)``); ``op`` is :data:`OP_READ` / :data:`OP_WRITE`;
    ``segment_id`` is the *global* fleet segment index.
    """

    timestamp: np.ndarray
    vd_id: np.ndarray
    op: np.ndarray
    size_bytes: np.ndarray
    segment_id: np.ndarray

    def __post_init__(self) -> None:
        n = self.timestamp.shape[0]
        for name in ("vd_id", "op", "size_bytes", "segment_id"):
            if getattr(self, name).shape[0] != n:
                raise ConfigError(
                    f"event column {name!r} length differs from timestamp"
                )

    def __len__(self) -> int:
        return int(self.timestamp.shape[0])

    @property
    def total_bytes(self) -> float:
        return float(self.size_bytes.sum())

    def slice(self, lo: int, hi: int) -> "EventBatch":
        """A zero-copy view of events ``[lo, hi)``."""
        return EventBatch(
            timestamp=self.timestamp[lo:hi],
            vd_id=self.vd_id[lo:hi],
            op=self.op[lo:hi],
            size_bytes=self.size_bytes[lo:hi],
            segment_id=self.segment_id[lo:hi],
        )

    def shifted(self, seconds: float) -> "EventBatch":
        """The same events displaced ``seconds`` later (bench replay loops)."""
        return EventBatch(
            timestamp=self.timestamp + seconds,
            vd_id=self.vd_id,
            op=self.op,
            size_bytes=self.size_bytes,
            segment_id=self.segment_id,
        )

    def iter_slices(self, batch_events: int) -> Iterator["EventBatch"]:
        """Consecutive bounded sub-batches covering the whole stream."""
        if batch_events < 1:
            raise ConfigError(
                f"batch_events must be >= 1, got {batch_events}"
            )
        for lo in range(0, len(self), batch_events):
            yield self.slice(lo, min(lo + batch_events, len(self)))


def concat_batches(batches: Sequence[EventBatch]) -> EventBatch:
    """Concatenate batches (caller guarantees global timestamp order)."""
    if not batches:
        return EventBatch(
            timestamp=np.zeros(0),
            vd_id=np.zeros(0, dtype=np.int64),
            op=np.zeros(0, dtype=np.int8),
            size_bytes=np.zeros(0),
            segment_id=np.zeros(0, dtype=np.int64),
        )
    return EventBatch(
        timestamp=np.concatenate([b.timestamp for b in batches]),
        vd_id=np.concatenate([b.vd_id for b in batches]),
        op=np.concatenate([b.op for b in batches]),
        size_bytes=np.concatenate([b.size_bytes for b in batches]),
        segment_id=np.concatenate([b.segment_id for b in batches]),
    )


def _expand_direction(
    vd_id: int,
    first_segment_id: int,
    bytes_series: np.ndarray,
    iops_series: np.ndarray,
    segment_weights: np.ndarray,
    op: int,
    duration_seconds: int,
    max_ios_per_second: int,
) -> "List[np.ndarray] | None":
    """Event columns for one (VD, direction); None when it has no traffic."""
    seconds = np.nonzero(bytes_series[:duration_seconds] > 0)[0]
    if seconds.size == 0:
        return None
    counts = np.clip(
        np.rint(iops_series[seconds]), 1, max_ios_per_second
    ).astype(np.int64)
    total = int(counts.sum())
    # Position of each event inside its second: the (i + 0.5)/k grid.
    starts = np.cumsum(counts) - counts
    within = np.arange(total) - np.repeat(starts, counts)
    k = np.repeat(counts, counts).astype(float)
    offsets = (within + 0.5) / k
    timestamps = np.repeat(seconds, counts).astype(float) + offsets
    sizes = np.repeat(bytes_series[seconds] / counts, counts)
    # Segment per event by inverse CDF at the same uniform grid.
    cdf = np.cumsum(segment_weights)
    local = np.searchsorted(cdf, offsets * cdf[-1], side="right")
    local = np.minimum(local, segment_weights.size - 1)
    return [
        timestamps,
        np.full(total, vd_id, dtype=np.int64),
        np.full(total, op, dtype=np.int8),
        sizes,
        (first_segment_id + local).astype(np.int64),
    ]


def synthesize_events(
    fleet: Fleet,
    traffic: Sequence[VdTraffic],
    duration_seconds: "int | None" = None,
    max_ios_per_second: int = 16,
) -> EventBatch:
    """A deterministic finite event stream from generated VD traffic.

    The canonical event order is timestamp-sorted with ties broken by
    generation order (VD, then reads before writes) via a stable sort —
    the stream *is* this order, and both the online tracker and the
    offline reference consume it unchanged, which is what makes their
    accumulation bitwise identical.
    """
    if max_ios_per_second < 1:
        raise ConfigError(
            f"max_ios_per_second must be >= 1, got {max_ios_per_second}"
        )
    if not traffic:
        raise ConfigError("no VD traffic to synthesize events from")
    if duration_seconds is None:
        duration_seconds = int(traffic[0].read_bytes.shape[0])
    if duration_seconds < 1:
        raise ConfigError(
            f"duration_seconds must be >= 1, got {duration_seconds}"
        )
    columns: List[List[np.ndarray]] = []
    for tr in traffic:
        vd = fleet.vds[tr.vd_id]
        if tr.read_bytes.shape[0] < duration_seconds:
            raise ConfigError(
                f"vd {tr.vd_id} series shorter than duration "
                f"{duration_seconds}"
            )
        for series, iops, weights, op in (
            (tr.read_bytes, tr.read_iops, tr.segment_read_weights, OP_READ),
            (
                tr.write_bytes,
                tr.write_iops,
                tr.segment_write_weights,
                OP_WRITE,
            ),
        ):
            cols = _expand_direction(
                tr.vd_id,
                vd.first_segment_id,
                series,
                iops,
                weights,
                op,
                duration_seconds,
                max_ios_per_second,
            )
            if cols is not None:
                columns.append(cols)
    if not columns:
        raise ConfigError("synthesized stream is empty (all series zero)")
    stacked = [np.concatenate(parts) for parts in zip(*columns)]
    order = np.argsort(stacked[0], kind="stable")
    timestamp, vd_id, op_col, size_bytes, segment_id = (
        arr[order] for arr in stacked
    )
    return EventBatch(
        timestamp=timestamp,
        vd_id=vd_id,
        op=op_col,
        size_bytes=size_bytes,
        segment_id=segment_id,
    )
