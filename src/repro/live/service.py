"""Top-level entry point: configure, build, replay, report.

:func:`run_live` is what the ``ebs-repro live`` subcommand (and the
benchmark) calls: it builds one data center of the chosen scale, turns
its generated workload into a deterministic event stream, wires the
:class:`~repro.live.pipeline.LivePipeline`, runs the bounded replay,
and returns a JSON-ready report.  Everything is derived from the study
seed, so two runs of the same :class:`LiveConfig` replay the identical
stream (wall-clock figures aside).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.core.config import StudyConfig
from repro.live.events import synthesize_events
from repro.live.injector import DEFAULT_BATCH_EVENTS, TraceInjector
from repro.live.pipeline import (
    DEFAULT_RING_CAPACITY,
    LivePipeline,
    LiveReport,
)
from repro.live.policy import OnlinePolicyEngine
from repro.live.sketches import CountMinSketch, SpaceSaving
from repro.live.windowing import (
    DEFAULT_CCR_FRACTION,
    RollingSkewTracker,
)
from repro.obs.runtime import get_telemetry
from repro.util.errors import ConfigError
from repro.util.rng import RngFactory
from repro.workload.fleet import build_fleet
from repro.workload.generator import WorkloadGenerator

#: Version of the ``live.json`` report layout.
LIVE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class LiveConfig:
    """One live-service run, fully specified."""

    scale: str = "small"
    seed: int = 7
    #: Trace seconds to synthesize and replay (per loop).
    duration_seconds: int = 60
    #: Wall-clock speed-up; ``None`` replays as fast as possible ("max").
    rate: Optional[float] = None
    window_seconds: int = 10
    batch_events: int = DEFAULT_BATCH_EVENTS
    ring_capacity: int = DEFAULT_RING_CAPACITY
    #: ``"block"`` (lossless) or ``"drop"`` (shed load at ingest).
    overflow: str = "block"
    loops: int = 1
    max_ios_per_second: int = 16
    ccr_fraction: float = DEFAULT_CCR_FRACTION
    topk_capacity: int = 64
    sketch_width: int = 2048
    lending_rate: float = 0.8
    trigger_ratio: float = 1.2
    #: ``(host, port)`` to expose /metrics,/snapshot,/healthz,/recorder on
    #: while the replay runs (``None``: no server).  Port 0 lets the OS
    #: pick; the bound address reaches the caller via ``on_server``.
    serve: Optional[Tuple[str, int]] = None
    #: Flight-recorder sampling interval (wall seconds) and ring size.
    recorder_interval: float = 1.0
    recorder_capacity: int = 512
    #: SLO objective specs (``metric:pQQ<X`` / ``num/den<Y``), evaluated
    #: per recorder interval.  Empty: no SLO tracking.
    slos: Tuple[str, ...] = field(default_factory=tuple)
    #: Error budget: fraction of intervals allowed to violate an SLO.
    slo_budget: float = 0.01

    def __post_init__(self) -> None:
        if self.duration_seconds < 1:
            raise ConfigError(
                f"duration_seconds must be >= 1, got {self.duration_seconds}"
            )
        if self.window_seconds < 1:
            raise ConfigError(
                f"window_seconds must be >= 1, got {self.window_seconds}"
            )
        if self.recorder_interval <= 0:
            raise ConfigError(
                f"recorder_interval must be > 0, got {self.recorder_interval}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scale": self.scale,
            "seed": self.seed,
            "duration_seconds": self.duration_seconds,
            "rate": self.rate,
            "window_seconds": self.window_seconds,
            "batch_events": self.batch_events,
            "ring_capacity": self.ring_capacity,
            "overflow": self.overflow,
            "loops": self.loops,
            "serve": list(self.serve) if self.serve else None,
            "recorder_interval": self.recorder_interval,
            "slos": list(self.slos),
        }


def build_pipeline(config: LiveConfig) -> LivePipeline:
    """Everything up to (but not including) running the replay."""
    study = StudyConfig.scale(config.scale, seed=config.seed)
    dc_config = study.dc_configs[0]
    rngs = RngFactory(config.seed)
    fleet = build_fleet(dc_config, rngs)
    generator = WorkloadGenerator(fleet, config.duration_seconds, rngs)
    traffic = generator.generate_all()
    events = synthesize_events(
        fleet,
        traffic,
        config.duration_seconds,
        max_ios_per_second=config.max_ios_per_second,
    )
    caps = np.array([vd.throughput_cap_bps for vd in fleet.vds])
    binding = np.array(
        [fleet.vms[vd.vm_id].compute_node_id for vd in fleet.vds],
        dtype=np.int64,
    )
    policy = OnlinePolicyEngine(
        caps_bps=caps,
        vd_to_node=binding,
        num_nodes=dc_config.num_compute_nodes,
        lending_rate=config.lending_rate,
        trigger_ratio=config.trigger_ratio,
    )
    # Looped replays shift each pass past the previous one; size the
    # tracked horizon to cover every pass (stragglers past the horizon
    # are out of scope by the tracker's contract).
    total_seconds = config.loops * (config.duration_seconds + 1)
    tracker = RollingSkewTracker(
        num_vds=len(fleet.vds),
        window_seconds=config.window_seconds,
        total_seconds=total_seconds,
        ccr_fraction=config.ccr_fraction,
    )
    injector = TraceInjector(
        events,
        rate=config.rate,
        batch_events=config.batch_events,
        loops=config.loops,
    )
    topk = SpaceSaving(
        capacity=config.topk_capacity,
        sketch=CountMinSketch(width=config.sketch_width),
    )
    return LivePipeline(
        injector,
        tracker,
        policy=policy,
        topk=topk,
        ring_capacity=config.ring_capacity,
        overflow=config.overflow,
    )


def run_live(
    config: LiveConfig,
    on_server: "Optional[Callable[[Any], None]]" = None,
) -> LiveReport:
    """Build and run one live replay, instrumented end to end.

    When telemetry is enabled, the observability plane rides along: a
    :class:`~repro.obs.recorder.FlightRecorder` samples rates and queue
    depths every ``config.recorder_interval`` seconds (with an
    :class:`~repro.obs.slo.SloTracker` scoring ``config.slos`` per
    interval), and both land in the telemetry artifact as the
    ``recorder`` / ``slo`` sections.  With ``config.serve`` set, a
    scrape server answers ``/metrics``, ``/snapshot``, ``/healthz`` and
    ``/recorder`` for the duration of the replay; ``on_server`` (if
    given) receives the started :class:`~repro.obs.server.ObsServer`
    before injection begins, so callers can log or probe the bound
    address (port 0 binds are otherwise unknowable).
    """
    telemetry = get_telemetry()
    with telemetry.span(
        "live.run",
        scale=config.scale,
        rate="max" if config.rate is None else config.rate,
        duration=config.duration_seconds,
    ):
        pipeline = build_pipeline(config)
        recorder = slo = server = None
        if telemetry.enabled:
            from repro.obs.recorder import FlightRecorder
            from repro.obs.slo import SloTracker

            if config.slos:
                slo = SloTracker(config.slos, budget=config.slo_budget)
                telemetry.attach_section("slo", slo.snapshot)
            recorder = FlightRecorder(
                telemetry,
                interval_seconds=config.recorder_interval,
                capacity=config.recorder_capacity,
                slo=slo,
            )
            for ring_name in ("live.events", "live.windows"):
                recorder.add_probe(
                    f"queue_depth{{ring={ring_name}}}",
                    lambda name=ring_name: pipeline.queue_depths()[name],
                )
            telemetry.attach_section("recorder", recorder.snapshot)
        if config.serve is not None:
            host, port = config.serve
            server = telemetry.serve(
                host=host,
                port=port,
                recorder=recorder,
                slo=slo,
                health=pipeline.health,
            )
            if on_server is not None:
                on_server(server)
        try:
            if recorder is not None:
                recorder.start()
            return pipeline.run()
        finally:
            if recorder is not None:
                recorder.stop()
            if server is not None:
                server.stop()


def report_to_dict(config: LiveConfig, report: LiveReport) -> Dict[str, Any]:
    """The JSON artifact written by ``ebs-repro live -o``."""
    return {
        "schema_version": LIVE_SCHEMA_VERSION,
        "config": config.to_dict(),
        "report": report.to_dict(),
    }
