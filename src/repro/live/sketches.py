"""Streaming frequency sketches: Count-Min and Space-Saving top-K.

The live pipeline tracks hot segments without holding per-segment state
for the whole fleet: a :class:`CountMinSketch` gives an always-an-
overestimate point query for *any* segment in O(depth), and a
:class:`SpaceSaving` summary keeps the candidate top-K with per-entry
error bounds.  Both accept *weighted* batch updates (bytes, not just
counts) — the hot-segment ranking the paper's §6 balancer consumes is a
traffic ranking.

Guarantees pinned by the tests:

- Count-Min never underestimates: ``estimate(k) >= true(k)`` for every
  key, any stream, any seed.
- Space-Saving monitors every key whose true weight exceeds its
  ``min_count`` (so whenever the error bound permits a clean cut, the
  summary's candidates are a superset of the true top-K), and each
  entry brackets the truth: ``count - error <= true <= count``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.util.errors import ConfigError

#: Fixed 64-bit odd multipliers are drawn from this seed so sketch
#: contents are reproducible run to run.
_HASH_SEED = 0x5EED


class CountMinSketch:
    """A depth x width counting sketch with multiply-shift row hashes."""

    def __init__(self, width: int = 2048, depth: int = 4, seed: int = _HASH_SEED):
        if width < 2:
            raise ConfigError(f"width must be >= 2, got {width}")
        if depth < 1:
            raise ConfigError(f"depth must be >= 1, got {depth}")
        self.width = int(width)
        self.depth = int(depth)
        rng = np.random.default_rng(seed)
        # Odd multipliers make the multiply-shift hash 2-universal enough;
        # the add keeps distinct rows decorrelated.
        self._mul = (
            rng.integers(1, 2**63, size=depth, dtype=np.uint64) * 2 + 1
        )
        self._add = rng.integers(0, 2**63, size=depth, dtype=np.uint64)
        self._table = np.zeros((depth, width), dtype=float)
        self.total_weight = 0.0

    def _rows(self, keys: np.ndarray) -> np.ndarray:
        """(depth, n) bucket indexes for ``keys`` (uint64 wraparound hash)."""
        k = keys.astype(np.uint64, copy=False)
        with np.errstate(over="ignore"):
            mixed = (
                k[None, :] * self._mul[:, None] + self._add[:, None]
            ) >> np.uint64(17)
        return (mixed % np.uint64(self.width)).astype(np.int64)

    def update_many(self, keys: np.ndarray, weights: np.ndarray) -> None:
        """Add ``weights`` (non-negative) to the buckets of ``keys``."""
        if keys.shape != weights.shape:
            raise ConfigError("keys and weights must have the same shape")
        if keys.size == 0:
            return
        rows = self._rows(keys)
        for row in range(self.depth):
            np.add.at(self._table[row], rows[row], weights)
        self.total_weight += float(weights.sum())

    def estimate(self, key: int) -> float:
        """An overestimate of the key's accumulated weight."""
        return float(self.estimate_many(np.asarray([key], dtype=np.int64))[0])

    def estimate_many(self, keys: np.ndarray) -> np.ndarray:
        if keys.size == 0:
            return np.zeros(0)
        rows = self._rows(np.asarray(keys))
        estimates = np.stack(
            [self._table[row, rows[row]] for row in range(self.depth)]
        )
        return estimates.min(axis=0)

    def to_dict(self) -> "Dict[str, float]":
        return {
            "width": self.width,
            "depth": self.depth,
            "total_weight": self.total_weight,
        }


class SpaceSaving:
    """The Metwally et al. top-K summary, weighted-update variant.

    At most ``capacity`` keys are monitored.  A new key admitted into a
    full summary inherits the smallest monitored count as its error
    bound — the classic invariants (``sum(counts) == total stream
    weight``, ``min_count <= total / capacity``, every key with true
    weight above ``min_count`` is monitored) carry over unchanged to
    weighted updates.

    An optional :class:`CountMinSketch` backs the summary: it absorbs
    every update too, so evicted keys keep a queryable (over)estimate
    and the reported top-K can carry a second, independent bound.
    """

    def __init__(
        self, capacity: int, sketch: "CountMinSketch | None" = None
    ):
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.sketch = sketch
        self._counts: Dict[int, float] = {}
        self._errors: Dict[int, float] = {}
        self.total_weight = 0.0

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, key: int) -> bool:
        return key in self._counts

    @property
    def min_count(self) -> float:
        """The eviction threshold: 0.0 while the summary has free slots."""
        if len(self._counts) < self.capacity:
            return 0.0
        return min(self._counts.values())

    def update(self, key: int, weight: float = 1.0) -> None:
        if weight < 0:
            raise ConfigError(f"weight must be >= 0, got {weight}")
        self.total_weight += weight
        if key in self._counts:
            self._counts[key] += weight
            return
        if len(self._counts) < self.capacity:
            self._counts[key] = weight
            self._errors[key] = 0.0
            return
        # Evict the smallest count; break ties on the smallest key so
        # replays are deterministic regardless of dict insertion history.
        victim = min(self._counts, key=lambda k: (self._counts[k], k))
        floor = self._counts.pop(victim)
        self._errors.pop(victim)
        self._counts[key] = floor + weight
        self._errors[key] = floor

    def update_many(self, keys: np.ndarray, weights: np.ndarray) -> None:
        """Batch update: pre-aggregates duplicate keys, then folds them in.

        ``np.unique`` ordering makes the fold deterministic; the sketch
        (when attached) absorbs the same aggregated increments.
        """
        if keys.size == 0:
            return
        uniq, inverse = np.unique(keys, return_inverse=True)
        sums = np.zeros(uniq.size)
        np.add.at(sums, inverse, weights)
        if self.sketch is not None:
            self.sketch.update_many(uniq, sums)
        for key, weight in zip(uniq.tolist(), sums.tolist()):
            self.update(int(key), float(weight))

    def topk(self, k: "int | None" = None) -> "List[Tuple[int, float, float]]":
        """``(key, count, error)`` triples, heaviest first (ties: key asc)."""
        entries = sorted(
            self._counts.items(), key=lambda kv: (-kv[1], kv[0])
        )
        if k is not None:
            entries = entries[:k]
        return [
            (key, count, self._errors[key]) for key, count in entries
        ]

    def to_dict(self, k: "int | None" = None) -> "List[Dict[str, float]]":
        return [
            {"key": key, "count": count, "error": error}
            for key, count, error in self.topk(k)
        ]
