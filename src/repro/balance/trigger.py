"""The paper's fixed-trigger mechanisms expressed as a snapshot planner.

This is the head-to-head baseline for the greedy descent: the §4.3
hot/cold WT swap and §6 Algorithm 1 segment shedding, run against one
:class:`ClusterState` snapshot instead of a period replay, emitting the
same :class:`MovePlan` type so both planners score identically.

Two structural properties worth noting (they *are* the paper's point):

- a WT swap permutes WT loads without changing their multiset, so on a
  single snapshot it cannot reduce the WT CoV — rebinding balances
  across periods, never within one;
- segment shedding only fires on exporters above the trigger and always
  dumps on the minimum-loaded BS, so it stops well short of the optimum
  the greedy planner descends to.

Gains are still recorded canonically (from-scratch badness recomputes),
so fixed-trigger plans may legitimately contain zero- or negative-gain
moves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List

import numpy as np

from repro.balance.moves import Move, MoveKind, apply_move
from repro.balance.plan import MovePlan, PlannedMove
from repro.balance.policies import choose_shed_segments, wt_swap_decision
from repro.balance.score import ScoreWeights, badness
from repro.balance.state import ClusterState
from repro.obs.runtime import get_telemetry
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class TriggerConfig:
    """Knobs of the fixed-trigger snapshot planner (paper defaults)."""

    trigger_ratio: float = 1.2
    shed_fraction: float = 0.2
    max_segments_per_migration: int = 8
    max_segment_traffic_ratio: "float | None" = 1.0
    #: Storage-side passes: Algorithm 1 reruns until no exporter remains
    #: or this many passes, since one shed can create a new exporter.
    max_passes: int = 8
    weights: ScoreWeights = field(default_factory=ScoreWeights)
    no_qp_rebinds: bool = False
    no_segment_moves: bool = False

    def __post_init__(self) -> None:
        if self.trigger_ratio <= 1.0:
            raise ConfigError("trigger_ratio must exceed 1")
        if not 0.0 < self.shed_fraction <= 1.0:
            raise ConfigError("shed_fraction must be in (0, 1]")
        if self.max_segments_per_migration < 1:
            raise ConfigError("max_segments_per_migration must be >= 1")
        if (
            self.max_segment_traffic_ratio is not None
            and self.max_segment_traffic_ratio <= 0
        ):
            raise ConfigError("max_segment_traffic_ratio must be positive")
        if self.max_passes < 1:
            raise ConfigError("max_passes must be >= 1")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trigger_ratio": float(self.trigger_ratio),
            "shed_fraction": float(self.shed_fraction),
            "max_segments_per_migration": int(self.max_segments_per_migration),
            "max_segment_traffic_ratio": (
                None
                if self.max_segment_traffic_ratio is None
                else float(self.max_segment_traffic_ratio)
            ),
            "max_passes": int(self.max_passes),
            "weights": self.weights.to_dict(),
            "no_qp_rebinds": self.no_qp_rebinds,
            "no_segment_moves": self.no_segment_moves,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TriggerConfig":
        data = dict(payload)
        weights = data.pop("weights", None)
        if weights is not None:
            data["weights"] = ScoreWeights.from_dict(weights)
        try:
            return cls(**data)
        except TypeError as exc:
            raise ConfigError(f"malformed trigger config: {exc}") from exc


def _record(
    work: ClusterState,
    move: Move,
    score: float,
    weights: ScoreWeights,
    planned: "List[PlannedMove]",
) -> float:
    """Apply one move, score canonically, and append the planned move."""
    apply_move(work, move)
    new_score = badness(work, weights)
    planned.append(
        PlannedMove(move=move, gain=score - new_score, score_after=new_score)
    )
    return new_score


def fixed_trigger_plan(
    state: ClusterState, config: TriggerConfig = TriggerConfig()
) -> MovePlan:
    """One control-plane round of the paper's fixed triggers, as a plan.

    Compute side: per node (ascending), if the hottest WT exceeds the
    trigger over the coldest, their full QP sets swap (emitted as
    individual ``qp_rebind`` moves, hot-side QPs first, ascending id).
    Storage side: up to ``max_passes`` Algorithm 1 rounds — exporters
    above ``trigger_ratio`` x average shed their hottest admissible
    segments to the minimum-loaded BS (ties to the lowest id).
    """
    state.validate()
    work = state.copy()
    weights = config.weights
    telemetry = get_telemetry()
    initial = badness(work, weights)
    score = initial
    planned: List[PlannedMove] = []

    with telemetry.span("balance.plan", planner="fixed_trigger") as span:
        per = work.workers_per_node
        if not config.no_qp_rebinds and work.num_qps and per > 1:
            wt_util = work.wt_utilization()
            for node in range(work.num_compute_nodes):
                local = wt_util[node * per : (node + 1) * per]
                decision = wt_swap_decision(local, config.trigger_ratio)
                if decision is None:
                    continue
                hot = node * per + decision[0]
                cold = node * per + decision[1]
                hot_qps = np.nonzero(work.qp_wt == hot)[0]
                cold_qps = np.nonzero(work.qp_wt == cold)[0]
                for qp in hot_qps:
                    score = _record(
                        work,
                        Move(MoveKind.QP_REBIND, int(qp), cold),
                        score,
                        weights,
                        planned,
                    )
                for qp in cold_qps:
                    score = _record(
                        work,
                        Move(MoveKind.QP_REBIND, int(qp), hot),
                        score,
                        weights,
                        planned,
                    )

        if (
            not config.no_segment_moves
            and work.num_segments
            and work.num_block_servers > 1
        ):
            ratio = config.max_segment_traffic_ratio
            for _ in range(config.max_passes):
                loads = work.bs_utilization()
                average = float(loads.mean())
                if average <= 0:
                    break
                exporters = np.nonzero(
                    loads >= config.trigger_ratio * average
                )[0]
                ceiling = ratio * average if ratio is not None else math.inf
                moved = False
                for exporter in (int(e) for e in exporters):
                    seg_ids = np.nonzero(work.seg_bs == exporter)[0]
                    if seg_ids.size == 0:
                        continue
                    chosen = choose_shed_segments(
                        seg_ids,
                        work.seg_traffic[seg_ids],
                        config.shed_fraction * average,
                        ceiling,
                        config.max_segments_per_migration,
                    )
                    if not chosen:
                        continue
                    # MinTraffic importer with the exporter masked out;
                    # np.argmin takes the lowest id on ties.
                    masked = loads.copy()
                    masked[exporter] = math.inf
                    importer = int(np.argmin(masked))
                    for segment in chosen:
                        score = _record(
                            work,
                            Move(MoveKind.SEGMENT_MIGRATE, segment, importer),
                            score,
                            weights,
                            planned,
                        )
                        loads[importer] += float(work.seg_traffic[segment])
                        loads[exporter] -= float(work.seg_traffic[segment])
                    moved = True
                if not moved:
                    break

        for planned_move in planned:
            telemetry.counter(
                "balance.moves_planned", kind=planned_move.move.kind.value
            ).inc()
        span.set(
            moves=len(planned), initial_score=initial, final_score=score
        )

    return MovePlan(
        planner="fixed_trigger",
        state_digest=state.digest(),
        config=config.to_dict(),
        weights=weights,
        initial_score=initial,
        final_score=score,
        moves=tuple(planned),
    )
